//! The end-to-end SDB client: the application-facing facade that owns both the
//! DO-side proxy and the SP-side engine and moves every exchange between them
//! through the byte-counted wire layer.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use sdb_engine::{EngineError, ExecutionStats, QueryOptions, SpEngine};
use sdb_proxy::proxy::{ClientCost, RewrittenQuery};
use sdb_proxy::{ProxyError, SdbProxy, UploadOptions};
use sdb_sql::ast::{Expr, Literal, UnaryOp};
use sdb_sql::{parse_sql, SqlError, Statement};
use sdb_storage::{
    Catalog, ColumnDef, RecordBatch, Schema, Sensitivity, StorageError, Table, Value,
};

use crate::audit::{AuditReport, MemoryAuditor};
use crate::wire::{RecordingOracle, WireLog, WireMessageKind};
use crate::Result;
use sdb_crypto::KeyConfig;

/// Errors surfaced by the client.
#[derive(Debug, Clone, PartialEq)]
pub enum SdbError {
    /// From the proxy (rewriting, keys, decryption).
    Proxy(ProxyError),
    /// From the SP engine.
    Engine(EngineError),
    /// From SQL parsing at the client.
    Sql(SqlError),
    /// From the storage layer.
    Storage(StorageError),
    /// Incorrect API usage (e.g. querying before uploading).
    Usage {
        /// Description of the misuse.
        detail: String,
    },
}

impl fmt::Display for SdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdbError::Proxy(e) => write!(f, "proxy error: {e}"),
            SdbError::Engine(e) => write!(f, "engine error: {e}"),
            SdbError::Sql(e) => write!(f, "SQL error: {e}"),
            SdbError::Storage(e) => write!(f, "storage error: {e}"),
            SdbError::Usage { detail } => write!(f, "usage error: {detail}"),
        }
    }
}

impl std::error::Error for SdbError {}

impl From<ProxyError> for SdbError {
    fn from(e: ProxyError) -> Self {
        SdbError::Proxy(e)
    }
}
impl From<EngineError> for SdbError {
    fn from(e: EngineError) -> Self {
        SdbError::Engine(e)
    }
}
impl From<SqlError> for SdbError {
    fn from(e: SqlError) -> Self {
        SdbError::Sql(e)
    }
}
impl From<StorageError> for SdbError {
    fn from(e: StorageError) -> Self {
        SdbError::Storage(e)
    }
}

/// Client configuration.
#[derive(Debug, Clone, Copy)]
pub struct SdbConfig {
    /// Cryptographic parameter profile.
    pub key_config: KeyConfig,
    /// Seed for deterministic key generation (tests, benches, examples).
    pub seed: u64,
    /// Default upload options.
    pub upload: UploadOptions,
}

impl SdbConfig {
    /// Fast profile for tests (small modulus, still an honest instantiation).
    pub fn test_profile() -> Self {
        SdbConfig {
            key_config: KeyConfig::TEST,
            seed: 0x5db,
            upload: UploadOptions::default(),
        }
    }

    /// Mid-size profile for examples and benches (512-bit modulus).
    pub fn balanced_profile() -> Self {
        SdbConfig {
            key_config: KeyConfig::BALANCED,
            seed: 0x5db,
            upload: UploadOptions::default(),
        }
    }

    /// The paper's parameters (2048-bit modulus). Slow: key generation alone takes
    /// seconds; use for fidelity runs, not for tests.
    pub fn paper_profile() -> Self {
        SdbConfig {
            key_config: KeyConfig::PAPER,
            seed: 0x5db,
            upload: UploadOptions::default(),
        }
    }

    /// Enables deterministic equality tags for sensitive numeric columns
    /// (ablation E7).
    pub fn with_deterministic_tags(mut self) -> Self {
        self.upload.deterministic_tags = true;
        self
    }

    /// Sets the number of upload encryption threads.
    pub fn with_upload_threads(mut self, threads: usize) -> Self {
        self.upload.threads = threads;
        self
    }
}

/// The result of one query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The decrypted, post-processed result rows.
    pub batch: RecordBatch,
    /// The rewritten SQL that actually executed at the SP (paper Figure 3).
    pub rewritten_sql: String,
    /// Client-side cost breakdown (parse + rewrite + decrypt).
    pub client_cost: ClientCost,
    /// Server-side execution statistics.
    pub server_stats: ExecutionStats,
    /// Bytes sent to the SP for this query (rewritten SQL).
    pub bytes_to_sp: usize,
    /// Bytes received from the SP for this query (encrypted result).
    pub bytes_from_sp: usize,
    /// The per-operator execution trace, when tracing was on for this query
    /// — rides along so the serving layer's slow-query log can capture it.
    pub trace: Option<sdb_engine::trace::TraceReport>,
}

impl QueryResult {
    /// The result rows as value vectors.
    pub fn rows(&self) -> Vec<Vec<Value>> {
        self.batch.rows().collect()
    }

    /// The result column names.
    pub fn column_names(&self) -> Vec<String> {
        self.batch
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect()
    }

    /// Total client time (parse + rewrite + decrypt).
    pub fn client_time(&self) -> std::time::Duration {
        self.client_cost.total()
    }
}

/// The end-to-end SDB client.
pub struct SdbClient {
    config: SdbConfig,
    proxy: SdbProxy,
    engine: SpEngine,
    /// DO-side plaintext staging area for tables defined but not yet uploaded.
    staging: Catalog,
    uploaded: BTreeSet<String>,
    wire: WireLog,
    auditor: MemoryAuditor,
}

impl SdbClient {
    /// Creates a client with fresh key material.
    pub fn new(config: SdbConfig) -> Result<Self> {
        Ok(SdbClient {
            proxy: SdbProxy::new(config.key_config, config.seed)?,
            engine: SpEngine::new(),
            staging: Catalog::new(),
            uploaded: BTreeSet::new(),
            wire: WireLog::new(),
            auditor: MemoryAuditor::new(),
            config,
        })
    }

    /// Executes a DDL/DML statement on the DO side: `CREATE TABLE … (… SENSITIVE …)`
    /// creates a staging table; `INSERT` adds rows to the staging table (or, once
    /// the table has been uploaded, encrypts them and appends at the SP).
    pub fn execute(&mut self, sql: &str) -> Result<()> {
        match parse_sql(sql)? {
            Statement::CreateTable { name, columns } => {
                let schema = Schema::new(
                    columns
                        .iter()
                        .map(|c| ColumnDef {
                            name: c.name.clone(),
                            data_type: c.data_type,
                            sensitivity: if c.sensitive {
                                Sensitivity::Sensitive
                            } else {
                                Sensitivity::Public
                            },
                        })
                        .collect(),
                );
                self.staging.create_table(&name, schema)?;
                Ok(())
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                let logical_rows = self.literal_rows(&table, &columns, &rows)?;
                if self.uploaded.contains(&table.to_ascii_lowercase()) {
                    // New sensitive values become audit needles too (values land in
                    // schema order, so sensitivity is positional).
                    let sensitive_positions: Vec<usize> = self
                        .proxy
                        .table_metas()
                        .get(&table.to_ascii_lowercase())
                        .map(|meta| {
                            meta.columns
                                .iter()
                                .enumerate()
                                .filter(|(_, c)| c.sensitive)
                                .map(|(i, _)| i)
                                .collect()
                        })
                        .unwrap_or_default();
                    for row in &logical_rows {
                        for &position in &sensitive_positions {
                            self.auditor.register_value(&row[position]);
                        }
                    }
                    // Encrypt at the proxy and append at the SP.
                    let physical = self.proxy.encrypt_rows(&table, &logical_rows)?;
                    let handle = self.engine.catalog().table(&table)?;
                    let mut guard = handle.write();
                    for row in physical {
                        guard.insert_row(row)?;
                    }
                    Ok(())
                } else {
                    let handle = self.staging.table(&table)?;
                    let mut guard = handle.write();
                    for row in logical_rows {
                        guard.insert_row(row)?;
                    }
                    Ok(())
                }
            }
            Statement::Query(_) => Err(SdbError::Usage {
                detail: "use query() for SELECT statements".into(),
            }),
            Statement::Analyze { table } => {
                match table {
                    Some(table) => self.analyze(&table)?,
                    None => {
                        for table in self.uploaded_tables() {
                            self.analyze(&table)?;
                        }
                    }
                }
                Ok(())
            }
            Statement::Explain(_) => Err(SdbError::Usage {
                detail: "use explain() for EXPLAIN statements".into(),
            }),
            Statement::ExplainAnalyze(_) => Err(SdbError::Usage {
                detail: "use explain_analyze() for EXPLAIN ANALYZE statements".into(),
            }),
        }
    }

    /// Refreshes the SP-side optimizer statistics for one uploaded table
    /// (upload itself analyzes automatically; call this after incremental
    /// INSERTs when estimates drift).
    pub fn analyze(&self, table: &str) -> Result<()> {
        let name = table.to_ascii_lowercase();
        if !self.uploaded.contains(&name) {
            return Err(SdbError::Usage {
                detail: format!("table {name} is not uploaded; upload before ANALYZE"),
            });
        }
        self.engine.analyze(&name)?;
        Ok(())
    }

    /// Explains a query end to end: rewrites it at the proxy (exactly as
    /// [`SdbClient::query`] would) and renders the SP's chosen physical plan
    /// with per-node row and cost estimates — including the oracle round
    /// trips the rewritten predicates will pay. Nothing executes.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let rewritten = self.proxy.rewrite(sql)?;
        let mut lines = vec![format!("rewritten: {}", rewritten.server_sql)];
        lines.extend(self.engine.explain_sql(&rewritten.server_sql)?);
        Ok(lines.join("\n"))
    }

    /// Explains *and executes* a query end to end (`EXPLAIN ANALYZE`):
    /// rewrites it at the proxy exactly as [`SdbClient::query`] would, runs
    /// it at the SP with per-operator tracing forced on, and renders the
    /// physical tree annotated with actual rows, wall time,
    /// estimate-vs-actual deviation and oracle / spill attribution. The
    /// query's encrypted result rows are discarded; only the annotated plan
    /// comes back.
    pub fn explain_analyze(&self, sql: &str) -> Result<String> {
        let rewritten = self.proxy.rewrite(sql)?;
        let oracle = RecordingOracle::new(self.proxy.oracle(&rewritten), self.wire.clone());
        self.engine.connect_oracle(Arc::new(oracle));
        let output = self
            .engine
            .execute_sql(&format!("EXPLAIN ANALYZE {}", rewritten.server_sql));
        self.engine.disconnect_oracle();
        let output = output?;

        let mut lines = vec![format!("rewritten: {}", rewritten.server_sql)];
        for row in output.batch.rows() {
            lines.push(row[0].as_str()?.to_string());
        }
        Ok(lines.join("\n"))
    }

    /// Loads an already-built plaintext table into the staging area (bulk loading
    /// path used by the workload generator and the benches).
    pub fn stage_table(&mut self, table: Table) -> Result<()> {
        self.staging.register_table(table)?;
        Ok(())
    }

    /// Encrypts and uploads one staged table to the SP (demo step 1).
    pub fn upload(&mut self, table: &str) -> Result<sdb_proxy::encryptor::UploadStats> {
        let name = table.to_ascii_lowercase();
        if self.uploaded.contains(&name) {
            return Err(SdbError::Usage {
                detail: format!("table {name} is already uploaded"),
            });
        }
        let staged = self.staging.table(&name)?;
        let plaintext = staged.read().clone();
        self.auditor.register_table(&plaintext);

        let upload = self.proxy.upload_table(&plaintext, self.config.upload)?;
        let payload = serde_json::to_string(&upload.table).unwrap_or_default();
        self.wire.record(WireMessageKind::Upload, payload);
        self.engine.load_table(upload.table)?;
        self.uploaded.insert(name);
        Ok(upload.stats)
    }

    /// Uploads every staged table that has not been uploaded yet.
    pub fn upload_all(&mut self) -> Result<()> {
        for name in self.staging.table_names() {
            if !self.uploaded.contains(&name) {
                self.upload(&name)?;
            }
        }
        Ok(())
    }

    /// Runs a SELECT query end to end: rewrite at the proxy, execute at the SP,
    /// decrypt and post-process at the proxy.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        let rewritten = self.proxy.rewrite(sql)?;
        self.run_rewritten(&rewritten)
    }

    /// Runs a SELECT query end to end with per-query execution overrides
    /// (budget, pager lease, cancellation token, parallelism, tracing) — the
    /// serving layer's secure-query path. A cancelled token surfaces as an
    /// engine error wrapping
    /// [`sdb_storage::StorageError::Cancelled`].
    pub fn query_with(&self, sql: &str, opts: &QueryOptions) -> Result<QueryResult> {
        let rewritten = self.proxy.rewrite(sql)?;
        self.run_rewritten_with(&rewritten, opts)
    }

    /// Rewrites a query without executing it (to inspect the rewritten SQL, as the
    /// demo's query view does).
    pub fn rewrite_only(&self, sql: &str) -> Result<RewrittenQuery> {
        Ok(self.proxy.rewrite(sql)?)
    }

    /// Executes an already-rewritten query.
    pub fn run_rewritten(&self, rewritten: &RewrittenQuery) -> Result<QueryResult> {
        self.run_rewritten_with(rewritten, &QueryOptions::default())
    }

    /// Executes an already-rewritten query with per-query overrides.
    pub fn run_rewritten_with(
        &self,
        rewritten: &RewrittenQuery,
        opts: &QueryOptions,
    ) -> Result<QueryResult> {
        let bytes_to_sp = rewritten.server_sql.len();
        self.wire
            .record(WireMessageKind::QueryToSp, rewritten.server_sql.clone());

        // The oracle travels inside the per-query options rather than the
        // engine-wide slot, so concurrent sessions sharing this client can
        // never swap each other's oracle mid-query.
        let oracle = RecordingOracle::new(self.proxy.oracle(rewritten), self.wire.clone());
        let opts = opts.clone().with_oracle(Arc::new(oracle));
        let output = self.engine.execute_sql_with(&rewritten.server_sql, &opts)?;

        let result_payload = serde_json::to_string(&output.batch).unwrap_or_default();
        let bytes_from_sp = result_payload.len();
        self.wire
            .record(WireMessageKind::ResultToProxy, result_payload);

        let (batch, decrypt_time) = self.proxy.decrypt_result(rewritten, &output.batch)?;
        Ok(QueryResult {
            batch,
            rewritten_sql: rewritten.server_sql.clone(),
            client_cost: ClientCost {
                parse: rewritten.parse_time,
                rewrite: rewritten.rewrite_time,
                decrypt: decrypt_time,
            },
            server_stats: output.stats,
            bytes_to_sp,
            bytes_from_sp,
            trace: output.trace,
        })
    }

    /// Runs the adversarial audit (experiment E4): scans everything the SP holds or
    /// saw on the wire for the sensitive plaintexts uploaded so far.
    pub fn audit(&self) -> AuditReport {
        let catalog_snapshot =
            sdb_storage::persist::CatalogSnapshot::capture(self.engine.catalog());
        let sp_storage = serde_json::to_string(&catalog_snapshot).unwrap_or_default();
        let wire_traffic = self.wire.concatenated_payloads();
        self.auditor.audit([
            ("sp-storage", sp_storage.as_str()),
            ("wire-traffic", wire_traffic.as_str()),
        ])
    }

    /// Size of the proxy's key store in bytes (demo step 1).
    pub fn keystore_size_bytes(&self) -> usize {
        self.proxy.keystore().approx_size_bytes()
    }

    /// Approximate size of the data stored at the SP.
    pub fn sp_storage_size_bytes(&self) -> usize {
        self.engine.catalog().approx_size_bytes()
    }

    /// The wire log (byte accounting, audit haystack).
    pub fn wire(&self) -> &WireLog {
        &self.wire
    }

    /// The SP engine (for benches and the baseline comparison).
    pub fn engine(&self) -> &SpEngine {
        &self.engine
    }

    /// The DO proxy.
    pub fn proxy(&self) -> &SdbProxy {
        &self.proxy
    }

    /// Names of uploaded tables.
    pub fn uploaded_tables(&self) -> Vec<String> {
        self.uploaded.iter().cloned().collect()
    }

    // ------------------------------------------------------------------

    fn literal_rows(
        &self,
        table: &str,
        columns: &[String],
        rows: &[Vec<Expr>],
    ) -> Result<Vec<Vec<Value>>> {
        let schema = if self.uploaded.contains(&table.to_ascii_lowercase()) {
            // Logical schema from the proxy's metadata.
            let meta = self
                .proxy
                .table_metas()
                .get(&table.to_ascii_lowercase())
                .ok_or_else(|| SdbError::Usage {
                    detail: format!("unknown table {table}"),
                })?;
            Schema::new(
                meta.columns
                    .iter()
                    .map(|c| ColumnDef {
                        name: c.name.clone(),
                        data_type: c.data_type,
                        sensitivity: if c.sensitive {
                            Sensitivity::Sensitive
                        } else {
                            Sensitivity::Public
                        },
                    })
                    .collect(),
            )
        } else {
            self.staging.table(table)?.read().schema().clone()
        };

        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            let mut values = vec![Value::Null; schema.len()];
            if columns.is_empty() {
                if row.len() != schema.len() {
                    return Err(SdbError::Storage(StorageError::ArityMismatch {
                        expected: schema.len(),
                        found: row.len(),
                    }));
                }
                for (i, expr) in row.iter().enumerate() {
                    values[i] = literal_value(expr)?;
                }
            } else {
                if columns.len() != row.len() {
                    return Err(SdbError::Storage(StorageError::ArityMismatch {
                        expected: columns.len(),
                        found: row.len(),
                    }));
                }
                for (column, expr) in columns.iter().zip(row.iter()) {
                    let idx = schema.index_of(column)?;
                    values[idx] = literal_value(expr)?;
                }
            }
            out.push(values);
        }
        Ok(out)
    }
}

/// Converts a literal INSERT expression into a runtime value.
fn literal_value(expr: &Expr) -> Result<Value> {
    match expr {
        Expr::Literal(lit) => Ok(match lit {
            Literal::Null => Value::Null,
            Literal::Int(v) => Value::Int(*v),
            Literal::Decimal { units, scale } => Value::Decimal {
                units: *units,
                scale: *scale,
            },
            Literal::Str(s) => Value::Str(s.clone()),
            Literal::Date(d) => Value::Date(*d),
            Literal::Bool(b) => Value::Bool(*b),
        }),
        Expr::Unary {
            op: UnaryOp::Neg,
            expr,
        } => match literal_value(expr)? {
            Value::Int(v) => Ok(Value::Int(-v)),
            Value::Decimal { units, scale } => Ok(Value::Decimal {
                units: -units,
                scale,
            }),
            other => Err(SdbError::Usage {
                detail: format!("cannot negate {other:?} in INSERT"),
            }),
        },
        other => Err(SdbError::Usage {
            detail: format!("INSERT values must be literals, found {other}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the standard employees/departments fixture on both an SDB client
    /// (salary, bonus, hired and codename sensitive) and a plaintext engine, so
    /// tests can compare answers.
    fn fixture() -> (SdbClient, SpEngine) {
        let ddl_sdb = [
            "CREATE TABLE emp (id INT, name VARCHAR(20), dept_id INT, salary DECIMAL(10,2) SENSITIVE, bonus INT SENSITIVE, hired DATE SENSITIVE, codename VARCHAR(30) SENSITIVE)",
            "CREATE TABLE dept (id INT, dept_name VARCHAR(20), budget INT SENSITIVE)",
        ];
        let ddl_plain = [
            "CREATE TABLE emp (id INT, name VARCHAR(20), dept_id INT, salary DECIMAL(10,2), bonus INT, hired DATE, codename VARCHAR(30))",
            "CREATE TABLE dept (id INT, dept_name VARCHAR(20), budget INT)",
        ];
        let inserts = [
            "INSERT INTO emp VALUES \
             (1, 'ann', 10, 1000.00, 50, DATE '2015-01-10', 'falcon'), \
             (2, 'bob', 10, 2500.50, 75, DATE '2016-03-20', 'osprey'), \
             (3, 'cat', 20, 1800.25, 20, DATE '2014-07-01', 'falcon'), \
             (4, 'dan', 20, 3200.00, 95, DATE '2018-11-05', 'kestrel'), \
             (5, 'eve', 30, 2100.75, 60, DATE '2017-05-15', 'osprey')",
            "INSERT INTO dept VALUES (10, 'eng', 500000), (20, 'ops', 350000), (40, 'hr', 120000)",
        ];

        let mut client = SdbClient::new(SdbConfig::test_profile()).unwrap();
        for sql in ddl_sdb {
            client.execute(sql).unwrap();
        }
        for sql in inserts {
            client.execute(sql).unwrap();
        }
        client.upload_all().unwrap();

        let plain = SpEngine::new();
        for sql in ddl_plain.iter().chain(inserts.iter()) {
            plain.execute_sql(sql).unwrap();
        }
        (client, plain)
    }

    /// Compares the SDB answer for `sql` against the plaintext engine's answer,
    /// row by row (numerics compared at a common scale).
    fn assert_same_answer(client: &SdbClient, plain: &SpEngine, sql: &str) {
        let secure = client
            .query(sql)
            .unwrap_or_else(|e| panic!("SDB failed on {sql}: {e}"));
        let reference = plain
            .execute_sql(sql)
            .unwrap_or_else(|e| panic!("plaintext failed on {sql}: {e}"));
        let got = render_rows(&secure.batch);
        let want = render_rows(&reference.batch);
        assert_eq!(
            got, want,
            "answers differ for {sql}\nrewritten: {}",
            secure.rewritten_sql
        );
    }

    fn render_rows(batch: &RecordBatch) -> Vec<Vec<String>> {
        batch
            .rows()
            .map(|row| row.iter().map(canonical).collect())
            .collect()
    }

    fn canonical(v: &Value) -> String {
        match v {
            Value::Int(_) | Value::Decimal { .. } | Value::Bool(_) => v
                .as_scaled_i128(6)
                .map(|x| x.to_string())
                .unwrap_or_else(|_| v.render()),
            other => other.render(),
        }
    }

    #[test]
    fn projection_arithmetic_matches_plaintext() {
        let (client, plain) = fixture();
        for sql in [
            "SELECT id, salary FROM emp ORDER BY id",
            "SELECT id, salary * bonus AS product FROM emp ORDER BY id",
            "SELECT id, salary + bonus AS total FROM emp ORDER BY id",
            "SELECT id, salary - bonus AS diff FROM emp ORDER BY id",
            "SELECT id, salary * 2 AS doubled, bonus + 10 AS bumped FROM emp ORDER BY id",
            "SELECT id, salary * dept_id AS weighted FROM emp ORDER BY id",
            "SELECT id, 100 - bonus AS remaining FROM emp ORDER BY id",
        ] {
            assert_same_answer(&client, &plain, sql);
        }
    }

    #[test]
    fn filters_on_sensitive_columns_match_plaintext() {
        let (client, plain) = fixture();
        for sql in [
            "SELECT id FROM emp WHERE salary > 2000 ORDER BY id",
            "SELECT id FROM emp WHERE salary <= 1800.25 ORDER BY id",
            "SELECT id FROM emp WHERE bonus = 75 ORDER BY id",
            "SELECT id FROM emp WHERE salary BETWEEN 1500 AND 3000 ORDER BY id",
            "SELECT id FROM emp WHERE bonus IN (50, 95) ORDER BY id",
            "SELECT id FROM emp WHERE salary > 1000 AND bonus < 80 ORDER BY id",
            "SELECT id FROM emp WHERE salary > 3000 OR bonus = 20 ORDER BY id",
            "SELECT id FROM emp WHERE NOT (salary > 2000) ORDER BY id",
            "SELECT id FROM emp WHERE salary - bonus > 2000 ORDER BY id",
            "SELECT id FROM emp WHERE hired >= DATE '2016-01-01' ORDER BY id",
            "SELECT id FROM emp WHERE salary > bonus ORDER BY id",
            "SELECT id, name FROM emp WHERE codename = 'falcon' ORDER BY id",
            "SELECT id FROM emp WHERE codename <> 'osprey' ORDER BY id",
        ] {
            assert_same_answer(&client, &plain, sql);
        }
    }

    #[test]
    fn aggregates_match_plaintext() {
        let (client, plain) = fixture();
        for sql in [
            "SELECT SUM(salary) AS total FROM emp",
            "SELECT COUNT(*) AS n, COUNT(bonus) AS nb FROM emp",
            "SELECT AVG(bonus) AS mean FROM emp",
            "SELECT MIN(salary) AS lo, MAX(salary) AS hi FROM emp",
            "SELECT SUM(salary * bonus) AS weighted FROM emp",
            "SELECT SUM(salary) + SUM(bonus) AS combined FROM emp",
            "SELECT dept_id, SUM(salary) AS total FROM emp GROUP BY dept_id ORDER BY dept_id",
            "SELECT dept_id, COUNT(*) AS n, AVG(salary) AS mean FROM emp GROUP BY dept_id ORDER BY dept_id",
            "SELECT dept_id, MAX(bonus) AS top FROM emp GROUP BY dept_id ORDER BY dept_id",
            "SELECT dept_id, SUM(salary) AS total FROM emp GROUP BY dept_id HAVING SUM(salary) > 3000 ORDER BY dept_id",
            "SELECT dept_id, SUM(salary) AS total FROM emp WHERE bonus >= 50 GROUP BY dept_id ORDER BY dept_id",
        ] {
            assert_same_answer(&client, &plain, sql);
        }
    }

    #[test]
    fn group_by_sensitive_keys_matches_plaintext() {
        let (client, plain) = fixture();
        for sql in [
            "SELECT bonus, COUNT(*) AS n FROM emp GROUP BY bonus ORDER BY bonus",
            "SELECT codename, COUNT(*) AS n FROM emp GROUP BY codename ORDER BY codename",
            "SELECT hired, COUNT(*) AS n FROM emp GROUP BY hired ORDER BY hired",
        ] {
            assert_same_answer(&client, &plain, sql);
        }
    }

    #[test]
    fn joins_match_plaintext() {
        let (client, plain) = fixture();
        for sql in [
            "SELECT e.name, d.dept_name FROM emp e JOIN dept d ON e.dept_id = d.id ORDER BY e.id",
            "SELECT e.name, d.dept_name FROM emp e JOIN dept d ON e.dept_id = d.id WHERE e.salary > 1500 ORDER BY e.id",
            "SELECT d.dept_name, SUM(e.salary) AS payroll FROM emp e JOIN dept d ON e.dept_id = d.id GROUP BY d.dept_name ORDER BY d.dept_name",
            "SELECT e.id, e.salary FROM emp e JOIN dept d ON e.dept_id = d.id WHERE d.budget > 200000 ORDER BY e.id",
        ] {
            assert_same_answer(&client, &plain, sql);
        }
    }

    #[test]
    fn order_limit_distinct_on_sensitive_matches_plaintext() {
        let (client, plain) = fixture();
        for sql in [
            "SELECT id, salary FROM emp ORDER BY salary DESC LIMIT 3",
            "SELECT id, salary FROM emp ORDER BY salary",
            "SELECT DISTINCT codename FROM emp ORDER BY codename",
            "SELECT DISTINCT bonus FROM emp ORDER BY bonus",
        ] {
            assert_same_answer(&client, &plain, sql);
        }
    }

    #[test]
    fn sensitive_varchar_projection_roundtrips() {
        let (client, _) = fixture();
        let result = client
            .query("SELECT id, codename FROM emp WHERE id = 1")
            .unwrap();
        assert_eq!(result.rows()[0][1], Value::Str("falcon".into()));
    }

    #[test]
    fn insensitive_query_passes_through_and_is_fast_path() {
        let (client, plain) = fixture();
        assert_same_answer(
            &client,
            &plain,
            "SELECT id, name FROM emp WHERE id > 2 ORDER BY id",
        );
        let rewritten = client
            .rewrite_only("SELECT id, name FROM emp WHERE id > 2 ORDER BY id")
            .unwrap();
        assert!(rewritten.plan.ingredients.is_empty());
    }

    #[test]
    fn rewritten_sql_contains_no_plaintext_and_audit_is_clean() {
        let (client, _) = fixture();
        let queries = [
            "SELECT id, salary * bonus AS c FROM emp WHERE salary > 2000",
            "SELECT dept_id, SUM(salary) AS t FROM emp GROUP BY dept_id",
            "SELECT codename, COUNT(*) AS n FROM emp GROUP BY codename",
            "SELECT e.name FROM emp e JOIN dept d ON e.dept_id = d.id WHERE d.budget > 200000",
        ];
        for sql in queries {
            let result = client.query(sql).unwrap();
            // The rewritten SQL itself must not contain any sensitive literal.
            assert!(!result.rewritten_sql.contains("2500.50"));
            assert!(!result.rewritten_sql.contains("falcon"));
        }
        // Demo step 3: nothing the SP stores or saw on the wire contains plaintext.
        let report = client.audit();
        assert!(report.needles_checked > 0);
        assert!(
            report.is_clean(),
            "sensitive plaintext leaked: {:?}",
            report.findings
        );
    }

    #[test]
    fn cost_breakdown_is_reported() {
        let (client, _) = fixture();
        let result = client
            .query(
                "SELECT dept_id, SUM(salary) AS total FROM emp WHERE bonus > 30 GROUP BY dept_id",
            )
            .unwrap();
        assert!(result.server_stats.oracle_round_trips >= 1);
        assert!(result.bytes_to_sp > 0);
        assert!(result.bytes_from_sp > 0);
        assert!(result.client_time().as_nanos() > 0);
        assert!(result.server_stats.total_time >= result.server_stats.oracle_time);
    }

    #[test]
    fn insert_after_upload_encrypts_new_rows() {
        let (mut client, plain) = fixture();
        let insert =
            "INSERT INTO emp VALUES (6, 'fred', 30, 999.99, 5, DATE '2020-02-02', 'falcon')";
        client.execute(insert).unwrap();
        plain.execute_sql(insert).unwrap();
        assert_same_answer(&client, &plain, "SELECT id, salary FROM emp ORDER BY id");
        assert_same_answer(
            &client,
            &plain,
            "SELECT codename, COUNT(*) AS n FROM emp GROUP BY codename ORDER BY codename",
        );
        // The audit stays clean even after the incremental insert.
        assert!(client.audit().is_clean());
    }

    #[test]
    fn keystore_is_small_compared_to_data() {
        let (client, _) = fixture();
        assert!(client.keystore_size_bytes() > 0);
        assert!(client.sp_storage_size_bytes() > 0);
        // The key store holds a handful of numbers per column — orders of magnitude
        // smaller than the outsourced data is the qualitative claim; at this tiny
        // scale just check it does not dominate.
        assert!(client.keystore_size_bytes() < 10 * client.sp_storage_size_bytes());
    }

    #[test]
    fn explain_and_analyze_roundtrip() {
        let (mut client, _) = fixture();
        // Upload auto-analyzed: stats exist for the encrypted tables at the SP.
        assert!(client.engine().catalog().table_stats("emp").is_some());

        let text = client
            .explain(
                "SELECT e.name, d.dept_name FROM emp e \
                 JOIN dept d ON e.dept_id = d.id WHERE e.salary > 2000",
            )
            .unwrap();
        assert!(text.contains("rewritten:"), "{text}");
        assert!(text.contains("physical plan"), "{text}");
        assert!(text.contains("rows≈"), "{text}");
        assert!(
            text.contains("trips="),
            "oracle round trips must be priced: {text}"
        );

        // ANALYZE refreshes after incremental inserts; unknown tables fail.
        client
            .execute("INSERT INTO emp VALUES (7, 'gil', 10, 1.00, 1, DATE '2021-01-01', 'kestrel')")
            .unwrap();
        client.analyze("emp").unwrap();
        assert_eq!(
            client
                .engine()
                .catalog()
                .table_stats("emp")
                .unwrap()
                .row_count,
            6
        );
        client.execute("ANALYZE").unwrap();
        assert!(client.analyze("nope").is_err());
        assert!(matches!(
            client.execute("EXPLAIN SELECT id FROM emp"),
            Err(SdbError::Usage { .. })
        ));
    }

    #[test]
    fn explain_analyze_reports_actuals_with_oracle_attribution() {
        let (mut client, _) = fixture();
        let text = client
            .explain_analyze(
                "SELECT e.name, d.dept_name FROM emp e \
                 JOIN dept d ON e.dept_id = d.id WHERE e.salary > 2000",
            )
            .unwrap();
        assert!(text.contains("rewritten:"), "{text}");
        assert!(text.contains("analyzed plan ("), "{text}");
        assert!(text.contains(" rows="), "actual rows must render: {text}");
        assert!(text.contains(" time="), "wall time must render: {text}");
        assert!(
            text.contains("(self "),
            "exclusive share must render: {text}"
        );
        assert!(
            text.contains("oracle[trips="),
            "the secure filter's round trips must be attributed: {text}"
        );
        assert!(
            text.contains("est\u{2248}"),
            "upload auto-analyzes, so estimates must render: {text}"
        );
        // EXPLAIN ANALYZE through execute() points at the dedicated method.
        assert!(matches!(
            client.execute("EXPLAIN ANALYZE SELECT id FROM emp"),
            Err(SdbError::Usage { .. })
        ));
    }

    #[test]
    fn usage_errors_are_clear() {
        let mut client = SdbClient::new(SdbConfig::test_profile()).unwrap();
        assert!(matches!(
            client.execute("SELECT 1 FROM t"),
            Err(SdbError::Usage { .. })
        ));
        client.execute("CREATE TABLE t (a INT SENSITIVE)").unwrap();
        client.execute("INSERT INTO t VALUES (1)").unwrap();
        client.upload("t").unwrap();
        assert!(client.upload("t").is_err());
        assert!(client.query("SELECT missing FROM t").is_err());
    }

    #[test]
    fn deterministic_tag_mode_also_answers_correctly() {
        let mut client =
            SdbClient::new(SdbConfig::test_profile().with_deterministic_tags()).unwrap();
        client
            .execute("CREATE TABLE t (id INT, v INT SENSITIVE)")
            .unwrap();
        client
            .execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 10)")
            .unwrap();
        client.upload_all().unwrap();
        let result = client
            .query("SELECT v, COUNT(*) AS n FROM t GROUP BY v ORDER BY v")
            .unwrap();
        assert_eq!(result.rows().len(), 2);
        assert_eq!(result.rows()[0][0], Value::Int(10));
        assert_eq!(result.rows()[0][1], Value::Int(2));
    }
}
