//! The explicit DO ↔ SP boundary.
//!
//! The paper runs the proxy and the SP on two machines; this reproduction keeps
//! them in one process but forces every exchange through this module so that
//! (1) the cost model can count bytes and round trips, and (2) the adversarial
//! audit can inspect exactly what a network or SP attacker would see (QR
//! knowledge, paper §2.3). Oracle traffic is recorded by wrapping the proxy's
//! oracle in [`RecordingOracle`].

use std::sync::Arc;

use parking_lot::Mutex;
use serde::Serialize;

use sdb_engine::{OracleRequest, OracleResult, SdbOracle};

/// One message crossing the DO ↔ SP boundary.
#[derive(Debug, Clone, Serialize)]
pub struct WireMessage {
    /// Direction and kind of the message.
    pub kind: WireMessageKind,
    /// Serialised payload (what an eavesdropper sees).
    pub payload: String,
}

/// Kinds of wire messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum WireMessageKind {
    /// Rewritten SQL text sent from the proxy to the SP.
    QueryToSp,
    /// Encrypted result batch sent from the SP to the proxy.
    ResultToProxy,
    /// Oracle request (SP → proxy).
    OracleRequest,
    /// Oracle response (proxy → SP).
    OracleResponse,
    /// Encrypted table upload (proxy → SP).
    Upload,
    /// Framed serving-layer request (client → server session manager).
    SessionRequest,
    /// Framed serving-layer response (server session manager → client).
    SessionResponse,
}

/// Length-prefixes `payload` as one wire frame: a 4-byte big-endian length
/// followed by the payload bytes. This is the framing the serving layer
/// speaks over byte streams; pairing with [`decode_frame`] round-trips any
/// payload.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Decodes one length-prefixed frame from the front of `bytes`, returning
/// the payload and the total bytes consumed. Errors (with a description) on
/// a truncated header or body — the caller should read more bytes and retry.
pub fn decode_frame(bytes: &[u8]) -> Result<(&[u8], usize), String> {
    if bytes.len() < 4 {
        return Err(format!("frame header needs 4 bytes, have {}", bytes.len()));
    }
    let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    let total = 4 + len;
    if bytes.len() < total {
        return Err(format!(
            "frame body needs {len} bytes, have {}",
            bytes.len() - 4
        ));
    }
    Ok((&bytes[4..total], total))
}

/// A log of every message that crossed the boundary.
#[derive(Debug, Default, Clone)]
pub struct WireLog {
    messages: Arc<Mutex<Vec<WireMessage>>>,
}

impl WireLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        WireLog::default()
    }

    /// Records a message.
    pub fn record(&self, kind: WireMessageKind, payload: String) {
        self.messages.lock().push(WireMessage { kind, payload });
    }

    /// All recorded messages.
    pub fn messages(&self) -> Vec<WireMessage> {
        self.messages.lock().clone()
    }

    /// Total bytes recorded for a message kind.
    pub fn bytes_of_kind(&self, kind: WireMessageKind) -> usize {
        self.messages
            .lock()
            .iter()
            .filter(|m| m.kind == kind)
            .map(|m| m.payload.len())
            .sum()
    }

    /// Number of messages of a kind.
    pub fn count_of_kind(&self, kind: WireMessageKind) -> usize {
        self.messages
            .lock()
            .iter()
            .filter(|m| m.kind == kind)
            .count()
    }

    /// Total bytes across all messages.
    pub fn total_bytes(&self) -> usize {
        self.messages.lock().iter().map(|m| m.payload.len()).sum()
    }

    /// Concatenation of every payload (haystack for the audit).
    pub fn concatenated_payloads(&self) -> String {
        self.messages
            .lock()
            .iter()
            .map(|m| m.payload.as_str())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Clears the log.
    pub fn clear(&self) {
        self.messages.lock().clear();
    }
}

/// Wraps the proxy's oracle so that every request/response crossing the boundary is
/// recorded in the wire log.
pub struct RecordingOracle {
    inner: Arc<dyn SdbOracle>,
    log: WireLog,
}

impl RecordingOracle {
    /// Wraps `inner`, recording traffic into `log`.
    pub fn new(inner: Arc<dyn SdbOracle>, log: WireLog) -> Self {
        RecordingOracle { inner, log }
    }
}

impl SdbOracle for RecordingOracle {
    fn resolve(&self, request: OracleRequest) -> OracleResult {
        let payload = serde_json::to_string(&request).unwrap_or_default();
        self.log.record(WireMessageKind::OracleRequest, payload);
        let response = self.inner.resolve(request);
        if let Ok(response) = &response {
            let payload = serde_json::to_string(response).unwrap_or_default();
            self.log.record(WireMessageKind::OracleResponse, payload);
        }
        response
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdb_engine::NullOracle;

    #[test]
    fn log_accounts_bytes_and_kinds() {
        let log = WireLog::new();
        log.record(WireMessageKind::QueryToSp, "SELECT 1".to_string());
        log.record(WireMessageKind::ResultToProxy, "{}".to_string());
        assert_eq!(log.count_of_kind(WireMessageKind::QueryToSp), 1);
        assert_eq!(log.bytes_of_kind(WireMessageKind::QueryToSp), 8);
        assert_eq!(log.total_bytes(), 10);
        assert!(log.concatenated_payloads().contains("SELECT 1"));
        log.clear();
        assert_eq!(log.total_bytes(), 0);
    }

    #[test]
    fn frames_round_trip_and_report_truncation() {
        let payload = br#"{"Execute":{"session":3,"sql":"SELECT 1"}}"#;
        let frame = encode_frame(payload);
        assert_eq!(frame.len(), payload.len() + 4);
        let (decoded, consumed) = decode_frame(&frame).unwrap();
        assert_eq!(decoded, payload);
        assert_eq!(consumed, frame.len());

        // Back-to-back frames decode in sequence.
        let mut two = frame.clone();
        two.extend_from_slice(&encode_frame(b"x"));
        let (first, used) = decode_frame(&two).unwrap();
        assert_eq!(first, payload);
        let (second, _) = decode_frame(&two[used..]).unwrap();
        assert_eq!(second, b"x");

        // Truncations are reported, not panics.
        assert!(decode_frame(&frame[..2]).is_err());
        assert!(decode_frame(&frame[..frame.len() - 1]).is_err());
        let empty_frame = encode_frame(b"");
        let (empty, consumed) = decode_frame(&empty_frame).unwrap();
        assert!(empty.is_empty());
        assert_eq!(consumed, 4);
    }

    #[test]
    fn recording_oracle_logs_requests() {
        let log = WireLog::new();
        let oracle = RecordingOracle::new(Arc::new(NullOracle), log.clone());
        let request = OracleRequest {
            kind: sdb_engine::secure::OracleRequestKind::Sign,
            handle: "h0".into(),
            rows: vec![],
        };
        let _ = oracle.resolve(request);
        assert_eq!(log.count_of_kind(WireMessageKind::OracleRequest), 1);
        // NullOracle fails, so there is no response message.
        assert_eq!(log.count_of_kind(WireMessageKind::OracleResponse), 0);
    }
}
