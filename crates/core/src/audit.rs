//! The adversarial audit (experiment E4, demo step 3).
//!
//! The demo invites an attendee to inspect a memory dump of the SP while queries
//! run and observe that sensitive data never appears in plaintext. This module is
//! the automated version of that step: it collects every representation of the
//! sensitive plaintexts the DO uploaded (raw renderings and the scaled integer
//! units that actually get encrypted) and scans everything the SP ever holds —
//! the stored catalog, intermediate and final (encrypted) results, and all wire
//! traffic — for occurrences.

use std::collections::BTreeSet;

use sdb_storage::{Table, Value};

/// A single place where a sensitive plaintext was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFinding {
    /// Which haystack leaked (e.g. "sp-catalog", "wire-traffic").
    pub location: String,
    /// The needle that was found.
    pub needle: String,
}

/// The outcome of an audit run.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Number of distinct sensitive needles checked.
    pub needles_checked: usize,
    /// Number of haystacks scanned.
    pub haystacks_scanned: usize,
    /// Every leak found (empty = the system behaved as the paper claims).
    pub findings: Vec<AuditFinding>,
}

impl AuditReport {
    /// True when no sensitive plaintext was observed anywhere at the SP.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Scans SP-visible byte strings for sensitive plaintexts.
#[derive(Debug, Default, Clone)]
pub struct MemoryAuditor {
    needles: BTreeSet<String>,
}

impl MemoryAuditor {
    /// Creates an empty auditor.
    pub fn new() -> Self {
        MemoryAuditor::default()
    }

    /// Registers every sensitive value of `table` (per its schema's sensitivity
    /// markers) as a needle. Short numeric values (fewer than 4 digits) are skipped
    /// — they would produce meaningless matches against unrelated numbers such as
    /// row counts — mirroring how the demo audience checks for *their* data, not
    /// for every small integer.
    pub fn register_table(&mut self, table: &Table) {
        let schema = table.schema();
        let sensitive: Vec<usize> = schema
            .columns()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.sensitivity.is_sensitive())
            .map(|(i, _)| i)
            .collect();
        let batch = table.scan();
        for row in 0..batch.num_rows() {
            for &col in &sensitive {
                self.register_value(batch.column(col).get(row));
            }
        }
    }

    /// Registers one sensitive value.
    ///
    /// Numeric values become needles only when they have at least six significant
    /// digits: shorter numbers (small quantities, sizes, …) collide with unrelated
    /// public integers such as keys and dates and would drown the audit in false
    /// positives — exactly as a human inspecting the demo's memory dump would look
    /// for *their* distinctive figures, not for every small number. Numeric needles
    /// are matched with digit boundaries (see [`MemoryAuditor::audit`]) so they are
    /// not "found" inside the long digit strings of ciphertexts.
    pub fn register_value(&mut self, value: &Value) {
        const NUMERIC_THRESHOLD: i64 = 100_000;
        match value {
            Value::Null => {}
            Value::Str(s) => {
                if s.len() >= 3 {
                    self.needles.insert(s.clone());
                }
            }
            Value::Int(v) => {
                if v.abs() >= NUMERIC_THRESHOLD {
                    self.needles.insert(v.to_string());
                }
            }
            Value::Decimal { units, .. } => {
                if units.abs() >= NUMERIC_THRESHOLD {
                    self.needles.insert(units.to_string());
                    self.needles.insert(value.render());
                }
            }
            Value::Date(d) => {
                self.needles.insert(format!("\"Date\":{d}"));
            }
            other => {
                self.needles.insert(other.render());
            }
        }
    }

    /// Number of registered needles.
    pub fn needle_count(&self) -> usize {
        self.needles.len()
    }

    /// Scans the given named haystacks, returning a report.
    ///
    /// Needles that are purely numeric are matched on digit boundaries: a match
    /// inside a longer run of digits (e.g. somewhere in the decimal expansion of a
    /// 256-bit ciphertext) does not count, because it carries no information about
    /// the plaintext. Textual needles use plain substring matching.
    pub fn audit<'a>(
        &self,
        haystacks: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> AuditReport {
        let mut report = AuditReport {
            needles_checked: self.needles.len(),
            ..Default::default()
        };
        for (location, haystack) in haystacks {
            report.haystacks_scanned += 1;
            for needle in &self.needles {
                if contains_needle(haystack, needle) {
                    report.findings.push(AuditFinding {
                        location: location.to_string(),
                        needle: needle.clone(),
                    });
                }
            }
        }
        report
    }
}

/// Substring search with digit-boundary handling for numeric needles.
fn contains_needle(haystack: &str, needle: &str) -> bool {
    let numeric = needle
        .chars()
        .all(|c| c.is_ascii_digit() || c == '-' || c == '.');
    if !numeric {
        return haystack.contains(needle);
    }
    let bytes = haystack.as_bytes();
    for (position, _) in haystack.match_indices(needle) {
        let before_ok = position == 0 || {
            let b = bytes[position - 1];
            !b.is_ascii_digit() && b != b'.'
        };
        let end = position + needle.len();
        let after_ok = end >= bytes.len() || {
            let b = bytes[end];
            !b.is_ascii_digit() && b != b'.'
        };
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdb_storage::{ColumnDef, DataType, Schema};

    fn table_with_secret() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::public("id", DataType::Int),
            ColumnDef::sensitive("salary", DataType::Int),
            ColumnDef::sensitive("codename", DataType::Varchar),
        ]);
        let mut t = Table::new("t", schema);
        t.insert_row(vec![
            Value::Int(1),
            Value::Int(987_654),
            Value::Str("operation condor".into()),
        ])
        .unwrap();
        t
    }

    #[test]
    fn detects_leaks_and_clean_runs() {
        let mut auditor = MemoryAuditor::new();
        auditor.register_table(&table_with_secret());
        assert!(auditor.needle_count() >= 2);

        let clean = auditor.audit([("sp", "nothing to see here 42")]);
        assert!(clean.is_clean());
        assert_eq!(clean.haystacks_scanned, 1);

        let leaky = auditor.audit([
            ("sp-catalog", "... 987654 ..."),
            ("wire", "the operation condor files"),
        ]);
        assert!(!leaky.is_clean());
        assert_eq!(leaky.findings.len(), 2);
        assert_eq!(leaky.findings[0].location, "sp-catalog");
    }

    #[test]
    fn small_values_are_not_needles() {
        let mut auditor = MemoryAuditor::new();
        auditor.register_value(&Value::Int(5));
        auditor.register_value(&Value::Str("ab".into()));
        assert_eq!(auditor.needle_count(), 0);
        auditor.register_value(&Value::Int(123_456));
        assert_eq!(auditor.needle_count(), 1);
    }
}
