//! # sdb
//!
//! End-to-end reproduction of *"SDB: A Secure Query Processing System with Data
//! Interoperability"* (He, Wong, Kao, Cheung, Li, Yiu, Lo — PVLDB 8(12), 2015).
//!
//! This crate wires the two halves of the paper's architecture together:
//!
//! * the **DO-side proxy** ([`sdb_proxy`]) — key store, query rewriting,
//!   interactive protocols, result decryption — and
//! * the **SP-side engine** ([`sdb_engine`]) — an unmodified relational engine plus
//!   the SDB UDF set —
//!
//! behind a single [`SdbClient`] that mirrors what an application sees: define
//! tables (marking columns `SENSITIVE`), insert data, upload, and run SQL. All
//! round trips between proxy and SP go through an explicit, byte-counted
//! [`wire`] layer so the demo's cost breakdown (experiment E3) and the adversarial
//! memory audit (experiment E4) observe exactly what a service-provider attacker
//! could observe.
//!
//! ```
//! use sdb::{SdbClient, SdbConfig};
//!
//! let mut client = SdbClient::new(SdbConfig::test_profile()).unwrap();
//! client.execute("CREATE TABLE staff (id INT, salary INT SENSITIVE)").unwrap();
//! client.execute("INSERT INTO staff VALUES (1, 1000), (2, 2500)").unwrap();
//! client.upload_all().unwrap();
//!
//! let result = client.query("SELECT SUM(salary) AS total FROM staff").unwrap();
//! assert_eq!(result.rows()[0][0].render(), "3500");
//! // The rewritten query that actually ran at the SP never mentions plaintext:
//! assert!(result.rewritten_sql.contains("SDB_KEY_UPDATE"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod client;
pub mod wire;

pub use audit::{AuditReport, MemoryAuditor};
pub use client::{QueryResult, SdbClient, SdbConfig, SdbError};
pub use sdb_crypto::KeyConfig;
pub use sdb_proxy::UploadOptions;
pub use wire::{decode_frame, encode_frame, WireLog, WireMessage, WireMessageKind};

/// Library result alias.
pub type Result<T> = std::result::Result<T, SdbError>;
