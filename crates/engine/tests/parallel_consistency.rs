//! Cross-checks of the morsel-parallel operator pipeline against serial
//! execution: identical results at every `parallelism` × `batch_size`
//! combination, at the 100k-row scale the acceptance bar names, under seeded
//! blinding RNGs, and with distinct-but-identically-rendered subqueries.

use std::sync::Arc;

use num_bigint::BigUint;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sdb_engine::planner::execute_plan;
use sdb_engine::{ExecContext, UdfRegistry, DEFAULT_BATCH_SIZE};
use sdb_sql::ast::{Expr, Literal, Query, SelectItem, TableRef};
use sdb_sql::plan::PlanBuilder;
use sdb_sql::{parse_sql, Statement};
use sdb_storage::{Catalog, ColumnDef, DataType, RecordBatch, Schema, Value};

/// Deterministic pseudo-random stream (no RNG dependency in the data).
fn mix(i: u64) -> u64 {
    i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31)
}

/// A `big(id, grp, val, name)` fact table plus a `dim(k, label)` dimension.
fn generated_catalog(rows: usize) -> Catalog {
    let catalog = Catalog::new();
    let big = catalog
        .create_table(
            "big",
            Schema::new(vec![
                ColumnDef::public("id", DataType::Int),
                ColumnDef::public("grp", DataType::Int),
                ColumnDef::public("val", DataType::Int),
                ColumnDef::public("name", DataType::Varchar),
            ]),
        )
        .unwrap();
    {
        let mut t = big.write();
        for i in 0..rows {
            let r = mix(i as u64);
            t.insert_row(vec![
                Value::Int(i as i64),
                Value::Int((r % 7) as i64),
                Value::Int((r % 10_000) as i64),
                Value::Str(format!("n{}", r % 97)),
            ])
            .unwrap();
        }
    }
    let dim = catalog
        .create_table(
            "dim",
            Schema::new(vec![
                ColumnDef::public("k", DataType::Int),
                ColumnDef::public("label", DataType::Varchar),
            ]),
        )
        .unwrap();
    {
        let mut t = dim.write();
        for k in 0..5 {
            t.insert_row(vec![Value::Int(k), Value::Str(format!("g{k}"))])
                .unwrap();
        }
    }
    catalog
}

fn parse_query(sql: &str) -> Query {
    match parse_sql(sql).unwrap() {
        Statement::Query(q) => q,
        other => panic!("expected query, got {other:?}"),
    }
}

fn run(catalog: &Catalog, query: &Query, parallelism: usize, batch_size: usize) -> RecordBatch {
    let registry = UdfRegistry::with_sdb_udfs();
    let ctx = Arc::new(
        ExecContext::new(catalog, &registry, None)
            .with_parallelism(parallelism)
            .with_batch_size(batch_size),
    );
    let plan = PlanBuilder::build(query).unwrap();
    execute_plan(&ctx, &plan).unwrap()
}

/// Runs `sql` serially (parallelism 1, default batches) as the reference,
/// then asserts every parallelism × batch-size combination is byte-identical.
fn cross_check(catalog: &Catalog, sql: &str) {
    let query = parse_query(sql);
    let reference = run(catalog, &query, 1, DEFAULT_BATCH_SIZE);
    for parallelism in [1, 2, 4] {
        for batch_size in [2, DEFAULT_BATCH_SIZE] {
            let out = run(catalog, &query, parallelism, batch_size);
            assert_eq!(
                reference, out,
                "parallelism={parallelism} batch_size={batch_size} diverged for: {sql}"
            );
        }
    }
}

/// The knob-matrix battery: scans, joins, aggregates, ordering, subqueries.
const KNOB_QUERIES: &[&str] = &[
    // Plain scan and scan + filter + projection.
    "SELECT * FROM big",
    "SELECT name, val * 2 AS double_val FROM big WHERE val > 5000",
    // Hash join, both as the small and the large build side.
    "SELECT b.id, d.label FROM big b JOIN dim d ON b.grp = d.k",
    "SELECT d.label, b.val FROM dim d JOIN big b ON d.k = b.grp",
    "SELECT b.id, d.label FROM big b LEFT JOIN dim d ON b.grp = d.k",
    // Aggregation: grouped, distinct, global, and over a join.
    "SELECT grp, COUNT(*) AS n, SUM(val) AS s, AVG(val) AS m, MIN(val) AS lo, MAX(val) AS hi \
         FROM big GROUP BY grp ORDER BY grp",
    "SELECT grp, COUNT(DISTINCT name) AS dn FROM big GROUP BY grp ORDER BY grp",
    "SELECT COUNT(*) AS n, SUM(val) AS s FROM big WHERE id > 990",
    "SELECT d.label, SUM(b.val) AS s FROM big b JOIN dim d ON b.grp = d.k \
         GROUP BY d.label ORDER BY d.label",
    // Order-shaping and subqueries.
    "SELECT DISTINCT grp FROM big ORDER BY grp LIMIT 3",
    "SELECT val FROM big ORDER BY val DESC LIMIT 10",
    "SELECT id FROM big WHERE val > (SELECT AVG(val) FROM big) ORDER BY id LIMIT 20",
    "SELECT id FROM big WHERE grp IN (SELECT k FROM dim WHERE label = 'g3') ORDER BY id LIMIT 20",
];

#[test]
fn parallel_matches_serial_across_knob_matrix() {
    let catalog = generated_catalog(1_000);
    for sql in KNOB_QUERIES {
        cross_check(&catalog, sql);
    }
}

/// Kernels-on vs kernels-off byte-identity across the budget × parallelism
/// matrix: the vectorised fast paths must compose with morsel parallelism
/// *and* memory-budgeted (spilling) operators without changing a byte.
#[test]
fn kernels_match_scalar_across_budget_matrix() {
    let catalog = generated_catalog(1_000);
    let registry = UdfRegistry::with_sdb_udfs();
    let run_v = |query: &Query, vectorised: bool, budget: Option<usize>, parallelism: usize| {
        let mut ctx = ExecContext::new(&catalog, &registry, None)
            .with_vectorised(vectorised)
            .with_parallelism(parallelism);
        if let Some(bytes) = budget {
            ctx = ctx.with_memory_budget(sdb_storage::MemoryBudget::bytes(bytes));
        }
        let plan = PlanBuilder::build(query).unwrap();
        execute_plan(&Arc::new(ctx), &plan).unwrap()
    };
    for sql in KNOB_QUERIES {
        let query = parse_query(sql);
        for budget in [Some(4 * 1024), Some(64 * 1024), None] {
            for parallelism in [1, 4] {
                let scalar = run_v(&query, false, budget, parallelism);
                let vectorised = run_v(&query, true, budget, parallelism);
                assert_eq!(
                    scalar, vectorised,
                    "kernels diverged (budget={budget:?} parallelism={parallelism}) for: {sql}"
                );
            }
        }
    }
}

/// Tracing-on vs tracing-off byte-identity across the budget × parallelism
/// matrix: the instrumented wrappers forward batches untouched, so traced
/// execution changes no output byte — and the trace really recorded the run
/// (a span tree exists and its root produced the output's rows).
#[test]
fn tracing_is_byte_identical_across_knob_matrix() {
    let catalog = generated_catalog(1_000);
    let registry = UdfRegistry::with_sdb_udfs();
    let run_t = |query: &Query, tracing: bool, budget: Option<usize>, parallelism: usize| {
        let mut ctx = ExecContext::new(&catalog, &registry, None)
            .with_parallelism(parallelism)
            .with_tracing(tracing);
        if let Some(bytes) = budget {
            ctx = ctx.with_memory_budget(sdb_storage::MemoryBudget::bytes(bytes));
        }
        let ctx = Arc::new(ctx);
        let plan = PlanBuilder::build(query).unwrap();
        let out = execute_plan(&ctx, &plan).unwrap();
        let report = ctx.trace().map(|t| t.report());
        (out, report)
    };
    for sql in KNOB_QUERIES {
        let query = parse_query(sql);
        for budget in [Some(4 * 1024), None] {
            for parallelism in [1, 4] {
                let (untraced, no_report) = run_t(&query, false, budget, parallelism);
                let (traced, report) = run_t(&query, true, budget, parallelism);
                let knobs = format!("budget={budget:?} parallelism={parallelism}");
                assert_eq!(
                    untraced, traced,
                    "tracing changed output ({knobs}) for: {sql}"
                );
                assert!(no_report.is_none(), "tracing off must record nothing");
                let report = report.expect("tracing on must produce a report");
                let root = &report.spans[report.root.expect("plan must have a root span")];
                assert_eq!(
                    root.rows_out,
                    traced.num_rows(),
                    "root span must account for every output row ({knobs}) for: {sql}"
                );
            }
        }
    }
}

/// The acceptance bar: at `parallelism > 1`, scan, join and aggregate plans
/// over a ≥100k-row generated table are byte-identical to serial execution.
#[test]
fn parallel_matches_serial_at_100k_rows() {
    let catalog = generated_catalog(100_000);
    for sql in [
        "SELECT id, val FROM big WHERE val > 9000",
        // dim ⋈ big puts the 100k side on the parallel build.
        "SELECT d.label, b.val FROM dim d JOIN big b ON d.k = b.grp",
        "SELECT grp, COUNT(*) AS n, SUM(val) AS s FROM big GROUP BY grp ORDER BY grp",
    ] {
        let query = parse_query(sql);
        let serial = run(&catalog, &query, 1, DEFAULT_BATCH_SIZE);
        let parallel = run(&catalog, &query, 4, DEFAULT_BATCH_SIZE);
        assert_eq!(serial, parallel, "100k-row cross-check diverged for: {sql}");
        assert!(serial.num_rows() > 0, "cross-check must cover real rows");
    }
}

/// A stub DO-proxy oracle whose sign answers depend only on the (stable)
/// encrypted row id, never on the blinded share — like the real proxy, whose
/// verdicts are invariant under the SP's blinding factors.
struct ParityOracle;

impl sdb_engine::SdbOracle for ParityOracle {
    fn resolve(&self, request: sdb_engine::OracleRequest) -> sdb_engine::OracleResult {
        use sdb_engine::secure::OracleRequestKind;
        let n = request.rows.len();
        Ok(match request.kind {
            OracleRequestKind::Sign => sdb_engine::OracleResponse::Signs(
                request
                    .rows
                    .iter()
                    .map(|r| {
                        let sum: u64 = r.row_id.0.body.iter().map(|&b| u64::from(b)).sum();
                        if sum.is_multiple_of(2) {
                            1
                        } else {
                            -1
                        }
                    })
                    .collect(),
            ),
            OracleRequestKind::GroupTag => {
                sdb_engine::OracleResponse::Tags((0..n as u64).collect())
            }
            OracleRequestKind::Rank => sdb_engine::OracleResponse::Ranks((0..n as u64).collect()),
        })
    }
}

/// An `enc(id, v, rid)` table of `rows` encrypted rows under a seeded cipher.
fn encrypted_catalog(rows: u64) -> Catalog {
    let catalog = Catalog::new();
    let enc = catalog
        .create_table(
            "enc",
            Schema::new(vec![
                ColumnDef::public("id", DataType::Int),
                ColumnDef::sensitive("v", DataType::Encrypted),
                ColumnDef::public("rid", DataType::EncryptedRowId),
            ]),
        )
        .unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let cipher = sdb_crypto::SiesCipher::from_master(&mut rng);
    let mut t = enc.write();
    for i in 0..rows {
        let rid =
            sdb_crypto::EncryptedRowId(cipher.encrypt_biguint(&mut rng, &BigUint::from(i + 1)));
        t.insert_row(vec![
            Value::Int(i as i64),
            Value::Encrypted(BigUint::from(mix(i) % 1_000_003)),
            Value::EncryptedRowId(rid),
        ])
        .unwrap();
    }
    drop(t);
    catalog
}

/// Seeded blinding RNGs keep parallel oracle-backed execution deterministic:
/// repeated seeded runs at `parallelism = 4` are identical to each other and
/// to the seeded serial run.
#[test]
fn seeded_rng_keeps_parallel_oracle_runs_deterministic() {
    let catalog = encrypted_catalog(200);
    let registry = UdfRegistry::with_sdb_udfs();
    let query = parse_query("SELECT id FROM enc WHERE SDB_CMP_GT(v, rid, 'h', '1000003')");
    let plan = PlanBuilder::build(&query).unwrap();
    let run_seeded = |parallelism: usize| {
        let oracle: sdb_engine::secure::OracleRef = Arc::new(ParityOracle);
        let ctx = Arc::new(
            ExecContext::new(&catalog, &registry, Some(oracle))
                .with_rng_seed(42)
                .with_parallelism(parallelism)
                .with_batch_size(64),
        );
        execute_plan(&ctx, &plan).unwrap()
    };

    let serial = run_seeded(1);
    let parallel_a = run_seeded(4);
    let parallel_b = run_seeded(4);
    assert!(serial.num_rows() > 0, "the oracle must keep some rows");
    assert_eq!(parallel_a, parallel_b, "seeded parallel runs must repeat");
    assert_eq!(serial, parallel_a, "parallel must match serial output");
}

/// Two subqueries whose SQL *text* renders identically but which differ
/// structurally (an INT literal vs a scale-0 DECIMAL literal, both displaying
/// as `1`) must get distinct cache entries — keying by display string alone
/// would hand the second query the first one's result. The cache buckets by
/// display text but verifies full structural equality before a hit.
#[test]
fn subquery_cache_distinguishes_identically_rendered_subqueries() {
    let catalog = Catalog::new();
    let one = catalog
        .create_table(
            "one",
            Schema::new(vec![ColumnDef::public("x", DataType::Int)]),
        )
        .unwrap();
    one.write().insert_row(vec![Value::Int(9)]).unwrap();

    let literal_subquery = |lit: Literal| {
        let mut q = Query::empty();
        q.projections = vec![SelectItem::Expr {
            expr: Expr::Literal(lit),
            alias: None,
        }];
        q.from = vec![TableRef {
            name: "one".into(),
            alias: None,
        }];
        q
    };
    let int_sub = literal_subquery(Literal::Int(1));
    let dec_sub = literal_subquery(Literal::Decimal { units: 1, scale: 0 });
    assert_eq!(
        int_sub.to_string(),
        dec_sub.to_string(),
        "the test needs two subqueries with identical SQL renderings"
    );

    let mut outer = Query::empty();
    outer.projections = vec![
        SelectItem::Expr {
            expr: Expr::ScalarSubquery(Box::new(int_sub)),
            alias: Some("a".into()),
        },
        SelectItem::Expr {
            expr: Expr::ScalarSubquery(Box::new(dec_sub)),
            alias: Some("b".into()),
        },
    ];
    outer.from = vec![TableRef {
        name: "one".into(),
        alias: None,
    }];

    let registry = UdfRegistry::with_sdb_udfs();
    let ctx = Arc::new(ExecContext::new(&catalog, &registry, None));
    let plan = PlanBuilder::build(&outer).unwrap();
    let out = execute_plan(&ctx, &plan).unwrap();
    assert_eq!(out.num_rows(), 1);
    assert_eq!(out.column(0).get(0), &Value::Int(1));
    assert_eq!(
        out.column(1).get(0),
        &Value::Decimal { units: 1, scale: 0 },
        "the decimal parameterisation must not collide with the int one"
    );
}

/// Cross-batch oracle batching over the full knob matrix: at every
/// parallelism × batch-size × memory-budget combination, a two-predicate
/// secure filter resolves in exactly one round trip per distinct call, with
/// output byte-identical to the unbatched per-batch path.
#[test]
fn oracle_batching_matrix_is_byte_identical_with_exact_trip_counts() {
    let catalog = encrypted_catalog(200);
    let registry = UdfRegistry::with_sdb_udfs();
    // Two distinct comparison calls (different proxy handles) in one WHERE
    // clause: batched, each coalesces all 200 rows into one trip.
    let query = parse_query(
        "SELECT id FROM enc WHERE SDB_CMP_GT(v, rid, 'h', '1000003') \
         AND SDB_CMP_GT(v, rid, 'h2', '1000003')",
    );
    let plan = PlanBuilder::build(&query).unwrap();

    let run_with =
        |parallelism: usize, batch_size: usize, budget: Option<usize>, batching: bool| {
            let oracle: sdb_engine::secure::OracleRef = Arc::new(ParityOracle);
            let mut ctx = ExecContext::new(&catalog, &registry, Some(oracle))
                .with_rng_seed(42)
                .with_parallelism(parallelism)
                .with_batch_size(batch_size)
                .with_oracle_batching(batching);
            if let Some(bytes) = budget {
                ctx = ctx.with_memory_budget(sdb_storage::MemoryBudget::bytes(bytes));
            }
            let ctx = Arc::new(ctx);
            let out = execute_plan(&ctx, &plan).unwrap();
            (out, ctx.stats())
        };

    // Unbatched reference: one trip per call per 2-row input batch. The
    // blinding factors differ from the batched runs (different chunking),
    // but the proxy's verdicts depend only on the stable row ids — so the
    // outputs must still be byte-identical.
    let (reference, ref_stats) = run_with(1, 2, None, false);
    assert!(reference.num_rows() > 0, "the filter must keep some rows");
    assert_eq!(
        ref_stats.oracle_round_trips, 200,
        "2 calls x 100 two-row batches without batching"
    );
    assert_eq!(ref_stats.oracle_memo_hits, 0);

    for parallelism in [1, 4] {
        for batch_size in [2, DEFAULT_BATCH_SIZE] {
            for budget in [None, Some(4096)] {
                let (out, stats) = run_with(parallelism, batch_size, budget, true);
                let knobs =
                    format!("parallelism={parallelism} batch_size={batch_size} budget={budget:?}");
                assert_eq!(reference, out, "batched output diverged ({knobs})");
                assert_eq!(
                    stats.oracle_round_trips, 2,
                    "one coalesced trip per distinct call ({knobs})"
                );
                assert_eq!(
                    stats.oracle_rows_coalesced, 400,
                    "200 rows x 2 calls ({knobs})"
                );
                assert_eq!(stats.oracle_memo_hits, 0, "all operands distinct ({knobs})");
            }
        }
    }
}

/// The encrypted-value memo spans plan executions on one context: re-running
/// a secure filter answers every sign from the memo — zero additional round
/// trips over the DO-proxy link.
#[test]
fn memo_answers_repeat_executions_without_round_trips() {
    let catalog = encrypted_catalog(200);
    let registry = UdfRegistry::with_sdb_udfs();
    let query = parse_query(
        "SELECT id FROM enc WHERE SDB_CMP_GT(v, rid, 'h', '1000003') \
         AND SDB_CMP_GT(v, rid, 'h2', '1000003')",
    );
    let plan = PlanBuilder::build(&query).unwrap();
    let oracle: sdb_engine::secure::OracleRef = Arc::new(ParityOracle);
    let ctx = Arc::new(
        ExecContext::new(&catalog, &registry, Some(oracle))
            .with_rng_seed(42)
            .with_parallelism(4)
            .with_batch_size(64),
    );

    let first = execute_plan(&ctx, &plan).unwrap();
    assert_eq!(ctx.stats().oracle_round_trips, 2);
    let second = execute_plan(&ctx, &plan).unwrap();
    assert_eq!(first, second, "memoized answers must reproduce the output");
    let stats = ctx.stats();
    assert_eq!(
        stats.oracle_round_trips, 2,
        "the repeat execution travels zero additional trips"
    );
    assert_eq!(
        stats.oracle_memo_hits, 400,
        "200 rows x 2 calls answered from the memo"
    );
}
