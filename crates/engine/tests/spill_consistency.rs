//! Bounded-memory execution cross-checks: with a budget small enough to
//! force spilling, sort and aggregate plans must produce results
//! **byte-identical** to the unbudgeted in-memory path — at parallelism
//! {1, 4} × batch size {2, default} — and every spill temp file must be gone
//! once the query's context drops, on success and on error alike.

use std::sync::Arc;

use proptest::prelude::*;

use sdb_engine::planner::execute_plan;
use sdb_engine::{ExecContext, MemoryBudget, UdfRegistry, DEFAULT_BATCH_SIZE};
use sdb_sql::ast::Query;
use sdb_sql::plan::PlanBuilder;
use sdb_sql::{parse_sql, Statement};
use sdb_storage::{Catalog, ColumnDef, DataType, RecordBatch, Schema, Value};

/// Deterministic pseudo-random stream (no RNG dependency in the data).
fn mix(i: u64) -> u64 {
    i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31)
}

/// A `big(id, grp, val, name)` fact table plus a `dim(k, label)` dimension.
fn generated_catalog(rows: usize) -> Catalog {
    let catalog = Catalog::new();
    let big = catalog
        .create_table(
            "big",
            Schema::new(vec![
                ColumnDef::public("id", DataType::Int),
                ColumnDef::public("grp", DataType::Int),
                ColumnDef::public("val", DataType::Int),
                ColumnDef::public("name", DataType::Varchar),
            ]),
        )
        .unwrap();
    {
        let mut t = big.write();
        for i in 0..rows {
            let r = mix(i as u64);
            t.insert_row(vec![
                Value::Int(i as i64),
                Value::Int((r % 7) as i64),
                // Many collisions so sort stability is observable.
                Value::Int((r % 50) as i64),
                Value::Str(format!("n{}", r % 23)),
            ])
            .unwrap();
        }
    }
    let dim = catalog
        .create_table(
            "dim",
            Schema::new(vec![
                ColumnDef::public("k", DataType::Int),
                ColumnDef::public("label", DataType::Varchar),
            ]),
        )
        .unwrap();
    {
        let mut t = dim.write();
        for k in 0..5 {
            t.insert_row(vec![Value::Int(k), Value::Str(format!("g{k}"))])
                .unwrap();
        }
    }
    catalog
}

fn parse_query(sql: &str) -> Query {
    match parse_sql(sql).unwrap() {
        Statement::Query(q) => q,
        other => panic!("expected query, got {other:?}"),
    }
}

fn run(
    catalog: &Catalog,
    query: &Query,
    parallelism: usize,
    batch_size: usize,
    budget: MemoryBudget,
) -> (RecordBatch, sdb_engine::ExecutionStats) {
    let registry = UdfRegistry::with_sdb_udfs();
    // This suite pins which operator spills by fixing the *syntactic* plan;
    // the optimizer stays off so a CI-level SDB_TEST_ANALYZE cannot reorder
    // the joins out from under the per-query spill expectations.
    // (Optimized-plan byte-identity has its own matrix in
    // optimizer_consistency.rs.)
    let ctx = Arc::new(
        ExecContext::new(catalog, &registry, None)
            .with_memory_budget(budget)
            .with_optimizer(false)
            .with_parallelism(parallelism)
            .with_batch_size(batch_size),
    );
    let plan = PlanBuilder::build(query).unwrap();
    let batch = execute_plan(&ctx, &plan).unwrap();
    (batch, ctx.stats())
}

const SPILL_QUERIES: &[&str] = &[
    // Multi-key sorts with heavy key collisions (stability matters).
    "SELECT id, grp, val FROM big ORDER BY val, grp",
    "SELECT name, val FROM big ORDER BY name DESC, id",
    "SELECT val FROM big ORDER BY val DESC LIMIT 25",
    // Grouped aggregation: every aggregate kind, distinct included.
    "SELECT grp, COUNT(*) AS n, SUM(val) AS s, AVG(val) AS m, MIN(val) AS lo, MAX(val) AS hi \
     FROM big GROUP BY grp ORDER BY grp",
    "SELECT name, COUNT(DISTINCT grp) AS dg, SUM(val) AS s FROM big GROUP BY name ORDER BY name",
    "SELECT COUNT(*) AS n, SUM(val) AS s FROM big",
    // Aggregate above a join, then sorted.
    "SELECT d.label, SUM(b.val) AS s FROM big b JOIN dim d ON b.grp = d.k \
     GROUP BY d.label ORDER BY s DESC, d.label",
    // Sort feeding distinct-above semantics.
    "SELECT DISTINCT grp FROM big ORDER BY grp",
];

/// Join-heavy plans for the Grace hash join: inner and LEFT joins, residual
/// ON conjuncts, self joins and join-above-aggregate shapes. The flag says
/// whether the plan's *build* (right) side is big enough that a 4KB budget
/// must actually spill it — joins whose build side is the 5-row `dim` table
/// stay on the in-memory path even under a budget, and the residual LEFT
/// JOIN keeps the nested-loop plan, which never spills. Only some queries
/// carry a top-level ORDER BY: hash-join output order itself is part of the
/// byte-identity contract, so most compare raw join order.
const JOIN_QUERIES: &[(&str, bool)] = &[
    // Small probe side, spilling build side (dim ⋈ big).
    (
        "SELECT d.label, b.id FROM dim d JOIN big b ON d.k = b.grp",
        true,
    ),
    // Self join on a composite key: both sides big, collisions on (grp, val).
    (
        "SELECT a.id, b.id FROM big a JOIN big b ON a.grp = b.grp AND a.val = b.val \
         WHERE a.id < 500",
        true,
    ),
    // LEFT JOIN null-padding: dim rows without matches (grp spans 0..7 only).
    (
        "SELECT d.label, b.id FROM dim d LEFT JOIN big b ON d.k = b.grp",
        true,
    ),
    // LEFT JOIN with a small build side: the in-memory fallback path.
    (
        "SELECT b.id, d.label FROM big b LEFT JOIN dim d ON b.grp = d.k",
        false,
    ),
    // Residual ON conjunct above an inner hash join (filter above the join).
    (
        "SELECT d.label, b.id FROM dim d JOIN big b ON d.k = b.grp AND b.val > 25",
        true,
    ),
    // LEFT JOIN with a residual: stays nested-loop under every budget —
    // residuals decide matching, and both plans must agree.
    (
        "SELECT d.label, b.id FROM dim d LEFT JOIN big b ON d.k = b.grp AND b.val < 3",
        false,
    ),
    // Join feeding a blocking consumer (external sort above the join).
    (
        "SELECT d.label, b.id FROM dim d JOIN big b ON d.k = b.grp ORDER BY b.val, b.id",
        true,
    ),
    // Join plus a scalar subquery that itself runs (and spills) under the
    // inherited budget.
    (
        "SELECT d.label, b.id FROM dim d JOIN big b ON d.k = b.grp \
         WHERE b.val > (SELECT AVG(val) FROM big)",
        true,
    ),
];

/// The Grace hash join acceptance bar: inner + LEFT + residual-ON joins,
/// byte-identical to the unbudgeted in-memory plans across the whole knob
/// matrix, with the big-build-side plans actually spilling.
#[test]
fn grace_join_matches_in_memory_across_knob_matrix() {
    let catalog = generated_catalog(3_000);
    for &(sql, expect_spill) in JOIN_QUERIES {
        let query = parse_query(sql);
        let (reference, _) = run(
            &catalog,
            &query,
            1,
            DEFAULT_BATCH_SIZE,
            MemoryBudget::unlimited(),
        );
        let mut spilled_somewhere = false;
        for budget_bytes in [4 * 1024, 64 * 1024] {
            for parallelism in [1, 4] {
                for batch_size in [2, DEFAULT_BATCH_SIZE] {
                    let (out, stats) = run(
                        &catalog,
                        &query,
                        parallelism,
                        batch_size,
                        MemoryBudget::bytes(budget_bytes),
                    );
                    assert_eq!(
                        reference, out,
                        "budget={budget_bytes} parallelism={parallelism} \
                         batch_size={batch_size} diverged for: {sql}"
                    );
                    spilled_somewhere |= stats.join_spilled_rows > 0;
                }
            }
        }
        assert_eq!(
            spilled_somewhere, expect_spill,
            "build-side spill expectation wrong for: {sql}"
        );
    }
}

/// Grace-join metrics surface in the merged snapshot: partition and spilled
/// row counts, plus pager page traffic, at serial and parallel settings.
#[test]
fn grace_join_metrics_surface_in_stats() {
    let catalog = generated_catalog(3_000);
    let query = parse_query("SELECT d.label, b.id FROM dim d JOIN big b ON d.k = b.grp");
    for parallelism in [1, 4] {
        let (_, stats) = run(
            &catalog,
            &query,
            parallelism,
            DEFAULT_BATCH_SIZE,
            MemoryBudget::bytes(4 * 1024),
        );
        assert!(
            stats.join_build_partitions > 0,
            "parallelism {parallelism}: {stats:?}"
        );
        assert!(stats.join_spilled_rows >= 3_000, "whole build side routed");
        assert!(
            stats.pages_spilled > 0,
            "partition pages hit the spill file"
        );
        assert!(stats.spill_bytes_read > 0, "pair joining reads them back");
    }
}

/// The acceptance bar: tiny and moderate budgets, across the parallelism ×
/// batch-size matrix, all byte-identical to the unbudgeted reference.
#[test]
fn spilling_matches_in_memory_across_knob_matrix() {
    let catalog = generated_catalog(3_000);
    for sql in SPILL_QUERIES {
        let query = parse_query(sql);
        let (reference, _) = run(
            &catalog,
            &query,
            1,
            DEFAULT_BATCH_SIZE,
            MemoryBudget::unlimited(),
        );
        let mut spilled_somewhere = false;
        for budget_bytes in [4 * 1024, 64 * 1024] {
            for parallelism in [1, 4] {
                for batch_size in [2, DEFAULT_BATCH_SIZE] {
                    let (out, stats) = run(
                        &catalog,
                        &query,
                        parallelism,
                        batch_size,
                        MemoryBudget::bytes(budget_bytes),
                    );
                    assert_eq!(
                        reference, out,
                        "budget={budget_bytes} parallelism={parallelism} \
                         batch_size={batch_size} diverged for: {sql}"
                    );
                    spilled_somewhere |= stats.pages_spilled > 0;
                }
            }
        }
        assert!(
            spilled_somewhere,
            "a 4KB budget over 3k rows must actually spill for: {sql}"
        );
    }
}

/// Kernels-on vs kernels-off byte-identity under spilling pressure: the
/// vectorised fast paths feed the same batches into budgeted sort/aggregate/
/// join operators, so tiny budgets must not perturb a byte of output.
#[test]
fn kernels_match_scalar_across_spill_matrix() {
    let catalog = generated_catalog(3_000);
    let registry = UdfRegistry::with_sdb_udfs();
    let run_v = |query: &Query, vectorised: bool, budget: MemoryBudget, parallelism: usize| {
        let ctx = Arc::new(
            ExecContext::new(&catalog, &registry, None)
                .with_vectorised(vectorised)
                .with_memory_budget(budget)
                .with_optimizer(false)
                .with_parallelism(parallelism),
        );
        let plan = PlanBuilder::build(query).unwrap();
        execute_plan(&ctx, &plan).unwrap()
    };
    for sql in SPILL_QUERIES {
        let query = parse_query(sql);
        for budget_bytes in [Some(4 * 1024), Some(64 * 1024), None] {
            let budget = || budget_bytes.map_or(MemoryBudget::unlimited(), MemoryBudget::bytes);
            for parallelism in [1, 4] {
                let scalar = run_v(&query, false, budget(), parallelism);
                let vectorised = run_v(&query, true, budget(), parallelism);
                assert_eq!(
                    scalar, vectorised,
                    "kernels diverged (budget={budget_bytes:?} parallelism={parallelism}) \
                     for: {sql}"
                );
            }
        }
    }
}

/// Spill metrics surface in the merged stats snapshot (and a parallel run
/// reports them too, through the shared pager).
#[test]
fn spill_metrics_surface_in_stats() {
    let catalog = generated_catalog(3_000);
    let query = parse_query("SELECT id FROM big ORDER BY val, id");
    for parallelism in [1, 4] {
        let (_, stats) = run(
            &catalog,
            &query,
            parallelism,
            DEFAULT_BATCH_SIZE,
            MemoryBudget::bytes(4 * 1024),
        );
        assert!(
            stats.pages_spilled > 0,
            "parallelism {parallelism}: {stats:?}"
        );
        assert!(stats.spill_bytes_written > 0);
        assert!(stats.spill_bytes_read > 0, "merge reads pages back");
        assert!(stats.pages_evicted >= stats.pages_spilled);
        assert!(stats.peak_resident_pages > 0);
    }
}

/// Spill files live in the configured directory while the query runs and are
/// gone when the context drops — success path.
#[test]
fn spill_files_removed_after_query_drop() {
    let dir = std::env::temp_dir().join(format!("sdb-spill-ok-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let catalog = generated_catalog(2_000);
    let registry = UdfRegistry::with_sdb_udfs();

    let spill_path = {
        let ctx = Arc::new(
            ExecContext::new(&catalog, &registry, None)
                .with_memory_budget(MemoryBudget::bytes(2 * 1024).with_spill_dir(&dir)),
        );
        let plan = PlanBuilder::build(&parse_query("SELECT id FROM big ORDER BY val, id")).unwrap();
        execute_plan(&ctx, &plan).unwrap();
        let path = ctx
            .pager()
            .spill_path()
            .expect("a 2KB budget over 2k rows must create a spill file");
        assert!(path.exists(), "spill file exists while the context lives");
        assert_eq!(path.parent(), Some(dir.as_path()), "honours the spill dir");
        path
    };
    assert!(!spill_path.exists(), "context drop must delete the file");
    std::fs::remove_dir(&dir).expect("spill dir must be empty again");
}

/// The error path: a query that fails *after* spilling (SUM over a VARCHAR
/// column errors at finalisation) must still clean its spill file up.
#[test]
fn spill_files_removed_after_failed_query() {
    let dir = std::env::temp_dir().join(format!("sdb-spill-err-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let catalog = generated_catalog(2_000);
    let registry = UdfRegistry::with_sdb_udfs();

    let spill_path = {
        let ctx = Arc::new(
            ExecContext::new(&catalog, &registry, None)
                .with_memory_budget(MemoryBudget::bytes(2 * 1024).with_spill_dir(&dir)),
        );
        let plan = PlanBuilder::build(&parse_query("SELECT SUM(name) AS s FROM big")).unwrap();
        let result = execute_plan(&ctx, &plan);
        assert!(result.is_err(), "summing strings must fail");
        let stats = ctx.stats();
        assert!(
            stats.pages_spilled > 0,
            "the failure must happen after spilling: {stats:?}"
        );
        ctx.pager().spill_path().expect("spill file was created")
    };
    assert!(!spill_path.exists(), "error path must delete the file too");
    std::fs::remove_dir(&dir).expect("spill dir must be empty again");
}

/// Builds a small catalog from arbitrary rows (with NULLs and duplicate
/// keys) for the property test.
fn catalog_from_rows(rows: &[(i64, i64, bool)]) -> Catalog {
    let catalog = Catalog::new();
    let t = catalog
        .create_table(
            "t",
            Schema::new(vec![
                ColumnDef::public("k", DataType::Int),
                ColumnDef::public("v", DataType::Int),
            ]),
        )
        .unwrap();
    let mut guard = t.write();
    for &(k, v, null_v) in rows {
        guard
            .insert_row(vec![
                Value::Int(k),
                if null_v { Value::Null } else { Value::Int(v) },
            ])
            .unwrap();
    }
    drop(guard);
    catalog
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: for arbitrary small tables (duplicate-heavy keys, NULLs),
    /// a 1KB budget yields byte-identical results to the in-memory path for
    /// both a stable multi-batch sort and a grouped aggregate, at
    /// parallelism 1 and 4.
    #[test]
    fn budgeted_equals_unbudgeted_property(
        rows in proptest::collection::vec((0i64..8, -100i64..100, any::<bool>()), 0..120),
        batch_size in 1usize..9,
    ) {
        let catalog = catalog_from_rows(&rows);
        for sql in [
            "SELECT k, v FROM t ORDER BY k",
            "SELECT k, COUNT(*) AS n, SUM(v) AS s, MIN(v) AS lo FROM t GROUP BY k",
        ] {
            let query = parse_query(sql);
            let (reference, _) =
                run(&catalog, &query, 1, DEFAULT_BATCH_SIZE, MemoryBudget::unlimited());
            for parallelism in [1usize, 4] {
                let (out, _) = run(
                    &catalog,
                    &query,
                    parallelism,
                    batch_size,
                    MemoryBudget::bytes(1024),
                );
                prop_assert_eq!(&reference, &out, "parallelism {} for {}", parallelism, sql);
            }
        }
    }
}
