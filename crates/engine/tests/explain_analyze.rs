//! Golden-format tests for `EXPLAIN ANALYZE`: the rendered output must keep
//! its stable shape — header line, depth-indented operator lines, per-line
//! `rows=` / `batches=` / `time=` / `(self …)` annotations, estimate-vs-actual
//! deviation after `ANALYZE` — across the budget × parallelism matrix, with
//! spill attribution appearing exactly when a budget forces spilling, and the
//! JSON trace export landing under `SDB_TRACE_DIR`.

use sdb_engine::{MemoryBudget, SpEngine};

/// A three-table star fixture: `fact(id, k1, k2, v)` joined to dimensions
/// `d1(k, name1)` and `d2(k, name2)`, with optimizer statistics collected.
fn engine_with(parallelism: usize, budget: Option<usize>) -> SpEngine {
    let mut engine = SpEngine::new().with_parallelism(parallelism);
    if let Some(bytes) = budget {
        engine = engine.with_memory_budget(MemoryBudget::bytes(bytes));
    }
    engine
        .execute_sql("CREATE TABLE fact (id INT, k1 INT, k2 INT, v INT)")
        .unwrap();
    engine
        .execute_sql("CREATE TABLE d1 (k INT, name1 VARCHAR(10))")
        .unwrap();
    engine
        .execute_sql("CREATE TABLE d2 (k INT, name2 VARCHAR(10))")
        .unwrap();
    for chunk in 0..10i64 {
        let rows: Vec<String> = (0..60i64)
            .map(|i| {
                let id = chunk * 60 + i;
                format!("({id}, {}, {}, {})", id % 5, id % 7, id % 100)
            })
            .collect();
        engine
            .execute_sql(&format!("INSERT INTO fact VALUES {}", rows.join(", ")))
            .unwrap();
    }
    for k in 0..5 {
        engine
            .execute_sql(&format!("INSERT INTO d1 VALUES ({k}, 'a{k}')"))
            .unwrap();
    }
    for k in 0..7 {
        engine
            .execute_sql(&format!("INSERT INTO d2 VALUES ({k}, 'b{k}')"))
            .unwrap();
    }
    engine.execute_sql("ANALYZE").unwrap();
    engine
}

const THREE_TABLE_JOIN: &str = "EXPLAIN ANALYZE \
     SELECT d1.name1, d2.name2, f.v FROM fact f \
     JOIN d1 ON f.k1 = d1.k \
     JOIN d2 ON f.k2 = d2.k \
     WHERE f.v > 10 ORDER BY f.id";

/// Runs an `EXPLAIN ANALYZE` statement and returns its rendered plan lines.
fn plan_lines(engine: &SpEngine, sql: &str) -> Vec<String> {
    let out = engine.execute_sql(sql).unwrap();
    assert!(
        out.trace.is_some(),
        "EXPLAIN ANALYZE must carry the full trace report"
    );
    (0..out.batch.num_rows())
        .map(|row| out.batch.column(0).get(row).as_str().unwrap().to_string())
        .collect()
}

/// The acceptance query: a three-table join renders one line per operator
/// with actual rows, wall time, and estimate-vs-actual deviation.
#[test]
fn three_table_join_renders_actuals_and_deviation() {
    let engine = engine_with(1, None);
    let lines = plan_lines(&engine, THREE_TABLE_JOIN);

    assert!(
        lines[0].starts_with("analyzed plan ("),
        "header line: {}",
        lines[0]
    );
    assert!(lines[0].contains("rows in"), "header totals: {}", lines[0]);
    let operators = &lines[1..];
    assert!(operators.len() >= 6, "scan x3 + join x2 + sort at least");
    for line in operators {
        assert!(line.contains(" rows="), "actual rows on every line: {line}");
        assert!(line.contains(" batches="), "batch count: {line}");
        assert!(line.contains(" time="), "wall time: {line}");
        assert!(line.contains("(self "), "exclusive share: {line}");
    }
    let joins = operators.iter().filter(|l| l.contains("Join")).count();
    assert_eq!(joins, 2, "two joins in a three-table plan: {operators:?}");
    let scans = operators.iter().filter(|l| l.contains("TableScan")).count();
    assert_eq!(scans, 3, "three scans: {operators:?}");
    // ANALYZE ran, so estimates exist and deviation is rendered (exact on
    // the scans: estimated row counts match actuals, ±0.0%).
    assert!(
        operators.iter().any(|l| l.contains("est\u{2248}")),
        "estimate-vs-actual must be present: {operators:?}"
    );
    assert!(
        operators.iter().any(|l| l.contains("%)")),
        "deviation percentage must be present: {operators:?}"
    );
    let fact_scan = operators
        .iter()
        .find(|l| l.contains("TableScan rows=600"))
        .expect("the fact scan produces all 600 rows");
    assert!(
        fact_scan.contains("est\u{2248}600 (+0.0%)"),
        "analyzed scan estimate is exact: {fact_scan}"
    );
}

/// Rendering keeps its shape across the budget × parallelism matrix; a
/// 4 KiB budget additionally surfaces per-operator spill attribution.
#[test]
fn rendering_is_stable_across_budget_and_parallelism_matrix() {
    for budget in [Some(4 * 1024), None] {
        for parallelism in [1, 4] {
            let engine = engine_with(parallelism, budget);
            let lines = plan_lines(&engine, THREE_TABLE_JOIN);
            let knobs = format!("budget={budget:?} parallelism={parallelism}");

            assert!(
                lines[0].starts_with("analyzed plan ("),
                "{knobs}: {lines:?}"
            );
            for line in &lines[1..] {
                assert!(line.contains(" rows="), "{knobs}: {line}");
                assert!(line.contains(" time="), "{knobs}: {line}");
            }
            assert!(
                lines[1..].iter().any(|l| l.contains("est\u{2248}")),
                "{knobs}: estimates must render"
            );
            let spilled = lines[1..].iter().any(|l| l.contains("spill["));
            match budget {
                Some(_) => assert!(
                    spilled,
                    "{knobs}: a 4 KiB budget must spill and be attributed: {lines:?}"
                ),
                None => assert!(!spilled, "{knobs}: unlimited budget must not spill"),
            }
        }
    }
}

/// Plain queries (no `EXPLAIN ANALYZE`) carry no trace unless tracing is on;
/// with `with_tracing(true)` the same query reports a span tree whose root
/// accounts for every output row. The knob is set explicitly on both sides
/// so the test holds under the CI `SDB_TRACE=1` leg too.
#[test]
fn plain_queries_trace_only_when_asked() {
    let engine = engine_with(1, None).with_tracing(false);
    let sql = "SELECT v FROM fact WHERE v > 50 ORDER BY id";
    let untraced = engine.execute_sql(sql).unwrap();
    assert!(untraced.trace.is_none(), "tracing off records nothing");

    let traced_engine = engine_with(1, None).with_tracing(true);
    let traced = traced_engine.execute_sql(sql).unwrap();
    assert_eq!(untraced.batch, traced.batch, "tracing never changes output");
    let report = traced.trace.expect("tracing was on");
    let root = &report.spans[report.root.unwrap()];
    assert_eq!(root.rows_out, traced.batch.num_rows());
    assert!(root.batches_out > 0);
}

/// `SDB_TRACE_DIR` exports each traced query's report as a JSON file with
/// the stable schema (it parses back into a `TraceReport`).
#[test]
fn trace_dir_exports_json_reports() {
    let dir = std::env::temp_dir().join(format!("sdb-trace-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("SDB_TRACE_DIR", &dir);
    let engine = engine_with(1, None);
    let lines = plan_lines(&engine, THREE_TABLE_JOIN);
    std::env::remove_var("SDB_TRACE_DIR");
    assert!(!lines.is_empty());

    let exported: Vec<_> = std::fs::read_dir(&dir)
        .expect("SDB_TRACE_DIR must be created")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    assert!(!exported.is_empty(), "at least the analyzed query exported");
    for path in &exported {
        let text = std::fs::read_to_string(path).unwrap();
        let report: sdb_engine::TraceReport = serde_json::from_str(&text).unwrap();
        assert!(
            !report.spans.is_empty(),
            "exported trace has spans: {path:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
