//! Kernel-vs-scalar equivalence: every vectorised kernel (selection, join /
//! group key rendering, global aggregation) must be **byte-identical** to the
//! scalar interpreter it fast-paths, over NULL-heavy columns of every typed
//! vector variant.
//!
//! A proptest drives randomly generated tables (~30% NULLs per column, mixed
//! INT-in-DECIMAL representations, strings with LIKE metacharacters in the
//! data) through a fixed query battery twice — `with_vectorised(true)` vs
//! `with_vectorised(false)` — and asserts raw batch equality, *without* ORDER
//! BY: group first-occurrence order, join match order and row order are part
//! of the contract. Deterministic tests pin the selection bitmap's word
//! boundaries (row counts ≡ 0, 1 and 63 mod 64) and the parallel morsel
//! paths.

use std::sync::Arc;

use proptest::prelude::*;

use sdb_engine::planner::execute_plan;
use sdb_engine::{ExecContext, UdfRegistry};
use sdb_sql::plan::PlanBuilder;
use sdb_sql::{parse_sql, Statement};
use sdb_storage::{Catalog, ColumnDef, DataType, RecordBatch, Schema, Value};

/// The query battery: every kernel family and every fallback-worthy shape.
const QUERIES: &[&str] = &[
    // Selection: numeric comparisons (INT, DECIMAL with mixed element
    // scales, DATE), string comparison, Kleene AND/OR, NOT, IS [NOT] NULL,
    // IN lists, BETWEEN, LIKE, bare and negated boolean columns.
    "SELECT i FROM t WHERE i > 10",
    "SELECT i FROM t WHERE i <= -25",
    "SELECT i, d FROM t WHERE d >= 1.25",
    "SELECT i FROM t WHERE d < 30",
    "SELECT i FROM t WHERE dt > DATE '1970-04-10'",
    "SELECT i, s FROM t WHERE s = 'ab'",
    "SELECT i FROM t WHERE s < 'b'",
    "SELECT i FROM t WHERE i > 0 AND d < 20",
    "SELECT i FROM t WHERE i < -50 OR s = 'cc'",
    "SELECT i FROM t WHERE NOT (i > 0)",
    "SELECT i FROM t WHERE i IS NULL",
    "SELECT i FROM t WHERE s IS NOT NULL",
    "SELECT i FROM t WHERE i IN (1, 2, 3, -7)",
    "SELECT i FROM t WHERE i NOT IN (0, 5)",
    "SELECT i FROM t WHERE s IN ('a', 'bb', 'zz')",
    "SELECT i FROM t WHERE i BETWEEN -10 AND 40",
    "SELECT i FROM t WHERE i NOT BETWEEN 0 AND 9",
    "SELECT i, s FROM t WHERE s LIKE 'a%'",
    "SELECT i FROM t WHERE s NOT LIKE '%b'",
    "SELECT i FROM t WHERE b",
    "SELECT i FROM t WHERE NOT b",
    "SELECT i FROM t WHERE b = TRUE",
    // Mixed-class comparison: must *fall back* and surface the scalar
    // path's NULL-propagation before any per-row type error on valid rows
    // is even possible (all-NULL operands short-circuit identically).
    "SELECT i FROM t WHERE i IS NULL AND s IS NULL",
    // Key kernels: hash join build + probe over every key type, NULL keys
    // never matching; LEFT JOIN null padding; grouped aggregation with NULL
    // groups (NULL groups exist) and multi-column keys.
    "SELECT a.i, b.i FROM t a JOIN t b ON a.g = b.g",
    "SELECT a.i, b.s FROM t a JOIN t b ON a.s = b.s",
    "SELECT a.i, b.i FROM t a LEFT JOIN t b ON a.i = b.i",
    "SELECT a.i, b.i FROM t a JOIN t b ON a.g = b.g AND a.b = b.b",
    "SELECT g, COUNT(*) AS n FROM t GROUP BY g",
    "SELECT g, b, COUNT(*) AS n, SUM(i) AS si FROM t GROUP BY g, b",
    "SELECT s, MIN(i) AS lo, MAX(d) AS hi FROM t GROUP BY s",
    // Global aggregation kernels: COUNT(*) vs COUNT(col), SUM/AVG over
    // mixed INT/DECIMAL representations, MIN/MAX over every variant
    // (first-minimum / last-maximum tie rules), DISTINCT fallback.
    "SELECT COUNT(*) AS c, COUNT(i) AS ci, SUM(i) AS si, AVG(i) AS ai, \
     MIN(i) AS mi, MAX(i) AS xi FROM t",
    "SELECT SUM(d) AS sd, AVG(d) AS ad, MIN(d) AS md, MAX(d) AS xd FROM t",
    "SELECT MIN(s) AS ms, MAX(s) AS xs, MIN(b) AS mb, MAX(b) AS xb, \
     MIN(dt) AS mdt, MAX(dt) AS xdt FROM t",
    "SELECT COUNT(DISTINCT g) AS dg, SUM(i) AS si FROM t",
    "SELECT COUNT(*) AS c FROM t WHERE i > 100000",
];

/// One generated row: (i INT, d DECIMAL(2), s VARCHAR, b BOOL, dt DATE,
/// g INT).
type Row = (
    Option<i64>,
    Option<Value>,
    Option<String>,
    Option<bool>,
    Option<i32>,
    Option<i64>,
);

fn table_of(rows: &[Row]) -> Catalog {
    let catalog = Catalog::new();
    let t = catalog
        .create_table(
            "t",
            Schema::new(vec![
                ColumnDef::public("i", DataType::Int),
                ColumnDef::public("d", DataType::Decimal { scale: 2 }),
                ColumnDef::public("s", DataType::Varchar),
                ColumnDef::public("b", DataType::Bool),
                ColumnDef::public("dt", DataType::Date),
                ColumnDef::public("g", DataType::Int),
            ]),
        )
        .unwrap();
    let mut guard = t.write();
    let lift = |v: Option<Value>| v.unwrap_or(Value::Null);
    for (i, d, s, b, dt, g) in rows {
        guard
            .insert_row(vec![
                lift(i.map(Value::Int)),
                lift(d.clone()),
                lift(s.clone().map(Value::Str)),
                lift(b.map(Value::Bool)),
                lift(dt.map(Value::Date)),
                lift(g.map(Value::Int)),
            ])
            .unwrap();
    }
    drop(guard);
    catalog
}

/// Runs one query; errors are part of the observable contract, so they are
/// returned (as their display text) rather than panicking — e.g. MIN/MAX
/// over mixed INT/DECIMAL groups errors on the scalar path and the kernels
/// must surface the identical error.
fn run(
    catalog: &Catalog,
    sql: &str,
    vectorised: bool,
    parallelism: usize,
) -> Result<RecordBatch, String> {
    let registry = UdfRegistry::with_sdb_udfs();
    let ctx = Arc::new(
        ExecContext::new(catalog, &registry, None)
            .with_vectorised(vectorised)
            .with_parallelism(parallelism),
    );
    let plan = match parse_sql(sql).unwrap() {
        Statement::Query(q) => PlanBuilder::build(&q).unwrap(),
        other => panic!("expected query, got {other:?}"),
    };
    execute_plan(&ctx, &plan).map_err(|e| e.to_string())
}

/// Runs the full battery with kernels on and off and asserts raw equality —
/// of the output batch *and* of any error.
fn cross_check(catalog: &Catalog, parallelism: usize) {
    for sql in QUERIES {
        let scalar = run(catalog, sql, false, parallelism);
        let vectorised = run(catalog, sql, true, parallelism);
        assert_eq!(
            scalar, vectorised,
            "kernel diverged from scalar (parallelism={parallelism}) for: {sql}"
        );
    }
}

/// Expands one 64-bit seed into a NULL-heavy row (~25% NULLs per column).
///
/// DECIMAL(2) cells alternate between `Int` (the scale-0 short form the
/// loader writes for whole numbers) and `Decimal { scale: 2 }` elements —
/// the kernels must reproduce the scalar path's mixed-scale arithmetic.
/// Strings include LIKE metacharacters (`a%b`) as *data*.
fn row_from(r: u64) -> Row {
    let strings = ["a", "ab", "abc", "b", "bb", "cc", "zz", "a%b", "", "ba"];
    let keep = |bit: u64| r >> bit & 3 != 0; // ~25% NULLs per column
    (
        keep(0).then_some((r % 199) as i64 - 99),
        keep(2).then_some(if r.is_multiple_of(3) {
            Value::Int((r % 120) as i64 - 60)
        } else {
            Value::Decimal {
                units: (r % 12_000) as i64 - 6_000,
                scale: 2,
            }
        }),
        keep(4).then_some(strings[(r % strings.len() as u64) as usize].to_owned()),
        keep(6).then_some(r & 16 != 0),
        keep(8).then_some((r % 400) as i32),
        keep(10).then_some((r % 5) as i64),
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// The acceptance property: over random NULL-heavy tables, every query
    /// in the battery is byte-identical with kernels on vs off.
    #[test]
    fn kernels_match_scalar_on_random_null_heavy_tables(
        seeds in proptest::collection::vec(any::<u64>(), 1..96)
    ) {
        let rows: Vec<Row> = seeds.into_iter().map(row_from).collect();
        let catalog = table_of(&rows);
        cross_check(&catalog, 1);
    }
}

/// Deterministic NULL-heavy rows for the word-boundary and parallel tests.
fn deterministic_rows(n: usize) -> Vec<Row> {
    let mix = |i: u64| i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31);
    (0..n).map(|i| row_from(mix(i as u64))).collect()
}

/// Selection bitmaps pack 64 rows per word: row counts congruent to 0, 1 and
/// 63 mod 64 pin the tail-word masking on both sides of every boundary.
#[test]
fn word_boundary_row_counts_match_scalar() {
    for n in [63, 64, 65, 127, 128, 129] {
        let catalog = table_of(&deterministic_rows(n));
        cross_check(&catalog, 1);
    }
}

/// The engagement counters prove which path actually ran: kernels-on runs
/// engage the vectorised paths for every kernel family, kernels-off runs
/// never do (and count their scalar batches instead), and a shape no kernel
/// compiles falls back even with kernels on. The budget is pinned unlimited
/// — the spilling operator variants prepare rows outside the kernel paths,
/// so engagement is only guaranteed for the in-memory operators.
#[test]
fn engagement_counters_record_which_path_ran() {
    let catalog = table_of(&deterministic_rows(128));
    let registry = UdfRegistry::with_sdb_udfs();
    let run_counted = |sql: &str, vectorised: bool| {
        let ctx = Arc::new(
            ExecContext::new(&catalog, &registry, None)
                .with_vectorised(vectorised)
                .with_memory_budget(sdb_storage::MemoryBudget::unlimited()),
        );
        let plan = match parse_sql(sql).unwrap() {
            Statement::Query(q) => PlanBuilder::build(&q).unwrap(),
            other => panic!("expected query, got {other:?}"),
        };
        execute_plan(&ctx, &plan).unwrap();
        ctx.stats()
    };
    for sql in [
        "SELECT i FROM t WHERE i > 10",                   // selection kernel
        "SELECT a.i, b.i FROM t a JOIN t b ON a.g = b.g", // join key kernel
        "SELECT g, COUNT(*) AS n FROM t GROUP BY g",      // group key kernel
        "SELECT COUNT(*) AS c, SUM(i) AS si FROM t",      // global agg kernel
    ] {
        let on = run_counted(sql, true);
        assert!(on.vectorised_batches > 0, "kernels must engage for: {sql}");
        let off = run_counted(sql, false);
        assert_eq!(
            off.vectorised_batches, 0,
            "kernels-off must never engage for: {sql}"
        );
        assert!(
            off.scalar_fallback_batches > 0,
            "the scalar path must be counted for: {sql}"
        );
    }
    // Arithmetic in the predicate: outside the selection kernel's
    // column-vs-literal subset, so it falls back (and says so) even with
    // kernels on.
    let fallback = run_counted("SELECT i FROM t WHERE i - 5 > 10", true);
    assert!(fallback.scalar_fallback_batches > 0);
}

/// The kernels compose with morsel parallelism: batch-level fast paths fire
/// inside parallel workers and the merged output still matches the serial
/// scalar reference.
#[test]
fn kernels_match_scalar_under_parallelism() {
    let catalog = table_of(&deterministic_rows(257));
    cross_check(&catalog, 4);
    // Cross-parallelism: vectorised parallel vs scalar serial. Skip queries
    // that error (error text can legitimately differ across parallelism).
    for sql in QUERIES {
        let reference = run(&catalog, sql, false, 1);
        if reference.is_err() {
            continue;
        }
        let got = run(&catalog, sql, true, 4);
        assert_eq!(reference, got, "parallel kernel diverged for: {sql}");
    }
}
