//! Cost-based-optimizer cross-checks: reordered plans must produce results
//! **byte-identical** to the syntactic plans.
//!
//! The matrix runs every query at optimizer {on, off} × memory budget
//! {4 KiB, 64 KiB, unlimited} × parallelism {1, 4} against an
//! optimizer-off/unbudgeted/serial reference. Queries carry a total
//! `ORDER BY` (unique key combinations) so their output order is defined —
//! for order-free queries SQL leaves row order unspecified and the optimizer
//! documents the same.
//!
//! A proptest then hammers the same property over randomly generated
//! workload tables, and targeted tests pin the acceptance criteria: the
//! smallest relation becomes a hash-join build side, `EXPLAIN` reports
//! per-node rows and oracle-round-trip costs, and the block-nested-loop
//! right side stays paged under a budget.

use std::sync::Arc;

use proptest::prelude::*;

use sdb_engine::planner::execute_plan;
use sdb_engine::{ExecContext, MemoryBudget, SpEngine, UdfRegistry};
use sdb_sql::plan::{LogicalPlan, PlanBuilder};
use sdb_sql::{parse_sql, Statement};
use sdb_storage::{Catalog, ColumnDef, DataType, RecordBatch, Schema, Value};

fn mix(i: u64) -> u64 {
    i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31)
}

/// Three tables with heavily skewed sizes: `big` (fact), `mid`, `small`.
/// `big.grp` joins `mid.g`; `mid.h` joins `small.h`; `small` also matches
/// `big.sm` directly for star-shaped queries.
fn skewed_catalog(big_rows: usize, mid_rows: usize, small_rows: usize) -> Catalog {
    let catalog = Catalog::new();
    let big = catalog
        .create_table(
            "big",
            Schema::new(vec![
                ColumnDef::public("id", DataType::Int),
                ColumnDef::public("grp", DataType::Int),
                ColumnDef::public("sm", DataType::Int),
                ColumnDef::public("val", DataType::Int),
            ]),
        )
        .unwrap();
    {
        let mut t = big.write();
        for i in 0..big_rows {
            let r = mix(i as u64);
            t.insert_row(vec![
                Value::Int(i as i64),
                Value::Int((r % mid_rows.max(1) as u64) as i64),
                Value::Int((r % small_rows.max(1) as u64) as i64),
                Value::Int((r % 97) as i64),
            ])
            .unwrap();
        }
    }
    let mid = catalog
        .create_table(
            "mid",
            Schema::new(vec![
                ColumnDef::public("g", DataType::Int),
                ColumnDef::public("h", DataType::Int),
                ColumnDef::public("w", DataType::Int),
            ]),
        )
        .unwrap();
    {
        let mut t = mid.write();
        for i in 0..mid_rows {
            t.insert_row(vec![
                Value::Int(i as i64),
                Value::Int((i % small_rows.max(1)) as i64),
                Value::Int((mix(i as u64) % 31) as i64),
            ])
            .unwrap();
        }
    }
    let small = catalog
        .create_table(
            "small",
            Schema::new(vec![
                ColumnDef::public("h", DataType::Int),
                ColumnDef::public("label", DataType::Varchar),
            ]),
        )
        .unwrap();
    {
        let mut t = small.write();
        for i in 0..small_rows {
            t.insert_row(vec![Value::Int(i as i64), Value::Str(format!("s{i}"))])
                .unwrap();
        }
    }
    catalog
}

fn parse_plan(sql: &str) -> LogicalPlan {
    match parse_sql(sql).unwrap() {
        Statement::Query(q) => PlanBuilder::build(&q).unwrap(),
        other => panic!("expected query, got {other:?}"),
    }
}

fn run(
    catalog: &Catalog,
    sql: &str,
    optimizer: bool,
    budget: MemoryBudget,
    parallelism: usize,
) -> RecordBatch {
    let registry = UdfRegistry::with_sdb_udfs();
    let ctx = Arc::new(
        ExecContext::new(catalog, &registry, None)
            .with_optimizer(optimizer)
            .with_memory_budget(budget)
            .with_parallelism(parallelism),
    );
    let plan = parse_plan(sql);
    execute_plan(&ctx, &plan).unwrap_or_else(|e| panic!("query failed: {sql}: {e}"))
}

/// Multi-join queries with total ORDER BY keys, exercising reordered hash
/// joins, implicit joins through WHERE, LEFT joins above inner regions,
/// aggregation and subqueries.
const MATRIX_QUERIES: &[&str] = &[
    // 3-way chain, skewed sizes.
    "SELECT b.id, m.g, s.label FROM big b \
     JOIN mid m ON b.grp = m.g JOIN small s ON m.h = s.h \
     ORDER BY b.id, m.g",
    // Star: both dimensions join the fact directly.
    "SELECT b.id, m.g, s.label FROM big b \
     JOIN mid m ON b.grp = m.g JOIN small s ON b.sm = s.h \
     ORDER BY b.id, m.g",
    // Implicit joins: the region forms through the WHERE clause; the
    // single-table conjunct stays above the region.
    "SELECT b.id, s.label FROM big b, mid m, small s \
     WHERE b.grp = m.g AND m.h = s.h AND b.val > 40 \
     ORDER BY b.id, s.label",
    // Aggregation above the reordered region (ORDER BY on unique group key).
    "SELECT s.label, COUNT(*) AS n, SUM(b.val) AS total FROM big b \
     JOIN mid m ON b.grp = m.g JOIN small s ON m.h = s.h \
     GROUP BY s.label ORDER BY s.label",
    // LEFT JOIN above an inner region: only the region below reorders.
    "SELECT b.id, m.g, s.label FROM big b \
     JOIN mid m ON b.grp = m.g LEFT JOIN small s ON m.w = s.h \
     ORDER BY b.id, m.g",
    // Subquery over a second region.
    "SELECT b.id FROM big b JOIN mid m ON b.grp = m.g \
     WHERE b.val > (SELECT COUNT(*) FROM small) \
     ORDER BY b.id, m.g",
];

#[test]
fn optimizer_matches_syntactic_plans_across_knob_matrix() {
    let catalog = skewed_catalog(600, 40, 6);
    catalog.analyze_all().unwrap();

    for sql in MATRIX_QUERIES {
        let reference = run(&catalog, sql, false, MemoryBudget::unlimited(), 1);
        assert!(reference.num_rows() > 0, "degenerate matrix query: {sql}");
        for optimizer in [true, false] {
            for budget in [
                MemoryBudget::bytes(4 * 1024),
                MemoryBudget::bytes(64 * 1024),
                MemoryBudget::unlimited(),
            ] {
                for parallelism in [1usize, 4] {
                    let got = run(&catalog, sql, optimizer, budget.clone(), parallelism);
                    assert_eq!(
                        got, reference,
                        "optimizer={optimizer} budget={budget:?} \
                         parallelism={parallelism} diverged for: {sql}"
                    );
                }
            }
        }
    }
}

/// Kernels-on vs kernels-off byte-identity over *optimized* plans: the
/// vectorised fast paths must not change a byte even when join reordering
/// and selection pushdown have reshaped the plan, across the budget ×
/// parallelism matrix.
#[test]
fn kernels_match_scalar_across_optimized_matrix() {
    let catalog = skewed_catalog(600, 40, 6);
    catalog.analyze_all().unwrap();
    let registry = UdfRegistry::with_sdb_udfs();
    let run_v = |sql: &str, vectorised: bool, budget: MemoryBudget, parallelism: usize| {
        let ctx = Arc::new(
            ExecContext::new(&catalog, &registry, None)
                .with_vectorised(vectorised)
                .with_optimizer(true)
                .with_memory_budget(budget)
                .with_parallelism(parallelism),
        );
        let plan = parse_plan(sql);
        execute_plan(&ctx, &plan).unwrap_or_else(|e| panic!("query failed: {sql}: {e}"))
    };
    for sql in MATRIX_QUERIES {
        for budget in [
            MemoryBudget::bytes(4 * 1024),
            MemoryBudget::bytes(64 * 1024),
            MemoryBudget::unlimited(),
        ] {
            for parallelism in [1usize, 4] {
                let scalar = run_v(sql, false, budget.clone(), parallelism);
                let vectorised = run_v(sql, true, budget.clone(), parallelism);
                assert_eq!(
                    scalar, vectorised,
                    "kernels diverged (budget={budget:?} parallelism={parallelism}) for: {sql}"
                );
            }
        }
    }
}

#[test]
fn region_ambiguous_bare_name_keeps_syntactic_plan() {
    // `flag` is unique inside its original ON scope (a⋈b) but ambiguous
    // region-wide (a.flag and c.flag): the optimizer must keep the
    // syntactic plan rather than hoist the conjunct to where it no longer
    // resolves.
    let catalog = Catalog::new();
    for (name, cols) in [
        ("a", vec!["id", "flag", "va"]),
        ("b", vec!["id", "k", "vb"]),
        ("c", vec!["k", "flag", "vc"]),
    ] {
        let schema = Schema::new(
            cols.iter()
                .map(|c| ColumnDef::public(c, DataType::Int))
                .collect(),
        );
        let t = catalog.create_table(name, schema).unwrap();
        let mut guard = t.write();
        for i in 0..10i64 {
            guard
                .insert_row(vec![Value::Int(i % 5), Value::Int(i % 2), Value::Int(i)])
                .unwrap();
        }
    }
    catalog.analyze_all().unwrap();

    let sql = "SELECT a.va, b.vb, c.vc FROM a \
               JOIN b ON a.id = b.id AND flag = 1 \
               JOIN c ON b.k = c.k \
               ORDER BY a.va, b.vb, c.vc";
    let reference = run(&catalog, sql, false, MemoryBudget::unlimited(), 1);
    // Before the fix this errored with "ambiguous column reference flag".
    let got = run(&catalog, sql, true, MemoryBudget::unlimited(), 1);
    assert_eq!(got, reference);

    // The 3-leaf region containing the ambiguous conjunct must not be
    // reordered: `c` stays the outer join's right input, exactly as written.
    // (The unambiguous (a, b) sub-region may still re-plan internally — with
    // selection pushdown, `flag = 1` shrinks `a` into the cheaper build side
    // — so only the outer region's structure is pinned.)
    let plan = parse_plan(sql);
    let optimized = sdb_engine::Optimizer::new(&catalog).optimize(&plan);
    let rendered = optimized.describe();
    let positions: Vec<usize> = ["Scan(a)", "Scan(b)", "Scan(c)"]
        .iter()
        .map(|scan| rendered.find(scan).expect("all scans present"))
        .collect();
    assert!(
        positions[0] < positions[2] && positions[1] < positions[2],
        "region with an unresolvable conjunct must keep c outermost: {rendered}"
    );
}

#[test]
fn bare_limit_blocks_reordering_but_sorted_limit_does_not() {
    let catalog = skewed_catalog(200, 40, 6);
    catalog.analyze_all().unwrap();
    let optimizer = sdb_engine::Optimizer::new(&catalog);

    // LIMIT without ORDER BY: which rows survive the cutoff depends on the
    // production order, so the region must stay syntactic (otherwise the
    // result *set* changes, not just its order).
    let bare = parse_plan(
        "SELECT b.id, m.g, s.label FROM big b \
         JOIN mid m ON b.grp = m.g JOIN small s ON m.h = s.h LIMIT 3",
    );
    assert_eq!(
        optimizer.optimize(&bare).describe(),
        bare.describe(),
        "a bare LIMIT must block reordering below it"
    );
    let reference = {
        let registry = UdfRegistry::with_sdb_udfs();
        let ctx = Arc::new(
            ExecContext::new(&catalog, &registry, None)
                .with_optimizer(false)
                .with_parallelism(1),
        );
        execute_plan(&ctx, &bare).unwrap()
    };
    let got = {
        let registry = UdfRegistry::with_sdb_udfs();
        let ctx = Arc::new(
            ExecContext::new(&catalog, &registry, None)
                .with_optimizer(true)
                .with_parallelism(1),
        );
        execute_plan(&ctx, &bare).unwrap()
    };
    assert_eq!(got, reference, "bare-LIMIT result set must not change");

    // With a Sort pinned between LIMIT and the region, reordering is back on.
    let sorted = parse_plan(
        "SELECT b.id, m.g, s.label FROM big b \
         JOIN mid m ON b.grp = m.g JOIN small s ON m.h = s.h \
         ORDER BY b.id, m.g LIMIT 3",
    );
    assert_ne!(
        optimizer.optimize(&sorted).describe(),
        sorted.describe(),
        "an ordered LIMIT reorders as usual"
    );
}

#[test]
fn empty_tables_reorder_safely() {
    // Zero-row relations still have stats (row_count 0); reordered plans
    // must agree with syntactic ones on schema and emptiness.
    let catalog = skewed_catalog(50, 0, 0);
    catalog.analyze_all().unwrap();
    for sql in &MATRIX_QUERIES[..4] {
        let reference = run(&catalog, sql, false, MemoryBudget::unlimited(), 1);
        let got = run(&catalog, sql, true, MemoryBudget::bytes(4 * 1024), 2);
        assert_eq!(got, reference, "empty-table divergence for {sql}");
    }
}

#[test]
fn smallest_relation_becomes_hash_join_build_side() {
    let catalog = skewed_catalog(600, 40, 6);
    catalog.analyze_all().unwrap();
    // An explicit Optimizer (auto-analyze off) so a CI-level
    // SDB_TEST_ANALYZE cannot re-collect the stats this test clears below.
    let optimizer = sdb_engine::Optimizer::new(&catalog);

    let plan = parse_plan(MATRIX_QUERIES[0]);
    let optimized = optimizer.optimize(&plan);
    assert_ne!(
        optimized.describe(),
        plan.describe(),
        "stats present: the 3-way chain must reorder"
    );

    // `small` (6 rows) must sit as the right (= build) child of its join.
    fn small_is_right_child(plan: &LogicalPlan) -> bool {
        match plan {
            LogicalPlan::Join { left, right, .. } => {
                matches!(right.as_ref(), LogicalPlan::Scan { table, .. } if table == "small")
                    || small_is_right_child(left)
                    || small_is_right_child(right)
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Limit { input, .. } => small_is_right_child(input),
            LogicalPlan::Scan { .. } => false,
        }
    }
    assert!(
        small_is_right_child(&optimized),
        "smallest relation must be a build side: {}",
        optimized.describe()
    );

    // Without statistics the syntactic plan survives untouched.
    catalog.clear_stats("big");
    let untouched = optimizer.optimize(&plan);
    assert_eq!(untouched.describe(), plan.describe());
}

#[test]
fn analyze_and_explain_through_the_engine() {
    let engine = SpEngine::new().with_parallelism(1);
    engine
        .execute_sql("CREATE TABLE f (id INT, d INT, v INT)")
        .unwrap();
    engine
        .execute_sql("CREATE TABLE d (id INT, t INT)")
        .unwrap();
    engine
        .execute_sql("CREATE TABLE t (id INT, name VARCHAR(10))")
        .unwrap();
    for i in 0..200 {
        engine
            .execute_sql(&format!(
                "INSERT INTO f VALUES ({i}, {}, {})",
                i % 20,
                i % 7
            ))
            .unwrap();
    }
    for i in 0..20 {
        engine
            .execute_sql(&format!("INSERT INTO d VALUES ({i}, {})", i % 4))
            .unwrap();
    }
    for i in 0..4 {
        engine
            .execute_sql(&format!("INSERT INTO t VALUES ({i}, 'x{i}')"))
            .unwrap();
    }

    // ANALYZE through SQL returns one row per analyzed table.
    let out = engine.execute_sql("ANALYZE").unwrap();
    assert_eq!(out.batch.num_rows(), 3);
    assert_eq!(engine.catalog().table_stats("f").unwrap().row_count, 200);

    // EXPLAIN renders the physical tree plus per-node rows and costs
    // (oracle round trips included), without executing anything.
    let sql = "EXPLAIN SELECT f.id, t.name FROM f \
               JOIN d ON f.d = d.id JOIN t ON d.t = t.id \
               ORDER BY f.id";
    let out = engine.execute_sql(sql).unwrap();
    let lines: Vec<String> = out
        .batch
        .column(0)
        .values()
        .iter()
        .map(|v| v.as_str().unwrap().to_string())
        .collect();
    let text = lines.join("\n");
    assert!(text.contains("physical plan"), "{text}");
    assert!(text.contains("HashJoin"), "{text}");
    assert!(text.contains("rows≈"), "{text}");
    assert!(text.contains("trips="), "{text}");
    assert!(text.contains("total cost≈"), "{text}");
    // The smallest relation (t, 4 rows) is a build side in the reordered
    // physical tree: it appears as the second child of a HashJoin.
    assert!(text.contains("Join[Inner] (build = right child)"), "{text}");

    // The optimizer-off engine explains the syntactic plan.
    let syntactic = SpEngine::with_catalog(Arc::clone(engine.catalog())).with_optimizer(false);
    let off = syntactic.explain_sql(sql).unwrap().join("\n");
    assert!(off.contains("optimizer off"), "{off}");
}

#[test]
fn nested_loop_right_side_stays_paged_under_budget() {
    // A non-equi join forces the nested-loop operator; with a tiny budget
    // its right side must route through the pager (block-nested-loop) and
    // still match the in-memory answer byte for byte.
    let catalog = skewed_catalog(120, 60, 6);
    let sql = "SELECT b.id, m.g FROM big b JOIN mid m ON b.grp > m.g \
               WHERE m.g > 30 ORDER BY b.id, m.g";
    let reference = run(&catalog, sql, false, MemoryBudget::unlimited(), 1);

    let registry = UdfRegistry::with_sdb_udfs();
    let ctx = Arc::new(
        ExecContext::new(&catalog, &registry, None)
            .with_memory_budget(MemoryBudget::bytes(512))
            .with_parallelism(1),
    );
    let plan = parse_plan(sql);
    let got = execute_plan(&ctx, &plan).unwrap();
    assert_eq!(got, reference, "paged nested loop diverged");
    let stats = ctx.stats();
    assert!(
        stats.spill_bytes_written > 0,
        "512B budget must park the right side in the pager: {stats:?}"
    );
    assert!(
        stats.spill_bytes_read >= stats.spill_bytes_written,
        "each left batch re-reads the right pages: {stats:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random workload tables: optimizer-on results equal optimizer-off
    /// results for ordered multi-join queries at every budget.
    #[test]
    fn optimizer_identity_over_random_tables(
        big_rows in 1usize..200,
        mid_rows in 1usize..40,
        small_rows in 1usize..8,
        tiny_budget in any::<bool>(),
    ) {
        let catalog = skewed_catalog(big_rows, mid_rows, small_rows);
        catalog.analyze_all().unwrap();
        let budget = if tiny_budget {
            MemoryBudget::bytes(4 * 1024)
        } else {
            MemoryBudget::unlimited()
        };
        for sql in &MATRIX_QUERIES[..3] {
            let reference = run(&catalog, sql, false, MemoryBudget::unlimited(), 1);
            let got = run(&catalog, sql, true, budget.clone(), 2);
            prop_assert_eq!(
                &got,
                &reference,
                "optimizer diverged for {} at {} x {} x {} rows",
                sql, big_rows, mid_rows, small_rows
            );
        }
    }
}
