//! Vectorised execution kernels over the columnar batch representation.
//!
//! Each kernel compiles a *subset* of the scalar evaluator's surface against
//! an input schema, then evaluates entire [`sdb_storage::RecordBatch`]es over
//! pivoted [`sdb_storage::ColumnarColumn`]s — typed vectors plus validity
//! bitmaps — instead of per-row [`sdb_storage::Value`] interpretation. Three
//! kernel families exist:
//!
//! * [`select`] — predicate → selection [`sdb_storage::Bitmap`] for `Filter`;
//! * [`keys`] — join/group key rendering for hash join and aggregation;
//! * [`agg`] — global (no `GROUP BY`) SUM/COUNT/AVG/MIN/MAX folds.
//!
//! Compilation is conservative: anything that could *error* or call a UDF in
//! the scalar path (mixed-type comparisons, computed expressions, subqueries)
//! refuses to compile, so the kernels are infallible at evaluation time and
//! every observable — result bytes, error surfaces, oracle call counts — is
//! identical to the scalar path. Operators consult
//! [`ExecContext::vectorised`](crate::operators::ExecContext::vectorised)
//! (disabled via `SDB_TEST_SCALAR_EVAL=1`) and fall back to the scalar
//! interpreter whenever a kernel declines.

pub mod agg;
pub mod keys;
pub mod select;

pub use agg::GlobalAggKernel;
pub use keys::KeyColumns;
pub use select::CompiledPredicate;
