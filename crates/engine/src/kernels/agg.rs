//! Columnar aggregation kernels for global (no `GROUP BY`) aggregates.
//!
//! The scalar path materialises every aggregate argument as a per-row
//! [`Value`] inside a group state, then folds the vector in
//! `compute_aggregate`. For a global aggregate whose arguments are plain
//! column references, [`GlobalAggKernel`] skips both steps: it pivots each
//! argument column once and folds the typed vector directly — COUNT is a
//! validity popcount, SUM/AVG accumulate scaled `i128` units, MIN/MAX track a
//! best *index* so the reconstructed value is the exact [`Value`] variant the
//! scalar fold would keep (including its tie-breaking: `min_by` keeps the
//! first minimum, `max_by` the last maximum — visible when numerically equal
//! decimals differ in representation).
//!
//! Every fold mirrors `compute_aggregate` bit for bit, including the wrapping
//! `as i64` narrowing of SUM/AVG accumulators.

use num_bigint::BigUint;
use sdb_sql::ast::Expr;
use sdb_sql::plan::{AggFunc, AggregateExpr};
use sdb_storage::{ColumnDef, ColumnVector, ColumnarColumn, DataType, RecordBatch, Schema, Value};

use crate::operators::expr::sensitivity_of;

/// One compiled aggregate: the function plus its argument column (`None` for
/// `COUNT(*)`).
#[derive(Debug, Clone)]
enum AggPlan {
    CountStar,
    Count { col: usize },
    Sum { col: usize },
    Avg { col: usize },
    Min { col: usize },
    Max { col: usize },
}

/// A full global-aggregate plan compiled against an input schema.
#[derive(Debug, Clone)]
pub struct GlobalAggKernel {
    plans: Vec<AggPlan>,
}

impl GlobalAggKernel {
    /// Compiles a global aggregation; `agg_args[i]` is the *bound* argument
    /// expression for `aggregates[i]`. Returns `None` when any aggregate
    /// falls outside the kernel subset: a non-column argument, a `DISTINCT`
    /// qualifier on SUM/AVG/COUNT (MIN/MAX ignore it, matching the scalar
    /// fold), or an argument type the scalar fold would reject.
    pub fn compile(
        aggregates: &[AggregateExpr],
        agg_args: &[Expr],
        schema: &Schema,
    ) -> Option<GlobalAggKernel> {
        let mut plans = Vec::with_capacity(aggregates.len());
        for (agg, arg) in aggregates.iter().zip(agg_args) {
            if agg.func == AggFunc::Count && agg.arg.is_none() {
                plans.push(AggPlan::CountStar);
                continue;
            }
            if agg.distinct && !matches!(agg.func, AggFunc::Min | AggFunc::Max) {
                return None;
            }
            let Expr::Column(name) = arg else {
                return None;
            };
            let col = schema.index_of(name).ok()?;
            let data_type = schema.column_at(col).data_type;
            let numeric = matches!(
                data_type,
                DataType::Int | DataType::Decimal { .. } | DataType::Date | DataType::Bool
            );
            plans.push(match agg.func {
                AggFunc::Count => AggPlan::Count { col },
                // SUM over VARCHAR/TAG/ENC_ROW_ID errors in the scalar fold;
                // those stay scalar so the error surface is identical.
                AggFunc::Sum if numeric || data_type == DataType::Encrypted => AggPlan::Sum { col },
                AggFunc::Avg if numeric => AggPlan::Avg { col },
                // MIN/MAX use the total order, defined for every type.
                AggFunc::Min => AggPlan::Min { col },
                AggFunc::Max => AggPlan::Max { col },
                _ => return None,
            });
        }
        Some(GlobalAggKernel { plans })
    }

    /// Computes the single output row over `batch`, assembling the same
    /// schema `finalize_groups` infers (aggregate value types, `Int` for
    /// all-NULL columns). Returns `None` when any argument column's runtime
    /// contents are not typed — the per-batch scalar fallback.
    pub fn execute(
        &self,
        aggregates: &[AggregateExpr],
        batch: &RecordBatch,
    ) -> Option<RecordBatch> {
        let mut pivots: Vec<Option<ColumnarColumn>> = vec![None; batch.num_columns()];
        for plan in &self.plans {
            if let Some(col) = plan_column(plan) {
                if pivots[col].is_none() {
                    let pivot = ColumnarColumn::from_column(batch.column(col));
                    if !pivot.is_typed() {
                        return None;
                    }
                    pivots[col] = Some(pivot);
                }
            }
        }

        let n = batch.num_rows();
        let mut row = Vec::with_capacity(self.plans.len());
        for plan in &self.plans {
            row.push(match plan {
                AggPlan::CountStar => Value::Int(n as i64),
                AggPlan::Count { col } => {
                    let pivot = pivots[*col].as_ref()?;
                    Value::Int(pivot.validity().count_set() as i64)
                }
                AggPlan::Sum { col } => sum_column(pivots[*col].as_ref()?)?,
                AggPlan::Avg { col } => avg_column(pivots[*col].as_ref()?)?,
                AggPlan::Min { col } => min_max_column(pivots[*col].as_ref()?, false)?,
                AggPlan::Max { col } => min_max_column(pivots[*col].as_ref()?, true)?,
            });
        }

        let defs: Vec<ColumnDef> = aggregates
            .iter()
            .zip(&row)
            .map(|(agg, value)| {
                let data_type = value.data_type().unwrap_or(DataType::Int);
                ColumnDef {
                    name: agg.name.clone(),
                    data_type,
                    sensitivity: sensitivity_of(data_type),
                }
            })
            .collect();
        RecordBatch::from_rows(Schema::new(defs), vec![row]).ok()
    }
}

fn plan_column(plan: &AggPlan) -> Option<usize> {
    match plan {
        AggPlan::CountStar => None,
        AggPlan::Count { col }
        | AggPlan::Sum { col }
        | AggPlan::Avg { col }
        | AggPlan::Min { col }
        | AggPlan::Max { col } => Some(*col),
    }
}

/// `(units, scale)` of element `i`, as `Value::as_scaled_i128` sees it.
#[inline]
fn numeric_at(col: &ColumnarColumn, i: usize) -> Option<(i128, u8)> {
    match col.vector() {
        ColumnVector::Int(v) => Some((i128::from(v[i]), 0)),
        ColumnVector::Date(v) => Some((i128::from(v[i]), 0)),
        ColumnVector::Bool(bits) => Some((i128::from(bits.get(i)), 0)),
        ColumnVector::Decimal { units, scales, .. } => Some((i128::from(units[i]), scales[i])),
        _ => None,
    }
}

/// Rescales `units` from `scale` to `target`, the mirror of
/// `Value::as_scaled_i128` (truncating division when scaling down).
#[inline]
fn rescale(units: i128, scale: u8, target: u8) -> i128 {
    match scale.cmp(&target) {
        std::cmp::Ordering::Equal => units,
        std::cmp::Ordering::Less => units * 10i128.pow(u32::from(target - scale)),
        std::cmp::Ordering::Greater => units / 10i128.pow(u32::from(scale - target)),
    }
}

/// SUM over one typed column, mirroring the scalar fold: NULL for an all-NULL
/// column, big-integer share addition for ENCRYPTED, otherwise scaled `i128`
/// accumulation at the maximum element scale with a wrapping `as i64` narrow.
fn sum_column(col: &ColumnarColumn) -> Option<Value> {
    let validity = col.validity();
    if validity.count_set() == 0 {
        return Some(Value::Null);
    }
    if let ColumnVector::Encrypted(shares) = col.vector() {
        let mut acc = BigUint::from(0u32);
        for i in validity.iter_set() {
            acc += &shares[i];
        }
        return Some(Value::Encrypted(acc));
    }
    let scale = match col.vector() {
        ColumnVector::Decimal { scales, .. } => {
            validity.iter_set().map(|i| scales[i]).max().unwrap_or(0)
        }
        _ => 0,
    };
    let mut acc: i128 = 0;
    for i in validity.iter_set() {
        let (units, s) = numeric_at(col, i)?;
        acc += rescale(units, s, scale);
    }
    Some(if scale == 0 {
        Value::Int(acc as i64)
    } else {
        Value::Decimal {
            units: acc as i64,
            scale,
        }
    })
}

/// AVG over one typed numeric column: scale-4 accumulation, truncating mean.
fn avg_column(col: &ColumnarColumn) -> Option<Value> {
    let validity = col.validity();
    let count = validity.count_set();
    if count == 0 {
        return Some(Value::Null);
    }
    let mut acc: i128 = 0;
    for i in validity.iter_set() {
        let (units, s) = numeric_at(col, i)?;
        acc += rescale(units, s, 4);
    }
    Some(Value::Decimal {
        units: (acc / count as i128) as i64,
        scale: 4,
    })
}

/// MIN/MAX over one typed column via index tracking, mirroring
/// `Value::cmp_total` and the scalar fold's tie rules: MIN keeps the *first*
/// minimal element, MAX keeps the *last* maximal one.
fn min_max_column(col: &ColumnarColumn, max: bool) -> Option<Value> {
    let mut best: Option<usize> = None;
    for i in col.validity().iter_set() {
        best = Some(match best {
            None => i,
            Some(b) => {
                let ord = cmp_elements(col, i, b)?;
                let replace = if max {
                    // `max_by` keeps the last of equals.
                    ord != std::cmp::Ordering::Less
                } else {
                    // `min_by` keeps the first of equals.
                    ord == std::cmp::Ordering::Less
                };
                if replace {
                    i
                } else {
                    b
                }
            }
        });
    }
    Some(match best {
        Some(i) => col.value_at(i),
        None => Value::Null,
    })
}

/// `Value::cmp_total` over two elements of one typed column (same type class
/// by construction, so the cross-type rank fallback reduces to `Equal` for
/// encrypted row ids and never otherwise applies).
fn cmp_elements(col: &ColumnarColumn, a: usize, b: usize) -> Option<std::cmp::Ordering> {
    use std::cmp::Ordering;
    Some(match col.vector() {
        ColumnVector::Int(v) => v[a].cmp(&v[b]),
        ColumnVector::Date(v) => v[a].cmp(&v[b]),
        ColumnVector::Bool(bits) => bits.get(a).cmp(&bits.get(b)),
        ColumnVector::Decimal { units, scales, .. } => {
            let target = scales[a].max(scales[b]);
            rescale(i128::from(units[a]), scales[a], target).cmp(&rescale(
                i128::from(units[b]),
                scales[b],
                target,
            ))
        }
        ColumnVector::Str { .. } => col
            .str_at(a)
            .expect("validity-checked string element")
            .cmp(col.str_at(b).expect("validity-checked string element")),
        ColumnVector::Tag(v) => v[a].cmp(&v[b]),
        ColumnVector::Encrypted(v) => v[a].cmp(&v[b]),
        // cmp_total ranks all encrypted row ids equally.
        ColumnVector::EncryptedRowId(_) => Ordering::Equal,
        ColumnVector::Values(_) => return None,
    })
}
