//! Vectorised key rendering for hash joins and aggregate grouping.
//!
//! The scalar paths render one key string per row by evaluating each key
//! expression through the interpreter and formatting with
//! [`join_key_component`]. When every key expression is a plain column
//! reference, [`KeyColumns`] pivots the referenced columns once and renders
//! components with typed per-column loops — no interpreter dispatch and no
//! per-row [`sdb_storage::Value`] clones. Rendered keys are byte-identical to
//! the scalar path's:
//!
//! * **join mode** ([`KeyColumns::join_keys`]): `None` for any row with a
//!   NULL component (NULL join keys never match);
//! * **group mode** ([`KeyColumns::group_keys`]): NULL components render as
//!   the `join_key_component` NULL sentinel, so NULL groups exist.

use sdb_sql::ast::Expr;
use sdb_storage::{ColumnVector, ColumnarColumn, RecordBatch, Schema};

use crate::operators::expr::join_key_component;

/// The component separator the scalar paths use between key parts.
const SEPARATOR: &str = "\u{1f}";

/// A set of key expressions compiled to column indices.
#[derive(Debug, Clone)]
pub struct KeyColumns {
    idxs: Vec<usize>,
}

impl KeyColumns {
    /// Compiles key expressions against a schema; `None` unless every
    /// expression is a resolvable plain column reference (computed keys stay
    /// on the scalar path).
    pub fn compile(exprs: &[Expr], schema: &Schema) -> Option<KeyColumns> {
        let mut idxs = Vec::with_capacity(exprs.len());
        for e in exprs {
            let Expr::Column(name) = e else {
                return None;
            };
            idxs.push(schema.index_of(name).ok()?);
        }
        Some(KeyColumns { idxs })
    }

    /// Pivots the referenced columns; `None` when any is not typed.
    fn pivot(&self, batch: &RecordBatch) -> Option<Vec<ColumnarColumn>> {
        let mut cols = Vec::with_capacity(self.idxs.len());
        for &idx in &self.idxs {
            let pivot = ColumnarColumn::from_column(batch.column(idx));
            if !pivot.is_typed() {
                return None;
            }
            cols.push(pivot);
        }
        Some(cols)
    }

    /// Renders the join key for every row: `None` for rows with any NULL
    /// component. Returns `None` (kernel refusal → scalar fallback) when any
    /// referenced column is not typed.
    pub fn join_keys(&self, batch: &RecordBatch) -> Option<Vec<Option<String>>> {
        let cols = self.pivot(batch)?;
        let parts: Vec<Vec<Option<String>>> = cols.iter().map(render_components).collect();
        let n = batch.num_rows();
        let mut out = Vec::with_capacity(n);
        'rows: for row in 0..n {
            let mut key = String::new();
            for (c, col_parts) in parts.iter().enumerate() {
                let Some(part) = &col_parts[row] else {
                    out.push(None);
                    continue 'rows;
                };
                if c > 0 {
                    key.push_str(SEPARATOR);
                }
                key.push_str(part);
            }
            out.push(Some(key));
        }
        Some(out)
    }

    /// Renders the group key for every row: NULL components render as the
    /// NULL sentinel (NULL groups exist, matching the scalar grouping path).
    /// Returns `None` when any referenced column is not typed.
    pub fn group_keys(&self, batch: &RecordBatch) -> Option<Vec<String>> {
        let cols = self.pivot(batch)?;
        let parts: Vec<Vec<Option<String>>> = cols.iter().map(render_components).collect();
        let null_sentinel = join_key_component(&sdb_storage::Value::Null);
        let n = batch.num_rows();
        let mut out = Vec::with_capacity(n);
        for row in 0..n {
            let mut key = String::new();
            for (c, col_parts) in parts.iter().enumerate() {
                if c > 0 {
                    key.push_str(SEPARATOR);
                }
                match &col_parts[row] {
                    Some(part) => key.push_str(part),
                    None => key.push_str(&null_sentinel),
                }
            }
            out.push(key);
        }
        Some(out)
    }

    /// The compiled column indices (group-value reconstruction).
    pub fn indices(&self) -> &[usize] {
        &self.idxs
    }
}

/// Renders every element of one typed column as its `join_key_component`
/// string (`None` for NULLs), with one typed loop per vector variant instead
/// of per-element enum dispatch.
fn render_components(col: &ColumnarColumn) -> Vec<Option<String>> {
    let n = col.len();
    let validity = col.validity();
    let mut out: Vec<Option<String>> = vec![None; n];
    match col.vector() {
        // Numerics render as `n{scaled}` with the scalar path's fixed target
        // scale of 4: `as_scaled_i128(4)` upscales integers by 10^4 and
        // rescales decimals exactly as `upscale_to_4` mirrors below.
        ColumnVector::Int(v) => {
            for i in validity.iter_set() {
                out[i] = Some(format!("n{}", i128::from(v[i]) * 10_000));
            }
        }
        ColumnVector::Date(v) => {
            for i in validity.iter_set() {
                out[i] = Some(format!("n{}", i128::from(v[i]) * 10_000));
            }
        }
        ColumnVector::Bool(bits) => {
            for i in validity.iter_set() {
                out[i] = Some(format!("n{}", i128::from(bits.get(i)) * 10_000));
            }
        }
        ColumnVector::Decimal { units, scales, .. } => {
            for i in validity.iter_set() {
                out[i] = Some(format!("n{}", upscale_to_4(units[i], scales[i])));
            }
        }
        ColumnVector::Str { .. } => {
            for i in validity.iter_set() {
                let s = col.str_at(i).expect("validity-checked string element");
                out[i] = Some(format!("s{s}"));
            }
        }
        ColumnVector::Tag(v) => {
            for i in validity.iter_set() {
                out[i] = Some(format!("t{}", v[i]));
            }
        }
        ColumnVector::Encrypted(v) => {
            for i in validity.iter_set() {
                out[i] = Some(format!("e{}", v[i]));
            }
        }
        // Encrypted row ids format through the full `Value` debug rendering;
        // reconstruct the value exactly as the scalar path sees it.
        ColumnVector::EncryptedRowId(_) => {
            for i in validity.iter_set() {
                out[i] = Some(join_key_component(&col.value_at(i)));
            }
        }
        // Untyped columns never reach here (`pivot` refuses them), but render
        // via the scalar helper for safety.
        ColumnVector::Values(_) => {
            for (i, slot) in out.iter_mut().enumerate() {
                let v = col.value_at(i);
                if !v.is_null() {
                    *slot = Some(join_key_component(&v));
                }
            }
        }
    }
    out
}

/// `Value::as_scaled_i128(4)` for a decimal in `(units, scale)` form:
/// upscales when the scale is below 4, truncating-divides above it.
#[inline]
fn upscale_to_4(units: i64, scale: u8) -> i128 {
    let units = i128::from(units);
    match scale.cmp(&4) {
        std::cmp::Ordering::Equal => units,
        std::cmp::Ordering::Less => units * 10i128.pow(u32::from(4 - scale)),
        std::cmp::Ordering::Greater => units / 10i128.pow(u32::from(scale - 4)),
    }
}
