//! Selection kernels: compiled predicates evaluated column-at-a-time into
//! selection [`Bitmap`]s.
//!
//! [`CompiledPredicate::compile`] accepts only the *infallible* predicate
//! fragment of the expression language — comparisons, `AND`/`OR`/`NOT`,
//! `BETWEEN`, `IN (list)`, `LIKE`, `IS [NOT] NULL` over column references and
//! literals. Nothing a compiled node can evaluate raises an error or calls a
//! UDF, which is what makes *eager* Kleene evaluation byte-identical to the
//! evaluator's short-circuiting three-valued logic: short-circuiting is only
//! observable through errors and UDF-call counts, and compiled nodes produce
//! neither. Anything else (arithmetic, functions, CASE, subqueries, mixed-type
//! comparisons that the scalar path would reject) refuses to compile, sending
//! the batch down the scalar path — including its error surface.
//!
//! Evaluation works on [`ColumnarColumn`] pivots and tracks each subtree as a
//! pair of bitmaps (`true` rows, `false` rows); rows in neither are NULL.
//! `AND`/`OR`/`NOT` then reduce to word-wise bitmap algebra, and the final
//! selection is the root's `true` bitmap (SQL filters drop NULL rows).

use sdb_sql::ast::{BinaryOp, Expr, Literal, UnaryOp};
use sdb_storage::{Bitmap, ColumnVector, ColumnarColumn, DataType, RecordBatch, Schema};

use crate::eval::like_match;

/// A numeric operand: a pivoted column or a literal in `(units, scale)` form.
#[derive(Debug, Clone)]
enum NumOperand {
    Col(usize),
    Lit { units: i128, scale: u8 },
}

/// A string operand: a pivoted VARCHAR column or a string literal.
#[derive(Debug, Clone)]
enum StrOperand {
    Col(usize),
    Lit(String),
}

/// A compiled predicate node. Every node is infallible and UDF-free by
/// construction.
#[derive(Debug, Clone)]
enum Node {
    /// Numeric comparison (INT/DECIMAL/DATE/BOOL operands, compared in
    /// common scaled units exactly like `Value::as_scaled_i128`).
    CmpNum {
        op: BinaryOp,
        left: NumOperand,
        right: NumOperand,
    },
    /// String comparison.
    CmpStr {
        op: BinaryOp,
        left: StrOperand,
        right: StrOperand,
    },
    And(Box<Node>, Box<Node>),
    Or(Box<Node>, Box<Node>),
    Not(Box<Node>),
    /// `col IS [NOT] NULL` — reads only the validity bitmap.
    IsNull {
        col: usize,
        negated: bool,
    },
    /// `num_col [NOT] IN (...)`: numeric candidates in `(units, scale)` form;
    /// `saw_null` records a NULL candidate (match failure yields NULL).
    InListNum {
        col: usize,
        candidates: Vec<(i128, u8)>,
        saw_null: bool,
        negated: bool,
    },
    /// `str_col [NOT] IN (...)`.
    InListStr {
        col: usize,
        candidates: Vec<String>,
        saw_null: bool,
        negated: bool,
    },
    /// `str_col [NOT] LIKE pattern`.
    Like {
        col: usize,
        pattern: String,
        negated: bool,
    },
    /// A bare BOOL column used as a predicate.
    BoolCol(usize),
    /// A constant three-valued result (TRUE/FALSE/NULL literal, or a
    /// comparison against a NULL literal).
    Const(Option<bool>),
}

/// Three-valued result of a predicate subtree over a batch: rows that are
/// definitely true and rows that are definitely false; rows in neither bitmap
/// are NULL.
struct Tri {
    t: Bitmap,
    f: Bitmap,
}

/// Static operand classes a kernel comparison can handle. INT, DECIMAL, DATE
/// and BOOL all compare numerically in the scalar path (BOOL-vs-BOOL compares
/// directly, but `false < true` agrees with `0 < 1`), so they share one class.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Class {
    Num,
    Str,
}

/// A predicate compiled against a batch schema, ready to evaluate over the
/// pivoted columns of any batch with that schema.
#[derive(Debug, Clone)]
pub struct CompiledPredicate {
    node: Node,
    /// Indices of every referenced column (deduplicated), pivoted once per
    /// batch at evaluation time.
    columns: Vec<usize>,
}

impl CompiledPredicate {
    /// Compiles `expr` against `schema`, or `None` when any fragment falls
    /// outside the infallible kernel subset (the caller then uses the scalar
    /// evaluator, which also owns the error surface).
    pub fn compile(expr: &Expr, schema: &Schema) -> Option<CompiledPredicate> {
        let node = compile_node(expr, schema)?;
        let mut columns = Vec::new();
        collect_columns(&node, &mut columns);
        columns.sort_unstable();
        columns.dedup();
        Some(CompiledPredicate { node, columns })
    }

    /// Evaluates the predicate over `batch` into a selection bitmap (bit set =
    /// keep the row; NULL and FALSE rows are clear, per SQL filter semantics).
    /// Returns `None` when any referenced column's runtime contents are not
    /// homogeneous with its declared type — the per-batch scalar fallback.
    pub fn selection(&self, batch: &RecordBatch) -> Option<Bitmap> {
        let mut cols: Vec<Option<ColumnarColumn>> = vec![None; batch.num_columns()];
        for &idx in &self.columns {
            let pivot = ColumnarColumn::from_column(batch.column(idx));
            if !pivot.is_typed() {
                return None;
            }
            cols[idx] = Some(pivot);
        }
        let tri = eval_node(&self.node, &cols, batch.num_rows())?;
        Some(tri.t)
    }
}

fn collect_columns(node: &Node, out: &mut Vec<usize>) {
    match node {
        Node::CmpNum { left, right, .. } => {
            if let NumOperand::Col(i) = left {
                out.push(*i);
            }
            if let NumOperand::Col(i) = right {
                out.push(*i);
            }
        }
        Node::CmpStr { left, right, .. } => {
            if let StrOperand::Col(i) = left {
                out.push(*i);
            }
            if let StrOperand::Col(i) = right {
                out.push(*i);
            }
        }
        Node::And(a, b) | Node::Or(a, b) => {
            collect_columns(a, out);
            collect_columns(b, out);
        }
        Node::Not(a) => collect_columns(a, out),
        Node::IsNull { col, .. }
        | Node::InListNum { col, .. }
        | Node::InListStr { col, .. }
        | Node::Like { col, .. }
        | Node::BoolCol(col) => out.push(*col),
        Node::Const(_) => {}
    }
}

/// The static class of a column or literal operand; `None` rejects the
/// expression (kernels never guess about types the scalar path would error
/// on).
fn class_of_column(schema: &Schema, name: &str) -> Option<(usize, Class)> {
    let idx = schema.index_of(name).ok()?;
    let class = match schema.column_at(idx).data_type {
        DataType::Int | DataType::Decimal { .. } | DataType::Date | DataType::Bool => Class::Num,
        DataType::Varchar => Class::Str,
        _ => return None,
    };
    Some((idx, class))
}

/// A literal in `(units, scale)` form, mirroring `Value::as_scaled_i128`'s
/// source representation. `None` for non-numeric literals.
fn numeric_literal(lit: &Literal) -> Option<(i128, u8)> {
    match lit {
        Literal::Int(v) => Some((i128::from(*v), 0)),
        Literal::Decimal { units, scale } => Some((i128::from(*units), *scale)),
        Literal::Date(d) => Some((i128::from(*d), 0)),
        Literal::Bool(b) => Some((i128::from(*b), 0)),
        _ => None,
    }
}

/// One side of a comparison: only column references and literals qualify
/// (anything else could error or call a UDF during evaluation).
enum Side<'a> {
    Col(usize, Class),
    Lit(&'a Literal),
}

fn side_of<'a>(expr: &'a Expr, schema: &Schema) -> Option<Side<'a>> {
    match expr {
        Expr::Column(name) => {
            let (idx, class) = class_of_column(schema, name)?;
            Some(Side::Col(idx, class))
        }
        Expr::Literal(lit) => Some(Side::Lit(lit)),
        _ => None,
    }
}

fn class_of_side(side: &Side<'_>) -> Option<Class> {
    match side {
        Side::Col(_, class) => Some(*class),
        Side::Lit(lit) => match lit {
            Literal::Int(_) | Literal::Decimal { .. } | Literal::Date(_) | Literal::Bool(_) => {
                Some(Class::Num)
            }
            Literal::Str(_) => Some(Class::Str),
            Literal::Null => None,
        },
    }
}

/// Compiles a comparison between two sides. A NULL literal on either side
/// makes the whole comparison NULL for every row (the evaluator
/// null-propagates *before* any type checking), so it compiles to a constant.
fn compile_compare(op: BinaryOp, left: &Expr, right: &Expr, schema: &Schema) -> Option<Node> {
    let l = side_of(left, schema)?;
    let r = side_of(right, schema)?;
    if matches!(l, Side::Lit(Literal::Null)) || matches!(r, Side::Lit(Literal::Null)) {
        return Some(Node::Const(None));
    }
    let (lc, rc) = (class_of_side(&l)?, class_of_side(&r)?);
    if lc != rc {
        // Mixed classes error in the scalar path; let it raise.
        return None;
    }
    match lc {
        Class::Num => {
            let to_num = |s: Side<'_>| -> Option<NumOperand> {
                match s {
                    Side::Col(idx, _) => Some(NumOperand::Col(idx)),
                    Side::Lit(lit) => {
                        let (units, scale) = numeric_literal(lit)?;
                        Some(NumOperand::Lit { units, scale })
                    }
                }
            };
            Some(Node::CmpNum {
                op,
                left: to_num(l)?,
                right: to_num(r)?,
            })
        }
        Class::Str => {
            let to_str = |s: Side<'_>| -> Option<StrOperand> {
                match s {
                    Side::Col(idx, _) => Some(StrOperand::Col(idx)),
                    Side::Lit(Literal::Str(v)) => Some(StrOperand::Lit(v.clone())),
                    Side::Lit(_) => None,
                }
            };
            Some(Node::CmpStr {
                op,
                left: to_str(l)?,
                right: to_str(r)?,
            })
        }
    }
}

fn compile_node(expr: &Expr, schema: &Schema) -> Option<Node> {
    match expr {
        // A bare column predicate must be BOOL; other declared types error in
        // `evaluate_predicate`, so they stay scalar.
        Expr::Column(name) => {
            let idx = schema.index_of(name).ok()?;
            match schema.column_at(idx).data_type {
                DataType::Bool => Some(Node::BoolCol(idx)),
                _ => None,
            }
        }
        Expr::Literal(Literal::Bool(b)) => Some(Node::Const(Some(*b))),
        Expr::Literal(Literal::Null) => Some(Node::Const(None)),
        Expr::Literal(_) => None,
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => Some(Node::Not(Box::new(compile_node(expr, schema)?))),
        Expr::Binary { left, op, right } => match op {
            BinaryOp::And => Some(Node::And(
                Box::new(compile_node(left, schema)?),
                Box::new(compile_node(right, schema)?),
            )),
            BinaryOp::Or => Some(Node::Or(
                Box::new(compile_node(left, schema)?),
                Box::new(compile_node(right, schema)?),
            )),
            op if op.is_comparison() => compile_compare(*op, left, right, schema),
            _ => None,
        },
        // BETWEEN desugars exactly as the evaluator does: `e >= low AND
        // e <= high`, negated afterwards. Both bounds always evaluate in the
        // scalar path (no short-circuit), and compiled comparisons are
        // infallible, so the eager AND is byte-identical.
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let ge = compile_compare(BinaryOp::GtEq, expr, low, schema)?;
            let le = compile_compare(BinaryOp::LtEq, expr, high, schema)?;
            let both = Node::And(Box::new(ge), Box::new(le));
            Some(if *negated {
                Node::Not(Box::new(both))
            } else {
                both
            })
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let Expr::Column(name) = expr.as_ref() else {
                return None;
            };
            let (col, class) = class_of_column(schema, name)?;
            let mut saw_null = false;
            match class {
                Class::Num => {
                    let mut candidates = Vec::new();
                    for item in list {
                        let Expr::Literal(lit) = item else {
                            return None;
                        };
                        match lit {
                            Literal::Null => saw_null = true,
                            // A string candidate can never equal a numeric
                            // value (`values_equal` falls through to the
                            // numeric pairing, which fails → false).
                            Literal::Str(_) => {}
                            _ => candidates.push(numeric_literal(lit)?),
                        }
                    }
                    Some(Node::InListNum {
                        col,
                        candidates,
                        saw_null,
                        negated: *negated,
                    })
                }
                Class::Str => {
                    let mut candidates = Vec::new();
                    for item in list {
                        let Expr::Literal(lit) = item else {
                            return None;
                        };
                        match lit {
                            Literal::Null => saw_null = true,
                            Literal::Str(s) => candidates.push(s.clone()),
                            // Numeric candidates never equal a string value.
                            _ => {}
                        }
                    }
                    Some(Node::InListStr {
                        col,
                        candidates,
                        saw_null,
                        negated: *negated,
                    })
                }
            }
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let Expr::Column(name) = expr.as_ref() else {
                return None;
            };
            let (col, class) = class_of_column(schema, name)?;
            if class != Class::Str {
                // Non-string LIKE operands error in the scalar path.
                return None;
            }
            Some(Node::Like {
                col,
                pattern: pattern.clone(),
                negated: *negated,
            })
        }
        Expr::IsNull { expr, negated } => {
            let Expr::Column(name) = expr.as_ref() else {
                return None;
            };
            // IS NULL works for every declared type: it reads only the
            // validity bitmap.
            let idx = schema.index_of(name).ok()?;
            Some(Node::IsNull {
                col: idx,
                negated: *negated,
            })
        }
        _ => None,
    }
}

/// A typed numeric accessor over a pivoted column or literal, yielding
/// `(units, scale)` pairs exactly as `Value::as_scaled_i128` would see them.
enum NumView<'a> {
    I64(&'a [i64]),
    I32(&'a [i32]),
    Bits(&'a Bitmap),
    Dec { units: &'a [i64], scales: &'a [u8] },
    Lit { units: i128, scale: u8 },
}

impl NumView<'_> {
    #[inline]
    fn at(&self, i: usize) -> (i128, u8) {
        match self {
            NumView::I64(v) => (i128::from(v[i]), 0),
            NumView::I32(v) => (i128::from(v[i]), 0),
            NumView::Bits(bits) => (i128::from(bits.get(i)), 0),
            NumView::Dec { units, scales } => (i128::from(units[i]), scales[i]),
            NumView::Lit { units, scale } => (*units, *scale),
        }
    }
}

/// Rescales `units` from `scale` up to `target` — the mirror of
/// `Value::as_scaled_i128` for the upscaling case (comparisons always scale
/// both sides *up* to the pairwise maximum, so downscaling never occurs).
#[inline]
fn upscale(units: i128, scale: u8, target: u8) -> i128 {
    debug_assert!(target >= scale);
    if target == scale {
        units
    } else {
        units * 10i128.pow(u32::from(target - scale))
    }
}

#[inline]
fn ordering_matches(op: BinaryOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering;
    match op {
        BinaryOp::Eq => ord == Ordering::Equal,
        BinaryOp::NotEq => ord != Ordering::Equal,
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::LtEq => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::GtEq => ord != Ordering::Less,
        _ => unreachable!("compile only emits comparison operators"),
    }
}

fn num_view<'a>(operand: &NumOperand, cols: &'a [Option<ColumnarColumn>]) -> Option<NumView<'a>> {
    match operand {
        NumOperand::Lit { units, scale } => Some(NumView::Lit {
            units: *units,
            scale: *scale,
        }),
        NumOperand::Col(idx) => match cols[*idx].as_ref()?.vector() {
            ColumnVector::Int(v) => Some(NumView::I64(v)),
            ColumnVector::Date(v) => Some(NumView::I32(v)),
            ColumnVector::Bool(bits) => Some(NumView::Bits(bits)),
            ColumnVector::Decimal { units, scales, .. } => Some(NumView::Dec { units, scales }),
            _ => None,
        },
    }
}

/// Validity of an operand: literals are always valid.
fn operand_validity(col: Option<usize>, cols: &[Option<ColumnarColumn>]) -> Option<&Bitmap> {
    col.and_then(|idx| cols[idx].as_ref()).map(|c| c.validity())
}

/// Combined validity of two operands (`None` = every row valid).
/// The string at row `i` of a string operand — the column element for a
/// column operand (caller guarantees validity), the literal otherwise.
fn str_operand_at<'a>(
    operand: &'a StrOperand,
    cols: &'a [Option<ColumnarColumn>],
    i: usize,
) -> &'a str {
    match operand {
        StrOperand::Col(idx) => cols[*idx]
            .as_ref()
            .and_then(|c| c.str_at(i))
            .expect("validity-checked string element"),
        StrOperand::Lit(s) => s.as_str(),
    }
}

fn pair_validity(
    left: Option<usize>,
    right: Option<usize>,
    cols: &[Option<ColumnarColumn>],
) -> Option<Bitmap> {
    match (operand_validity(left, cols), operand_validity(right, cols)) {
        (Some(a), Some(b)) => Some(a.and(b)),
        (Some(a), None) | (None, Some(a)) => Some(a.clone()),
        (None, None) => None,
    }
}

/// Runs `decide` for every valid row, filing the row into the true or false
/// bitmap. Rows outside `valid` are NULL (in neither).
fn for_valid(n: usize, valid: Option<Bitmap>, mut decide: impl FnMut(usize) -> bool) -> Tri {
    let mut t = Bitmap::new_clear(n);
    let mut f = Bitmap::new_clear(n);
    match &valid {
        Some(valid) => {
            for i in valid.iter_set() {
                if decide(i) {
                    t.set(i, true);
                } else {
                    f.set(i, true);
                }
            }
        }
        None => {
            for i in 0..n {
                if decide(i) {
                    t.set(i, true);
                } else {
                    f.set(i, true);
                }
            }
        }
    }
    Tri { t, f }
}

fn eval_node(node: &Node, cols: &[Option<ColumnarColumn>], n: usize) -> Option<Tri> {
    Some(match node {
        Node::Const(v) => {
            let t = if *v == Some(true) {
                Bitmap::new_set(n)
            } else {
                Bitmap::new_clear(n)
            };
            let f = if *v == Some(false) {
                Bitmap::new_set(n)
            } else {
                Bitmap::new_clear(n)
            };
            Tri { t, f }
        }
        Node::BoolCol(idx) => {
            let col = cols[*idx].as_ref()?;
            let ColumnVector::Bool(bits) = col.vector() else {
                return None;
            };
            Tri {
                t: bits.and(col.validity()),
                f: col.validity().and_not(bits),
            }
        }
        Node::IsNull { col, negated } => {
            let validity = cols[*col].as_ref()?.validity();
            // IS NULL: true where invalid; IS NOT NULL swaps. Never NULL.
            if *negated {
                Tri {
                    t: validity.clone(),
                    f: validity.not(),
                }
            } else {
                Tri {
                    t: validity.not(),
                    f: validity.clone(),
                }
            }
        }
        Node::Not(inner) => {
            let tri = eval_node(inner, cols, n)?;
            Tri { t: tri.f, f: tri.t }
        }
        // Kleene AND: true where both true; false where either false; NULL
        // otherwise. Identical to the evaluator's short-circuiting logic
        // because compiled children are infallible and side-effect-free.
        Node::And(a, b) => {
            let (a, b) = (eval_node(a, cols, n)?, eval_node(b, cols, n)?);
            Tri {
                t: a.t.and(&b.t),
                f: a.f.or(&b.f),
            }
        }
        Node::Or(a, b) => {
            let (a, b) = (eval_node(a, cols, n)?, eval_node(b, cols, n)?);
            Tri {
                t: a.t.or(&b.t),
                f: a.f.and(&b.f),
            }
        }
        Node::CmpNum { op, left, right } => {
            let (lv, rv) = (num_view(left, cols)?, num_view(right, cols)?);
            let valid = pair_validity(
                match left {
                    NumOperand::Col(i) => Some(*i),
                    NumOperand::Lit { .. } => None,
                },
                match right {
                    NumOperand::Col(i) => Some(*i),
                    NumOperand::Lit { .. } => None,
                },
                cols,
            );
            for_valid(n, valid, |i| {
                let (ul, sl) = lv.at(i);
                let (ur, sr) = rv.at(i);
                let ord = if sl == sr {
                    ul.cmp(&ur)
                } else {
                    let target = sl.max(sr);
                    upscale(ul, sl, target).cmp(&upscale(ur, sr, target))
                };
                ordering_matches(*op, ord)
            })
        }
        Node::CmpStr { op, left, right } => {
            let str_view = |operand: &StrOperand| -> Option<Option<usize>> {
                match operand {
                    StrOperand::Col(idx) => {
                        matches!(cols[*idx].as_ref()?.vector(), ColumnVector::Str { .. })
                            .then_some(Some(*idx))
                    }
                    StrOperand::Lit(_) => Some(None),
                }
            };
            let (lc, rc) = (str_view(left)?, str_view(right)?);
            let valid = pair_validity(lc, rc, cols);
            for_valid(n, valid, |i| {
                ordering_matches(
                    *op,
                    str_operand_at(left, cols, i).cmp(str_operand_at(right, cols, i)),
                )
            })
        }
        Node::InListNum {
            col,
            candidates,
            saw_null,
            negated,
        } => {
            let operand = NumOperand::Col(*col);
            let view = num_view(&operand, cols)?;
            let valid = cols[*col].as_ref()?.validity().clone();
            in_list(n, valid, *saw_null, *negated, |i| {
                let (u, s) = view.at(i);
                candidates.iter().any(|&(cu, cs)| {
                    if s == cs {
                        u == cu
                    } else {
                        let target = s.max(cs);
                        upscale(u, s, target) == upscale(cu, cs, target)
                    }
                })
            })
        }
        Node::InListStr {
            col,
            candidates,
            saw_null,
            negated,
        } => {
            let column = cols[*col].as_ref()?;
            if !matches!(column.vector(), ColumnVector::Str { .. }) {
                return None;
            }
            let valid = column.validity().clone();
            in_list(n, valid, *saw_null, *negated, |i| {
                let s = column.str_at(i).expect("validity-checked string element");
                candidates.iter().any(|c| c == s)
            })
        }
        Node::Like {
            col,
            pattern,
            negated,
        } => {
            let column = cols[*col].as_ref()?;
            if !matches!(column.vector(), ColumnVector::Str { .. }) {
                return None;
            }
            let valid = column.validity().clone();
            for_valid(n, Some(valid), |i| {
                let s = column.str_at(i).expect("validity-checked string element");
                like_match(pattern, s) != *negated
            })
        }
    })
}

/// IN-list result shaping: NULL operand → NULL; match → `!negated`; no match
/// with a NULL candidate → NULL; otherwise `negated` (i.e. `maybe_negate` of
/// FALSE).
fn in_list(
    n: usize,
    valid: Bitmap,
    saw_null: bool,
    negated: bool,
    mut matches: impl FnMut(usize) -> bool,
) -> Tri {
    let mut t = Bitmap::new_clear(n);
    let mut f = Bitmap::new_clear(n);
    for i in valid.iter_set() {
        if matches(i) {
            if negated {
                f.set(i, true);
            } else {
                t.set(i, true);
            }
        } else if !saw_null {
            if negated {
                t.set(i, true);
            } else {
                f.set(i, true);
            }
        }
        // No match + NULL candidate → NULL: neither bitmap.
    }
    Tri { t, f }
}
