//! The cost-based query optimizer.
//!
//! Sits between the logical planner ([`sdb_sql::plan::PlanBuilder`]) and the
//! physical planner ([`crate::planner::PhysicalPlanner`]): it rewrites a
//! logical plan using the catalog's `ANALYZE` statistics
//! ([`sdb_storage::TableStats`]) before operators are selected. Three
//! sub-modules:
//!
//! * [`cardinality`] — selectivity and row-count estimation;
//! * [`cost`] — the cost model, pricing oracle round trips first, wire
//!   bytes second, spill IO third and CPU last;
//! * [`join_order`] — dynamic-programming join ordering (greedy beyond
//!   [`join_order::MAX_DP_RELATIONS`] relations), always orienting the
//!   smaller estimated side as the hash-join build.
//!
//! ## What the optimizer will and will not do
//!
//! Join regions are only reordered when **every** relation involved has
//! statistics (no guessing) and the region's column order is *insulated* —
//! some wildcard-free projection or an aggregate sits above it, so reordered
//! join output columns can never leak into the result schema. Inside a
//! reordered region, single-table WHERE conjuncts push down below the joins
//! as selections on their leaf (legal in an all-inner region), so every join
//! builds and probes the post-selection cardinality the cost model priced;
//! column-free conjuncts stay in a filter above the region. Outside a
//! reordered region the syntactic plan runs untouched.
//!
//! **Row order.** Reordering preserves the result *set* byte for byte, but
//! the row order of a query without a total `ORDER BY` is unspecified (as in
//! SQL) and may differ between optimizer settings — ordered queries are
//! byte-identical. Because a `LIMIT` turns production order into a result
//! *set*, a region under a `LIMIT` with no `Sort` in between never reorders;
//! with a `Sort` in between it does, and only the membership of rows tied on
//! the full sort key at the cutoff is implementation-defined (exactly SQL's
//! top-k-with-ties latitude). `crates/engine/tests/optimizer_consistency.rs`
//! pins all of this with an optimizer-on/off × budget × parallelism matrix.
//!
//! The optimizer is on by default; [`crate::SpEngine::with_optimizer`] turns
//! it off (today's purely syntactic plans). `EXPLAIN <query>` renders the
//! chosen physical tree together with per-node row and cost estimates.

pub mod cardinality;
pub mod cost;
pub mod join_order;

use sdb_sql::ast::{Expr, JoinKind};
use sdb_sql::plan::{LogicalPlan, ProjectionItem};
use sdb_storage::Catalog;

use crate::operators::expr::{conjoin, split_conjuncts};
use crate::operators::oracle::collect_oracle_calls_all;
use cardinality::Estimator;
use cost::{Cost, CostModel};
use join_order::{eq_sides, expr_leaf_mask, flatten_inner_joins, order, to_plan, Conjunct, Leaf};

/// The cost-based optimizer. Holds a catalog reference (for statistics) and
/// the execution knobs the cost model prices against.
pub struct Optimizer<'a> {
    catalog: &'a Catalog,
    model: CostModel,
    auto_analyze: bool,
}

impl<'a> Optimizer<'a> {
    /// Creates an optimizer over the catalog with default knobs.
    pub fn new(catalog: &'a Catalog) -> Self {
        Optimizer {
            catalog,
            model: CostModel {
                batch_size: crate::operators::DEFAULT_BATCH_SIZE,
                budget: None,
                oracle_batching: true,
            },
            auto_analyze: false,
        }
    }

    /// Sets the batch size the cost model assumes (with cross-batch
    /// batching off, oracle calls pay one round trip per batch).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.model.batch_size = batch_size.max(1);
        self
    }

    /// Sets whether the cost model assumes cross-batch oracle batching
    /// (default on, matching the engine): non-rank calls then price at one
    /// coalesced trip per flush window instead of one per batch.
    pub fn with_oracle_batching(mut self, batching: bool) -> Self {
        self.model.oracle_batching = batching;
        self
    }

    /// Sets the memory budget limit the cost model prices spills against.
    pub fn with_budget(mut self, budget: Option<usize>) -> Self {
        self.model.budget = budget;
        self
    }

    /// When enabled, tables without statistics are analyzed on first use
    /// during [`Optimizer::optimize`] (the `SDB_TEST_ANALYZE` CI mode).
    pub fn with_auto_analyze(mut self, auto: bool) -> Self {
        self.auto_analyze = auto;
        self
    }

    /// Optimizes a logical plan. With missing statistics (and
    /// auto-analyze off) the plan comes back unchanged.
    pub fn optimize(&self, plan: &LogicalPlan) -> LogicalPlan {
        if self.auto_analyze {
            let mut tables = Vec::new();
            scan_tables(plan, &mut tables);
            for table in tables {
                if self.catalog.table_stats(&table).is_none() {
                    // Missing tables fail later with a proper planning error.
                    let _ = self.catalog.analyze(&table);
                }
            }
        }
        self.rewrite(plan, false, false)
    }

    /// Recursive rewrite. `insulated` is true when a wildcard-free
    /// projection or an aggregate sits between this node and the plan root,
    /// so a join region's column order below here cannot reach the result
    /// schema. `bare_limit` is true when a `Limit` sits above with no `Sort`
    /// in between: the limit then keeps a prefix of the *production* order,
    /// so reordering below would change which rows survive the cutoff (a
    /// different result set, not just a different row order) — a `Sort`
    /// clears the hazard by pinning the order the limit cuts on.
    fn rewrite(&self, plan: &LogicalPlan, insulated: bool, bare_limit: bool) -> LogicalPlan {
        match plan {
            LogicalPlan::Scan { .. } => plan.clone(),
            LogicalPlan::Project { input, items } => {
                let shields = items
                    .iter()
                    .all(|item| matches!(item, ProjectionItem::Named { .. }));
                LogicalPlan::Project {
                    input: Box::new(self.rewrite(input, shields, bare_limit)),
                    items: items.clone(),
                }
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggregates,
            } => LogicalPlan::Aggregate {
                // A bare limit above an aggregate cuts on group order, which
                // reordering below would change: the hazard persists.
                input: Box::new(self.rewrite(input, true, bare_limit)),
                group_by: group_by.clone(),
                aggregates: aggregates.clone(),
            },
            LogicalPlan::Filter { input, predicate } => {
                if insulated && !bare_limit && is_inner_join(input) {
                    if let Some(reordered) = self.try_reorder(Some(predicate), input) {
                        return reordered;
                    }
                }
                LogicalPlan::Filter {
                    input: Box::new(self.rewrite(input, insulated, bare_limit)),
                    predicate: predicate.clone(),
                }
            }
            LogicalPlan::Join {
                left,
                right,
                kind,
                on,
            } => {
                if insulated && !bare_limit && *kind == JoinKind::Inner {
                    if let Some(reordered) = self.try_reorder(None, plan) {
                        return reordered;
                    }
                }
                LogicalPlan::Join {
                    left: Box::new(self.rewrite(left, insulated, bare_limit)),
                    right: Box::new(self.rewrite(right, insulated, bare_limit)),
                    kind: *kind,
                    on: on.clone(),
                }
            }
            LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
                // The sort pins the order any limit above cuts on.
                input: Box::new(self.rewrite(input, insulated, false)),
                keys: keys.clone(),
            },
            LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
                input: Box::new(self.rewrite(input, insulated, bare_limit)),
            },
            LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
                input: Box::new(self.rewrite(input, insulated, true)),
                n: *n,
            },
        }
    }

    /// Attempts to reorder the inner-join region rooted at `join` (with the
    /// WHERE conjuncts of an optional filter directly above it). Returns
    /// `None` — leave the syntactic plan alone — when any relation lacks
    /// statistics or a predicate does not resolve cleanly.
    fn try_reorder(&self, filter: Option<&Expr>, join: &LogicalPlan) -> Option<LogicalPlan> {
        let mut leaf_plans = Vec::new();
        let mut pool: Vec<Expr> = Vec::new();
        flatten_inner_joins(join, &mut leaf_plans, &mut pool);
        let n = leaf_plans.len();
        if !(2..=32).contains(&n) {
            return None;
        }
        if let Some(filter) = filter {
            pool.extend(split_conjuncts(filter));
        }

        let estimator = Estimator::new(self.catalog);
        // The region-wide scope for selectivity estimation (covers every
        // base-table column below the join).
        let scope = estimator.scope(join);

        let mut leaves = Vec::with_capacity(n);
        for plan in &leaf_plans {
            let rows = estimator.rows(plan)?; // no stats → no reorder
            let columns = self.output_columns(plan)?;
            let width = estimator.row_width(plan);
            // Sub-regions inside a leaf (e.g. below a LEFT join) still
            // optimize on their own.
            let plan = self.rewrite(plan, true, false);
            leaves.push(Leaf {
                plan,
                columns,
                rows,
                width,
            });
        }

        // Split the pool: conjuncts spanning ≥2 leaves drive the join
        // graph; single-leaf conjuncts push down below the joins as a
        // selection on their leaf (shrinking the estimated rows every join
        // above prices); column-free conjuncts stay in a filter above the
        // region. A conjunct whose references do not resolve against the
        // *whole region* aborts the reorder: a bare name can be unique
        // inside its original ON scope yet ambiguous region-wide, and
        // hoisting it would turn a valid query into a runtime error.
        let mut conjuncts: Vec<Conjunct> = Vec::new();
        let mut leftovers: Vec<Expr> = Vec::new();
        let mut pushed: Vec<Vec<Expr>> = vec![Vec::new(); leaves.len()];
        for expr in pool {
            match expr_leaf_mask(&leaves, &expr) {
                None => return None,
                Some(mask) if mask.count_ones() >= 2 => {
                    let sel = estimator.selectivity(&expr, &scope);
                    let oracle_calls = collect_oracle_calls_all(std::slice::from_ref(&expr)).len();
                    let eq = eq_sides(&leaves, &expr);
                    conjuncts.push(Conjunct {
                        expr,
                        mask,
                        sel,
                        oracle_calls,
                        eq_sides: eq,
                    });
                }
                Some(mask) if mask.count_ones() == 1 => {
                    let leaf = mask.trailing_zeros() as usize;
                    pushed[leaf].push(expr);
                }
                _ => leftovers.push(expr),
            }
        }

        // Selection pushdown: each single-leaf conjunct filters its leaf
        // before any join consumes it (an inner-join region makes this a
        // pure result-set-preserving move), and the leaf's estimated rows
        // shrink by the conjunct's selectivity so the join order prices the
        // post-selection cardinality.
        for (leaf, exprs) in leaves.iter_mut().zip(pushed) {
            if exprs.is_empty() {
                continue;
            }
            for expr in &exprs {
                leaf.rows *= estimator.selectivity(expr, &scope);
            }
            let predicate = conjoin(exprs).expect("non-empty conjunct list");
            leaf.plan = LogicalPlan::Filter {
                input: Box::new(std::mem::replace(
                    &mut leaf.plan,
                    LogicalPlan::Scan {
                        table: String::new(),
                        alias: None,
                    },
                )),
                predicate,
            };
        }

        let tree = order(&leaves, &conjuncts, &self.model);
        let mut plans: Vec<Option<LogicalPlan>> =
            leaves.into_iter().map(|leaf| Some(leaf.plan)).collect();
        let mut used = vec![false; conjuncts.len()];
        let mut plan = to_plan(&tree, &mut plans, &conjuncts, &mut used);
        debug_assert!(used.iter().all(|u| *u), "every join conjunct attaches");
        if let Some(predicate) = conjoin(leftovers) {
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }
        Some(plan)
    }

    /// The qualified output column names of a plan (lower-cased), mirroring
    /// the physical planner's name resolution. `None` when a scanned table
    /// does not exist.
    fn output_columns(&self, plan: &LogicalPlan) -> Option<Vec<String>> {
        match plan {
            LogicalPlan::Scan { table, alias } => {
                let handle = self.catalog.table(table).ok()?;
                let visible = alias.as_deref().unwrap_or(table);
                let columns = handle
                    .read()
                    .schema()
                    .columns()
                    .iter()
                    .map(|c| format!("{visible}.{}", c.name).to_ascii_lowercase())
                    .collect();
                Some(columns)
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Limit { input, .. } => self.output_columns(input),
            LogicalPlan::Project { input, items } => {
                let mut out = Vec::new();
                for item in items {
                    match item {
                        ProjectionItem::Wildcard => out.extend(self.output_columns(input)?),
                        ProjectionItem::Named { name, .. } => out.push(name.to_ascii_lowercase()),
                    }
                }
                Some(out)
            }
            LogicalPlan::Aggregate {
                group_by,
                aggregates,
                ..
            } => Some(
                group_by
                    .iter()
                    .map(|(_, name)| name.to_ascii_lowercase())
                    .chain(aggregates.iter().map(|a| a.name.to_ascii_lowercase()))
                    .collect(),
            ),
            LogicalPlan::Join { left, right, .. } => {
                let mut out = self.output_columns(left)?;
                out.extend(self.output_columns(right)?);
                Some(out)
            }
        }
    }

    // ------------------------------------------------------------------
    // EXPLAIN
    // ------------------------------------------------------------------

    /// Annotates an (optimized) logical plan with per-node row and cost
    /// estimates, one line per node, indented by depth. Nodes whose base
    /// tables lack statistics show `rows=?`.
    pub fn annotate(&self, plan: &LogicalPlan) -> Vec<String> {
        let estimator = Estimator::new(self.catalog);
        let mut lines = Vec::new();
        let mut total = Cost::zero();
        self.annotate_node(&estimator, plan, 0, &mut lines, &mut total);
        lines.push(format!(
            "total cost≈{:.0} ({})",
            total.total(),
            total.render()
        ));
        lines
    }

    fn annotate_node(
        &self,
        estimator: &Estimator<'_>,
        plan: &LogicalPlan,
        depth: usize,
        lines: &mut Vec<String>,
        total: &mut Cost,
    ) {
        let rows = estimator.rows(plan);
        let cost = self.node_cost(estimator, plan);
        let label = node_label(plan);
        let rendered_rows = match rows {
            Some(r) => format!("rows≈{r:.0}"),
            None => "rows=? (run ANALYZE)".to_string(),
        };
        let pad = "  ".repeat(depth);
        match &cost {
            Some(cost) => {
                *total = total.add(cost);
                lines.push(format!("{pad}{label}  {rendered_rows}  {}", cost.render()));
            }
            None => lines.push(format!("{pad}{label}  {rendered_rows}")),
        }
        for child in children(plan) {
            self.annotate_node(estimator, child, depth + 1, lines, total);
        }
    }

    /// This node's own cost contribution (children excluded); `None` when
    /// input cardinalities are unknown.
    fn node_cost(&self, estimator: &Estimator<'_>, plan: &LogicalPlan) -> Option<Cost> {
        let model = &self.model;
        match plan {
            LogicalPlan::Scan { .. } => Some(Cost {
                cpu_rows: estimator.rows(plan)?,
                ..Cost::default()
            }),
            LogicalPlan::Filter { input, predicate } => {
                let rows_in = estimator.rows(input)?;
                let mut cost = model.oracle_cost(std::slice::from_ref(predicate), rows_in);
                cost.cpu_rows += rows_in;
                Some(cost)
            }
            LogicalPlan::Project { input, items } => {
                let rows_in = estimator.rows(input)?;
                let exprs: Vec<Expr> = items
                    .iter()
                    .filter_map(|item| match item {
                        ProjectionItem::Named { expr, .. } => Some(expr.clone()),
                        ProjectionItem::Wildcard => None,
                    })
                    .collect();
                let mut cost = model.oracle_cost(&exprs, rows_in);
                cost.cpu_rows += rows_in;
                Some(cost)
            }
            LogicalPlan::Join {
                left, right, on, ..
            } => {
                let probe = estimator.rows(left)?;
                let build = estimator.rows(right)?;
                let out = estimator.rows(plan)?;
                let (calls, hashable) = match on {
                    Some(on) => {
                        let conjuncts = split_conjuncts(on);
                        let calls = collect_oracle_calls_all(&conjuncts).len();
                        let hashable = conjuncts.iter().any(|c| {
                            matches!(
                                c,
                                Expr::Binary {
                                    op: sdb_sql::ast::BinaryOp::Eq,
                                    ..
                                }
                            )
                        });
                        (calls, hashable)
                    }
                    None => (0, false),
                };
                Some(model.join_cost(
                    probe,
                    estimator.row_width(left),
                    build,
                    estimator.row_width(right),
                    out,
                    calls as f64,
                    hashable,
                ))
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let rows_in = estimator.rows(input)?;
                let mut exprs: Vec<Expr> = group_by.iter().map(|(e, _)| e.clone()).collect();
                exprs.extend(aggregates.iter().filter_map(|a| a.arg.clone()));
                let mut cost = model.oracle_cost(&exprs, rows_in);
                cost = cost.add(&model.aggregate_cost(rows_in, estimator.row_width(input)));
                Some(cost)
            }
            LogicalPlan::Sort { input, keys } => {
                let rows_in = estimator.rows(input)?;
                let exprs: Vec<Expr> = keys.iter().map(|k| k.expr.clone()).collect();
                let mut cost = model.oracle_cost(&exprs, rows_in);
                cost = cost.add(&model.sort_cost(rows_in, estimator.row_width(input)));
                Some(cost)
            }
            LogicalPlan::Distinct { input } => Some(Cost {
                cpu_rows: estimator.rows(input)?,
                ..Cost::default()
            }),
            LogicalPlan::Limit { .. } => Some(Cost::zero()),
        }
    }
}

/// True for an INNER join node.
fn is_inner_join(plan: &LogicalPlan) -> bool {
    matches!(
        plan,
        LogicalPlan::Join {
            kind: JoinKind::Inner,
            ..
        }
    )
}

/// Collects every base table a plan scans.
fn scan_tables(plan: &LogicalPlan, out: &mut Vec<String>) {
    match plan {
        LogicalPlan::Scan { table, .. } => out.push(table.clone()),
        LogicalPlan::Join { left, right, .. } => {
            scan_tables(left, out);
            scan_tables(right, out);
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::Limit { input, .. } => scan_tables(input, out),
    }
}

/// The immediate children of a plan node.
fn children(plan: &LogicalPlan) -> Vec<&LogicalPlan> {
    match plan {
        LogicalPlan::Scan { .. } => vec![],
        LogicalPlan::Join { left, right, .. } => vec![left, right],
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::Limit { input, .. } => vec![input],
    }
}

/// Short label for one logical node in `EXPLAIN` output.
fn node_label(plan: &LogicalPlan) -> String {
    match plan {
        LogicalPlan::Scan { table, alias } => match alias {
            Some(a) => format!("Scan({table} AS {a})"),
            None => format!("Scan({table})"),
        },
        LogicalPlan::Filter { .. } => "Filter".to_string(),
        LogicalPlan::Join { kind, .. } => format!("Join[{kind:?}] (build = right child)"),
        LogicalPlan::Project { items, .. } => format!("Project[{}]", items.len()),
        LogicalPlan::Aggregate {
            group_by,
            aggregates,
            ..
        } => format!(
            "Aggregate[groups={}, aggs={}]",
            group_by.len(),
            aggregates.len()
        ),
        LogicalPlan::Sort { keys, .. } => format!("Sort[{}]", keys.len()),
        LogicalPlan::Distinct { .. } => "Distinct".to_string(),
        LogicalPlan::Limit { n, .. } => format!("Limit[{n}]"),
    }
}

/// Pretty-prints a [`crate::PhysicalOperator::describe`] string (e.g.
/// `Limit(Project(HashJoin(TableScan, TableScan)))`) as an indented tree,
/// one operator per line.
pub fn render_physical_tree(describe: &str) -> Vec<String> {
    let mut lines = Vec::new();
    render_describe(describe.trim(), 0, &mut lines);
    lines
}

fn render_describe(node: &str, depth: usize, lines: &mut Vec<String>) {
    let node = node.trim();
    let (name, rest) = match node.find('(') {
        // `describe` strings always balance their parens; tolerate anything
        // else by printing the node verbatim.
        Some(open) if node.ends_with(')') => (&node[..open], &node[open + 1..node.len() - 1]),
        _ => (node, ""),
    };
    lines.push(format!("{}{}", "  ".repeat(depth), name));
    if rest.is_empty() {
        return;
    }
    // Split children on top-level commas.
    let mut level = 0usize;
    let mut start = 0usize;
    for (i, ch) in rest.char_indices() {
        match ch {
            '(' => level += 1,
            ')' => level = level.saturating_sub(1),
            ',' if level == 0 => {
                render_describe(&rest[start..i], depth + 1, lines);
                start = i + 1;
            }
            _ => {}
        }
    }
    render_describe(&rest[start..], depth + 1, lines);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdb_sql::plan::PlanBuilder;
    use sdb_sql::{parse_sql, Statement};
    use sdb_storage::{ColumnDef, DataType, Schema, Value};

    fn catalog() -> Catalog {
        let catalog = Catalog::new();
        for (name, rows) in [("big", 2000i64), ("mid", 200), ("small", 8)] {
            let schema = Schema::new(vec![
                ColumnDef::public("k", DataType::Int),
                ColumnDef::public("j", DataType::Int),
                ColumnDef::public("v", DataType::Int),
            ]);
            let t = catalog.create_table(name, schema).unwrap();
            let mut guard = t.write();
            for i in 0..rows {
                guard
                    .insert_row(vec![Value::Int(i), Value::Int(i % 8), Value::Int(i % 13)])
                    .unwrap();
            }
        }
        catalog
    }

    fn plan_of(sql: &str) -> LogicalPlan {
        match parse_sql(sql).unwrap() {
            Statement::Query(q) => PlanBuilder::build(&q).unwrap(),
            _ => panic!("not a query"),
        }
    }

    const THREE_WAY: &str = "SELECT b.v, m.v, s.v FROM big b \
         JOIN mid m ON b.j = m.j JOIN small s ON m.k = s.k";

    #[test]
    fn without_stats_the_plan_is_untouched() {
        let catalog = catalog();
        let optimizer = Optimizer::new(&catalog);
        let plan = plan_of(THREE_WAY);
        assert_eq!(optimizer.optimize(&plan).describe(), plan.describe());
    }

    #[test]
    fn with_stats_the_smallest_relation_becomes_a_build_side() {
        let catalog = catalog();
        catalog.analyze_all().unwrap();
        let optimizer = Optimizer::new(&catalog);
        let plan = plan_of(THREE_WAY);
        let optimized = optimizer.optimize(&plan);
        let rendered = optimized.describe();
        assert_ne!(rendered, plan.describe(), "reordering happened");
        // `small` (8 rows) must be the right (build) child of its join.
        fn small_is_build(plan: &LogicalPlan) -> bool {
            match plan {
                LogicalPlan::Join { left, right, .. } => {
                    matches!(right.as_ref(), LogicalPlan::Scan { table, .. } if table == "small")
                        || small_is_build(left)
                        || small_is_build(right)
                }
                LogicalPlan::Filter { input, .. }
                | LogicalPlan::Project { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Limit { input, .. }
                | LogicalPlan::Distinct { input }
                | LogicalPlan::Aggregate { input, .. } => small_is_build(input),
                _ => false,
            }
        }
        assert!(small_is_build(&optimized), "{rendered}");
    }

    #[test]
    fn wildcard_projections_disable_reordering() {
        let catalog = catalog();
        catalog.analyze_all().unwrap();
        let optimizer = Optimizer::new(&catalog);
        // SELECT * exposes the join column order: never reorder.
        let plan = plan_of("SELECT * FROM big b JOIN mid m ON b.j = m.j JOIN small s ON m.k = s.k");
        assert_eq!(optimizer.optimize(&plan).describe(), plan.describe());
    }

    #[test]
    fn implicit_joins_reorder_through_the_where_clause() {
        let catalog = catalog();
        catalog.analyze_all().unwrap();
        let optimizer = Optimizer::new(&catalog);
        let plan = plan_of(
            "SELECT b.v, s.v FROM big b, mid m, small s \
             WHERE b.j = m.j AND m.k = s.k AND b.v > 3",
        );
        let optimized = optimizer.optimize(&plan);
        assert_ne!(optimized.describe(), plan.describe());
        // The single-table conjunct `b.v > 3` pushes down below the joins,
        // landing as a filter directly over the `big` scan.
        fn filter_over_scan(plan: &LogicalPlan) -> bool {
            match plan {
                LogicalPlan::Filter { input, .. } if matches!(input.as_ref(), LogicalPlan::Scan { table, .. } if table == "big") => {
                    true
                }
                LogicalPlan::Join { left, right, .. } => {
                    filter_over_scan(left) || filter_over_scan(right)
                }
                LogicalPlan::Filter { input, .. }
                | LogicalPlan::Project { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Limit { input, .. }
                | LogicalPlan::Distinct { input }
                | LogicalPlan::Aggregate { input, .. } => filter_over_scan(input),
                LogicalPlan::Scan { .. } => false,
            }
        }
        assert!(filter_over_scan(&optimized), "{}", optimized.describe());
    }

    #[test]
    fn left_joins_are_never_flattened() {
        let catalog = catalog();
        catalog.analyze_all().unwrap();
        let optimizer = Optimizer::new(&catalog);
        let plan = plan_of("SELECT b.v, m.v FROM big b LEFT JOIN mid m ON b.j = m.j");
        assert_eq!(optimizer.optimize(&plan).describe(), plan.describe());
    }

    #[test]
    fn auto_analyze_collects_missing_stats() {
        let catalog = catalog();
        assert!(catalog.table_stats("big").is_none());
        let optimizer = Optimizer::new(&catalog).with_auto_analyze(true);
        let plan = plan_of(THREE_WAY);
        let optimized = optimizer.optimize(&plan);
        assert!(catalog.table_stats("big").is_some(), "analyzed on demand");
        assert_ne!(optimized.describe(), plan.describe());
    }

    #[test]
    fn annotation_reports_rows_and_costs() {
        let catalog = catalog();
        catalog.analyze_all().unwrap();
        let optimizer = Optimizer::new(&catalog);
        let plan = optimizer.optimize(&plan_of(THREE_WAY));
        let lines = optimizer.annotate(&plan);
        assert!(lines.iter().any(|l| l.contains("rows≈")), "{lines:?}");
        assert!(lines.iter().any(|l| l.contains("trips=")), "{lines:?}");
        assert!(lines.last().unwrap().contains("total cost≈"));

        // Without stats the annotation degrades gracefully.
        catalog.clear_stats("big");
        let lines = optimizer.annotate(&plan_of(THREE_WAY));
        assert!(
            lines.iter().any(|l| l.contains("rows=? (run ANALYZE)")),
            "{lines:?}"
        );
    }

    #[test]
    fn physical_tree_renders_indented() {
        let lines =
            render_physical_tree("Limit(Project(HashJoin(TableScan, ExternalSort(TableScan))))");
        assert_eq!(
            lines,
            vec![
                "Limit",
                "  Project",
                "    HashJoin",
                "      TableScan",
                "      ExternalSort",
                "        TableScan",
            ]
        );
    }
}
