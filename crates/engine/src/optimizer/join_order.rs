//! Join ordering: dynamic programming over inner-join regions, with a
//! greedy fallback for very wide regions.
//!
//! A *region* is a maximal tree of INNER joins: `flatten_inner_joins`
//! collects its relations (the region's *leaves* — base-table scans, or
//! whole subtrees such as LEFT joins that act as opaque relations) plus
//! every ON conjunct; the caller adds the WHERE conjuncts sitting directly
//! above the region (legal for inner joins). Each conjunct is mapped to the
//! set of leaves it references, forming the join graph.
//!
//! `order` then searches for the cheapest join tree under the
//! [`CostModel`]:
//!
//! * **≤ [`MAX_DP_RELATIONS`] leaves** — exact dynamic programming over
//!   subsets (bushy trees allowed). Cross joins are only considered for a
//!   subset with no connected split.
//! * **more** — greedy: repeatedly join the connected pair with the
//!   cheapest resulting subtree.
//!
//! Either way, every join is oriented so the **smaller estimated side is the
//! right child** — the build side of the engine's hash joins — with ties
//! keeping the syntactically earlier side on the left. The search is fully
//! deterministic for a given catalog state.
//!
//! `to_plan` reassembles the chosen `Tree` into a `LogicalPlan`: each
//! conjunct attaches as the ON condition of the lowest join covering all its
//! leaves; conjuncts confined to a single leaf (or referencing none) are
//! returned to the caller for a filter above the region — exactly where the
//! engine executes single-table WHERE conjuncts today.

use sdb_sql::ast::{BinaryOp, Expr, JoinKind};
use sdb_sql::plan::LogicalPlan;

use super::cost::{Cost, CostModel};

/// Largest region ordered by exact dynamic programming; larger regions use
/// the greedy pairing fallback.
pub const MAX_DP_RELATIONS: usize = 8;

/// One relation of a join region.
#[derive(Debug, Clone)]
pub(crate) struct Leaf {
    /// The (already recursively optimized) sub-plan.
    pub plan: LogicalPlan,
    /// Qualified output column names (lower-cased).
    pub columns: Vec<String>,
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated row width in bytes.
    pub width: f64,
}

/// One conjunct of the region's predicate pool.
#[derive(Debug, Clone)]
pub(crate) struct Conjunct {
    /// The predicate expression.
    pub expr: Expr,
    /// Bitmask of the leaves it references.
    pub mask: u32,
    /// Estimated selectivity (against the whole-region scope).
    pub sel: f64,
    /// Number of oracle-backed calls inside it.
    pub oracle_calls: usize,
    /// For `a = b` conjuncts: the leaf masks of the two operands (a join
    /// split placing them on opposite sides can hash on this conjunct).
    pub eq_sides: Option<(u32, u32)>,
}

impl Conjunct {
    /// True when this conjunct can serve as a hash key for a join whose
    /// sides cover `m1` and `m2`.
    fn hashable_across(&self, m1: u32, m2: u32) -> bool {
        match self.eq_sides {
            Some((a, b)) => (a & !m1 == 0 && b & !m2 == 0) || (a & !m2 == 0 && b & !m1 == 0),
            None => false,
        }
    }
}

/// Flattens a tree of INNER joins into its leaves and ON conjuncts. Any
/// other node (scans, LEFT joins, …) becomes a leaf.
pub(crate) fn flatten_inner_joins(
    plan: &LogicalPlan,
    leaves: &mut Vec<LogicalPlan>,
    conjuncts: &mut Vec<Expr>,
) {
    match plan {
        LogicalPlan::Join {
            left,
            right,
            kind: JoinKind::Inner,
            on,
        } => {
            flatten_inner_joins(left, leaves, conjuncts);
            flatten_inner_joins(right, leaves, conjuncts);
            if let Some(on) = on {
                conjuncts.extend(crate::operators::expr::split_conjuncts(on));
            }
        }
        other => leaves.push(other.clone()),
    }
}

/// Resolves a column reference to the single leaf producing it, by running
/// [`sdb_storage::resolve_name`] — the *same* resolution rules the executor
/// applies — over the concatenation of every leaf's columns (which is
/// exactly the combined schema the join region produces at runtime).
/// `None` when the name is missing or ambiguous.
pub(crate) fn column_leaf(leaves: &[Leaf], name: &str) -> Option<usize> {
    let names = leaves
        .iter()
        .flat_map(|leaf| leaf.columns.iter().map(String::as_str));
    match sdb_storage::resolve_name(names, name) {
        sdb_storage::NameResolution::One(global) => {
            // Map the global column position back to its owning leaf.
            let mut offset = 0usize;
            for (i, leaf) in leaves.iter().enumerate() {
                if global < offset + leaf.columns.len() {
                    return Some(i);
                }
                offset += leaf.columns.len();
            }
            unreachable!("resolved index lies within the concatenation")
        }
        _ => None,
    }
}

/// The mask of leaves referenced by an expression; `None` when any
/// reference is unresolvable or ambiguous.
pub(crate) fn expr_leaf_mask(leaves: &[Leaf], expr: &Expr) -> Option<u32> {
    let mut columns = Vec::new();
    expr.referenced_columns(&mut columns);
    let mut mask = 0u32;
    for column in columns {
        mask |= 1u32 << column_leaf(leaves, &column)?;
    }
    Some(mask)
}

/// The equality-operand leaf masks of an `a = b` conjunct, if both sides
/// resolve cleanly to disjoint leaf sets.
pub(crate) fn eq_sides(leaves: &[Leaf], expr: &Expr) -> Option<(u32, u32)> {
    let Expr::Binary {
        left,
        op: BinaryOp::Eq,
        right,
    } = expr
    else {
        return None;
    };
    let a = expr_leaf_mask(leaves, left)?;
    let b = expr_leaf_mask(leaves, right)?;
    if a != 0 && b != 0 && a & b == 0 {
        Some((a, b))
    } else {
        None
    }
}

/// A join tree over leaf indices.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tree {
    /// One region leaf.
    Leaf(usize),
    /// A binary join; the right child is the hash-join build side.
    Join(Box<Tree>, Box<Tree>),
}

impl Tree {
    /// The leaf bitmask covered by this subtree.
    pub fn mask(&self) -> u32 {
        match self {
            Tree::Leaf(i) => 1 << i,
            Tree::Join(l, r) => l.mask() | r.mask(),
        }
    }

    /// A canonical rendering (`((0 1) 2)`) for comparisons and tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn canon(&self) -> String {
        match self {
            Tree::Leaf(i) => i.to_string(),
            Tree::Join(l, r) => format!("({} {})", l.canon(), r.canon()),
        }
    }

    /// The lowest leaf index in this subtree (tie-breaking: syntactically
    /// earlier sides stay on the probe side).
    fn min_leaf(&self) -> usize {
        self.mask().trailing_zeros() as usize
    }
}

#[derive(Clone)]
struct Entry {
    tree: Tree,
    rows: f64,
    width: f64,
    cost: Cost,
}

/// Conjuncts newly applicable when joining `m1` with `m2`.
fn applicable(conjuncts: &[Conjunct], m1: u32, m2: u32) -> impl Iterator<Item = &Conjunct> {
    let m = m1 | m2;
    conjuncts
        .iter()
        .filter(move |c| c.mask & !m == 0 && c.mask & m1 != 0 && c.mask & m2 != 0)
}

/// Joins two DP entries, orienting the smaller estimated side as the build
/// (right) child.
fn join_entries(model: &CostModel, conjuncts: &[Conjunct], e1: Entry, e2: Entry) -> Entry {
    let (m1, m2) = (e1.tree.mask(), e2.tree.mask());
    let mut sel = 1.0f64;
    let mut oracle_calls = 0usize;
    let mut hashable = false;
    for conjunct in applicable(conjuncts, m1, m2) {
        sel *= conjunct.sel;
        oracle_calls += conjunct.oracle_calls;
        hashable |= conjunct.hashable_across(m1, m2) || conjunct.hashable_across(m2, m1);
    }
    let rows = (e1.rows * e2.rows * sel).max(1.0);

    // Orientation: build (right child) = smaller side; ties keep the
    // syntactically earlier side as the probe.
    let build_second =
        e2.rows < e1.rows || (e2.rows == e1.rows && e1.tree.min_leaf() < e2.tree.min_leaf());
    let (probe, build) = if build_second { (e1, e2) } else { (e2, e1) };

    let join_cost = model.join_cost(
        probe.rows,
        probe.width,
        build.rows,
        build.width,
        rows,
        oracle_calls as f64,
        hashable,
    );
    Entry {
        rows,
        width: probe.width + build.width,
        cost: probe.cost.add(&build.cost).add(&join_cost),
        tree: Tree::Join(Box::new(probe.tree), Box::new(build.tree)),
    }
}

/// True when some conjunct connects the two sides.
fn connected(conjuncts: &[Conjunct], m1: u32, m2: u32) -> bool {
    applicable(conjuncts, m1, m2).next().is_some()
}

/// Finds the cheapest join tree over the region. `leaves.len()` must be at
/// least 2 (and at most 32).
pub(crate) fn order(leaves: &[Leaf], conjuncts: &[Conjunct], model: &CostModel) -> Tree {
    debug_assert!((2..=32).contains(&leaves.len()));
    if leaves.len() <= MAX_DP_RELATIONS {
        order_dp(leaves, conjuncts, model)
    } else {
        order_greedy(leaves, conjuncts, model)
    }
}

fn leaf_entry(i: usize, leaf: &Leaf) -> Entry {
    Entry {
        tree: Tree::Leaf(i),
        rows: leaf.rows.max(1.0),
        width: leaf.width,
        cost: Cost {
            cpu_rows: leaf.rows.max(1.0),
            ..Cost::default()
        },
    }
}

fn order_dp(leaves: &[Leaf], conjuncts: &[Conjunct], model: &CostModel) -> Tree {
    let n = leaves.len();
    let full = (1u32 << n) - 1;
    let mut best: Vec<Option<Entry>> = vec![None; 1 << n];
    for (i, leaf) in leaves.iter().enumerate() {
        best[1 << i] = Some(leaf_entry(i, leaf));
    }

    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue;
        }
        // Pass 1: connected splits only; pass 2 (cross joins) only if pass 1
        // found nothing.
        for allow_cross in [false, true] {
            let low = mask & mask.wrapping_neg();
            let mut sub = (mask - 1) & mask;
            while sub > 0 {
                // Canonical halving: the submask keeps the lowest leaf.
                if sub & low != 0 {
                    let other = mask ^ sub;
                    if let (Some(e1), Some(e2)) = (&best[sub as usize], &best[other as usize]) {
                        if allow_cross || connected(conjuncts, sub, other) {
                            let candidate = join_entries(model, conjuncts, e1.clone(), e2.clone());
                            let better = best[mask as usize]
                                .as_ref()
                                .map(|cur| candidate.cost.total() < cur.cost.total())
                                .unwrap_or(true);
                            if better {
                                best[mask as usize] = Some(candidate);
                            }
                        }
                    }
                }
                sub = (sub - 1) & mask;
            }
            if best[mask as usize].is_some() {
                break;
            }
        }
    }
    best[full as usize]
        .take()
        .expect("every subset has at least a cross-join plan")
        .tree
}

fn order_greedy(leaves: &[Leaf], conjuncts: &[Conjunct], model: &CostModel) -> Tree {
    let mut entries: Vec<Entry> = leaves
        .iter()
        .enumerate()
        .map(|(i, leaf)| leaf_entry(i, leaf))
        .collect();
    while entries.len() > 1 {
        let mut pick: Option<(usize, usize, Entry)> = None;
        for allow_cross in [false, true] {
            for i in 0..entries.len() {
                for j in (i + 1)..entries.len() {
                    let (m1, m2) = (entries[i].tree.mask(), entries[j].tree.mask());
                    if !allow_cross && !connected(conjuncts, m1, m2) {
                        continue;
                    }
                    let candidate =
                        join_entries(model, conjuncts, entries[i].clone(), entries[j].clone());
                    let better = pick
                        .as_ref()
                        .map(|(_, _, cur)| candidate.cost.total() < cur.cost.total())
                        .unwrap_or(true);
                    if better {
                        pick = Some((i, j, candidate));
                    }
                }
            }
            if pick.is_some() {
                break;
            }
        }
        let (i, j, joined) = pick.expect("two entries always join");
        entries.remove(j);
        entries.remove(i);
        entries.push(joined);
    }
    entries.pop().expect("one tree remains").tree
}

/// Reassembles the chosen tree into a `LogicalPlan`. Conjuncts covering both
/// sides of a join attach as that join's ON condition (in original order);
/// the indices of conjuncts that found no join (single-leaf or column-free
/// predicates) are returned for the caller's filter above the region.
pub(crate) fn to_plan(
    tree: &Tree,
    leaves: &mut [Option<LogicalPlan>],
    conjuncts: &[Conjunct],
    used: &mut Vec<bool>,
) -> LogicalPlan {
    match tree {
        Tree::Leaf(i) => leaves[*i].take().expect("each leaf is consumed once"),
        Tree::Join(l, r) => {
            let (m1, m2) = (l.mask(), r.mask());
            let left = to_plan(l, leaves, conjuncts, used);
            let right = to_plan(r, leaves, conjuncts, used);
            let m = m1 | m2;
            let mut on: Vec<Expr> = Vec::new();
            for (idx, conjunct) in conjuncts.iter().enumerate() {
                if !used[idx]
                    && conjunct.mask & !m == 0
                    && conjunct.mask & m1 != 0
                    && conjunct.mask & m2 != 0
                {
                    used[idx] = true;
                    on.push(conjunct.expr.clone());
                }
            }
            LogicalPlan::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind: JoinKind::Inner,
                on: crate::operators::expr::conjoin(on),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(name: &str, columns: &[&str], rows: f64) -> Leaf {
        Leaf {
            plan: LogicalPlan::Scan {
                table: name.to_string(),
                alias: None,
            },
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows,
            width: 16.0,
        }
    }

    fn eq(a: &str, b: &str) -> Expr {
        Expr::binary(Expr::col(a), BinaryOp::Eq, Expr::col(b))
    }

    fn conjunct(leaves: &[Leaf], expr: Expr, sel: f64) -> Conjunct {
        let mask = expr_leaf_mask(leaves, &expr).expect("resolvable");
        let eq = eq_sides(leaves, &expr);
        Conjunct {
            expr,
            mask,
            sel,
            oracle_calls: 0,
            eq_sides: eq,
        }
    }

    fn model() -> CostModel {
        CostModel {
            batch_size: 4096,
            budget: None,
            oracle_batching: true,
        }
    }

    #[test]
    fn column_resolution_follows_schema_rules() {
        let leaves = vec![
            leaf("big", &["b.id", "b.x"], 1000.0),
            leaf("small", &["s.id", "s.y"], 10.0),
        ];
        assert_eq!(column_leaf(&leaves, "b.x"), Some(0));
        assert_eq!(column_leaf(&leaves, "y"), Some(1), "unique bare suffix");
        assert_eq!(column_leaf(&leaves, "id"), None, "ambiguous across leaves");
        assert_eq!(column_leaf(&leaves, "nope"), None);
    }

    /// Hand-computed 2-relation case: the only choice is orientation, and the
    /// smaller relation must become the build (right) side.
    #[test]
    fn two_relations_orient_smaller_as_build() {
        let leaves = vec![
            leaf("small", &["s.id"], 10.0),
            leaf("big", &["b.id"], 1000.0),
        ];
        let conjuncts = vec![conjunct(&leaves, eq("s.id", "b.id"), 0.1)];
        let tree = order(&leaves, &conjuncts, &model());
        // Leaf 0 (small, 10 rows) is the build side even though it is
        // syntactically first.
        assert_eq!(tree.canon(), "(1 0)");
    }

    /// Hand-computed 3-relation chain big—mid—small: joining mid with small
    /// first (cheap, small build) then probing with big beats the syntactic
    /// left-deep order which builds over mid and the big intermediate.
    #[test]
    fn three_relation_chain_joins_cheap_pair_first() {
        let leaves = vec![
            leaf("big", &["b.k"], 100_000.0),
            leaf("mid", &["m.k", "m.j"], 1_000.0),
            leaf("small", &["s.j"], 10.0),
        ];
        // big⋈mid on k (sel 1/1000), mid⋈small on j (sel 1/10 — every mid
        // row keeps ~1 small match, so mid⋈small stays at 1000 rows).
        let conjuncts = vec![
            conjunct(&leaves, eq("b.k", "m.k"), 1.0 / 1_000.0),
            conjunct(&leaves, eq("m.j", "s.j"), 1.0 / 10.0),
        ];
        let tree = order(&leaves, &conjuncts, &model());
        // Expected: (big ⋈ (mid ⋈ small)) with small as the inner build:
        // cost ≈ 100k + 1k + 10 + (1k+10+1k) + (100k+1k+100k) vs the
        // syntactic ((big ⋈ mid) ⋈ small) which pays the same big probe but
        // builds over mid AND carries the 100k-row intermediate into a
        // second join.
        assert_eq!(tree.canon(), "(0 (1 2))");
    }

    /// Cross joins are only taken when no connected split exists.
    #[test]
    fn disconnected_regions_fall_back_to_cross_joins() {
        let leaves = vec![leaf("a", &["a.x"], 10.0), leaf("b", &["b.y"], 20.0)];
        let tree = order(&leaves, &[], &model());
        assert_eq!(tree.canon(), "(1 0)", "smaller side still builds");
    }

    /// A star query: the fact table stays the probe side of every join.
    /// (Dimensions are sized so a dim×dim cross join is clearly more
    /// expensive than probing them one at a time.)
    #[test]
    fn star_schema_keeps_fact_as_probe() {
        let leaves = vec![
            leaf("fact", &["f.d1", "f.d2"], 50_000.0),
            leaf("dim1", &["d1.id"], 1_000.0),
            leaf("dim2", &["d2.id"], 500.0),
        ];
        let conjuncts = vec![
            conjunct(&leaves, eq("f.d1", "d1.id"), 1.0 / 1_000.0),
            conjunct(&leaves, eq("f.d2", "d2.id"), 1.0 / 500.0),
        ];
        let tree = order(&leaves, &conjuncts, &model());
        // Both dimensions are builds; the fact side is always the probe.
        match &tree {
            Tree::Join(probe, build) => {
                assert!(probe.mask() & 1 != 0, "fact stays on the probe side");
                assert_eq!(
                    build.mask().count_ones(),
                    1,
                    "dimensions join one at a time"
                );
            }
            other => panic!("unexpected tree {}", other.canon()),
        }
    }

    #[test]
    fn greedy_handles_wide_regions_deterministically() {
        // 10 relations in a chain — beyond the DP limit.
        let mut leaves = Vec::new();
        for i in 0..10 {
            let prev = format!("t{i}.p");
            let next = format!("t{i}.n");
            leaves.push(Leaf {
                plan: LogicalPlan::Scan {
                    table: format!("t{i}"),
                    alias: None,
                },
                columns: vec![prev, next],
                rows: 100.0 * (i as f64 + 1.0),
                width: 16.0,
            });
        }
        let mut conjuncts = Vec::new();
        for i in 0..9 {
            let expr = eq(&format!("t{i}.n"), &format!("t{}.p", i + 1));
            conjuncts.push(conjunct(&leaves, expr, 0.01));
        }
        let a = order(&leaves, &conjuncts, &model());
        let b = order(&leaves, &conjuncts, &model());
        assert_eq!(a.canon(), b.canon(), "greedy ordering is deterministic");
        assert_eq!(a.mask(), (1 << 10) - 1, "all relations joined");
    }

    #[test]
    fn reassembly_places_conjuncts_at_their_lowest_join() {
        let leaves = vec![
            leaf("a", &["a.x"], 100.0),
            leaf("b", &["b.x", "b.y"], 50.0),
            leaf("c", &["c.y"], 10.0),
        ];
        let conjuncts = vec![
            conjunct(&leaves, eq("a.x", "b.x"), 0.1),
            conjunct(&leaves, eq("b.y", "c.y"), 0.1),
        ];
        let tree = order(&leaves, &conjuncts, &model());
        let mut plans: Vec<Option<LogicalPlan>> =
            leaves.iter().map(|l| Some(l.plan.clone())).collect();
        let mut used = vec![false; conjuncts.len()];
        let plan = to_plan(&tree, &mut plans, &conjuncts, &mut used);
        assert!(used.iter().all(|u| *u), "every join conjunct is attached");
        // Both joins carry exactly one ON conjunct.
        fn count_ons(plan: &LogicalPlan) -> usize {
            match plan {
                LogicalPlan::Join {
                    left, right, on, ..
                } => (on.is_some() as usize) + count_ons(left) + count_ons(right),
                _ => 0,
            }
        }
        assert_eq!(count_ons(&plan), 2);
    }
}
