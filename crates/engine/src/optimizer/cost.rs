//! The cost model: oracle round trips first, wire bytes second, spill IO
//! third, CPU last.
//!
//! In SDB the dominant execution cost is not CPU but the interactive
//! protocol: every comparison / group-tag / rank step over sensitive data is
//! a proxy↔SP round trip (a WAN RTT — tens of milliseconds) shipping blinded
//! operands. The cost model therefore prices, in order:
//!
//! 1. **oracle round trips** — [`ROUND_TRIP_COST`] CPU-row-equivalents each.
//!    With cross-batch batching on (the default), a non-blocking oracle call
//!    coalesces operand rows across input batches and pays one trip per
//!    flush window (`ceil(rows /`
//!    [`ORACLE_FLUSH_ROWS`](crate::operators::oracle::ORACLE_FLUSH_ROWS)`)` —
//!    one trip for any realistic input); with batching off it pays one trip
//!    per input batch (`ceil(rows / batch_size)`). Rank calls are blocking
//!    and cost exactly one trip regardless of input size.
//! 2. **oracle wire bytes** — [`ORACLE_BYTE_COST`] per byte shipped
//!    (operands are ~[`ORACLE_ROW_BYTES`] per row per call).
//! 3. **spill IO** — [`SPILL_BYTE_COST`] per byte written + read back when a
//!    blocking operator's estimated materialisation exceeds the
//!    [`MemoryBudget`](sdb_storage::MemoryBudget).
//! 4. **CPU** — one unit per row touched ([`CPU_ROW_COST`]).

use sdb_sql::ast::Expr;

use crate::operators::oracle::collect_oracle_calls_all;
use crate::secure::oracle_fns;

/// Cost of one oracle round trip, in CPU-row-equivalents. A WAN round trip
/// is on the order of 10–100 ms while a row of plain execution is ~100 ns.
pub const ROUND_TRIP_COST: f64 = 100_000.0;

/// Cost per byte shipped to/from the oracle (serialisation + wire).
pub const ORACLE_BYTE_COST: f64 = 10.0;

/// Cost per byte written to or read from spill files.
pub const SPILL_BYTE_COST: f64 = 1.0;

/// Cost per row of plain CPU work.
pub const CPU_ROW_COST: f64 = 1.0;

/// Approximate wire size of one row's operands in one oracle call (an
/// encrypted share plus a row id, serialised).
pub const ORACLE_ROW_BYTES: f64 = 96.0;

/// An additive cost estimate, kept per component so `EXPLAIN` can show where
/// a plan's cost comes from.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Cost {
    /// Estimated oracle round trips.
    pub oracle_round_trips: f64,
    /// Estimated bytes shipped to the oracle.
    pub oracle_bytes: f64,
    /// Estimated bytes written to + read back from spill files.
    pub spill_bytes: f64,
    /// Estimated rows of CPU work.
    pub cpu_rows: f64,
}

impl Cost {
    /// The zero cost.
    pub fn zero() -> Cost {
        Cost::default()
    }

    /// Component-wise sum.
    pub fn add(&self, other: &Cost) -> Cost {
        Cost {
            oracle_round_trips: self.oracle_round_trips + other.oracle_round_trips,
            oracle_bytes: self.oracle_bytes + other.oracle_bytes,
            spill_bytes: self.spill_bytes + other.spill_bytes,
            cpu_rows: self.cpu_rows + other.cpu_rows,
        }
    }

    /// The weighted scalar total the optimizer minimises.
    pub fn total(&self) -> f64 {
        self.oracle_round_trips * ROUND_TRIP_COST
            + self.oracle_bytes * ORACLE_BYTE_COST
            + self.spill_bytes * SPILL_BYTE_COST
            + self.cpu_rows * CPU_ROW_COST
    }

    /// Compact rendering for `EXPLAIN` (`trips=2 oracle_bytes=9216 …`).
    pub fn render(&self) -> String {
        format!(
            "trips={:.0} oracle_bytes={:.0} spill_bytes={:.0} cpu={:.0}",
            self.oracle_round_trips, self.oracle_bytes, self.spill_bytes, self.cpu_rows
        )
    }
}

/// Prices operators given the engine's execution knobs.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Rows per batch (each batch of a non-blocking oracle call is one
    /// round trip).
    pub batch_size: usize,
    /// The memory budget limit, if one is set (estimated materialisations
    /// beyond it are priced as spills).
    pub budget: Option<usize>,
    /// Whether the engine coalesces oracle operand rows across input batches
    /// (the [`ExecContext::with_oracle_batching`](crate::ExecContext::with_oracle_batching)
    /// knob). Changes the per-call trip count from per-batch to per-flush.
    pub oracle_batching: bool,
}

impl CostModel {
    /// Trips one non-blocking oracle call pays over `rows` input rows: one
    /// per flush window when batching, one per input batch when not.
    fn trips_per_call(&self, rows: f64) -> f64 {
        let window = if self.oracle_batching {
            crate::operators::oracle::ORACLE_FLUSH_ROWS as f64
        } else {
            self.batch_size as f64
        };
        (rows / window).ceil().max(1.0)
    }

    /// Estimated round trips for the oracle calls inside `exprs` over
    /// `rows` input rows, together with the bytes shipped.
    pub fn oracle_cost(&self, exprs: &[Expr], rows: f64) -> Cost {
        let calls = collect_oracle_calls_all(exprs);
        if calls.is_empty() {
            return Cost::zero();
        }
        let batches = self.trips_per_call(rows);
        let mut trips = 0.0;
        for call in &calls {
            let blocking = matches!(
                call,
                Expr::Function { name, .. } if name.eq_ignore_ascii_case(oracle_fns::RANK)
            );
            // Rank surrogates resolve the whole input in one blocking trip;
            // everything else pays one trip per flush window (batching) or
            // per batch (streaming).
            trips += if blocking { 1.0 } else { batches };
        }
        Cost {
            oracle_round_trips: trips,
            oracle_bytes: calls.len() as f64 * rows * ORACLE_ROW_BYTES,
            ..Cost::default()
        }
    }

    /// Spill cost of materialising `bytes` under the budget: zero when it
    /// fits, write + read back when it does not.
    pub fn spill_cost(&self, bytes: f64) -> Cost {
        match self.budget {
            Some(limit) if bytes > limit as f64 => Cost {
                spill_bytes: 2.0 * bytes,
                ..Cost::default()
            },
            _ => Cost::zero(),
        }
    }

    /// Cost of one binary join candidate.
    ///
    /// `hashable` joins price as hash joins: CPU over both inputs and the
    /// output, spill of both sides when the build side overflows the budget
    /// (the Grace join partitions both inputs through the pager), and oracle
    /// trips for `oracle_calls` key calls — the build side resolves once
    /// over the materialised input; the probe side resolves once per whole
    /// side when it is routed through the cross-batch accumulator (Grace
    /// spill with batching on), once per batch otherwise.
    /// Non-hashable joins price as nested loops (`probe × build` CPU).
    #[allow(clippy::too_many_arguments)]
    pub fn join_cost(
        &self,
        probe_rows: f64,
        probe_width: f64,
        build_rows: f64,
        build_width: f64,
        out_rows: f64,
        oracle_calls: f64,
        hashable: bool,
    ) -> Cost {
        if !hashable {
            return Cost {
                cpu_rows: (probe_rows * build_rows).max(probe_rows + build_rows) + out_rows,
                ..Cost::default()
            };
        }
        let mut cost = Cost {
            cpu_rows: probe_rows + build_rows + out_rows,
            ..Cost::default()
        };
        let build_bytes = build_rows * build_width;
        let spills = matches!(self.budget, Some(limit) if build_bytes > limit as f64);
        if spills {
            // Grace plan: both sides are partitioned through the pager.
            cost.spill_bytes += 2.0 * (build_bytes + probe_rows * probe_width);
        }
        let probe_trips = if self.oracle_batching && spills {
            // Grace routes each side through the cross-batch accumulator:
            // one coalesced trip per call per side, spilled chunks never
            // re-resolve.
            self.trips_per_call(probe_rows)
        } else {
            (probe_rows / self.batch_size as f64).ceil().max(1.0)
        };
        cost.oracle_round_trips += oracle_calls * (probe_trips + 1.0);
        cost.oracle_bytes += oracle_calls * (probe_rows + build_rows) * ORACLE_ROW_BYTES;
        cost
    }

    /// Cost of sorting `rows` rows of `width` bytes (`n·log2 n` CPU plus a
    /// spill pass when the materialisation overflows the budget).
    pub fn sort_cost(&self, rows: f64, width: f64) -> Cost {
        let cmp = rows * rows.max(2.0).log2();
        Cost {
            cpu_rows: cmp,
            ..Cost::default()
        }
        .add(&self.spill_cost(rows * width))
    }

    /// Cost of aggregating `rows` input rows of `width` bytes.
    pub fn aggregate_cost(&self, rows: f64, width: f64) -> Cost {
        Cost {
            cpu_rows: rows,
            ..Cost::default()
        }
        .add(&self.spill_cost(rows * width))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdb_sql::ast::Expr;

    fn model(budget: Option<usize>) -> CostModel {
        // Batching off: the legacy per-batch trip expectations below.
        CostModel {
            batch_size: 1000,
            budget,
            oracle_batching: false,
        }
    }

    fn cmp_call() -> Expr {
        Expr::func(
            oracle_fns::CMP_GT,
            vec![
                Expr::col("a"),
                Expr::col("rid"),
                Expr::str("h"),
                Expr::str("35"),
            ],
        )
    }

    fn rank_call() -> Expr {
        Expr::func(
            oracle_fns::RANK,
            vec![Expr::col("a"), Expr::col("rid"), Expr::str("h")],
        )
    }

    #[test]
    fn oracle_trips_scale_with_batches_except_rank() {
        let m = model(None);
        let c = m.oracle_cost(&[cmp_call()], 2500.0);
        assert_eq!(c.oracle_round_trips, 3.0, "ceil(2500/1000) batches");
        assert!(c.oracle_bytes > 0.0);

        let c = m.oracle_cost(&[rank_call()], 2500.0);
        assert_eq!(c.oracle_round_trips, 1.0, "rank is one blocking trip");

        assert_eq!(m.oracle_cost(&[Expr::col("a")], 2500.0), Cost::zero());
    }

    #[test]
    fn batching_collapses_cmp_trips_to_the_flush_window() {
        let m = CostModel {
            oracle_batching: true,
            ..model(None)
        };
        let c = m.oracle_cost(&[cmp_call()], 2500.0);
        assert_eq!(
            c.oracle_round_trips, 1.0,
            "2500 rows fit one coalesced flush"
        );
        assert_eq!(
            m.oracle_cost(&[rank_call()], 2500.0).oracle_round_trips,
            1.0
        );
        // Inputs beyond the flush window still pay one trip per window.
        let huge = 2.5 * crate::operators::oracle::ORACLE_FLUSH_ROWS as f64;
        assert_eq!(m.oracle_cost(&[cmp_call()], huge).oracle_round_trips, 3.0);
    }

    #[test]
    fn batched_grace_join_prices_one_probe_trip_per_call() {
        let streaming = model(Some(10_000));
        let batched = CostModel {
            oracle_batching: true,
            ..streaming
        };
        // Build side (10 000×16 B) overflows the 10 KB budget → Grace spill.
        let spilled = batched.join_cost(8_000.0, 16.0, 10_000.0, 16.0, 100.0, 1.0, true);
        assert_eq!(
            spilled.oracle_round_trips, 2.0,
            "one coalesced trip per side"
        );
        let legacy = streaming.join_cost(8_000.0, 16.0, 10_000.0, 16.0, 100.0, 1.0, true);
        assert_eq!(legacy.oracle_round_trips, 9.0, "8 probe batches + build");
        // In-memory probes still stream per batch even with batching on.
        let in_memory = batched.join_cost(8_000.0, 16.0, 100.0, 16.0, 100.0, 1.0, true);
        assert_eq!(in_memory.oracle_round_trips, 9.0);
    }

    #[test]
    fn round_trips_dominate_the_total() {
        let one_trip = Cost {
            oracle_round_trips: 1.0,
            ..Cost::default()
        };
        let many_rows = Cost {
            cpu_rows: 50_000.0,
            ..Cost::default()
        };
        assert!(one_trip.total() > many_rows.total());
    }

    #[test]
    fn spill_costs_appear_only_over_budget() {
        let m = model(Some(10_000));
        assert_eq!(m.spill_cost(5_000.0), Cost::zero());
        assert_eq!(m.spill_cost(20_000.0).spill_bytes, 40_000.0);
        assert_eq!(model(None).spill_cost(1e12), Cost::zero());
    }

    #[test]
    fn hash_join_prefers_the_smaller_build_side() {
        // Budget chosen so the small build (100×16 B) fits and the large
        // one (10 000×16 B) spills.
        let m = model(Some(10_000));
        let small_build = m.join_cost(10_000.0, 16.0, 100.0, 16.0, 10_000.0, 0.0, true);
        let large_build = m.join_cost(100.0, 16.0, 10_000.0, 16.0, 10_000.0, 0.0, true);
        assert!(
            small_build.total() < large_build.total(),
            "building on the small side must be cheaper: {} vs {}",
            small_build.total(),
            large_build.total()
        );
    }

    #[test]
    fn nested_loop_is_priced_quadratically() {
        let m = model(None);
        let nl = m.join_cost(1_000.0, 16.0, 1_000.0, 16.0, 100.0, 0.0, false);
        let hash = m.join_cost(1_000.0, 16.0, 1_000.0, 16.0, 100.0, 0.0, true);
        assert!(nl.total() > 100.0 * hash.total());
    }
}
