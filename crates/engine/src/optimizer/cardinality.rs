//! Cardinality and selectivity estimation over logical plans.
//!
//! Estimates are derived from the [`TableStats`] the catalog collected at
//! `ANALYZE` time: scans report the analyzed row count, filters scale by the
//! predicate's estimated selectivity, equi-joins divide by the larger
//! distinct count of the key pair (the classic containment assumption), and
//! aggregates cap the product of their group-key distinct counts at the
//! input size.
//!
//! Range predicates over analyzed plaintext columns interpolate against the
//! column's min/max: `id < lit` estimates `(lit − min) / (max − min)`,
//! clamped to `[0, 1]`. Columns without usable bounds — including every
//! encrypted column, whose `ANALYZE` pass records no plaintext min/max —
//! fall back to [`DEFAULT_RANGE_SELECTIVITY`], as do the oracle-rewritten
//! `SDB_CMP_*` forms (the estimator never sees through the encryption).
//!
//! [`Estimator::rows`] returns `None` whenever a base table has no
//! statistics: the optimizer then leaves the syntactic plan untouched rather
//! than reordering on guesses.

use std::sync::Arc;

use sdb_sql::ast::{BinaryOp, Expr, Literal};
use sdb_sql::plan::LogicalPlan;
use sdb_storage::{Catalog, TableStats, Value};

use crate::secure::oracle_fns;

/// Default selectivity of an equality predicate whose distinct count is
/// unknown.
pub const DEFAULT_EQ_SELECTIVITY: f64 = 0.1;

/// Default selectivity of a range comparison (`<`, `>`, `<=`, `>=` and their
/// oracle-rewritten `SDB_CMP_*` forms).
pub const DEFAULT_RANGE_SELECTIVITY: f64 = 1.0 / 3.0;

/// Default selectivity of any predicate the estimator cannot classify.
pub const DEFAULT_SELECTIVITY: f64 = 0.25;

/// Floor applied to every selectivity so conjunctions never collapse to zero.
const MIN_SELECTIVITY: f64 = 1e-4;

/// Statistics for one column visible in a plan scope.
#[derive(Debug, Clone)]
pub struct ScopeColumn {
    /// Qualified name (`visible_table.column`).
    pub name: String,
    /// Estimated distinct count.
    pub distinct: f64,
    /// Fraction of NULL values.
    pub null_fraction: f64,
    /// Minimum non-NULL value as a scale-4 numeric, when the column is a
    /// plain numeric type with collected bounds.
    pub min: Option<f64>,
    /// Maximum non-NULL value, same encoding as `min`.
    pub max: Option<f64>,
}

/// The columns (with statistics) visible at some point of a plan, used to
/// resolve predicate references during selectivity estimation.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    columns: Vec<ScopeColumn>,
}

impl Scope {
    /// An empty scope (every lookup falls back to defaults).
    pub fn empty() -> Self {
        Scope::default()
    }

    /// Concatenates two scopes (join output).
    pub fn join(mut self, other: Scope) -> Scope {
        self.columns.extend(other.columns);
        self
    }

    fn push(&mut self, column: ScopeColumn) {
        self.columns.push(column);
    }

    /// Resolves a (possibly qualified) column reference with the engine's
    /// shared name-resolution rules ([`sdb_storage::resolve_name`] — the
    /// same the executor applies); `None` when missing or ambiguous.
    pub fn resolve(&self, name: &str) -> Option<&ScopeColumn> {
        match sdb_storage::resolve_name(self.columns.iter().map(|c| c.name.as_str()), name) {
            sdb_storage::NameResolution::One(idx) => Some(&self.columns[idx]),
            _ => None,
        }
    }
}

/// Cardinality estimator over a catalog's statistics.
pub struct Estimator<'a> {
    catalog: &'a Catalog,
}

impl<'a> Estimator<'a> {
    /// Creates an estimator reading the given catalog's statistics.
    pub fn new(catalog: &'a Catalog) -> Self {
        Estimator { catalog }
    }

    fn table_stats(&self, table: &str) -> Option<Arc<TableStats>> {
        self.catalog.table_stats(table)
    }

    /// The scope (columns with statistics) produced by a plan. Projections
    /// and aggregates rename columns, so estimation above them falls back to
    /// defaults (joins never sit above them in this engine's plans).
    pub fn scope(&self, plan: &LogicalPlan) -> Scope {
        match plan {
            LogicalPlan::Scan { table, alias } => {
                let mut scope = Scope::empty();
                if let Some(stats) = self.table_stats(table) {
                    let visible = alias.as_deref().unwrap_or(table);
                    for column in &stats.columns {
                        scope.push(ScopeColumn {
                            name: format!("{visible}.{}", column.name).to_ascii_lowercase(),
                            distinct: column.distinct.max(1.0),
                            null_fraction: column.null_fraction(stats.row_count),
                            min: numeric_bound(column.min.as_ref()),
                            max: numeric_bound(column.max.as_ref()),
                        });
                    }
                }
                scope
            }
            LogicalPlan::Join { left, right, .. } => self.scope(left).join(self.scope(right)),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Limit { input, .. } => self.scope(input),
            LogicalPlan::Project { .. } | LogicalPlan::Aggregate { .. } => Scope::empty(),
        }
    }

    /// Estimated output rows of a plan, or `None` when any base table it
    /// scans has not been analyzed.
    pub fn rows(&self, plan: &LogicalPlan) -> Option<f64> {
        match plan {
            LogicalPlan::Scan { table, .. } => self.table_stats(table).map(|s| s.row_count as f64),
            LogicalPlan::Filter { input, predicate } => {
                let rows = self.rows(input)?;
                let scope = self.scope(input);
                Some(rows * self.selectivity(predicate, &scope))
            }
            LogicalPlan::Join {
                left,
                right,
                kind,
                on,
            } => {
                let l = self.rows(left)?;
                let r = self.rows(right)?;
                let mut rows = l * r;
                if let Some(on) = on {
                    let scope = self.scope(left).join(self.scope(right));
                    rows *= self.selectivity(on, &scope);
                }
                // A LEFT JOIN emits every probe row at least once.
                if *kind == sdb_sql::ast::JoinKind::Left {
                    rows = rows.max(l);
                }
                Some(rows)
            }
            LogicalPlan::Project { input, .. } | LogicalPlan::Sort { input, .. } => {
                self.rows(input)
            }
            LogicalPlan::Aggregate {
                input, group_by, ..
            } => {
                let rows = self.rows(input)?;
                if group_by.is_empty() {
                    return Some(1.0);
                }
                let scope = self.scope(input);
                let mut groups = 1.0f64;
                for (expr, _) in group_by {
                    groups *= self.expr_distinct(expr, &scope, rows);
                }
                Some(groups.min(rows).max(1.0))
            }
            LogicalPlan::Distinct { input } => self.rows(input),
            LogicalPlan::Limit { input, n } => Some(self.rows(input)?.min(*n as f64)),
        }
    }

    /// Estimated average row width in bytes of a plan's output (always
    /// returns something; unanalyzed inputs fall back to a flat guess).
    pub fn row_width(&self, plan: &LogicalPlan) -> f64 {
        const DEFAULT_COLUMN_WIDTH: f64 = 24.0;
        match plan {
            LogicalPlan::Scan { table, .. } => self
                .table_stats(table)
                .map(|s| s.avg_row_width())
                .unwrap_or(4.0 * DEFAULT_COLUMN_WIDTH),
            LogicalPlan::Join { left, right, .. } => self.row_width(left) + self.row_width(right),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Limit { input, .. } => self.row_width(input),
            LogicalPlan::Project { items, .. } => DEFAULT_COLUMN_WIDTH * items.len() as f64,
            LogicalPlan::Aggregate {
                group_by,
                aggregates,
                ..
            } => DEFAULT_COLUMN_WIDTH * (group_by.len() + aggregates.len()) as f64,
        }
    }

    /// Estimated distinct values an expression takes over `rows` input rows.
    fn expr_distinct(&self, expr: &Expr, scope: &Scope, rows: f64) -> f64 {
        match expr {
            Expr::Column(name) => scope
                .resolve(name)
                .map(|c| c.distinct)
                .unwrap_or_else(|| rows.sqrt().max(1.0)),
            Expr::Literal(_) => 1.0,
            // Anything computed: assume it collapses some duplicates.
            _ => rows.sqrt().max(1.0),
        }
    }

    /// Estimated selectivity of a predicate against the given scope, clamped
    /// to `[MIN_SELECTIVITY, 1]`.
    pub fn selectivity(&self, predicate: &Expr, scope: &Scope) -> f64 {
        self.raw_selectivity(predicate, scope)
            .clamp(MIN_SELECTIVITY, 1.0)
    }

    fn eq_selectivity(&self, a: &Expr, b: &Expr, scope: &Scope) -> f64 {
        let distinct_of = |e: &Expr| match e {
            Expr::Column(name) => scope.resolve(name).map(|c| c.distinct),
            _ => None,
        };
        match (distinct_of(a), distinct_of(b)) {
            // col = col: containment assumption.
            (Some(da), Some(db)) => 1.0 / da.max(db).max(1.0),
            // col = literal/computed.
            (Some(d), None) | (None, Some(d)) => 1.0 / d.max(1.0),
            (None, None) => DEFAULT_EQ_SELECTIVITY,
        }
    }

    /// Min/max interpolation for a column-vs-literal range comparison.
    /// `None` (→ the fixed default) unless one side is a column with
    /// collected numeric bounds and the other a numeric literal. The
    /// estimate for `col < lit` is the linear fraction
    /// `(lit − min) / (max − min)`, clamped to `[0, 1]`; `>` takes the
    /// complement, and `<=`/`>=` price like their strict forms (the boundary
    /// mass is below this model's resolution).
    fn range_selectivity(
        &self,
        left: &Expr,
        op: BinaryOp,
        right: &Expr,
        scope: &Scope,
    ) -> Option<f64> {
        // Orient as column-op-literal, flipping the operator when the
        // literal is on the left (`10 < id` ≡ `id > 10`).
        let (name, op, lit) = match (left, right) {
            (Expr::Column(name), Expr::Literal(lit)) => (name, op, lit),
            (Expr::Literal(lit), Expr::Column(name)) => {
                let flipped = match op {
                    BinaryOp::Lt => BinaryOp::Gt,
                    BinaryOp::LtEq => BinaryOp::GtEq,
                    BinaryOp::Gt => BinaryOp::Lt,
                    BinaryOp::GtEq => BinaryOp::LtEq,
                    _ => return None,
                };
                (name, flipped, lit)
            }
            _ => return None,
        };
        let lit = literal_numeric(lit)?;
        let column = scope.resolve(name)?;
        let (min, max) = (column.min?, column.max?);
        let below = if max > min {
            ((lit - min) / (max - min)).clamp(0.0, 1.0)
        } else {
            // Single-point column: everything is on one side of the literal.
            if lit < min {
                0.0
            } else {
                1.0
            }
        };
        Some(match op {
            BinaryOp::Lt | BinaryOp::LtEq => below,
            BinaryOp::Gt | BinaryOp::GtEq => 1.0 - below,
            _ => unreachable!("range operators only"),
        })
    }

    fn raw_selectivity(&self, predicate: &Expr, scope: &Scope) -> f64 {
        match predicate {
            Expr::Binary { left, op, right } => match op {
                BinaryOp::And => self.selectivity(left, scope) * self.selectivity(right, scope),
                BinaryOp::Or => {
                    let a = self.selectivity(left, scope);
                    let b = self.selectivity(right, scope);
                    a + b - a * b
                }
                BinaryOp::Eq => self.eq_selectivity(left, right, scope),
                BinaryOp::NotEq => 1.0 - self.eq_selectivity(left, right, scope),
                BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => self
                    .range_selectivity(left, *op, right, scope)
                    .unwrap_or(DEFAULT_RANGE_SELECTIVITY),
                _ => DEFAULT_SELECTIVITY,
            },
            Expr::Unary {
                op: sdb_sql::ast::UnaryOp::Not,
                expr,
            } => 1.0 - self.selectivity(expr, scope),
            Expr::Between { negated, .. } => {
                let s = DEFAULT_SELECTIVITY;
                if *negated {
                    1.0 - s
                } else {
                    s
                }
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let each = match expr.as_ref() {
                    Expr::Column(name) => scope
                        .resolve(name)
                        .map(|c| 1.0 / c.distinct.max(1.0))
                        .unwrap_or(DEFAULT_EQ_SELECTIVITY),
                    _ => DEFAULT_EQ_SELECTIVITY,
                };
                let s = (each * list.len() as f64).min(1.0);
                if *negated {
                    1.0 - s
                } else {
                    s
                }
            }
            Expr::IsNull { expr, negated } => {
                let nf = match expr.as_ref() {
                    Expr::Column(name) => scope
                        .resolve(name)
                        .map(|c| c.null_fraction)
                        .unwrap_or(DEFAULT_EQ_SELECTIVITY),
                    _ => DEFAULT_EQ_SELECTIVITY,
                };
                if *negated {
                    1.0 - nf
                } else {
                    nf
                }
            }
            Expr::Like { negated, .. } => {
                if *negated {
                    1.0 - DEFAULT_SELECTIVITY
                } else {
                    DEFAULT_SELECTIVITY
                }
            }
            // Membership in an uncorrelated subquery: no usable signal
            // either way.
            Expr::InSubquery { .. } | Expr::Exists { .. } => 0.5,
            Expr::Literal(sdb_sql::ast::Literal::Bool(b)) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            // Oracle-rewritten comparisons price like their plaintext forms.
            Expr::Function { name, .. } => {
                let upper = name.to_ascii_uppercase();
                match upper.as_str() {
                    oracle_fns::CMP_GT
                    | oracle_fns::CMP_GE
                    | oracle_fns::CMP_LT
                    | oracle_fns::CMP_LE => DEFAULT_RANGE_SELECTIVITY,
                    oracle_fns::CMP_EQ => DEFAULT_EQ_SELECTIVITY,
                    oracle_fns::CMP_NE => 1.0 - DEFAULT_EQ_SELECTIVITY,
                    _ => DEFAULT_SELECTIVITY,
                }
            }
            // A bare boolean column (or anything else) as a predicate.
            _ => DEFAULT_SELECTIVITY,
        }
    }
}

/// Projects an `ANALYZE`-collected bound onto the scale-4 numeric line used
/// for interpolation; `None` for non-numeric (or missing) bounds.
fn numeric_bound(bound: Option<&Value>) -> Option<f64> {
    bound
        .and_then(|v| v.as_scaled_i128(4).ok())
        .map(|units| units as f64 / 1e4)
}

/// A literal's position on the same scale-4 numeric line.
fn literal_numeric(lit: &Literal) -> Option<f64> {
    match lit {
        Literal::Int(v) => Some(*v as f64),
        Literal::Decimal { units, scale } => Some(*units as f64 / 10f64.powi(i32::from(*scale))),
        Literal::Date(d) => Some(f64::from(*d)),
        Literal::Bool(b) => Some(f64::from(u8::from(*b))),
        Literal::Null | Literal::Str(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdb_sql::plan::PlanBuilder;
    use sdb_sql::{parse_sql, Statement};
    use sdb_storage::{ColumnDef, DataType, Schema, Value};

    fn catalog() -> Catalog {
        let catalog = Catalog::new();
        let schema = Schema::new(vec![
            ColumnDef::public("id", DataType::Int),
            ColumnDef::public("grp", DataType::Int),
        ]);
        let t = catalog.create_table("t", schema).unwrap();
        {
            let mut guard = t.write();
            for i in 0..1000i64 {
                guard
                    .insert_row(vec![Value::Int(i), Value::Int(i % 10)])
                    .unwrap();
            }
        }
        let schema = Schema::new(vec![
            ColumnDef::public("id", DataType::Int),
            ColumnDef::public("name", DataType::Varchar),
        ]);
        let s = catalog.create_table("s", schema).unwrap();
        {
            let mut guard = s.write();
            for i in 0..10i64 {
                guard
                    .insert_row(vec![Value::Int(i), Value::Str(format!("n{i}"))])
                    .unwrap();
            }
        }
        catalog.analyze_all().unwrap();
        catalog
    }

    fn plan_of(sql: &str) -> LogicalPlan {
        match parse_sql(sql).unwrap() {
            Statement::Query(q) => PlanBuilder::build(&q).unwrap(),
            _ => panic!("not a query"),
        }
    }

    #[test]
    fn scan_rows_come_from_stats() {
        let catalog = catalog();
        let est = Estimator::new(&catalog);
        assert_eq!(est.rows(&plan_of("SELECT id FROM t")), Some(1000.0));
        // Unanalyzed table: no estimate.
        catalog.clear_stats("t");
        assert_eq!(est.rows(&plan_of("SELECT id FROM t")), None);
    }

    #[test]
    fn equality_filter_uses_distinct_counts() {
        let catalog = catalog();
        let est = Estimator::new(&catalog);
        let rows = est
            .rows(&plan_of("SELECT id FROM t WHERE grp = 3"))
            .unwrap();
        // grp has ~10 distinct values over 1000 rows → ~100 rows.
        assert!((50.0..200.0).contains(&rows), "{rows}");
    }

    #[test]
    fn equi_join_divides_by_larger_distinct_count() {
        let catalog = catalog();
        let est = Estimator::new(&catalog);
        let rows = est
            .rows(&plan_of("SELECT t.id FROM t JOIN s ON t.grp = s.id"))
            .unwrap();
        // 1000 × 10 / max(ndv≈10, ndv=10) ≈ 1000.
        assert!((500.0..2000.0).contains(&rows), "{rows}");
    }

    #[test]
    fn aggregate_caps_groups_at_input() {
        let catalog = catalog();
        let est = Estimator::new(&catalog);
        let rows = est
            .rows(&plan_of("SELECT grp, COUNT(*) AS n FROM t GROUP BY grp"))
            .unwrap();
        assert!((5.0..20.0).contains(&rows), "{rows}");
        let one = est.rows(&plan_of("SELECT COUNT(*) AS n FROM t")).unwrap();
        assert_eq!(one, 1.0);
    }

    #[test]
    fn scope_resolution_handles_aliases_and_ambiguity() {
        let catalog = catalog();
        let est = Estimator::new(&catalog);
        // `SELECT *` keeps the join as the plan root (a projection would
        // reset the scope, as renamed columns no longer map to base tables).
        let scope = est.scope(&plan_of("SELECT * FROM t a JOIN s b ON a.id = b.id"));
        assert!(scope.resolve("a.grp").is_some());
        assert!(scope.resolve("b.name").is_some());
        assert!(scope.resolve("name").is_some(), "unique bare name resolves");
        assert!(
            scope.resolve("id").is_none(),
            "ambiguous bare name does not"
        );
        assert!(scope.resolve("a.nope").is_none());
    }

    #[test]
    fn range_filters_interpolate_against_min_max() {
        let catalog = catalog();
        let est = Estimator::new(&catalog);
        // t.id spans 0..=999 over 1000 rows: min = 0, max = 999.
        // id < 250 → (250 − 0) / (999 − 0) of 1000 rows = 250.25025…
        let rows = est
            .rows(&plan_of("SELECT id FROM t WHERE id < 250"))
            .unwrap();
        assert!((rows - 1000.0 * 250.0 / 999.0).abs() < 1e-6, "{rows}");
        // id > 899 → 1 − 899/999 of 1000 rows = 100.1001…
        let rows = est
            .rows(&plan_of("SELECT id FROM t WHERE id > 899"))
            .unwrap();
        assert!((rows - 1000.0 * 100.0 / 999.0).abs() < 1e-6, "{rows}");
        // A flipped literal prices like its oriented form: 250 > id ≡ id < 250.
        let rows = est
            .rows(&plan_of("SELECT id FROM t WHERE 250 > id"))
            .unwrap();
        assert!((rows - 1000.0 * 250.0 / 999.0).abs() < 1e-6, "{rows}");
    }

    #[test]
    fn out_of_range_literals_clamp() {
        let catalog = catalog();
        let est = Estimator::new(&catalog);
        // Literal below min: fraction clamps to 0, then the global
        // MIN_SELECTIVITY floor (1e-4) applies → 0.1 rows.
        let rows = est
            .rows(&plan_of("SELECT id FROM t WHERE id < -5"))
            .unwrap();
        assert!((rows - 1000.0 * 1e-4).abs() < 1e-9, "{rows}");
        // Literal above max: everything qualifies.
        let rows = est
            .rows(&plan_of("SELECT id FROM t WHERE id < 5000"))
            .unwrap();
        assert!((rows - 1000.0).abs() < 1e-9, "{rows}");
    }

    #[test]
    fn range_without_usable_bounds_uses_the_default() {
        let catalog = catalog();
        let est = Estimator::new(&catalog);
        // s.name is VARCHAR: ANALYZE records no numeric bounds, so a range
        // over it prices at the fixed default (10 × 1/3).
        let rows = est
            .rows(&plan_of("SELECT id FROM s WHERE name > 'n5'"))
            .unwrap();
        assert!((rows - 10.0 / 3.0).abs() < 1e-9, "{rows}");
    }

    #[test]
    fn limit_caps_rows() {
        let catalog = catalog();
        let est = Estimator::new(&catalog);
        assert_eq!(est.rows(&plan_of("SELECT id FROM t LIMIT 7")), Some(7.0));
    }
}
