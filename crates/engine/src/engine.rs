//! The SP engine facade: catalog + UDF registry + (optional) DO-proxy oracle,
//! executing SQL text end to end. This is the component that plays the role of
//! "Spark SQL with the SDB UDFs loaded" in the paper's architecture (Figure 2).

use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;

use sdb_sql::{parse_sql, PlanBuilder, Statement};
use sdb_storage::{
    CancelToken, Catalog, ColumnDef, DataType, MemoryBudget, Pager, RecordBatch, Schema, Table,
    Value,
};

use crate::eval::literal_to_value;
use crate::operators::ExecContext;
use crate::planner;
use crate::secure::OracleRef;
use crate::stats::ExecutionStats;
use crate::udf::UdfRegistry;
use crate::{EngineError, Result};

/// The result of executing one statement at the SP.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The result rows (empty schema/zero rows for DDL/DML statements).
    pub batch: RecordBatch,
    /// Execution statistics (the server-side half of the demo's cost breakdown).
    pub stats: ExecutionStats,
    /// The per-operator execution trace, when tracing was on for this query
    /// ([`SpEngine::with_tracing`] / `SDB_TRACE=1` / `EXPLAIN ANALYZE`).
    pub trace: Option<crate::trace::TraceReport>,
}

/// Per-query overrides applied on top of an engine's configured knobs for a
/// single [`SpEngine::execute_sql_with`] call. `None` fields inherit the
/// engine's defaults.
///
/// This is the serving layer's hook: one long-lived engine can run many
/// concurrent queries, each with its own budget share, pager lease on the
/// global buffer pool, and cancellation token.
#[derive(Clone, Default)]
pub struct QueryOptions {
    /// Memory budget the *plan* should assume (drives the choice of
    /// spilling operator variants).
    pub memory_budget: Option<MemoryBudget>,
    /// Pager lease to execute against (typically [`Pager::shared`] on a
    /// global [`sdb_storage::BufferPool`]). Without one, the query gets a
    /// fresh private pool under its budget.
    pub pager: Option<Arc<Pager>>,
    /// Cooperative cancellation token polled by the query's operators,
    /// oracle flushes and pager.
    pub cancel: Option<CancelToken>,
    /// Workers for this query's parallel operators.
    pub parallelism: Option<usize>,
    /// Per-operator tracing for this query.
    pub tracing: Option<bool>,
    /// Oracle for this query only, taking precedence over the engine-wide
    /// slot installed by [`SpEngine::connect_oracle`]. Concurrent serving
    /// sessions each carry their own oracle here, so one session's
    /// connect/disconnect can never swap another's mid-query.
    pub oracle: Option<OracleRef>,
}

impl std::fmt::Debug for QueryOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryOptions")
            .field("memory_budget", &self.memory_budget)
            .field("pager", &self.pager.as_ref().map(|_| ".."))
            .field("cancel", &self.cancel)
            .field("parallelism", &self.parallelism)
            .field("tracing", &self.tracing)
            .field("oracle", &self.oracle.as_ref().map(|_| ".."))
            .finish()
    }
}

impl QueryOptions {
    /// Sets the plan's memory budget.
    pub fn with_memory_budget(mut self, budget: MemoryBudget) -> Self {
        self.memory_budget = Some(budget);
        self
    }

    /// Sets the pager lease to execute against.
    pub fn with_pager(mut self, pager: Arc<Pager>) -> Self {
        self.pager = Some(pager);
        self
    }

    /// Sets the cancellation token.
    pub fn with_cancel_token(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Sets the worker count.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = Some(parallelism);
        self
    }

    /// Enables or disables tracing for this query.
    pub fn with_tracing(mut self, tracing: bool) -> Self {
        self.tracing = Some(tracing);
        self
    }

    /// Sets this query's oracle (overrides the engine-wide slot).
    pub fn with_oracle(mut self, oracle: OracleRef) -> Self {
        self.oracle = Some(oracle);
        self
    }
}

/// The service-provider engine.
///
/// The README quickstart, runnable (this example executes under
/// `cargo test` as a doc-test):
///
/// ```
/// use sdb_engine::{MemoryBudget, SpEngine};
///
/// let engine = SpEngine::new()
///     .with_parallelism(2)                              // workers per query
///     .with_batch_size(4096)                            // rows per batch
///     .with_memory_budget(MemoryBudget::bytes(64 << 20)); // spill past 64 MiB
///
/// engine.execute_sql("CREATE TABLE accounts (id INT, owner VARCHAR(20), balance INT)")?;
/// engine.execute_sql("INSERT INTO accounts VALUES (1, 'ann', 10), (2, 'bob', 20)")?;
///
/// let out = engine.execute_sql("SELECT owner FROM accounts WHERE balance > 15")?;
/// assert_eq!(out.batch.num_rows(), 1);
/// assert_eq!(out.batch.column(0).get(0).as_str()?, "bob");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct SpEngine {
    catalog: Arc<Catalog>,
    registry: UdfRegistry,
    oracle: RwLock<Option<OracleRef>>,
    /// Rows per batch flowing between operators for every query this engine
    /// executes.
    batch_size: usize,
    /// Workers per query for the morsel-parallel operators (`1` = serial
    /// plans). Defaults to the available cores.
    parallelism: usize,
    /// Memory budget for blocking operators. Defaults to the
    /// `SDB_TEST_MEM_BUDGET` environment variable or unlimited; a limited
    /// budget makes the planner select the spilling operator variants.
    memory_budget: MemoryBudget,
    /// Whether the cost-based optimizer rewrites logical plans before
    /// physical planning (default on).
    optimizer: bool,
    /// Whether oracle operand rows coalesce across input batches into one
    /// round trip per registered call (default on).
    oracle_batching: bool,
    /// Injected per-request latency on the oracle link (tests/benches;
    /// `None` defers to `SDB_TEST_ORACLE_LATENCY_MS`).
    oracle_latency: Option<std::time::Duration>,
    /// Whether operators route eligible work through the vectorised columnar
    /// kernels (default on; `SDB_TEST_SCALAR_EVAL=1` flips the default).
    vectorised: bool,
    /// Whether queries execute with per-operator tracing (default off;
    /// `SDB_TRACE=1` flips the default). `EXPLAIN ANALYZE` forces tracing on
    /// for its own query regardless of this knob.
    tracing: bool,
}

impl SpEngine {
    /// Creates an engine with an empty catalog and the standard SDB UDF set.
    pub fn new() -> Self {
        SpEngine {
            catalog: Arc::new(Catalog::new()),
            registry: UdfRegistry::with_sdb_udfs(),
            oracle: RwLock::new(None),
            batch_size: crate::operators::DEFAULT_BATCH_SIZE,
            parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            memory_budget: MemoryBudget::from_env(),
            optimizer: true,
            oracle_batching: true,
            oracle_latency: None,
            // `SDB_TEST_SCALAR_EVAL=1` re-runs whole suites through the
            // scalar row-at-a-time paths; `with_vectorised` still overrides.
            vectorised: std::env::var("SDB_TEST_SCALAR_EVAL")
                .map(|v| v != "1")
                .unwrap_or(true),
            // `SDB_TRACE=1` re-runs whole suites with per-operator tracing
            // (byte-identical output); `with_tracing` still overrides.
            tracing: std::env::var("SDB_TRACE")
                .map(|v| v == "1")
                .unwrap_or(false),
        }
    }

    /// Creates an engine around an existing catalog.
    pub fn with_catalog(catalog: Arc<Catalog>) -> Self {
        SpEngine {
            catalog,
            ..SpEngine::new()
        }
    }

    /// Overrides the rows-per-batch knob for every query this engine runs
    /// (builder style). Panics if `batch_size` is zero.
    ///
    /// Results are byte-identical at any batch size; the knob trades
    /// per-batch overhead against peak batch memory.
    ///
    /// ```
    /// use sdb_engine::SpEngine;
    ///
    /// let engine = SpEngine::new().with_batch_size(2);
    /// engine.execute_sql("CREATE TABLE t (a INT)")?;
    /// engine.execute_sql("INSERT INTO t VALUES (3), (1), (2), (5), (4)")?;
    ///
    /// // Five rows flow through the pipeline as three 2-row batches.
    /// let out = engine.execute_sql("SELECT a FROM t ORDER BY a")?;
    /// assert_eq!(out.batch.num_rows(), 5);
    /// assert_eq!(engine.batch_size(), 2);
    /// # Ok::<(), sdb_engine::EngineError>(())
    /// ```
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Overrides the per-query worker count (builder style; `1` selects the
    /// serial plans). Panics if `parallelism` is zero.
    ///
    /// Defaults to the available cores. Parallel plans fan heavy operator
    /// phases out over contiguous row morsels and merge in morsel order, so
    /// results are byte-identical to serial execution.
    ///
    /// ```
    /// use sdb_engine::SpEngine;
    ///
    /// let engine = SpEngine::new().with_parallelism(4);
    /// engine.execute_sql("CREATE TABLE t (a INT, g INT)")?;
    /// engine.execute_sql("INSERT INTO t VALUES (10, 1), (20, 1), (30, 2)")?;
    ///
    /// let out = engine.execute_sql("SELECT g, SUM(a) AS s FROM t GROUP BY g ORDER BY g")?;
    /// assert_eq!(out.batch.num_rows(), 2);
    /// assert_eq!(engine.parallelism(), 4);
    /// # Ok::<(), sdb_engine::EngineError>(())
    /// ```
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        assert!(parallelism > 0, "parallelism must be positive");
        self.parallelism = parallelism;
        self
    }

    /// Bounds how much memory blocking operators (sort, aggregation, hash
    /// join build sides) may materialise per query before spilling to disk
    /// (builder style). With a limited budget the planner selects the
    /// spilling operator variants ([`ExternalSort`], [`SpillingHashAggregate`]
    /// and [`GraceHashJoin`]), whose results are byte-identical to the
    /// in-memory ones; spill activity is reported in [`ExecutionStats`].
    ///
    /// ```
    /// use sdb_engine::{MemoryBudget, SpEngine};
    ///
    /// let engine = SpEngine::new().with_memory_budget(MemoryBudget::bytes(4 << 10));
    /// engine.execute_sql("CREATE TABLE t (a INT, b INT)")?;
    /// for chunk in 0..20 {
    ///     let rows: Vec<String> = (0..50)
    ///         .map(|i| format!("({}, {})", chunk * 50 + i, (chunk * 50 + i) % 7))
    ///         .collect();
    ///     engine.execute_sql(&format!("INSERT INTO t VALUES {}", rows.join(", ")))?;
    /// }
    ///
    /// // 1000 rows cannot be sorted inside 4 KiB: runs spill through the
    /// // pager, and the result is still exactly the sorted table.
    /// let out = engine.execute_sql("SELECT a FROM t ORDER BY b, a")?;
    /// assert_eq!(out.batch.num_rows(), 1000);
    /// assert!(out.stats.pages_spilled > 0);
    /// # Ok::<(), sdb_engine::EngineError>(())
    /// ```
    ///
    /// [`ExternalSort`]: crate::operators::external_sort::ExternalSort
    /// [`SpillingHashAggregate`]: crate::operators::spill_aggregate::SpillingHashAggregate
    /// [`GraceHashJoin`]: crate::operators::grace_join::GraceHashJoin
    pub fn with_memory_budget(mut self, budget: MemoryBudget) -> Self {
        self.memory_budget = budget;
        self
    }

    /// Enables or disables the cost-based optimizer (builder style;
    /// default on).
    ///
    /// With the optimizer on, queries over `ANALYZE`d tables get their
    /// inner-join regions reordered so the smallest estimated relation
    /// becomes the hash-join build side, priced by a cost model that counts
    /// oracle round trips first. The result *set* is always identical to the
    /// syntactic plan's; the row order of queries without a total `ORDER BY`
    /// is unspecified either way. Tables without statistics keep their
    /// syntactic plans, as do regions under a `LIMIT` with no `Sort` in
    /// between (there, production order decides the surviving rows).
    ///
    /// ```
    /// use sdb_engine::SpEngine;
    ///
    /// let engine = SpEngine::new();
    /// engine.execute_sql("CREATE TABLE t (a INT)")?;
    /// engine.execute_sql("INSERT INTO t VALUES (1), (2), (3)")?;
    /// engine.execute_sql("ANALYZE t")?;
    /// assert_eq!(engine.catalog().table_stats("t").unwrap().row_count, 3);
    ///
    /// // EXPLAIN renders the physical tree plus per-node estimates.
    /// let out = engine.execute_sql("EXPLAIN SELECT a FROM t WHERE a > 1")?;
    /// assert!(out.batch.num_rows() > 0);
    ///
    /// let syntactic = SpEngine::new().with_optimizer(false);
    /// assert!(!syntactic.optimizer_enabled());
    /// # Ok::<(), sdb_engine::EngineError>(())
    /// ```
    pub fn with_optimizer(mut self, optimizer: bool) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Whether the cost-based optimizer is enabled.
    pub fn optimizer_enabled(&self) -> bool {
        self.optimizer
    }

    /// Enables or disables cross-batch oracle batching (builder style;
    /// default on). With batching off, every registered oracle call pays one
    /// round trip per input batch and the Grace join re-resolves keys per
    /// spilled chunk — the pre-batching behavior, kept for byte-identity
    /// cross-checks and cost comparisons. Results are identical either way.
    ///
    /// ```
    /// # use sdb_engine::SpEngine;
    /// let engine = SpEngine::new().with_oracle_batching(false);
    /// assert!(!engine.oracle_batching());
    /// ```
    pub fn with_oracle_batching(mut self, batching: bool) -> Self {
        self.oracle_batching = batching;
        self
    }

    /// Whether cross-batch oracle batching is enabled.
    pub fn oracle_batching(&self) -> bool {
        self.oracle_batching
    }

    /// Enables or disables the vectorised columnar kernels (builder style;
    /// default on, `SDB_TEST_SCALAR_EVAL=1` flips the default). Kernels are
    /// byte-identical to the scalar row-at-a-time paths — the knob exists for
    /// equivalence cross-checks and scalar-baseline benchmarking.
    ///
    /// ```
    /// # use sdb_engine::SpEngine;
    /// let engine = SpEngine::new().with_vectorised(false);
    /// assert!(!engine.vectorised());
    /// ```
    pub fn with_vectorised(mut self, vectorised: bool) -> Self {
        self.vectorised = vectorised;
        self
    }

    /// Whether the vectorised columnar kernels are enabled.
    pub fn vectorised(&self) -> bool {
        self.vectorised
    }

    /// Enables or disables per-operator execution tracing for every query
    /// this engine runs (builder style; default off, `SDB_TRACE=1` flips the
    /// default). Traced queries return a [`crate::trace::TraceReport`] on
    /// [`QueryOutput::trace`] (exported as JSON under `SDB_TRACE_DIR` when
    /// that is set) and produce byte-identical results to untraced runs.
    ///
    /// ```
    /// # use sdb_engine::SpEngine;
    /// let engine = SpEngine::new().with_tracing(true);
    /// engine.execute_sql("CREATE TABLE t (a INT)")?;
    /// engine.execute_sql("INSERT INTO t VALUES (1), (2), (3)")?;
    ///
    /// let out = engine.execute_sql("SELECT a FROM t WHERE a > 1")?;
    /// let report = out.trace.expect("tracing was on");
    /// let root = &report.spans[report.root.unwrap()];
    /// assert_eq!(root.rows_out, out.batch.num_rows());
    /// # Ok::<(), sdb_engine::EngineError>(())
    /// ```
    pub fn with_tracing(mut self, tracing: bool) -> Self {
        self.tracing = tracing;
        self
    }

    /// Whether per-operator execution tracing is enabled.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Injects a fixed per-request latency on the oracle link (builder
    /// style; tests and benches). Simulates the SP↔proxy WAN round trip the
    /// protocol is billed by; `SDB_TEST_ORACLE_LATENCY_MS` sets the same
    /// knob process-wide.
    ///
    /// ```
    /// # use sdb_engine::SpEngine;
    /// # use std::time::Duration;
    /// let engine = SpEngine::new().with_oracle_latency(Duration::from_millis(10));
    /// assert_eq!(engine.oracle_latency(), Some(Duration::from_millis(10)));
    /// ```
    pub fn with_oracle_latency(mut self, latency: std::time::Duration) -> Self {
        self.oracle_latency = Some(latency);
        self
    }

    /// The injected oracle latency, if any was set through the builder.
    pub fn oracle_latency(&self) -> Option<std::time::Duration> {
        self.oracle_latency
    }

    /// Collects optimizer statistics for one table (the `ANALYZE <table>`
    /// statement does the same through SQL).
    pub fn analyze(&self, table: &str) -> Result<std::sync::Arc<sdb_storage::TableStats>> {
        Ok(self.catalog.analyze(table)?)
    }

    /// Collects optimizer statistics for every registered table.
    pub fn analyze_all(&self) -> Result<()> {
        self.catalog.analyze_all()?;
        Ok(())
    }

    /// Renders the `EXPLAIN` output for a query: the chosen physical
    /// operator tree followed by per-node row and cost estimates.
    pub fn explain_sql(&self, sql: &str) -> Result<Vec<String>> {
        match parse_sql(sql)? {
            Statement::Query(query)
            | Statement::Explain(query)
            | Statement::ExplainAnalyze(query) => self.explain_query(&query),
            other => Err(EngineError::Unsupported {
                detail: format!("EXPLAIN only applies to queries, found {other}"),
            }),
        }
    }

    fn explain_query(&self, query: &sdb_sql::ast::Query) -> Result<Vec<String>> {
        let plan = PlanBuilder::build(query)?;
        let ctx = Arc::new(self.fresh_context(None));
        let optimized = if self.optimizer {
            ctx.optimizer().optimize(&plan)
        } else {
            plan.clone()
        };
        let physical = crate::planner::PhysicalPlanner::new(Arc::clone(&ctx)).plan(&optimized)?;

        let mut lines = Vec::new();
        lines.push(format!(
            "physical plan (optimizer {}, parallelism {}, budget {}):",
            if self.optimizer { "on" } else { "off" },
            self.parallelism,
            match self.memory_budget.limit() {
                Some(limit) => format!("{limit}B"),
                None => "unlimited".to_string(),
            }
        ));
        for line in crate::optimizer::render_physical_tree(&physical.describe()) {
            lines.push(format!("  {line}"));
        }
        lines.push("estimates (logical nodes):".to_string());
        for line in ctx.optimizer().annotate(&optimized) {
            lines.push(format!("  {line}"));
        }
        Ok(lines)
    }

    /// A fresh execution context carrying this engine's knobs.
    fn fresh_context(&self, oracle: Option<crate::secure::OracleRef>) -> ExecContext<'_> {
        let ctx = ExecContext::new(&self.catalog, &self.registry, oracle)
            .with_batch_size(self.batch_size)
            .with_memory_budget(self.memory_budget.clone())
            .with_optimizer(self.optimizer)
            .with_oracle_batching(self.oracle_batching)
            .with_vectorised(self.vectorised)
            .with_parallelism(self.parallelism)
            .with_tracing(self.tracing);
        match self.oracle_latency {
            Some(latency) => ctx.with_oracle_latency(latency),
            None => ctx,
        }
    }

    /// Rows per batch used for query execution.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The per-query memory budget for blocking operators.
    pub fn memory_budget(&self) -> &MemoryBudget {
        &self.memory_budget
    }

    /// Workers per query used by the parallel operators.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The UDF registry (e.g. to register extra plain UDFs).
    pub fn registry_mut(&mut self) -> &mut UdfRegistry {
        &mut self.registry
    }

    /// Connects the DO proxy's oracle for interactive protocol steps.
    pub fn connect_oracle(&self, oracle: OracleRef) {
        *self.oracle.write() = Some(oracle);
    }

    /// Disconnects the oracle (plaintext-only operation).
    pub fn disconnect_oracle(&self) {
        *self.oracle.write() = None;
    }

    /// Registers a fully-built table (the upload path used by the proxy)
    /// and collects its optimizer statistics, so uploaded tables are
    /// immediately eligible for cost-based planning.
    pub fn load_table(&self, table: Table) -> Result<()> {
        let name = table.name().to_string();
        self.catalog.register_table(table)?;
        self.catalog.analyze(&name)?;
        Ok(())
    }

    /// Executes a single SQL statement (SELECT, CREATE TABLE or INSERT).
    pub fn execute_sql(&self, sql: &str) -> Result<QueryOutput> {
        self.execute_sql_with(sql, &QueryOptions::default())
    }

    /// Executes a single SQL statement with per-query overrides — the
    /// serving layer's entry point. Options only affect SELECT execution;
    /// DDL/DML statements ignore them (they don't plan or spill).
    ///
    /// ```
    /// use sdb_engine::{QueryOptions, SpEngine};
    /// use sdb_storage::CancelToken;
    ///
    /// let engine = SpEngine::new();
    /// engine.execute_sql("CREATE TABLE t (a INT)")?;
    /// engine.execute_sql("INSERT INTO t VALUES (1), (2), (3)")?;
    ///
    /// let cancel = CancelToken::new();
    /// let opts = QueryOptions::default()
    ///     .with_parallelism(1)
    ///     .with_cancel_token(cancel.clone());
    /// let out = engine.execute_sql_with("SELECT a FROM t ORDER BY a", &opts)?;
    /// assert_eq!(out.batch.num_rows(), 3);
    ///
    /// cancel.cancel();
    /// assert!(engine.execute_sql_with("SELECT a FROM t", &opts).is_err());
    /// # Ok::<(), sdb_engine::EngineError>(())
    /// ```
    pub fn execute_sql_with(&self, sql: &str, opts: &QueryOptions) -> Result<QueryOutput> {
        let started = Instant::now();
        let statement = parse_sql(sql)?;
        let mut output = self.execute_statement_with(&statement, opts)?;
        output.stats.total_time = started.elapsed();
        Ok(output)
    }

    /// Executes an already-parsed statement.
    pub fn execute_statement(&self, statement: &Statement) -> Result<QueryOutput> {
        self.execute_statement_with(statement, &QueryOptions::default())
    }

    /// Builds the execution context for one query, layering `opts` over the
    /// engine's knobs. Order matters: the budget rebuilds the pool, tracing
    /// installs observers, and the pager lease replaces the pool last (so
    /// observers and the cancel token land on the lease actually used).
    fn query_context(&self, oracle: Option<OracleRef>, opts: &QueryOptions) -> ExecContext<'_> {
        let mut ctx = self.fresh_context(oracle);
        if let Some(budget) = &opts.memory_budget {
            ctx = ctx.with_memory_budget(budget.clone());
        }
        if let Some(parallelism) = opts.parallelism {
            ctx = ctx.with_parallelism(parallelism);
        }
        if let Some(tracing) = opts.tracing {
            ctx = ctx.with_tracing(tracing);
        }
        if let Some(cancel) = &opts.cancel {
            ctx = ctx.with_cancel_token(cancel.clone());
        }
        if let Some(pager) = &opts.pager {
            ctx = ctx.with_pager(Arc::clone(pager));
        }
        ctx
    }

    /// Executes an already-parsed statement with per-query overrides.
    pub fn execute_statement_with(
        &self,
        statement: &Statement,
        opts: &QueryOptions,
    ) -> Result<QueryOutput> {
        match statement {
            Statement::Query(query) => {
                let plan = PlanBuilder::build(query)?;
                let oracle = opts.oracle.clone().or_else(|| self.oracle.read().clone());
                let ctx = Arc::new(self.query_context(oracle, opts));
                let batch = planner::execute_plan(&ctx, &plan)?;
                let trace = ctx.trace().map(|t| t.report());
                if let Some(report) = &trace {
                    Self::maybe_export_trace(report);
                }
                Ok(QueryOutput {
                    stats: ctx.stats(),
                    batch,
                    trace,
                })
            }
            Statement::ExplainAnalyze(query) => self.explain_analyze_query(query),
            Statement::Explain(query) => {
                let lines = self.explain_query(query)?;
                let schema = Schema::new(vec![ColumnDef::public("plan", DataType::Varchar)]);
                let rows = lines.into_iter().map(|l| vec![Value::Str(l)]).collect();
                Ok(QueryOutput {
                    batch: RecordBatch::from_rows(schema, rows)?,
                    stats: ExecutionStats::default(),
                    trace: None,
                })
            }
            Statement::Analyze { table } => {
                let analyzed = match table {
                    Some(table) => vec![self.catalog.analyze(table)?],
                    None => self.catalog.analyze_all()?,
                };
                let schema = Schema::new(vec![
                    ColumnDef::public("table", DataType::Varchar),
                    ColumnDef::public("rows", DataType::Int),
                ]);
                let rows = analyzed
                    .iter()
                    .map(|s| vec![Value::Str(s.table.clone()), Value::Int(s.row_count as i64)])
                    .collect();
                Ok(QueryOutput {
                    batch: RecordBatch::from_rows(schema, rows)?,
                    stats: ExecutionStats::default(),
                    trace: None,
                })
            }
            Statement::CreateTable { name, columns } => {
                let schema = Schema::new(
                    columns
                        .iter()
                        .map(|c| ColumnDef {
                            name: c.name.clone(),
                            data_type: c.data_type,
                            sensitivity: if c.sensitive {
                                sdb_storage::Sensitivity::Sensitive
                            } else {
                                sdb_storage::Sensitivity::Public
                            },
                        })
                        .collect(),
                );
                self.catalog.create_table(name, schema)?;
                Ok(QueryOutput {
                    batch: RecordBatch::empty(Schema::empty()),
                    stats: ExecutionStats::default(),
                    trace: None,
                })
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                let handle = self.catalog.table(table)?;
                let mut guard = handle.write();
                let schema = guard.schema().clone();
                for row in rows {
                    let values = self.insert_row_values(&schema, columns, row)?;
                    guard.insert_row(values)?;
                }
                Ok(QueryOutput {
                    batch: RecordBatch::empty(Schema::empty()),
                    stats: ExecutionStats::default(),
                    trace: None,
                })
            }
        }
    }

    /// Executes `query` with tracing forced on and renders the annotated
    /// physical tree — per-operator actual rows, wall time,
    /// estimate-vs-actual deviation and oracle / spill / kernel attribution
    /// (the `EXPLAIN ANALYZE` statement). The full [`TraceReport`] rides
    /// along on [`QueryOutput::trace`].
    ///
    /// [`TraceReport`]: crate::trace::TraceReport
    fn explain_analyze_query(&self, query: &sdb_sql::ast::Query) -> Result<QueryOutput> {
        let started = Instant::now();
        let plan = PlanBuilder::build(query)?;
        let oracle = self.oracle.read().clone();
        let ctx = Arc::new(self.fresh_context(oracle).with_tracing(true));
        let batch = planner::execute_plan(&ctx, &plan)?;
        let mut stats = ctx.stats();
        stats.total_time = started.elapsed();
        let mut report = ctx.trace().expect("tracing was forced on").report();
        report.total_time_us = stats.total_time.as_micros() as u64;
        Self::maybe_export_trace(&report);

        let mut lines = Vec::with_capacity(report.spans.len() + 1);
        lines.push(format!(
            "analyzed plan ({} rows in {}, parallelism {}, budget {}):",
            batch.num_rows(),
            crate::trace::fmt_us(report.total_time_us),
            self.parallelism,
            match self.memory_budget.limit() {
                Some(limit) => format!("{limit}B"),
                None => "unlimited".to_string(),
            }
        ));
        for line in report.render() {
            lines.push(format!("  {line}"));
        }
        let schema = Schema::new(vec![ColumnDef::public("plan", DataType::Varchar)]);
        let rows = lines.into_iter().map(|l| vec![Value::Str(l)]).collect();
        Ok(QueryOutput {
            batch: RecordBatch::from_rows(schema, rows)?,
            stats,
            trace: Some(report),
        })
    }

    /// Writes `report` as JSON under `SDB_TRACE_DIR` when that is set.
    /// Best-effort: export failures never fail the query.
    fn maybe_export_trace(report: &crate::trace::TraceReport) {
        if let Ok(dir) = std::env::var("SDB_TRACE_DIR") {
            if !dir.is_empty() {
                let _ = report.write_to_dir(std::path::Path::new(&dir));
            }
        }
    }

    /// Maps an INSERT row (possibly with an explicit column list) onto the table's
    /// schema order, filling unspecified columns with NULL.
    fn insert_row_values(
        &self,
        schema: &Schema,
        columns: &[String],
        row: &[sdb_sql::Expr],
    ) -> Result<Vec<Value>> {
        let literal_of = |e: &sdb_sql::Expr| -> Result<Value> {
            match e {
                sdb_sql::Expr::Literal(lit) => Ok(literal_to_value(lit)),
                sdb_sql::Expr::Unary {
                    op: sdb_sql::UnaryOp::Neg,
                    expr,
                } => match expr.as_ref() {
                    sdb_sql::Expr::Literal(lit) => match literal_to_value(lit) {
                        Value::Int(v) => Ok(Value::Int(-v)),
                        Value::Decimal { units, scale } => Ok(Value::Decimal {
                            units: -units,
                            scale,
                        }),
                        other => Err(EngineError::Expression {
                            detail: format!("cannot negate {other:?} in INSERT"),
                        }),
                    },
                    other => Err(EngineError::Expression {
                        detail: format!("INSERT values must be literals, found {other:?}"),
                    }),
                },
                other => Err(EngineError::Expression {
                    detail: format!("INSERT values must be literals, found {other:?}"),
                }),
            }
        };

        if columns.is_empty() {
            if row.len() != schema.len() {
                return Err(EngineError::Storage(
                    sdb_storage::StorageError::ArityMismatch {
                        expected: schema.len(),
                        found: row.len(),
                    },
                ));
            }
            return row.iter().map(literal_of).collect();
        }

        if columns.len() != row.len() {
            return Err(EngineError::Storage(
                sdb_storage::StorageError::ArityMismatch {
                    expected: columns.len(),
                    found: row.len(),
                },
            ));
        }
        let mut values = vec![Value::Null; schema.len()];
        for (col, expr) in columns.iter().zip(row.iter()) {
            let idx = schema.index_of(col)?;
            values[idx] = literal_of(expr)?;
        }
        Ok(values)
    }
}

impl Default for SpEngine {
    fn default() -> Self {
        SpEngine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddl_dml_query_roundtrip() {
        let engine = SpEngine::new();
        engine
            .execute_sql("CREATE TABLE accounts (id INT, owner VARCHAR(20), balance DECIMAL(10,2) SENSITIVE)")
            .unwrap();
        engine
            .execute_sql("INSERT INTO accounts VALUES (1, 'ann', 10.50), (2, 'bob', 20.00)")
            .unwrap();
        engine
            .execute_sql("INSERT INTO accounts (id, owner) VALUES (3, 'cat')")
            .unwrap();

        let out = engine
            .execute_sql("SELECT owner, balance FROM accounts WHERE id <= 2 ORDER BY id")
            .unwrap();
        assert_eq!(out.batch.num_rows(), 2);
        assert_eq!(out.batch.column(0).get(0), &Value::Str("ann".into()));
        assert!(out.stats.total_time.as_nanos() > 0);

        let out = engine
            .execute_sql("SELECT COUNT(*) AS n FROM accounts")
            .unwrap();
        assert_eq!(out.batch.column(0).get(0), &Value::Int(3));
    }

    #[test]
    fn sensitive_flag_is_recorded_in_schema() {
        let engine = SpEngine::new();
        engine
            .execute_sql("CREATE TABLE t (a INT, b INT SENSITIVE)")
            .unwrap();
        let handle = engine.catalog().table("t").unwrap();
        let table = handle.read();
        assert!(!table
            .schema()
            .column("a")
            .unwrap()
            .sensitivity
            .is_sensitive());
        assert!(table
            .schema()
            .column("b")
            .unwrap()
            .sensitivity
            .is_sensitive());
    }

    #[test]
    fn insert_arity_errors() {
        let engine = SpEngine::new();
        engine.execute_sql("CREATE TABLE t (a INT, b INT)").unwrap();
        assert!(engine.execute_sql("INSERT INTO t VALUES (1)").is_err());
        assert!(engine
            .execute_sql("INSERT INTO t (a) VALUES (1, 2)")
            .is_err());
        assert!(engine
            .execute_sql("INSERT INTO t (a) VALUES (a + 1)")
            .is_err());
        assert!(engine
            .execute_sql("INSERT INTO missing VALUES (1)")
            .is_err());
    }

    #[test]
    fn negative_literal_insert() {
        let engine = SpEngine::new();
        engine.execute_sql("CREATE TABLE t (a INT)").unwrap();
        engine.execute_sql("INSERT INTO t VALUES (-5)").unwrap();
        let out = engine.execute_sql("SELECT a FROM t").unwrap();
        assert_eq!(out.batch.column(0).get(0), &Value::Int(-5));
    }

    #[test]
    fn duplicate_create_rejected() {
        let engine = SpEngine::new();
        engine.execute_sql("CREATE TABLE t (a INT)").unwrap();
        assert!(engine.execute_sql("CREATE TABLE t (a INT)").is_err());
    }
}
