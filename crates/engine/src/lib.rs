//! # sdb-engine
//!
//! The service-provider (SP) half of the SDB reproduction: a from-scratch
//! relational execution engine with a user-defined-function registry, into which
//! the SDB secure operators are plugged exactly as the paper plugs Hive UDFs into
//! Spark SQL (paper §2.2, Figure 2).
//!
//! The engine never holds any key material. Everything it can compute over
//! sensitive data goes through:
//!
//! * **SDB scalar UDFs** ([`secure`]) — `SDB_MULTIPLY`, `SDB_ADD`, `SDB_KEY_UPDATE`,
//!   … — pure modular arithmetic over secret shares, using only the public modulus
//!   `n` shipped as a UDF argument;
//! * **SDB aggregate UDFs** — `SDB_SUM` folds a key-unified encrypted column with
//!   modular addition;
//! * **oracle calls** ([`secure::SdbOracle`]) — the interactive half of the
//!   comparison / grouping / ranking protocols, where the SP ships *blinded or
//!   encrypted* values to the data owner's proxy and receives back only the
//!   plaintext-free verdicts it needs (sign bits, opaque group tags, opaque rank
//!   surrogates). Every crossing of this interface is counted so the benches can
//!   report client vs server cost (experiment E3) and the audit can inspect the
//!   traffic (experiment E4).
//!
//! The same engine executes plaintext queries (no UDFs involved), which is how the
//! plaintext baseline of `sdb-baseline` runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod eval;
pub mod kernels;
pub mod operators;
pub mod optimizer;
pub mod planner;
pub mod secure;
pub mod stats;
pub mod trace;
pub mod udf;

pub use engine::{QueryOptions, QueryOutput, SpEngine};
pub use error::EngineError;
pub use operators::{BoxedOperator, ExecContext, PhysicalOperator, DEFAULT_BATCH_SIZE};
pub use optimizer::Optimizer;
pub use planner::PhysicalPlanner;
pub use sdb_storage::{BufferPool, CancelToken, MemoryBudget};
pub use secure::{
    LatencyOracle, NullOracle, OracleRequest, OracleResponse, OracleResult, SdbOracle,
};
pub use stats::ExecutionStats;
pub use trace::{QueryTrace, SpanReport, TraceEvent, TraceReport};
pub use udf::{ScalarUdf, UdfRegistry};

/// Library result alias.
pub type Result<T> = std::result::Result<T, EngineError>;
