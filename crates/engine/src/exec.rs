//! The physical executor: turns logical plans into record batches against a
//! catalog, invoking scalar UDFs through the registry and the DO-proxy oracle for
//! the interactive protocol steps.

use std::cell::RefCell;
use std::collections::HashMap;
use std::time::Instant;

use num_bigint::BigUint;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sdb_sql::ast::{BinaryOp, Expr, JoinKind, Query};
use sdb_sql::plan::{AggFunc, AggregateExpr, LogicalPlan, PlanBuilder, ProjectionItem, SortKey};
use sdb_storage::{Catalog, Column, ColumnDef, DataType, RecordBatch, Schema, Sensitivity, Value};

use crate::eval::{Evaluator, SubqueryResolver};
use crate::secure::{
    oracle_fns, parse_biguint_arg, sign_to_bool, OracleRef, OracleRequest, OracleRequestKind,
    OracleResponse, OracleRow,
};
use crate::stats::ExecutionStats;
use crate::udf::UdfRegistry;
use crate::{EngineError, Result};

/// Executes logical plans against a catalog.
pub struct Executor<'a> {
    catalog: &'a Catalog,
    registry: &'a UdfRegistry,
    oracle: Option<OracleRef>,
    stats: RefCell<ExecutionStats>,
    rng: RefCell<StdRng>,
    subquery_cache: RefCell<HashMap<String, RecordBatch>>,
}

impl<'a> Executor<'a> {
    /// Creates an executor. `oracle` is the connection back to the DO proxy for
    /// interactive protocol steps; pass `None` for plaintext-only workloads.
    pub fn new(catalog: &'a Catalog, registry: &'a UdfRegistry, oracle: Option<OracleRef>) -> Self {
        Executor {
            catalog,
            registry,
            oracle,
            stats: RefCell::new(ExecutionStats::default()),
            rng: RefCell::new(StdRng::from_entropy()),
            subquery_cache: RefCell::new(HashMap::new()),
        }
    }

    /// Uses a fixed RNG seed for the comparison-blinding factors (tests only).
    pub fn with_rng_seed(mut self, seed: u64) -> Self {
        self.rng = RefCell::new(StdRng::seed_from_u64(seed));
        self
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> ExecutionStats {
        self.stats.borrow().clone()
    }

    /// Executes a plan to completion.
    pub fn execute(&self, plan: &LogicalPlan) -> Result<RecordBatch> {
        let batch = self.execute_inner(plan)?;
        self.stats.borrow_mut().rows_returned = batch.num_rows();
        Ok(batch)
    }

    fn execute_inner(&self, plan: &LogicalPlan) -> Result<RecordBatch> {
        match plan {
            LogicalPlan::Scan { table, alias } => self.exec_scan(table, alias.as_deref()),
            LogicalPlan::Filter { input, predicate } => {
                let batch = self.execute_inner(input)?;
                self.exec_filter(batch, predicate)
            }
            LogicalPlan::Project { input, items } => {
                let batch = self.execute_inner(input)?;
                self.exec_project(batch, items)
            }
            LogicalPlan::Join {
                left,
                right,
                kind,
                on,
            } => {
                let left = self.execute_inner(left)?;
                let right = self.execute_inner(right)?;
                self.exec_join(left, right, *kind, on.as_ref())
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let batch = self.execute_inner(input)?;
                self.exec_aggregate(batch, group_by, aggregates)
            }
            LogicalPlan::Sort { input, keys } => {
                let batch = self.execute_inner(input)?;
                self.exec_sort(batch, keys)
            }
            LogicalPlan::Distinct { input } => {
                let batch = self.execute_inner(input)?;
                self.exec_distinct(batch)
            }
            LogicalPlan::Limit { input, n } => {
                let batch = self.execute_inner(input)?;
                Ok(batch.limit(*n as usize))
            }
        }
    }

    // ------------------------------------------------------------------
    // Scan
    // ------------------------------------------------------------------

    fn exec_scan(&self, table: &str, alias: Option<&str>) -> Result<RecordBatch> {
        let handle = self.catalog.table(table)?;
        let guard = handle.read();
        let batch = guard.scan();
        let visible = alias.unwrap_or(table);
        self.stats.borrow_mut().rows_scanned += batch.num_rows();

        // Qualify column names with the visible table name so joins and qualified
        // references resolve; bare references still work through suffix matching.
        let qualified = Schema::new(
            batch
                .schema()
                .columns()
                .iter()
                .map(|c| ColumnDef {
                    name: format!("{visible}.{}", c.name),
                    data_type: c.data_type,
                    sensitivity: c.sensitivity,
                })
                .collect(),
        );
        RecordBatch::new(qualified, batch.columns().to_vec()).map_err(Into::into)
    }

    // ------------------------------------------------------------------
    // Filter
    // ------------------------------------------------------------------

    fn exec_filter(&self, batch: RecordBatch, predicate: &Expr) -> Result<RecordBatch> {
        let mut exprs = vec![bind_to_existing_columns(predicate, batch.schema())];
        let batch = self.resolve_oracle_calls(batch, &mut exprs)?;
        let predicate = &exprs[0];
        let evaluator = Evaluator::new(self.registry).with_subqueries(self);
        let mut mask = Vec::with_capacity(batch.num_rows());
        for row in 0..batch.num_rows() {
            mask.push(evaluator.evaluate_predicate(predicate, &batch, row)?);
        }
        self.stats.borrow_mut().udf_calls += evaluator.udf_calls();
        batch.filter(&mask).map_err(Into::into)
    }

    // ------------------------------------------------------------------
    // Project
    // ------------------------------------------------------------------

    fn exec_project(&self, batch: RecordBatch, items: &[ProjectionItem]) -> Result<RecordBatch> {
        enum Output {
            Passthrough(usize),
            Computed { index: usize, name: String },
        }

        let original_columns = batch.num_columns();
        let mut outputs = Vec::new();
        let mut exprs = Vec::new();
        for item in items {
            match item {
                ProjectionItem::Wildcard => {
                    for i in 0..original_columns {
                        outputs.push(Output::Passthrough(i));
                    }
                }
                ProjectionItem::Named { expr, name } => {
                    outputs.push(Output::Computed {
                        index: exprs.len(),
                        name: name.clone(),
                    });
                    // Expressions that literally name an input column (e.g. the
                    // projection of a GROUP BY expression such as `YEAR(d)` above an
                    // aggregate whose output column is named "YEAR(d)") bind to that
                    // column instead of being re-evaluated.
                    exprs.push(bind_to_existing_columns(expr, batch.schema()));
                }
            }
        }

        let batch = self.resolve_oracle_calls(batch, &mut exprs)?;
        let evaluator = Evaluator::new(self.registry).with_subqueries(self);

        // Evaluate all computed expressions for all rows.
        let mut computed: Vec<Vec<Value>> = vec![Vec::with_capacity(batch.num_rows()); exprs.len()];
        for row in 0..batch.num_rows() {
            for (i, expr) in exprs.iter().enumerate() {
                computed[i].push(evaluator.evaluate(expr, &batch, row)?);
            }
        }
        self.stats.borrow_mut().udf_calls += evaluator.udf_calls();

        let mut defs = Vec::new();
        let mut columns = Vec::new();
        for output in &outputs {
            match output {
                Output::Passthrough(i) => {
                    defs.push(batch.schema().column_at(*i).clone());
                    columns.push(batch.column(*i).clone());
                }
                Output::Computed { index, name } => {
                    let values = std::mem::take(&mut computed[*index]);
                    let def = infer_column_def(name, &exprs[*index], &values, batch.schema());
                    let column = Column::from_values(def.data_type, values)?;
                    defs.push(def);
                    columns.push(column);
                }
            }
        }
        RecordBatch::new(Schema::new(defs), columns).map_err(Into::into)
    }

    // ------------------------------------------------------------------
    // Join
    // ------------------------------------------------------------------

    fn exec_join(
        &self,
        left: RecordBatch,
        right: RecordBatch,
        kind: JoinKind,
        on: Option<&Expr>,
    ) -> Result<RecordBatch> {
        let combined_schema = left.schema().join(right.schema());

        // Split the ON condition into hash-joinable equality pairs and a residual
        // predicate evaluated on the combined rows.
        let mut left_keys: Vec<Expr> = Vec::new();
        let mut right_keys: Vec<Expr> = Vec::new();
        let mut residual: Vec<Expr> = Vec::new();
        if let Some(on) = on {
            for conjunct in split_conjuncts(on) {
                match classify_equi_conjunct(&conjunct, left.schema(), right.schema()) {
                    Some((l, r)) => {
                        left_keys.push(l);
                        right_keys.push(r);
                    }
                    None => residual.push(conjunct),
                }
            }
        }

        let joined_rows: Vec<Vec<Value>> = if !left_keys.is_empty() {
            self.hash_join(&left, &right, &left_keys, &right_keys, kind)?
        } else {
            self.nested_loop_join(&left, &right, kind, on)?
        };

        let mut batch = RecordBatch::from_rows(combined_schema, joined_rows)?;

        // Apply residual conjuncts (only relevant when we hash-joined).
        if !left_keys.is_empty() && !residual.is_empty() {
            let predicate = residual
                .into_iter()
                .reduce(|a, b| Expr::binary(a, BinaryOp::And, b))
                .expect("non-empty residual");
            batch = self.exec_filter(batch, &predicate)?;
        }
        Ok(batch)
    }

    fn hash_join(
        &self,
        left: &RecordBatch,
        right: &RecordBatch,
        left_keys: &[Expr],
        right_keys: &[Expr],
        kind: JoinKind,
    ) -> Result<Vec<Vec<Value>>> {
        // Resolve oracle calls (e.g. SDB_GROUP_TAG join keys) per side.
        let mut lk = left_keys.to_vec();
        let left_batch = self.resolve_oracle_calls(left.clone(), &mut lk)?;
        let mut rk = right_keys.to_vec();
        let right_batch = self.resolve_oracle_calls(right.clone(), &mut rk)?;

        let evaluator = Evaluator::new(self.registry).with_subqueries(self);
        let key_of = |exprs: &[Expr], batch: &RecordBatch, row: usize| -> Result<Option<String>> {
            let mut parts = Vec::with_capacity(exprs.len());
            for e in exprs {
                let v = evaluator.evaluate(e, batch, row)?;
                if v.is_null() {
                    return Ok(None); // NULL join keys never match.
                }
                parts.push(join_key_component(&v));
            }
            Ok(Some(parts.join("\u{1f}")))
        };

        // Build hash table on the right side.
        let mut table: HashMap<String, Vec<usize>> = HashMap::new();
        for row in 0..right_batch.num_rows() {
            if let Some(key) = key_of(&rk, &right_batch, row)? {
                table.entry(key).or_default().push(row);
            }
        }

        let right_width = right.num_columns();
        let mut rows = Vec::new();
        for lrow in 0..left_batch.num_rows() {
            let mut matched = false;
            if let Some(key) = key_of(&lk, &left_batch, lrow)? {
                if let Some(matches) = table.get(&key) {
                    for &rrow in matches {
                        let mut row = left.row(lrow);
                        row.extend(right.row(rrow));
                        rows.push(row);
                        matched = true;
                    }
                }
            }
            if !matched && kind == JoinKind::Left {
                let mut row = left.row(lrow);
                row.extend(std::iter::repeat(Value::Null).take(right_width));
                rows.push(row);
            }
        }
        self.stats.borrow_mut().udf_calls += evaluator.udf_calls();
        Ok(rows)
    }

    fn nested_loop_join(
        &self,
        left: &RecordBatch,
        right: &RecordBatch,
        kind: JoinKind,
        on: Option<&Expr>,
    ) -> Result<Vec<Vec<Value>>> {
        let combined_schema = left.schema().join(right.schema());
        let right_width = right.num_columns();

        // Pre-resolve oracle calls over the cross product is wasteful; the rewriter
        // never emits oracle calls inside non-equi ON conditions, so evaluate the
        // predicate directly (it may still use plain UDFs and subqueries).
        let evaluator = Evaluator::new(self.registry).with_subqueries(self);
        let mut rows = Vec::new();
        for lrow in 0..left.num_rows() {
            let mut matched = false;
            for rrow in 0..right.num_rows() {
                let mut row = left.row(lrow);
                row.extend(right.row(rrow));
                let keep = match on {
                    None => true,
                    Some(pred) => {
                        let probe = RecordBatch::from_rows(combined_schema.clone(), vec![row.clone()])?;
                        evaluator.evaluate_predicate(pred, &probe, 0)?
                    }
                };
                if keep {
                    rows.push(row);
                    matched = true;
                }
            }
            if !matched && kind == JoinKind::Left {
                let mut row = left.row(lrow);
                row.extend(std::iter::repeat(Value::Null).take(right_width));
                rows.push(row);
            }
        }
        self.stats.borrow_mut().udf_calls += evaluator.udf_calls();
        Ok(rows)
    }

    // ------------------------------------------------------------------
    // Aggregate
    // ------------------------------------------------------------------

    fn exec_aggregate(
        &self,
        batch: RecordBatch,
        group_by: &[(Expr, String)],
        aggregates: &[AggregateExpr],
    ) -> Result<RecordBatch> {
        // Resolve oracle calls appearing in grouping expressions or aggregate args.
        let mut exprs: Vec<Expr> = group_by.iter().map(|(e, _)| e.clone()).collect();
        let arg_offset = exprs.len();
        for agg in aggregates {
            exprs.push(agg.arg.clone().unwrap_or(Expr::Literal(sdb_sql::ast::Literal::Int(1))));
        }
        let batch = self.resolve_oracle_calls(batch, &mut exprs)?;
        let group_exprs = &exprs[..arg_offset];
        let agg_args = &exprs[arg_offset..];

        let evaluator = Evaluator::new(self.registry).with_subqueries(self);

        // Group rows.
        let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        for row in 0..batch.num_rows() {
            let mut key_values = Vec::with_capacity(group_exprs.len());
            for e in group_exprs {
                key_values.push(evaluator.evaluate(e, &batch, row)?);
            }
            let key: String = key_values
                .iter()
                .map(join_key_component)
                .collect::<Vec<_>>()
                .join("\u{1f}");
            match index.get(&key) {
                Some(&g) => groups[g].1.push(row),
                None => {
                    index.insert(key, groups.len());
                    groups.push((key_values, vec![row]));
                }
            }
        }
        // A global aggregate over an empty input still produces one row.
        if groups.is_empty() && group_exprs.is_empty() {
            groups.push((vec![], vec![]));
        }

        // Evaluate aggregate arguments per row per aggregate.
        let mut out_rows: Vec<Vec<Value>> = Vec::with_capacity(groups.len());
        for (key_values, rows) in &groups {
            let mut out = key_values.clone();
            for (agg, arg_expr) in aggregates.iter().zip(agg_args.iter()) {
                let mut values = Vec::with_capacity(rows.len());
                for &row in rows {
                    values.push(evaluator.evaluate(arg_expr, &batch, row)?);
                }
                out.push(compute_aggregate(agg, rows.len(), values)?);
            }
            out_rows.push(out);
        }
        self.stats.borrow_mut().udf_calls += evaluator.udf_calls();

        // Output schema: group columns then aggregate columns.
        let mut defs = Vec::new();
        for (i, (_, name)) in group_by.iter().enumerate() {
            let values: Vec<Value> = out_rows.iter().map(|r| r[i].clone()).collect();
            defs.push(infer_column_def(name, &group_exprs[i], &values, batch.schema()));
        }
        for (j, agg) in aggregates.iter().enumerate() {
            let i = group_by.len() + j;
            let values: Vec<Value> = out_rows.iter().map(|r| r[i].clone()).collect();
            // Aggregate outputs take their type from the produced values (SUM over
            // INT is INT, AVG is DECIMAL(4), encrypted SUM is ENCRYPTED, …).
            let data_type = values
                .iter()
                .find_map(|v| v.data_type())
                .unwrap_or(DataType::Int);
            let sensitivity = if data_type.is_encrypted() && data_type != DataType::Tag {
                Sensitivity::Sensitive
            } else {
                Sensitivity::Public
            };
            defs.push(ColumnDef {
                name: agg.name.clone(),
                data_type,
                sensitivity,
            });
        }
        RecordBatch::from_rows(Schema::new(defs), out_rows).map_err(Into::into)
    }

    // ------------------------------------------------------------------
    // Sort / Distinct
    // ------------------------------------------------------------------

    fn exec_sort(&self, batch: RecordBatch, keys: &[SortKey]) -> Result<RecordBatch> {
        let mut exprs: Vec<Expr> = keys
            .iter()
            .map(|k| bind_to_existing_columns(&k.expr, batch.schema()))
            .collect();
        let batch = self.resolve_oracle_calls(batch, &mut exprs)?;
        let evaluator = Evaluator::new(self.registry).with_subqueries(self);

        let mut key_values: Vec<Vec<Value>> = Vec::with_capacity(batch.num_rows());
        for row in 0..batch.num_rows() {
            let mut kv = Vec::with_capacity(exprs.len());
            for e in &exprs {
                kv.push(evaluator.evaluate(e, &batch, row)?);
            }
            key_values.push(kv);
        }
        self.stats.borrow_mut().udf_calls += evaluator.udf_calls();

        let mut order: Vec<usize> = (0..batch.num_rows()).collect();
        order.sort_by(|&a, &b| {
            for (i, key) in keys.iter().enumerate() {
                let ord = key_values[a][i].cmp_total(&key_values[b][i]);
                let ord = if key.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        batch.reorder(&order).map_err(Into::into)
    }

    fn exec_distinct(&self, batch: RecordBatch) -> Result<RecordBatch> {
        let mut seen: HashMap<String, ()> = HashMap::new();
        let mut mask = Vec::with_capacity(batch.num_rows());
        for row in 0..batch.num_rows() {
            let key: String = batch
                .row(row)
                .iter()
                .map(join_key_component)
                .collect::<Vec<_>>()
                .join("\u{1f}");
            mask.push(seen.insert(key, ()).is_none());
        }
        batch.filter(&mask).map_err(Into::into)
    }

    // ------------------------------------------------------------------
    // Oracle pre-pass
    // ------------------------------------------------------------------

    /// Finds oracle-backed pseudo-function calls in `exprs`, resolves each with one
    /// batched oracle round trip, appends the per-row results to `batch` as virtual
    /// columns, and rewrites `exprs` to reference those columns.
    fn resolve_oracle_calls(&self, batch: RecordBatch, exprs: &mut [Expr]) -> Result<RecordBatch> {
        let mut calls: Vec<Expr> = Vec::new();
        for e in exprs.iter() {
            collect_oracle_calls(e, &mut calls);
        }
        if calls.is_empty() {
            return Ok(batch);
        }
        let oracle = self.oracle.as_ref().ok_or_else(|| EngineError::OracleUnavailable {
            operation: calls[0].to_string(),
        })?;

        let mut batch = batch;
        for call in calls {
            let rendered = call.to_string();
            if batch.schema().index_of(&rendered).is_ok() {
                continue; // already materialised by an earlier expression
            }
            let (name, args) = match &call {
                Expr::Function { name, args, .. } => (name.to_ascii_uppercase(), args),
                _ => unreachable!("collect_oracle_calls only returns function nodes"),
            };
            let is_cmp = oracle_fns::is_cmp_fn(&name);
            let expected_arity = if is_cmp { 4 } else { 3 };
            if args.len() != expected_arity {
                return Err(EngineError::UdfInvocation {
                    name: name.clone(),
                    detail: format!("expected {expected_arity} arguments, found {}", args.len()),
                });
            }
            let handle = literal_string(&args[2]).ok_or_else(|| EngineError::UdfInvocation {
                name: name.clone(),
                detail: "third argument must be a string key handle".into(),
            })?;
            let modulus = if is_cmp {
                Some(parse_biguint_arg(
                    &name,
                    &literal_string(&args[3]).ok_or_else(|| EngineError::UdfInvocation {
                        name: name.clone(),
                        detail: "fourth argument must be the public modulus as a string".into(),
                    })?,
                )?)
            } else {
                None
            };

            // Evaluate the share and row-id expressions for every row.
            let evaluator = Evaluator::new(self.registry).with_subqueries(self);
            let mut present_rows: Vec<usize> = Vec::new();
            let mut oracle_rows: Vec<OracleRow> = Vec::new();
            for row in 0..batch.num_rows() {
                let share = evaluator.evaluate(&args[0], &batch, row)?;
                let row_id = evaluator.evaluate(&args[1], &batch, row)?;
                if share.is_null() || row_id.is_null() {
                    continue;
                }
                let mut share = share.as_encrypted()?.clone();
                let row_id = row_id.as_encrypted_row_id()?.clone();
                if let Some(n) = &modulus {
                    // Blind the difference with a fresh positive factor so the DO
                    // proxy (and anything watching the channel) learns only signs.
                    let factor: u64 = self.rng.borrow_mut().gen_range(1..(1u64 << 30));
                    share = share * BigUint::from(factor) % n;
                }
                present_rows.push(row);
                oracle_rows.push(OracleRow { row_id, share });
            }
            self.stats.borrow_mut().udf_calls += evaluator.udf_calls();

            let kind = if is_cmp {
                OracleRequestKind::Sign
            } else if name == oracle_fns::GROUP_TAG {
                OracleRequestKind::GroupTag
            } else {
                OracleRequestKind::Rank
            };
            let request = OracleRequest {
                kind,
                handle,
                rows: oracle_rows,
            };

            {
                let mut stats = self.stats.borrow_mut();
                stats.oracle_round_trips += 1;
                stats.oracle_rows_shipped += request.rows.len();
                stats.oracle_bytes_shipped += request.approx_size_bytes();
            }
            let start = Instant::now();
            let response = oracle
                .resolve(request)
                .map_err(|e| EngineError::OracleProtocol { detail: e })?;
            self.stats.borrow_mut().oracle_time += start.elapsed();

            if response.len() != present_rows.len() {
                return Err(EngineError::OracleProtocol {
                    detail: format!(
                        "oracle returned {} answers for {} rows",
                        response.len(),
                        present_rows.len()
                    ),
                });
            }

            // Scatter the per-row answers into a full-length column (NULL where the
            // inputs were NULL).
            let mut values = vec![Value::Null; batch.num_rows()];
            let data_type = match &response {
                OracleResponse::Signs(signs) => {
                    for (pos, sign) in present_rows.iter().zip(signs.iter()) {
                        values[*pos] = Value::Bool(sign_to_bool(&name, *sign)?);
                    }
                    DataType::Bool
                }
                OracleResponse::Tags(tags) => {
                    for (pos, tag) in present_rows.iter().zip(tags.iter()) {
                        values[*pos] = Value::Tag(*tag);
                    }
                    DataType::Tag
                }
                OracleResponse::Ranks(ranks) => {
                    for (pos, rank) in present_rows.iter().zip(ranks.iter()) {
                        values[*pos] = Value::Int(*rank as i64);
                    }
                    DataType::Int
                }
            };

            batch = append_virtual_column(&batch, ColumnDef::public(&rendered, data_type), values)?;
        }

        // Rewrite the expressions to reference the virtual columns.
        for e in exprs.iter_mut() {
            *e = replace_oracle_calls(e);
        }
        Ok(batch)
    }
}

// ---------------------------------------------------------------------------
// Subquery resolution
// ---------------------------------------------------------------------------

impl SubqueryResolver for Executor<'_> {
    fn scalar(&self, query: &Query) -> Result<Value> {
        let batch = self.run_subquery(query)?;
        if batch.num_columns() != 1 {
            return Err(EngineError::Expression {
                detail: "scalar subquery must return exactly one column".into(),
            });
        }
        match batch.num_rows() {
            0 => Ok(Value::Null),
            1 => Ok(batch.column(0).get(0).clone()),
            n => Err(EngineError::Expression {
                detail: format!("scalar subquery returned {n} rows"),
            }),
        }
    }

    fn column(&self, query: &Query) -> Result<Vec<Value>> {
        let batch = self.run_subquery(query)?;
        if batch.num_columns() == 0 {
            return Ok(vec![]);
        }
        Ok(batch.column(0).values().to_vec())
    }
}

impl Executor<'_> {
    fn run_subquery(&self, query: &Query) -> Result<RecordBatch> {
        let key = query.to_string();
        if let Some(cached) = self.subquery_cache.borrow().get(&key) {
            return Ok(cached.clone());
        }
        let plan = PlanBuilder::build(query)?;
        // Subqueries share the catalog, registry and oracle but keep their own stats
        // scratch; the numbers are merged into the parent's totals.
        let sub = Executor::new(self.catalog, self.registry, self.oracle.clone());
        let batch = sub.execute(&plan)?;
        self.stats.borrow_mut().merge(&sub.stats());
        self.subquery_cache.borrow_mut().insert(key, batch.clone());
        Ok(batch)
    }
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Replaces every subexpression whose rendered text names an existing input column
/// with a reference to that column. This is how projections and sort keys above an
/// aggregate re-use the aggregate's group-expression outputs (whose column names are
/// the rendered expressions, e.g. `YEAR(o.o_orderdate)` or an `SDB_GROUP_TAG(…)`
/// call) instead of re-evaluating them against a schema that no longer carries the
/// original inputs.
fn bind_to_existing_columns(expr: &Expr, schema: &Schema) -> Expr {
    if !matches!(expr, Expr::Column(_) | Expr::Literal(_))
        && schema.index_of(&expr.to_string()).is_ok()
    {
        return Expr::Column(expr.to_string());
    }
    match expr {
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(bind_to_existing_columns(expr, schema)),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(bind_to_existing_columns(left, schema)),
            op: *op,
            right: Box::new(bind_to_existing_columns(right, schema)),
        },
        Expr::Function {
            name,
            args,
            distinct,
            wildcard,
        } => Expr::Function {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| bind_to_existing_columns(a, schema))
                .collect(),
            distinct: *distinct,
            wildcard: *wildcard,
        },
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => Expr::Case {
            operand: operand
                .as_ref()
                .map(|o| Box::new(bind_to_existing_columns(o, schema))),
            branches: branches
                .iter()
                .map(|(w, t)| {
                    (
                        bind_to_existing_columns(w, schema),
                        bind_to_existing_columns(t, schema),
                    )
                })
                .collect(),
            else_expr: else_expr
                .as_ref()
                .map(|e| Box::new(bind_to_existing_columns(e, schema))),
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(bind_to_existing_columns(expr, schema)),
            low: Box::new(bind_to_existing_columns(low, schema)),
            high: Box::new(bind_to_existing_columns(high, schema)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(bind_to_existing_columns(expr, schema)),
            list: list
                .iter()
                .map(|e| bind_to_existing_columns(e, schema))
                .collect(),
            negated: *negated,
        },
        other => other.clone(),
    }
}

fn split_conjuncts(expr: &Expr) -> Vec<Expr> {
    match expr {
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => {
            let mut out = split_conjuncts(left);
            out.extend(split_conjuncts(right));
            out
        }
        other => vec![other.clone()],
    }
}

/// If `conjunct` is `left_side_expr = right_side_expr` (in either order), returns
/// the pair oriented as (left-side key, right-side key).
fn classify_equi_conjunct(conjunct: &Expr, left: &Schema, right: &Schema) -> Option<(Expr, Expr)> {
    let Expr::Binary {
        left: a,
        op: BinaryOp::Eq,
        right: b,
    } = conjunct
    else {
        return None;
    };
    let side = |e: &Expr| -> Option<bool> {
        // true = resolves entirely against the left schema, false = right.
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        if cols.is_empty() {
            return None;
        }
        if cols.iter().all(|c| left.index_of(c).is_ok()) {
            Some(true)
        } else if cols.iter().all(|c| right.index_of(c).is_ok()) {
            Some(false)
        } else {
            None
        }
    };
    match (side(a), side(b)) {
        (Some(true), Some(false)) => Some((a.as_ref().clone(), b.as_ref().clone())),
        (Some(false), Some(true)) => Some((b.as_ref().clone(), a.as_ref().clone())),
        _ => None,
    }
}

/// Canonical string form of a value used as a join / grouping / distinct key.
/// Numerics are normalised so `1`, `1.0` and `1.00` agree.
fn join_key_component(v: &Value) -> String {
    match v {
        Value::Null => "\u{0}NULL".to_string(),
        Value::Int(_) | Value::Decimal { .. } | Value::Date(_) | Value::Bool(_) => v
            .as_scaled_i128(4)
            .map(|x| format!("n{x}"))
            .unwrap_or_else(|_| v.render()),
        Value::Str(s) => format!("s{s}"),
        Value::Tag(t) => format!("t{t}"),
        Value::Encrypted(e) => format!("e{e}"),
        Value::EncryptedRowId(_) => format!("r{:?}", v),
    }
}

fn literal_string(expr: &Expr) -> Option<String> {
    match expr {
        Expr::Literal(sdb_sql::ast::Literal::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

fn collect_oracle_calls(expr: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Function { name, .. } = expr {
        if oracle_fns::is_oracle_fn(name) {
            if !out.iter().any(|e| e.to_string() == expr.to_string()) {
                out.push(expr.clone());
            }
            return; // arguments are evaluated by the pre-pass itself
        }
    }
    match expr {
        Expr::Unary { expr, .. } => collect_oracle_calls(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_oracle_calls(left, out);
            collect_oracle_calls(right, out);
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_oracle_calls(a, out);
            }
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(o) = operand {
                collect_oracle_calls(o, out);
            }
            for (w, t) in branches {
                collect_oracle_calls(w, out);
                collect_oracle_calls(t, out);
            }
            if let Some(e) = else_expr {
                collect_oracle_calls(e, out);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_oracle_calls(expr, out);
            collect_oracle_calls(low, out);
            collect_oracle_calls(high, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_oracle_calls(expr, out);
            for e in list {
                collect_oracle_calls(e, out);
            }
        }
        _ => {}
    }
}

/// Replaces resolved oracle calls with references to their virtual columns.
fn replace_oracle_calls(expr: &Expr) -> Expr {
    if let Expr::Function { name, .. } = expr {
        if oracle_fns::is_oracle_fn(name) {
            return Expr::Column(expr.to_string());
        }
    }
    match expr {
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(replace_oracle_calls(expr)),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(replace_oracle_calls(left)),
            op: *op,
            right: Box::new(replace_oracle_calls(right)),
        },
        Expr::Function {
            name,
            args,
            distinct,
            wildcard,
        } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(replace_oracle_calls).collect(),
            distinct: *distinct,
            wildcard: *wildcard,
        },
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => Expr::Case {
            operand: operand.as_ref().map(|o| Box::new(replace_oracle_calls(o))),
            branches: branches
                .iter()
                .map(|(w, t)| (replace_oracle_calls(w), replace_oracle_calls(t)))
                .collect(),
            else_expr: else_expr.as_ref().map(|e| Box::new(replace_oracle_calls(e))),
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(replace_oracle_calls(expr)),
            low: Box::new(replace_oracle_calls(low)),
            high: Box::new(replace_oracle_calls(high)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(replace_oracle_calls(expr)),
            list: list.iter().map(replace_oracle_calls).collect(),
            negated: *negated,
        },
        other => other.clone(),
    }
}

fn append_virtual_column(
    batch: &RecordBatch,
    def: ColumnDef,
    values: Vec<Value>,
) -> Result<RecordBatch> {
    let mut defs = batch.schema().columns().to_vec();
    defs.push(def.clone());
    let mut columns = batch.columns().to_vec();
    // Virtual columns may mix NULLs with typed values; push unchecked since the
    // values come from the oracle mapping above.
    let mut column = Column::new(def.data_type);
    for v in values {
        column.push_unchecked(v);
    }
    columns.push(column);
    RecordBatch::new(Schema::new(defs), columns).map_err(Into::into)
}

/// Infers the output column definition for a computed column from its expression
/// and produced values.
fn infer_column_def(name: &str, expr: &Expr, values: &[Value], input: &Schema) -> ColumnDef {
    // A bare column reference keeps its input definition (type and sensitivity).
    if let Expr::Column(col) = expr {
        if let Ok(idx) = input.index_of(col) {
            let def = input.column_at(idx);
            return ColumnDef {
                name: name.to_string(),
                data_type: def.data_type,
                sensitivity: def.sensitivity,
            };
        }
    }
    let data_type = values
        .iter()
        .find_map(|v| v.data_type())
        .unwrap_or(DataType::Int);
    let sensitivity = if data_type.is_encrypted() && data_type != DataType::Tag {
        Sensitivity::Sensitive
    } else {
        Sensitivity::Public
    };
    ColumnDef {
        name: name.to_string(),
        data_type,
        sensitivity,
    }
}

/// Computes one aggregate over the values of one group.
fn compute_aggregate(agg: &AggregateExpr, group_size: usize, values: Vec<Value>) -> Result<Value> {
    let non_null: Vec<Value> = values.into_iter().filter(|v| !v.is_null()).collect();
    let distinct_filter = |vals: Vec<Value>| -> Vec<Value> {
        if !agg.distinct {
            return vals;
        }
        let mut seen = std::collections::HashSet::new();
        vals.into_iter()
            .filter(|v| seen.insert(join_key_component(v)))
            .collect()
    };

    match agg.func {
        AggFunc::Count => {
            if agg.arg.is_none() {
                Ok(Value::Int(group_size as i64))
            } else {
                Ok(Value::Int(distinct_filter(non_null).len() as i64))
            }
        }
        AggFunc::Sum => {
            let vals = distinct_filter(non_null);
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            if vals.iter().any(|v| matches!(v, Value::Encrypted(_))) {
                // Encrypted SUM: fold with plain big-integer addition. Each share is
                // a canonical residue, so the integer sum is congruent to the modular
                // sum; the proxy reduces modulo n when it decrypts.
                let mut acc = BigUint::from(0u32);
                for v in &vals {
                    acc += v.as_encrypted()?;
                }
                return Ok(Value::Encrypted(acc));
            }
            let scale = vals
                .iter()
                .map(|v| match v {
                    Value::Decimal { scale, .. } => *scale,
                    _ => 0,
                })
                .max()
                .unwrap_or(0);
            let mut acc: i128 = 0;
            for v in &vals {
                acc += v.as_scaled_i128(scale).map_err(EngineError::Storage)?;
            }
            if scale == 0 {
                Ok(Value::Int(acc as i64))
            } else {
                Ok(Value::Decimal {
                    units: acc as i64,
                    scale,
                })
            }
        }
        AggFunc::Avg => {
            let vals = distinct_filter(non_null);
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let mut acc: i128 = 0;
            for v in &vals {
                acc += v.as_scaled_i128(4).map_err(EngineError::Storage)?;
            }
            Ok(Value::Decimal {
                units: (acc / vals.len() as i128) as i64,
                scale: 4,
            })
        }
        AggFunc::Min => Ok(non_null
            .into_iter()
            .min_by(|a, b| a.cmp_total(b))
            .unwrap_or(Value::Null)),
        AggFunc::Max => Ok(non_null
            .into_iter()
            .max_by(|a, b| a.cmp_total(b))
            .unwrap_or(Value::Null)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdb_sql::{parse_sql, Statement};

    fn setup_catalog() -> Catalog {
        let catalog = Catalog::new();
        let emp_schema = Schema::new(vec![
            ColumnDef::public("id", DataType::Int),
            ColumnDef::public("name", DataType::Varchar),
            ColumnDef::public("dept_id", DataType::Int),
            ColumnDef::public("salary", DataType::Int),
        ]);
        let emp = catalog.create_table("emp", emp_schema).unwrap();
        {
            let mut t = emp.write();
            for (id, name, dept, salary) in [
                (1, "ann", 10, 100),
                (2, "bob", 10, 200),
                (3, "cat", 20, 300),
                (4, "dan", 20, 400),
                (5, "eve", 30, 500),
            ] {
                t.insert_row(vec![
                    Value::Int(id),
                    Value::Str(name.into()),
                    Value::Int(dept),
                    Value::Int(salary),
                ])
                .unwrap();
            }
        }
        let dept_schema = Schema::new(vec![
            ColumnDef::public("id", DataType::Int),
            ColumnDef::public("dept_name", DataType::Varchar),
        ]);
        let dept = catalog.create_table("dept", dept_schema).unwrap();
        {
            let mut t = dept.write();
            for (id, name) in [(10, "eng"), (20, "ops"), (40, "hr")] {
                t.insert_row(vec![Value::Int(id), Value::Str(name.into())]).unwrap();
            }
        }
        catalog
    }

    fn run(catalog: &Catalog, sql: &str) -> RecordBatch {
        let registry = UdfRegistry::with_sdb_udfs();
        let executor = Executor::new(catalog, &registry, None);
        let Statement::Query(q) = parse_sql(sql).unwrap() else {
            panic!("expected query")
        };
        let plan = PlanBuilder::build(&q).unwrap();
        executor
            .execute(&plan)
            .unwrap_or_else(|e| panic!("query failed: {sql}: {e}"))
    }

    #[test]
    fn scan_and_project() {
        let catalog = setup_catalog();
        let batch = run(&catalog, "SELECT name, salary * 2 AS double_pay FROM emp");
        assert_eq!(batch.num_rows(), 5);
        assert_eq!(batch.schema().column_at(1).name, "double_pay");
        assert_eq!(batch.column(1).get(0), &Value::Int(200));
    }

    #[test]
    fn filter_rows() {
        let catalog = setup_catalog();
        let batch = run(&catalog, "SELECT name FROM emp WHERE salary > 250 AND dept_id = 20");
        assert_eq!(batch.num_rows(), 2);
        let names: Vec<String> = batch
            .column(0)
            .values()
            .iter()
            .map(|v| v.as_str().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["cat", "dan"]);
    }

    #[test]
    fn wildcard_select() {
        let catalog = setup_catalog();
        let batch = run(&catalog, "SELECT * FROM emp WHERE id = 1");
        assert_eq!(batch.num_rows(), 1);
        assert_eq!(batch.num_columns(), 4);
        assert_eq!(batch.schema().column_at(0).name, "emp.id");
    }

    #[test]
    fn inner_join() {
        let catalog = setup_catalog();
        let batch = run(
            &catalog,
            "SELECT e.name, d.dept_name FROM emp e JOIN dept d ON e.dept_id = d.id ORDER BY e.name",
        );
        assert_eq!(batch.num_rows(), 4); // eve's dept 30 has no match
        assert_eq!(batch.column(1).get(0).as_str().unwrap(), "eng");
    }

    #[test]
    fn left_join_pads_nulls() {
        let catalog = setup_catalog();
        let batch = run(
            &catalog,
            "SELECT e.name, d.dept_name FROM emp e LEFT JOIN dept d ON e.dept_id = d.id ORDER BY e.id",
        );
        assert_eq!(batch.num_rows(), 5);
        assert!(batch.column(1).get(4).is_null());
    }

    #[test]
    fn implicit_join_with_where() {
        let catalog = setup_catalog();
        let batch = run(
            &catalog,
            "SELECT e.name FROM emp e, dept d WHERE e.dept_id = d.id AND d.dept_name = 'ops' ORDER BY e.name",
        );
        assert_eq!(batch.num_rows(), 2);
    }

    #[test]
    fn group_by_aggregates() {
        let catalog = setup_catalog();
        let batch = run(
            &catalog,
            "SELECT dept_id, COUNT(*) AS c, SUM(salary) AS total, AVG(salary) AS mean, MIN(salary) AS lo, MAX(salary) AS hi FROM emp GROUP BY dept_id ORDER BY dept_id",
        );
        assert_eq!(batch.num_rows(), 3);
        // dept 10: count 2, sum 300, avg 150, min 100, max 200
        assert_eq!(batch.column(1).get(0), &Value::Int(2));
        assert_eq!(batch.column(2).get(0), &Value::Int(300));
        assert_eq!(batch.column(3).get(0), &Value::Decimal { units: 1_500_000, scale: 4 });
        assert_eq!(batch.column(4).get(0), &Value::Int(100));
        assert_eq!(batch.column(5).get(0), &Value::Int(200));
    }

    #[test]
    fn global_aggregate_and_having() {
        let catalog = setup_catalog();
        let batch = run(&catalog, "SELECT COUNT(*) AS n, SUM(salary) AS s FROM emp");
        assert_eq!(batch.num_rows(), 1);
        assert_eq!(batch.column(0).get(0), &Value::Int(5));
        assert_eq!(batch.column(1).get(0), &Value::Int(1500));

        let batch = run(
            &catalog,
            "SELECT dept_id, SUM(salary) AS s FROM emp GROUP BY dept_id HAVING SUM(salary) > 400 ORDER BY s DESC",
        );
        assert_eq!(batch.num_rows(), 2);
        assert_eq!(batch.column(1).get(0), &Value::Int(700));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let catalog = setup_catalog();
        let batch = run(&catalog, "SELECT COUNT(*) AS n, SUM(salary) AS s FROM emp WHERE id > 99");
        assert_eq!(batch.num_rows(), 1);
        assert_eq!(batch.column(0).get(0), &Value::Int(0));
        assert!(batch.column(1).get(0).is_null());
    }

    #[test]
    fn order_limit_distinct() {
        let catalog = setup_catalog();
        let batch = run(&catalog, "SELECT salary FROM emp ORDER BY salary DESC LIMIT 2");
        assert_eq!(batch.num_rows(), 2);
        assert_eq!(batch.column(0).get(0), &Value::Int(500));

        let batch = run(&catalog, "SELECT DISTINCT dept_id FROM emp ORDER BY dept_id");
        assert_eq!(batch.num_rows(), 3);
    }

    #[test]
    fn count_distinct() {
        let catalog = setup_catalog();
        let batch = run(&catalog, "SELECT COUNT(DISTINCT dept_id) AS d FROM emp");
        assert_eq!(batch.column(0).get(0), &Value::Int(3));
    }

    #[test]
    fn in_subquery_and_scalar_subquery() {
        let catalog = setup_catalog();
        let batch = run(
            &catalog,
            "SELECT name FROM emp WHERE dept_id IN (SELECT id FROM dept WHERE dept_name = 'eng')",
        );
        assert_eq!(batch.num_rows(), 2);

        let batch = run(
            &catalog,
            "SELECT name FROM emp WHERE salary > (SELECT AVG(salary) FROM emp) ORDER BY name",
        );
        assert_eq!(batch.num_rows(), 2); // 400 and 500 above the mean of 300
    }

    #[test]
    fn exists_subquery() {
        let catalog = setup_catalog();
        let batch = run(
            &catalog,
            "SELECT dept_name FROM dept WHERE EXISTS (SELECT 1 FROM emp WHERE salary > 1000)",
        );
        assert_eq!(batch.num_rows(), 0);
        let batch = run(
            &catalog,
            "SELECT dept_name FROM dept WHERE EXISTS (SELECT 1 FROM emp WHERE salary > 400)",
        );
        assert_eq!(batch.num_rows(), 3);
    }

    #[test]
    fn case_in_aggregation() {
        let catalog = setup_catalog();
        let batch = run(
            &catalog,
            "SELECT SUM(CASE WHEN dept_id = 10 THEN salary ELSE 0 END) AS eng_total FROM emp",
        );
        assert_eq!(batch.column(0).get(0), &Value::Int(300));
    }

    #[test]
    fn stats_track_scans_and_rows() {
        let catalog = setup_catalog();
        let registry = UdfRegistry::with_sdb_udfs();
        let executor = Executor::new(&catalog, &registry, None);
        let Statement::Query(q) = parse_sql("SELECT * FROM emp WHERE salary > 250").unwrap() else {
            panic!()
        };
        let plan = PlanBuilder::build(&q).unwrap();
        let batch = executor.execute(&plan).unwrap();
        let stats = executor.stats();
        assert_eq!(stats.rows_scanned, 5);
        assert_eq!(stats.rows_returned, batch.num_rows());
        assert_eq!(stats.oracle_round_trips, 0);
    }

    #[test]
    fn missing_table_and_column_errors() {
        let catalog = setup_catalog();
        let registry = UdfRegistry::with_sdb_udfs();
        let executor = Executor::new(&catalog, &registry, None);
        let Statement::Query(q) = parse_sql("SELECT * FROM nope").unwrap() else {
            panic!()
        };
        assert!(executor.execute(&PlanBuilder::build(&q).unwrap()).is_err());

        let Statement::Query(q) = parse_sql("SELECT ghost FROM emp").unwrap() else {
            panic!()
        };
        assert!(executor.execute(&PlanBuilder::build(&q).unwrap()).is_err());
    }

    #[test]
    fn oracle_required_for_secure_comparison() {
        let catalog = setup_catalog();
        // Add an "encrypted" column scenario artificially: a filter that calls an
        // oracle function must fail without an oracle connected.
        let registry = UdfRegistry::with_sdb_udfs();
        let executor = Executor::new(&catalog, &registry, None);
        let Statement::Query(q) =
            parse_sql("SELECT name FROM emp WHERE SDB_CMP_GT(salary, id, 'h', '35')").unwrap()
        else {
            panic!()
        };
        let err = executor.execute(&PlanBuilder::build(&q).unwrap());
        assert!(matches!(err, Err(EngineError::OracleUnavailable { .. })));
    }
}
