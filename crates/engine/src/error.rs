//! Error type for the execution engine.

use std::fmt;

/// Errors produced during query execution at the SP.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Error bubbled up from the storage layer.
    Storage(sdb_storage::StorageError),
    /// Error bubbled up from the SQL front end.
    Sql(sdb_sql::SqlError),
    /// Error bubbled up from the crypto layer (UDF-internal arithmetic).
    Crypto(sdb_crypto::CryptoError),
    /// An expression could not be evaluated.
    Expression {
        /// Description of the problem.
        detail: String,
    },
    /// A UDF was called incorrectly (wrong arity / argument types).
    UdfInvocation {
        /// UDF name.
        name: String,
        /// Description of the problem.
        detail: String,
    },
    /// An unknown function was referenced.
    UnknownFunction {
        /// The function name as written.
        name: String,
    },
    /// A secure operation needed the DO-side oracle but none is connected.
    OracleUnavailable {
        /// The operation that needed it.
        operation: String,
    },
    /// The oracle returned an inconsistent response.
    OracleProtocol {
        /// Description of the inconsistency.
        detail: String,
    },
    /// Any other invariant violation.
    Unsupported {
        /// Description of the unsupported operation.
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::Sql(e) => write!(f, "SQL error: {e}"),
            EngineError::Crypto(e) => write!(f, "crypto error: {e}"),
            EngineError::Expression { detail } => write!(f, "expression error: {detail}"),
            EngineError::UdfInvocation { name, detail } => {
                write!(f, "invalid call to {name}: {detail}")
            }
            EngineError::UnknownFunction { name } => write!(f, "unknown function {name}"),
            EngineError::OracleUnavailable { operation } => {
                write!(
                    f,
                    "operation {operation} requires the DO oracle but none is connected"
                )
            }
            EngineError::OracleProtocol { detail } => write!(f, "oracle protocol error: {detail}"),
            EngineError::Unsupported { detail } => write!(f, "unsupported: {detail}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<sdb_storage::StorageError> for EngineError {
    fn from(e: sdb_storage::StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<sdb_sql::SqlError> for EngineError {
    fn from(e: sdb_sql::SqlError) -> Self {
        EngineError::Sql(e)
    }
}

impl From<sdb_crypto::CryptoError> for EngineError {
    fn from(e: sdb_crypto::CryptoError) -> Self {
        EngineError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = sdb_storage::StorageError::TableNotFound { name: "t".into() }.into();
        assert!(e.to_string().contains("t"));

        let e: EngineError = sdb_sql::SqlError::Parse {
            detail: "boom".into(),
        }
        .into();
        assert!(e.to_string().contains("boom"));

        let e = EngineError::OracleUnavailable {
            operation: "SDB_CMP_GT".into(),
        };
        assert!(e.to_string().contains("SDB_CMP_GT"));
    }
}
