//! Per-query execution tracing: a span tree mirroring the physical plan.
//!
//! When tracing is on ([`crate::operators::ExecContext::with_tracing`],
//! default off, `SDB_TRACE=1` flips the engine default),
//! [`crate::planner::PhysicalPlanner`] wraps every physical operator in an
//! [`InstrumentedOperator`]. Each wrapper owns one span of a [`QueryTrace`]
//! and records, per lifecycle call (`open` / `next_batch` / `close`):
//!
//! * wall time, split by lifecycle phase;
//! * batches and rows produced;
//! * the *attributed delta* of every global [`ExecutionStats`] counter —
//!   the merged-shard snapshot is diffed around the call, so oracle trips,
//!   spilled pages and kernel engagement land on the operator that paid
//!   them. Deltas are **inclusive** (a blocking operator's `open` covers the
//!   children it drains); [`QueryTrace::report`] derives the exclusive
//!   per-span share by subtracting direct children.
//!
//! Pager spill/eviction hooks (`install_pager_observer`) and the oracle
//! round-trip hooks in [`crate::operators::oracle`] additionally attach
//! timestamped [`TraceEvent`]s to whichever span is *currently executing*
//! (tracked by an atomic span id the wrappers swap on entry/exit), giving a
//! round-trip and spill timeline per operator.
//!
//! Tracing never changes query output: the wrapper forwards batches
//! untouched and delegates `name()` / `describe()`, so plan renderings and
//! byte-identity contracts are preserved. With tracing off the planner
//! inserts no wrappers and no hooks are installed — the off path costs
//! nothing.
//!
//! [`TraceReport`] is the stable serialisable form: `EXPLAIN ANALYZE`
//! renders it ([`TraceReport::render`]) and [`TraceReport::to_json`] /
//! [`TraceReport::write_to_dir`] (`SDB_TRACE_DIR`) export it for tooling.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use sdb_storage::{Pager, PagerEvent, RecordBatch};

use crate::operators::{BoxedOperator, ExecContext, PhysicalOperator};
use crate::stats::ExecutionStats;
use crate::Result;

/// Identifies one span within its [`QueryTrace`] (an index into the arena).
pub type SpanId = usize;

/// Cap on events kept per span; beyond it only `dropped_events` counts, so a
/// pathological spill storm cannot balloon the trace.
const MAX_EVENTS_PER_SPAN: usize = 256;

/// Sentinel for "no span is currently executing".
const NO_SPAN: usize = usize::MAX;

/// Which lifecycle call a recording belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// `PhysicalOperator::open`.
    Open,
    /// `PhysicalOperator::next_batch`.
    Next,
    /// `PhysicalOperator::close`.
    Close,
}

/// One timestamped event attached to a span (oracle round trip, spill write /
/// read, eviction).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Microseconds since the trace started.
    pub at_us: u64,
    /// Event kind: `oracle_trip_start`, `oracle_trip_end`, `spill_write`,
    /// `spill_read` or `evict`.
    pub kind: String,
    /// Payload size in bytes (0 when not applicable).
    pub bytes: usize,
    /// Rows involved (0 when not applicable).
    pub rows: usize,
}

/// One span's raw accumulation (arena entry).
#[derive(Debug, Default)]
struct SpanData {
    name: &'static str,
    children: Vec<SpanId>,
    est_rows: Option<f64>,
    open: Duration,
    next: Duration,
    close: Duration,
    batches_out: usize,
    rows_out: usize,
    /// Inclusive counter deltas (children's work included).
    counters: ExecutionStats,
    events: Vec<TraceEvent>,
    dropped_events: usize,
}

/// A lock-cheap per-query trace: an arena of spans built bottom-up as the
/// planner lowers the plan, plus an atomic "currently executing span" id that
/// event hooks use for attribution.
///
/// The span arena sits behind one mutex — plans are *driven* by a single
/// thread (parallel operators fan out phases inside a lifecycle call, they
/// never drive sibling subtrees concurrently), so wrapper recordings never
/// contend; worker-thread event hooks contend only for the brief event push.
pub struct QueryTrace {
    spans: Mutex<Vec<SpanData>>,
    current: AtomicUsize,
    started: Instant,
}

impl Default for QueryTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryTrace {
    /// Creates an empty trace; the clock starts now.
    pub fn new() -> Self {
        QueryTrace {
            spans: Mutex::new(Vec::new()),
            current: AtomicUsize::new(NO_SPAN),
            started: Instant::now(),
        }
    }

    /// Registers a span for one physical operator. `children` are the span
    /// ids of its direct inputs (already registered — the planner lowers
    /// bottom-up); `est_rows` is the optimizer's cardinality estimate for
    /// the operator's logical node, when statistics exist.
    pub fn begin_span(
        &self,
        name: &'static str,
        children: Vec<SpanId>,
        est_rows: Option<f64>,
    ) -> SpanId {
        let mut spans = self.spans.lock();
        spans.push(SpanData {
            name,
            children,
            est_rows,
            ..SpanData::default()
        });
        spans.len() - 1
    }

    /// Marks `span` as the currently executing span and returns the previous
    /// one, for restoration on exit ([`Self::set_current`]).
    pub fn swap_current(&self, span: SpanId) -> SpanId {
        self.current.swap(span, Ordering::SeqCst)
    }

    /// Restores the currently-executing span (the value a matching
    /// [`Self::swap_current`] returned).
    pub fn set_current(&self, span: SpanId) {
        self.current.store(span, Ordering::SeqCst);
    }

    /// Attaches a timestamped event to the currently executing span. Events
    /// fired outside any span (e.g. pool teardown) are dropped; spans keep at
    /// most `MAX_EVENTS_PER_SPAN` events and count the overflow.
    pub fn event(&self, kind: &str, bytes: usize, rows: usize) {
        let current = self.current.load(Ordering::SeqCst);
        if current == NO_SPAN {
            return;
        }
        let at_us = self.started.elapsed().as_micros() as u64;
        let mut spans = self.spans.lock();
        let Some(span) = spans.get_mut(current) else {
            return;
        };
        if span.events.len() >= MAX_EVENTS_PER_SPAN {
            span.dropped_events += 1;
            return;
        }
        span.events.push(TraceEvent {
            at_us,
            kind: kind.to_string(),
            bytes,
            rows,
        });
    }

    /// Records one lifecycle call on `span`: its wall time, the attributed
    /// (inclusive) counter delta, and — for a `next_batch` that produced a
    /// batch — the row count.
    pub fn record(
        &self,
        span: SpanId,
        phase: Phase,
        elapsed: Duration,
        delta: ExecutionStats,
        produced_rows: Option<usize>,
    ) {
        let mut spans = self.spans.lock();
        let Some(data) = spans.get_mut(span) else {
            return;
        };
        match phase {
            Phase::Open => data.open += elapsed,
            Phase::Next => data.next += elapsed,
            Phase::Close => data.close += elapsed,
        }
        data.counters.merge(&delta);
        if let Some(rows) = produced_rows {
            data.batches_out += 1;
            data.rows_out += rows;
        }
    }

    /// The root span (the last one registered — the planner lowers
    /// bottom-up, so the outermost operator registers last), or `None` for
    /// an empty trace.
    pub fn root(&self) -> Option<SpanId> {
        let spans = self.spans.lock();
        spans.len().checked_sub(1)
    }

    /// Snapshots the trace into its stable, serialisable report form,
    /// deriving each span's *exclusive* time and counters by subtracting its
    /// direct children's inclusive figures.
    pub fn report(&self) -> TraceReport {
        let spans = self.spans.lock();
        let inclusive_us: Vec<u64> = spans
            .iter()
            .map(|s| (s.open + s.next + s.close).as_micros() as u64)
            .collect();
        let reports = spans
            .iter()
            .enumerate()
            .map(|(id, s)| {
                let own_us = inclusive_us[id];
                let child_us: u64 = s.children.iter().map(|&c| inclusive_us[c]).sum();
                let mut child_counters = ExecutionStats::default();
                for &c in &s.children {
                    child_counters.merge(&spans[c].counters);
                }
                SpanReport {
                    id,
                    name: s.name.to_string(),
                    children: s.children.clone(),
                    est_rows: s.est_rows,
                    open_us: s.open.as_micros() as u64,
                    next_us: s.next.as_micros() as u64,
                    close_us: s.close.as_micros() as u64,
                    exclusive_us: own_us.saturating_sub(child_us),
                    batches_out: s.batches_out,
                    rows_out: s.rows_out,
                    counters: s.counters.clone(),
                    exclusive: s.counters.delta_since(&child_counters),
                    events: s.events.clone(),
                    dropped_events: s.dropped_events,
                }
            })
            .collect::<Vec<_>>();
        TraceReport {
            total_time_us: self.started.elapsed().as_micros() as u64,
            root: reports.len().checked_sub(1),
            spans: reports,
        }
    }
}

/// One span in a [`TraceReport`]: an operator's accumulated measurements in
/// their final, export-stable form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanReport {
    /// The span's id — its index in [`TraceReport::spans`].
    pub id: SpanId,
    /// Operator name (`PhysicalOperator::name`), e.g. `"HashJoin"`.
    pub name: String,
    /// Span ids of this operator's direct inputs.
    pub children: Vec<SpanId>,
    /// Optimizer cardinality estimate for this operator's logical node, when
    /// statistics existed at plan time.
    pub est_rows: Option<f64>,
    /// Wall time (µs) spent inside `open`, children included.
    pub open_us: u64,
    /// Wall time (µs) spent across all `next_batch` calls, children included.
    pub next_us: u64,
    /// Wall time (µs) spent inside `close`, children included.
    pub close_us: u64,
    /// Inclusive wall time minus the direct children's inclusive wall time:
    /// this operator's own share.
    pub exclusive_us: u64,
    /// Batches this operator produced.
    pub batches_out: usize,
    /// Rows this operator produced.
    pub rows_out: usize,
    /// Inclusive counter deltas attributed to this span (children included).
    pub counters: ExecutionStats,
    /// Exclusive counter deltas: [`Self::counters`] minus the direct
    /// children's inclusive counters.
    pub exclusive: ExecutionStats,
    /// Timestamped oracle / spill / eviction events attached to this span
    /// (capped; see [`Self::dropped_events`]).
    pub events: Vec<TraceEvent>,
    /// Events dropped after the per-span cap was reached.
    pub dropped_events: usize,
}

/// The stable, serialisable form of a [`QueryTrace`]: what `EXPLAIN ANALYZE`
/// renders and what `SDB_TRACE_DIR` JSON files contain.
///
/// Schema stability: spans are indexed by `id` into [`Self::spans`],
/// `root` names the plan root, durations are integer microseconds, counters
/// reuse the [`ExecutionStats`] field names.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    /// Wall time (µs) from trace start to snapshot — for a traced query,
    /// effectively the query's total execution time.
    pub total_time_us: u64,
    /// Id of the root span (the plan's outermost operator), `None` when the
    /// trace recorded no spans.
    pub root: Option<SpanId>,
    /// All spans, indexed by [`SpanReport::id`].
    pub spans: Vec<SpanReport>,
}

/// Monotonic counter making `SDB_TRACE_DIR` filenames unique within a
/// process.
static TRACE_FILE_SEQ: AtomicU64 = AtomicU64::new(0);

impl TraceReport {
    /// Serialises the report as pretty-printed JSON (stable schema; see the
    /// type docs).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace report serialisation cannot fail")
    }

    /// Writes the report as a uniquely named JSON file under `dir` (created
    /// if missing), returning the path. Used by the engine when
    /// `SDB_TRACE_DIR` is set.
    pub fn write_to_dir(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let seq = TRACE_FILE_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("trace-{}-{seq}.json", std::process::id()));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Renders the span tree as indented plan lines annotated with actual
    /// rows, wall time, estimate-vs-actual deviation and per-operator
    /// (exclusive) oracle / spill / kernel attribution — the body of
    /// `EXPLAIN ANALYZE`.
    pub fn render(&self) -> Vec<String> {
        let mut lines = Vec::with_capacity(self.spans.len());
        if let Some(root) = self.root {
            self.render_span(root, 0, &mut lines);
        }
        lines
    }

    fn render_span(&self, id: SpanId, depth: usize, out: &mut Vec<String>) {
        let span = &self.spans[id];
        out.push(format!("{}{}", "  ".repeat(depth), span.annotation()));
        for &child in &span.children {
            self.render_span(child, depth + 1, out);
        }
    }
}

impl SpanReport {
    /// One rendered `EXPLAIN ANALYZE` line for this span (no indentation).
    fn annotation(&self) -> String {
        let mut line = format!(
            "{} rows={} batches={}",
            self.name, self.rows_out, self.batches_out
        );
        match self.est_rows {
            Some(est) => {
                let deviation = (self.rows_out as f64 - est) / est.max(1.0) * 100.0;
                line.push_str(&format!(" est\u{2248}{est:.0} ({deviation:+.1}%)"));
            }
            None => line.push_str(" est=?"),
        }
        line.push_str(&format!(
            " time={} (self {})",
            fmt_us(self.open_us + self.next_us + self.close_us),
            fmt_us(self.exclusive_us),
        ));
        let x = &self.exclusive;
        if x.oracle_round_trips > 0 || x.oracle_memo_hits > 0 {
            line.push_str(&format!(
                " oracle[trips={} rows={} bytes={} memo={} wait={}]",
                x.oracle_round_trips,
                x.oracle_rows_shipped,
                x.oracle_bytes_shipped,
                x.oracle_memo_hits,
                fmt_us(x.oracle_time.as_micros() as u64),
            ));
        }
        if x.pages_spilled > 0 || x.pages_evicted > 0 || x.spill_bytes_read > 0 {
            line.push_str(&format!(
                " spill[pages={} written={} read={} evicted={}]",
                x.pages_spilled, x.spill_bytes_written, x.spill_bytes_read, x.pages_evicted,
            ));
        }
        if x.vectorised_batches > 0 || x.scalar_fallback_batches > 0 {
            line.push_str(&format!(
                " kernel[vec={} scalar={}]",
                x.vectorised_batches, x.scalar_fallback_batches,
            ));
        }
        if x.subquery_time > Duration::ZERO {
            line.push_str(&format!(
                " subqueries={}",
                fmt_us(x.subquery_time.as_micros() as u64)
            ));
        }
        if !self.events.is_empty() || self.dropped_events > 0 {
            line.push_str(&format!(
                " events={}",
                self.events.len() + self.dropped_events
            ));
        }
        line
    }
}

/// Formats integer microseconds for humans (`417µs`, `12.3ms`, `4.56s`).
pub(crate) fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{us}\u{b5}s")
    }
}

/// Installs the trace's pager hook on `pager`: spill writes/reads and
/// evictions become timestamped events on whichever span is executing.
pub(crate) fn install_pager_observer(pager: &Arc<Pager>, trace: &Arc<QueryTrace>) {
    let trace = Arc::clone(trace);
    // Appended rather than installed exclusively: the serving layer hangs
    // its metrics observer on the same lease, and both must see every event.
    pager.add_observer(Arc::new(move |event: PagerEvent| match event {
        PagerEvent::SpillWrite { bytes } => trace.event("spill_write", bytes, 0),
        PagerEvent::SpillRead { bytes } => trace.event("spill_read", bytes, 0),
        PagerEvent::Evict => trace.event("evict", 0, 0),
    }));
}

/// Wraps one physical operator, recording its lifecycle into one span of the
/// query's [`QueryTrace`].
///
/// `name()` / `describe()` delegate to the inner operator, so instrumented
/// plans render identically to uninstrumented ones; batches pass through
/// untouched, so traced execution is byte-identical.
pub struct InstrumentedOperator<'a> {
    inner: BoxedOperator<'a>,
    ctx: Arc<ExecContext<'a>>,
    trace: Arc<QueryTrace>,
    span: SpanId,
}

impl<'a> InstrumentedOperator<'a> {
    /// Wraps `inner`, recording into `span` of `trace`.
    pub fn new(
        inner: BoxedOperator<'a>,
        ctx: Arc<ExecContext<'a>>,
        trace: Arc<QueryTrace>,
        span: SpanId,
    ) -> Self {
        InstrumentedOperator {
            inner,
            ctx,
            trace,
            span,
        }
    }

    /// Runs one lifecycle call with the span marked current, then records
    /// wall time and the attributed counter delta.
    fn measured<T>(
        &mut self,
        phase: Phase,
        call: impl FnOnce(&mut BoxedOperator<'a>) -> Result<T>,
        rows_of: impl Fn(&T) -> Option<usize>,
    ) -> Result<T> {
        let before = self.ctx.stats();
        let prev = self.trace.swap_current(self.span);
        let start = Instant::now();
        let result = call(&mut self.inner);
        let elapsed = start.elapsed();
        self.trace.set_current(prev);
        let delta = self.ctx.stats().delta_since(&before);
        let produced = result.as_ref().ok().and_then(&rows_of);
        self.trace
            .record(self.span, phase, elapsed, delta, produced);
        result
    }
}

impl PhysicalOperator for InstrumentedOperator<'_> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn describe(&self) -> String {
        self.inner.describe()
    }

    fn open(&mut self) -> Result<()> {
        self.measured(Phase::Open, |op| op.open(), |_| None)
    }

    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        self.measured(
            Phase::Next,
            |op| op.next_batch(),
            |batch: &Option<RecordBatch>| batch.as_ref().map(RecordBatch::num_rows),
        )
    }

    fn close(&mut self) -> Result<()> {
        self.measured(Phase::Close, |op| op.close(), |_| None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_exclusive_subtracts_children() {
        let trace = QueryTrace::new();
        let leaf = trace.begin_span("TableScan", vec![], Some(100.0));
        let root = trace.begin_span("Filter", vec![leaf], Some(40.0));
        trace.record(
            leaf,
            Phase::Next,
            Duration::from_micros(300),
            ExecutionStats {
                rows_scanned: 100,
                ..Default::default()
            },
            Some(100),
        );
        trace.record(
            root,
            Phase::Next,
            Duration::from_micros(1_000),
            ExecutionStats {
                rows_scanned: 100,
                vectorised_batches: 1,
                ..Default::default()
            },
            Some(42),
        );
        let report = trace.report();
        assert_eq!(report.root, Some(root));
        let r = &report.spans[root];
        assert_eq!(r.rows_out, 42);
        assert_eq!(r.batches_out, 1);
        assert_eq!(r.next_us, 1_000);
        assert_eq!(r.exclusive_us, 700, "children's inclusive time subtracted");
        assert_eq!(r.counters.rows_scanned, 100, "inclusive keeps the child's");
        assert_eq!(r.exclusive.rows_scanned, 0, "exclusive subtracts it");
        assert_eq!(r.exclusive.vectorised_batches, 1);
    }

    #[test]
    fn events_attach_to_the_current_span_and_cap() {
        let trace = QueryTrace::new();
        let span = trace.begin_span("GraceHashJoin", vec![], None);
        trace.event("orphan", 1, 0); // no current span: dropped silently
        let prev = trace.swap_current(span);
        for _ in 0..MAX_EVENTS_PER_SPAN + 3 {
            trace.event("spill_write", 4096, 0);
        }
        trace.set_current(prev);
        trace.event("late", 1, 0); // span restored to none: dropped
        let report = trace.report();
        let s = &report.spans[span];
        assert_eq!(s.events.len(), MAX_EVENTS_PER_SPAN);
        assert_eq!(s.dropped_events, 3);
        assert_eq!(s.events[0].kind, "spill_write");
        assert_eq!(s.events[0].bytes, 4096);
    }

    #[test]
    fn report_json_roundtrips() {
        let trace = QueryTrace::new();
        let a = trace.begin_span("TableScan", vec![], Some(10.0));
        let _root = trace.begin_span("Limit", vec![a], None);
        let report = trace.report();
        let back: TraceReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn render_annotates_rows_estimates_and_deviation() {
        let trace = QueryTrace::new();
        let leaf = trace.begin_span("TableScan", vec![], Some(200.0));
        let root = trace.begin_span("Filter", vec![leaf], Some(100.0));
        trace.record(
            leaf,
            Phase::Next,
            Duration::from_micros(10),
            ExecutionStats::default(),
            Some(200),
        );
        trace.record(
            root,
            Phase::Next,
            Duration::from_micros(20),
            ExecutionStats {
                oracle_round_trips: 2,
                oracle_rows_shipped: 50,
                ..Default::default()
            },
            Some(90),
        );
        let lines = trace.report().render();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("Filter rows=90"), "{}", lines[0]);
        assert!(lines[0].contains("est\u{2248}100 (-10.0%)"), "{}", lines[0]);
        assert!(lines[0].contains("oracle[trips=2 rows=50"), "{}", lines[0]);
        assert!(lines[1].starts_with("  TableScan rows=200"), "{}", lines[1]);
        assert!(lines[1].contains("(+0.0%)"), "{}", lines[1]);
    }

    #[test]
    fn fmt_us_scales_units() {
        assert_eq!(fmt_us(417), "417\u{b5}s");
        assert_eq!(fmt_us(12_340), "12.3ms");
        assert_eq!(fmt_us(4_560_000), "4.56s");
    }
}
