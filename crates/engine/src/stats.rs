//! Execution statistics: the raw numbers behind the demo's cost breakdown
//! (experiment E3) and the upload accounting (experiment E2).

use std::time::Duration;

use parking_lot::{Mutex, MutexGuard};
use serde::{Deserialize, Serialize};

/// Statistics collected while executing one query at the SP.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionStats {
    /// Rows read from base tables.
    pub rows_scanned: usize,
    /// Rows produced by the root operator.
    pub rows_returned: usize,
    /// Number of scalar UDF invocations (SDB or plain).
    pub udf_calls: usize,
    /// Number of oracle round trips to the DO proxy.
    pub oracle_round_trips: usize,
    /// Rows shipped to the oracle across all round trips.
    pub oracle_rows_shipped: usize,
    /// Operand rows answered from the encrypted-value memo instead of
    /// travelling the oracle link again.
    pub oracle_memo_hits: usize,
    /// Operand rows buffered across input batches by the cross-batch
    /// accumulator and resolved in coalesced per-call requests (rather than
    /// one request per call per batch).
    pub oracle_rows_coalesced: usize,
    /// Approximate bytes shipped to the oracle.
    pub oracle_bytes_shipped: usize,
    /// Wall-clock time spent inside oracle calls (this is *client* work from the
    /// SP's point of view).
    #[serde(with = "duration_micros")]
    pub oracle_time: Duration,
    /// Total wall-clock execution time at the SP (including oracle waits).
    #[serde(with = "duration_micros")]
    pub total_time: Duration,
    /// Pages written to spill files by the pager (bounded-memory execution).
    pub pages_spilled: usize,
    /// Encoded bytes written to spill files.
    pub spill_bytes_written: usize,
    /// Encoded bytes read back from spill files.
    pub spill_bytes_read: usize,
    /// Pages evicted from the buffer pool (spilled-dirty or already clean).
    pub pages_evicted: usize,
    /// Most pages resident in the buffer pool at any one time (merged across
    /// contexts with `max`, not summed — it is a high-water mark).
    pub peak_resident_pages: usize,
    /// Build-side partition streams written by Grace hash joins, counted
    /// across every recursion level (zero when no join spilled).
    pub join_build_partitions: usize,
    /// Build + probe rows routed through pager partition streams by Grace
    /// hash joins, re-partitioning passes included.
    pub join_spilled_rows: usize,
}

impl ExecutionStats {
    /// Time spent purely on server-side work (total minus oracle waits).
    pub fn server_time(&self) -> Duration {
        self.total_time.saturating_sub(self.oracle_time)
    }

    /// Merges another stats record into this one (used when a query executes
    /// subqueries).
    pub fn merge(&mut self, other: &ExecutionStats) {
        self.rows_scanned += other.rows_scanned;
        self.udf_calls += other.udf_calls;
        self.oracle_round_trips += other.oracle_round_trips;
        self.oracle_rows_shipped += other.oracle_rows_shipped;
        self.oracle_memo_hits += other.oracle_memo_hits;
        self.oracle_rows_coalesced += other.oracle_rows_coalesced;
        self.oracle_bytes_shipped += other.oracle_bytes_shipped;
        self.oracle_time += other.oracle_time;
        self.pages_spilled += other.pages_spilled;
        self.spill_bytes_written += other.spill_bytes_written;
        self.spill_bytes_read += other.spill_bytes_read;
        self.pages_evicted += other.pages_evicted;
        self.peak_resident_pages = self.peak_resident_pages.max(other.peak_resident_pages);
        self.join_build_partitions += other.join_build_partitions;
        self.join_spilled_rows += other.join_spilled_rows;
    }

    /// Folds a pager's spill counters into this record.
    pub fn absorb_pager(&mut self, pager: &sdb_storage::PagerStats) {
        self.pages_spilled += pager.pages_spilled;
        self.spill_bytes_written += pager.spill_bytes_written;
        self.spill_bytes_read += pager.spill_bytes_read;
        self.pages_evicted += pager.pages_evicted;
        self.peak_resident_pages = self.peak_resident_pages.max(pager.peak_resident_pages);
    }
}

/// Thread-safe execution statistics, sharded per worker so parallel operators
/// never contend on one counter lock.
///
/// Worker `i` accumulates into shard `i % shards`; shard 0 doubles as the
/// "main thread" shard and is the only one carrying the whole-query fields
/// (`rows_returned`, `total_time` — `merge` deliberately skips them).
/// [`ShardedStats::snapshot`] folds every shard into one [`ExecutionStats`].
#[derive(Debug)]
pub struct ShardedStats {
    shards: Vec<Mutex<ExecutionStats>>,
}

impl ShardedStats {
    /// Creates `workers.max(1)` empty shards.
    pub fn new(workers: usize) -> Self {
        ShardedStats {
            shards: (0..workers.max(1))
                .map(|_| Mutex::new(ExecutionStats::default()))
                .collect(),
        }
    }

    /// Locks worker `worker`'s shard for accumulation.
    pub fn shard(&self, worker: usize) -> MutexGuard<'_, ExecutionStats> {
        self.shards[worker % self.shards.len()].lock()
    }

    /// Folds every shard into one merged snapshot.
    pub fn snapshot(&self) -> ExecutionStats {
        let mut total = self.shards[0].lock().clone();
        for shard in &self.shards[1..] {
            total.merge(&shard.lock());
        }
        total
    }
}

mod duration_micros {
    //! Serialise [`std::time::Duration`] as integer microseconds.
    use serde::{Deserialize, Deserializer, Serializer};
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_u64(d.as_micros() as u64)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        let micros = u64::deserialize(d)?;
        Ok(Duration::from_micros(micros))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_time_subtracts_oracle_time() {
        let stats = ExecutionStats {
            total_time: Duration::from_millis(10),
            oracle_time: Duration::from_millis(3),
            ..Default::default()
        };
        assert_eq!(stats.server_time(), Duration::from_millis(7));
    }

    #[test]
    fn merge_sums_spill_counters_but_maxes_the_peak() {
        let mut a = ExecutionStats {
            pages_spilled: 3,
            spill_bytes_written: 300,
            peak_resident_pages: 8,
            ..Default::default()
        };
        let b = ExecutionStats {
            pages_spilled: 2,
            spill_bytes_read: 150,
            pages_evicted: 5,
            peak_resident_pages: 5,
            join_build_partitions: 8,
            join_spilled_rows: 1_000,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.pages_spilled, 5);
        assert_eq!(a.spill_bytes_written, 300);
        assert_eq!(a.spill_bytes_read, 150);
        assert_eq!(a.pages_evicted, 5);
        assert_eq!(a.peak_resident_pages, 8, "peak is a high-water mark");
        assert_eq!(a.join_build_partitions, 8, "join counters sum");
        assert_eq!(a.join_spilled_rows, 1_000);
    }

    #[test]
    fn absorb_pager_counters() {
        let mut stats = ExecutionStats {
            peak_resident_pages: 2,
            ..Default::default()
        };
        stats.absorb_pager(&sdb_storage::PagerStats {
            pages_spilled: 4,
            spill_bytes_written: 400,
            spill_bytes_read: 100,
            pages_evicted: 6,
            peak_resident_pages: 9,
        });
        assert_eq!(stats.pages_spilled, 4);
        assert_eq!(stats.peak_resident_pages, 9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ExecutionStats {
            rows_scanned: 10,
            oracle_round_trips: 1,
            ..Default::default()
        };
        let b = ExecutionStats {
            rows_scanned: 5,
            oracle_round_trips: 2,
            oracle_rows_shipped: 100,
            oracle_memo_hits: 7,
            oracle_rows_coalesced: 60,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.rows_scanned, 15);
        assert_eq!(a.oracle_round_trips, 3);
        assert_eq!(a.oracle_rows_shipped, 100);
        assert_eq!(a.oracle_memo_hits, 7);
        assert_eq!(a.oracle_rows_coalesced, 60);
    }

    #[test]
    fn serde_roundtrips_the_memo_counters() {
        let stats = ExecutionStats {
            oracle_round_trips: 2,
            oracle_memo_hits: 9,
            oracle_rows_coalesced: 41,
            ..Default::default()
        };
        let json = serde_json::to_string(&stats).unwrap();
        let back: ExecutionStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.oracle_memo_hits, 9);
        assert_eq!(back.oracle_rows_coalesced, 41);
    }

    #[test]
    fn sharded_snapshot_merges_workers_and_keeps_shard0_totals() {
        let sharded = ShardedStats::new(3);
        {
            let mut s0 = sharded.shard(0);
            s0.rows_scanned = 10;
            s0.rows_returned = 7;
            s0.total_time = Duration::from_millis(5);
        }
        sharded.shard(1).rows_scanned = 20;
        {
            let mut s2 = sharded.shard(2);
            s2.rows_scanned = 30;
            s2.udf_calls = 4;
        }
        // Worker ids wrap around the shard count.
        sharded.shard(4).oracle_round_trips = 2;

        let snap = sharded.snapshot();
        assert_eq!(snap.rows_scanned, 60);
        assert_eq!(snap.udf_calls, 4);
        assert_eq!(snap.oracle_round_trips, 2, "worker 4 lands in shard 1");
        assert_eq!(
            snap.rows_returned, 7,
            "whole-query fields come from shard 0"
        );
        assert_eq!(snap.total_time, Duration::from_millis(5));
    }

    #[test]
    fn serde_roundtrip() {
        let stats = ExecutionStats {
            rows_scanned: 7,
            total_time: Duration::from_micros(1234),
            ..Default::default()
        };
        let json = serde_json::to_string(&stats).unwrap();
        let back: ExecutionStats = serde_json::from_str(&json).unwrap();
        assert_eq!(stats, back);
    }
}
