//! Execution statistics: the raw numbers behind the demo's cost breakdown
//! (experiment E3) and the upload accounting (experiment E2).

use std::time::Duration;

use parking_lot::{Mutex, MutexGuard};
use serde::{Deserialize, Serialize};

/// Statistics collected while executing one query at the SP.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionStats {
    /// Rows read from base tables.
    pub rows_scanned: usize,
    /// Rows produced by the root operator.
    pub rows_returned: usize,
    /// Number of scalar UDF invocations (SDB or plain).
    pub udf_calls: usize,
    /// Number of oracle round trips to the DO proxy.
    pub oracle_round_trips: usize,
    /// Rows shipped to the oracle across all round trips.
    pub oracle_rows_shipped: usize,
    /// Operand rows answered from the encrypted-value memo instead of
    /// travelling the oracle link again.
    pub oracle_memo_hits: usize,
    /// Operand rows buffered across input batches by the cross-batch
    /// accumulator and resolved in coalesced per-call requests (rather than
    /// one request per call per batch).
    pub oracle_rows_coalesced: usize,
    /// Approximate bytes shipped to the oracle.
    pub oracle_bytes_shipped: usize,
    /// Wall-clock time spent inside oracle calls (this is *client* work from the
    /// SP's point of view).
    #[serde(with = "duration_micros")]
    pub oracle_time: Duration,
    /// Total wall-clock execution time at the SP (including oracle waits).
    #[serde(with = "duration_micros")]
    pub total_time: Duration,
    /// Pages written to spill files by the pager (bounded-memory execution).
    pub pages_spilled: usize,
    /// Encoded bytes written to spill files.
    pub spill_bytes_written: usize,
    /// Encoded bytes read back from spill files.
    pub spill_bytes_read: usize,
    /// Pages evicted from the buffer pool (spilled-dirty or already clean).
    pub pages_evicted: usize,
    /// Most pages resident in the buffer pool at any one time (merged across
    /// contexts with `max`, not summed — it is a high-water mark).
    pub peak_resident_pages: usize,
    /// Build-side partition streams written by Grace hash joins, counted
    /// across every recursion level (zero when no join spilled).
    pub join_build_partitions: usize,
    /// Build + probe rows routed through pager partition streams by Grace
    /// hash joins, re-partitioning passes included.
    pub join_spilled_rows: usize,
    /// Batches processed by a vectorised kernel (selection bitmap, key
    /// rendering or global-aggregation fast path).
    pub vectorised_batches: usize,
    /// Batches that fell back to the row-at-a-time scalar interpreter at a
    /// kernel-eligible site (kernels disabled, or shape not supported).
    pub scalar_fallback_batches: usize,
    /// Wall-clock time spent executing scalar subqueries on behalf of the
    /// parent query (cache misses only; memoised re-uses cost nothing).
    #[serde(with = "duration_micros")]
    pub subquery_time: Duration,
}

impl ExecutionStats {
    /// Time spent purely on server-side work (total minus oracle waits).
    pub fn server_time(&self) -> Duration {
        self.total_time.saturating_sub(self.oracle_time)
    }

    /// Merges another stats record into this one (used when a query executes
    /// subqueries).
    pub fn merge(&mut self, other: &ExecutionStats) {
        self.rows_scanned += other.rows_scanned;
        self.udf_calls += other.udf_calls;
        self.oracle_round_trips += other.oracle_round_trips;
        self.oracle_rows_shipped += other.oracle_rows_shipped;
        self.oracle_memo_hits += other.oracle_memo_hits;
        self.oracle_rows_coalesced += other.oracle_rows_coalesced;
        self.oracle_bytes_shipped += other.oracle_bytes_shipped;
        self.oracle_time += other.oracle_time;
        self.pages_spilled += other.pages_spilled;
        self.spill_bytes_written += other.spill_bytes_written;
        self.spill_bytes_read += other.spill_bytes_read;
        self.pages_evicted += other.pages_evicted;
        self.peak_resident_pages = self.peak_resident_pages.max(other.peak_resident_pages);
        self.join_build_partitions += other.join_build_partitions;
        self.join_spilled_rows += other.join_spilled_rows;
        self.vectorised_batches += other.vectorised_batches;
        self.scalar_fallback_batches += other.scalar_fallback_batches;
        self.subquery_time += other.subquery_time;
    }

    /// Counter increments accumulated between the `earlier` snapshot and
    /// this one (field-wise saturating subtraction). Used by the tracing
    /// layer to attribute global counters to individual operator spans.
    ///
    /// Whole-query fields (`rows_returned`, `total_time`) are zeroed —
    /// they are stamped once at the top level, not accumulated — and
    /// `peak_resident_pages` keeps the later high-water mark because the
    /// delta of a maximum is not meaningful.
    pub fn delta_since(&self, earlier: &ExecutionStats) -> ExecutionStats {
        ExecutionStats {
            rows_scanned: self.rows_scanned.saturating_sub(earlier.rows_scanned),
            rows_returned: 0,
            udf_calls: self.udf_calls.saturating_sub(earlier.udf_calls),
            oracle_round_trips: self
                .oracle_round_trips
                .saturating_sub(earlier.oracle_round_trips),
            oracle_rows_shipped: self
                .oracle_rows_shipped
                .saturating_sub(earlier.oracle_rows_shipped),
            oracle_memo_hits: self
                .oracle_memo_hits
                .saturating_sub(earlier.oracle_memo_hits),
            oracle_rows_coalesced: self
                .oracle_rows_coalesced
                .saturating_sub(earlier.oracle_rows_coalesced),
            oracle_bytes_shipped: self
                .oracle_bytes_shipped
                .saturating_sub(earlier.oracle_bytes_shipped),
            oracle_time: self.oracle_time.saturating_sub(earlier.oracle_time),
            total_time: Duration::ZERO,
            pages_spilled: self.pages_spilled.saturating_sub(earlier.pages_spilled),
            spill_bytes_written: self
                .spill_bytes_written
                .saturating_sub(earlier.spill_bytes_written),
            spill_bytes_read: self
                .spill_bytes_read
                .saturating_sub(earlier.spill_bytes_read),
            pages_evicted: self.pages_evicted.saturating_sub(earlier.pages_evicted),
            peak_resident_pages: self.peak_resident_pages,
            join_build_partitions: self
                .join_build_partitions
                .saturating_sub(earlier.join_build_partitions),
            join_spilled_rows: self
                .join_spilled_rows
                .saturating_sub(earlier.join_spilled_rows),
            vectorised_batches: self
                .vectorised_batches
                .saturating_sub(earlier.vectorised_batches),
            scalar_fallback_batches: self
                .scalar_fallback_batches
                .saturating_sub(earlier.scalar_fallback_batches),
            subquery_time: self.subquery_time.saturating_sub(earlier.subquery_time),
        }
    }

    /// Folds a pager's spill counters into this record.
    pub fn absorb_pager(&mut self, pager: &sdb_storage::PagerStats) {
        self.pages_spilled += pager.pages_spilled;
        self.spill_bytes_written += pager.spill_bytes_written;
        self.spill_bytes_read += pager.spill_bytes_read;
        self.pages_evicted += pager.pages_evicted;
        self.peak_resident_pages = self.peak_resident_pages.max(pager.peak_resident_pages);
    }
}

/// Thread-safe execution statistics, sharded per worker so parallel operators
/// never contend on one counter lock.
///
/// Worker `i` accumulates into shard `i % shards`; shard 0 doubles as the
/// "main thread" shard and is the only one carrying the whole-query fields
/// (`rows_returned`, `total_time` — `merge` deliberately skips them).
/// [`ShardedStats::snapshot`] folds every shard into one [`ExecutionStats`].
#[derive(Debug)]
pub struct ShardedStats {
    shards: Vec<Mutex<ExecutionStats>>,
}

impl ShardedStats {
    /// Creates `workers.max(1)` empty shards.
    pub fn new(workers: usize) -> Self {
        ShardedStats {
            shards: (0..workers.max(1))
                .map(|_| Mutex::new(ExecutionStats::default()))
                .collect(),
        }
    }

    /// Locks worker `worker`'s shard for accumulation.
    pub fn shard(&self, worker: usize) -> MutexGuard<'_, ExecutionStats> {
        self.shards[worker % self.shards.len()].lock()
    }

    /// Folds every shard into one merged snapshot.
    pub fn snapshot(&self) -> ExecutionStats {
        let mut total = self.shards[0].lock().clone();
        for shard in &self.shards[1..] {
            total.merge(&shard.lock());
        }
        total
    }
}

mod duration_micros {
    //! Serialise [`std::time::Duration`] as integer microseconds.
    use serde::{Deserialize, Deserializer, Serializer};
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_u64(d.as_micros() as u64)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        let micros = u64::deserialize(d)?;
        Ok(Duration::from_micros(micros))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_time_subtracts_oracle_time() {
        let stats = ExecutionStats {
            total_time: Duration::from_millis(10),
            oracle_time: Duration::from_millis(3),
            ..Default::default()
        };
        assert_eq!(stats.server_time(), Duration::from_millis(7));
    }

    #[test]
    fn merge_sums_spill_counters_but_maxes_the_peak() {
        let mut a = ExecutionStats {
            pages_spilled: 3,
            spill_bytes_written: 300,
            peak_resident_pages: 8,
            ..Default::default()
        };
        let b = ExecutionStats {
            pages_spilled: 2,
            spill_bytes_read: 150,
            pages_evicted: 5,
            peak_resident_pages: 5,
            join_build_partitions: 8,
            join_spilled_rows: 1_000,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.pages_spilled, 5);
        assert_eq!(a.spill_bytes_written, 300);
        assert_eq!(a.spill_bytes_read, 150);
        assert_eq!(a.pages_evicted, 5);
        assert_eq!(a.peak_resident_pages, 8, "peak is a high-water mark");
        assert_eq!(a.join_build_partitions, 8, "join counters sum");
        assert_eq!(a.join_spilled_rows, 1_000);
    }

    #[test]
    fn absorb_pager_counters() {
        let mut stats = ExecutionStats {
            peak_resident_pages: 2,
            ..Default::default()
        };
        stats.absorb_pager(&sdb_storage::PagerStats {
            pages_spilled: 4,
            spill_bytes_written: 400,
            spill_bytes_read: 100,
            pages_evicted: 6,
            peak_resident_pages: 9,
        });
        assert_eq!(stats.pages_spilled, 4);
        assert_eq!(stats.peak_resident_pages, 9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ExecutionStats {
            rows_scanned: 10,
            oracle_round_trips: 1,
            ..Default::default()
        };
        let b = ExecutionStats {
            rows_scanned: 5,
            oracle_round_trips: 2,
            oracle_rows_shipped: 100,
            oracle_memo_hits: 7,
            oracle_rows_coalesced: 60,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.rows_scanned, 15);
        assert_eq!(a.oracle_round_trips, 3);
        assert_eq!(a.oracle_rows_shipped, 100);
        assert_eq!(a.oracle_memo_hits, 7);
        assert_eq!(a.oracle_rows_coalesced, 60);
    }

    #[test]
    fn serde_roundtrips_the_memo_counters() {
        let stats = ExecutionStats {
            oracle_round_trips: 2,
            oracle_memo_hits: 9,
            oracle_rows_coalesced: 41,
            ..Default::default()
        };
        let json = serde_json::to_string(&stats).unwrap();
        let back: ExecutionStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.oracle_memo_hits, 9);
        assert_eq!(back.oracle_rows_coalesced, 41);
    }

    #[test]
    fn sharded_snapshot_merges_workers_and_keeps_shard0_totals() {
        let sharded = ShardedStats::new(3);
        {
            let mut s0 = sharded.shard(0);
            s0.rows_scanned = 10;
            s0.rows_returned = 7;
            s0.total_time = Duration::from_millis(5);
        }
        sharded.shard(1).rows_scanned = 20;
        {
            let mut s2 = sharded.shard(2);
            s2.rows_scanned = 30;
            s2.udf_calls = 4;
        }
        // Worker ids wrap around the shard count.
        sharded.shard(4).oracle_round_trips = 2;

        let snap = sharded.snapshot();
        assert_eq!(snap.rows_scanned, 60);
        assert_eq!(snap.udf_calls, 4);
        assert_eq!(snap.oracle_round_trips, 2, "worker 4 lands in shard 1");
        assert_eq!(
            snap.rows_returned, 7,
            "whole-query fields come from shard 0"
        );
        assert_eq!(snap.total_time, Duration::from_millis(5));
    }

    /// Exhaustive merge semantics: every field is spelled out with a full
    /// struct literal (no `..Default::default()`), so adding a counter to
    /// [`ExecutionStats`] without deciding its merge rule fails to compile
    /// here. Every field sums except `peak_resident_pages` (high-water
    /// mark: max) and the whole-query fields `rows_returned` / `total_time`
    /// (stamped once at the top level: merge leaves them untouched).
    #[test]
    fn merge_is_exhaustive_sum_except_peak_and_whole_query_fields() {
        let mut a = ExecutionStats {
            rows_scanned: 1,
            rows_returned: 2,
            udf_calls: 3,
            oracle_round_trips: 4,
            oracle_rows_shipped: 5,
            oracle_memo_hits: 6,
            oracle_rows_coalesced: 7,
            oracle_bytes_shipped: 8,
            oracle_time: Duration::from_micros(9),
            total_time: Duration::from_micros(10),
            pages_spilled: 11,
            spill_bytes_written: 12,
            spill_bytes_read: 13,
            pages_evicted: 14,
            peak_resident_pages: 15,
            join_build_partitions: 16,
            join_spilled_rows: 17,
            vectorised_batches: 18,
            scalar_fallback_batches: 19,
            subquery_time: Duration::from_micros(20),
        };
        let b = ExecutionStats {
            rows_scanned: 100,
            rows_returned: 200,
            udf_calls: 300,
            oracle_round_trips: 400,
            oracle_rows_shipped: 500,
            oracle_memo_hits: 600,
            oracle_rows_coalesced: 700,
            oracle_bytes_shipped: 800,
            oracle_time: Duration::from_micros(900),
            total_time: Duration::from_micros(1_000),
            pages_spilled: 1_100,
            spill_bytes_written: 1_200,
            spill_bytes_read: 1_300,
            pages_evicted: 1_400,
            peak_resident_pages: 1_500,
            join_build_partitions: 1_600,
            join_spilled_rows: 1_700,
            vectorised_batches: 1_800,
            scalar_fallback_batches: 1_900,
            subquery_time: Duration::from_micros(2_000),
        };
        a.merge(&b);
        assert_eq!(a.rows_scanned, 101);
        assert_eq!(a.rows_returned, 2, "whole-query field: merge skips it");
        assert_eq!(a.udf_calls, 303);
        assert_eq!(a.oracle_round_trips, 404);
        assert_eq!(a.oracle_rows_shipped, 505);
        assert_eq!(a.oracle_memo_hits, 606);
        assert_eq!(a.oracle_rows_coalesced, 707);
        assert_eq!(a.oracle_bytes_shipped, 808);
        assert_eq!(a.oracle_time, Duration::from_micros(909));
        assert_eq!(
            a.total_time,
            Duration::from_micros(10),
            "whole-query field: merge skips it"
        );
        assert_eq!(a.pages_spilled, 1_111);
        assert_eq!(a.spill_bytes_written, 1_212);
        assert_eq!(a.spill_bytes_read, 1_313);
        assert_eq!(a.pages_evicted, 1_414);
        assert_eq!(a.peak_resident_pages, 1_500, "high-water mark: max");
        assert_eq!(a.join_build_partitions, 1_616);
        assert_eq!(a.join_spilled_rows, 1_717);
        assert_eq!(a.vectorised_batches, 1_818);
        assert_eq!(a.scalar_fallback_batches, 1_919);
        assert_eq!(a.subquery_time, Duration::from_micros(2_020));
    }

    /// `delta_since` is merge's inverse on the summed fields: zeroes the
    /// whole-query fields and keeps the later high-water mark.
    #[test]
    fn delta_since_inverts_merge_on_summed_fields() {
        let before = ExecutionStats {
            rows_scanned: 10,
            oracle_round_trips: 2,
            oracle_time: Duration::from_micros(50),
            peak_resident_pages: 4,
            vectorised_batches: 3,
            ..Default::default()
        };
        let mut after = before.clone();
        after.merge(&ExecutionStats {
            rows_scanned: 7,
            oracle_round_trips: 1,
            oracle_time: Duration::from_micros(25),
            peak_resident_pages: 9,
            vectorised_batches: 2,
            subquery_time: Duration::from_micros(11),
            ..Default::default()
        });
        after.rows_returned = 99;
        after.total_time = Duration::from_micros(1_234);

        let delta = after.delta_since(&before);
        assert_eq!(delta.rows_scanned, 7);
        assert_eq!(delta.oracle_round_trips, 1);
        assert_eq!(delta.oracle_time, Duration::from_micros(25));
        assert_eq!(delta.vectorised_batches, 2);
        assert_eq!(delta.subquery_time, Duration::from_micros(11));
        assert_eq!(delta.rows_returned, 0, "whole-query fields zeroed");
        assert_eq!(delta.total_time, Duration::ZERO);
        assert_eq!(delta.peak_resident_pages, 9, "keeps the later peak");
    }

    #[test]
    fn serde_roundtrip() {
        let stats = ExecutionStats {
            rows_scanned: 7,
            total_time: Duration::from_micros(1234),
            ..Default::default()
        };
        let json = serde_json::to_string(&stats).unwrap();
        let back: ExecutionStats = serde_json::from_str(&json).unwrap();
        assert_eq!(stats, back);
    }
}
