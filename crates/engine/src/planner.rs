//! Lowers [`LogicalPlan`]s into physical-operator trees.
//!
//! The planner is deliberately thin: operator selection (hash vs nested-loop
//! join, serial vs parallel variants), oracle-call placement ([`OracleResolve`]
//! children under the operators whose expressions need interactive protocol
//! steps) and name-resolution schemas for join-key classification. Runtime
//! concerns — expression binding, type inference, the actual oracle round
//! trips — live in the operators themselves.
//!
//! When the context's `parallelism` knob is above one, scans lower to
//! [`ParallelTableScan`] and aggregations to [`ParallelHashAggregate`]
//! (morsel-parallel variants with byte-identical output); [`HashJoin`]
//! parallelises its build side internally under the same knob.
//!
//! Two further selection rules:
//!
//! * **Bounded memory** — with a limited
//!   [`MemoryBudget`](sdb_storage::MemoryBudget) on the context, `Sort`
//!   lowers to [`ExternalSort`], `Aggregate` to [`SpillingHashAggregate`]
//!   and hash equi-joins to [`GraceHashJoin`], which spill through the pager
//!   instead of materialising; their output is byte-identical to the
//!   in-memory operators. (LEFT JOINs with residual ON conjuncts still take
//!   the nested-loop path under a budget — residuals decide matching there,
//!   and both plans must agree.)
//! * **Limit-aware scans** — when a `Limit` sits above a scan with only
//!   streaming operators (filter, project, distinct, other limits) in
//!   between, the scan stays the lazy serial [`TableScan`] even at
//!   `parallelism > 1`: [`ParallelTableScan`] materialises every chunk at
//!   `open()`, so a `LIMIT k` over it saves emission but not slicing.

use std::sync::Arc;

use sdb_sql::ast::{Expr, JoinKind};
use sdb_sql::plan::{LogicalPlan, ProjectionItem};
use sdb_storage::{ColumnDef, DataType, RecordBatch, Schema};

use crate::operators::aggregate::{HashAggregate, ParallelHashAggregate};
use crate::operators::expr::{classify_equi_conjunct, conjoin, split_conjuncts};
use crate::operators::external_sort::ExternalSort;
use crate::operators::filter::Filter;
use crate::operators::grace_join::GraceHashJoin;
use crate::operators::join::{HashJoin, NestedLoopJoin};
use crate::operators::oracle::{collect_oracle_calls_all, OracleResolve};
use crate::operators::project::Project;
use crate::operators::scan::{ParallelTableScan, TableScan};
use crate::operators::sort::{Distinct, Limit, Sort};
use crate::operators::spill_aggregate::SpillingHashAggregate;
use crate::operators::{BoxedOperator, ExecContext};
use crate::Result;

/// Plans physical execution for one query against a shared [`ExecContext`].
pub struct PhysicalPlanner<'a> {
    ctx: Arc<ExecContext<'a>>,
    /// Trace spans of lowered-but-not-yet-consumed operators, in lowering
    /// order. `lower` works bottom-up and left-to-right, so when an operator
    /// is created its direct inputs' spans are exactly the stack's tail —
    /// [`Self::instrument`] pops them as the new span's children. Unused
    /// (and empty) when tracing is off. `RefCell`: planning is
    /// single-threaded.
    pending_spans: std::cell::RefCell<Vec<crate::trace::SpanId>>,
}

impl<'a> PhysicalPlanner<'a> {
    /// Creates a planner over the given context.
    pub fn new(ctx: Arc<ExecContext<'a>>) -> Self {
        PhysicalPlanner {
            ctx,
            pending_spans: std::cell::RefCell::new(Vec::new()),
        }
    }

    /// When tracing is on, registers a span for `op` (adopting the last
    /// `arity` pending spans as its children) and wraps `op` in an
    /// [`crate::trace::InstrumentedOperator`]. A no-op returning `op`
    /// unchanged when tracing is off — untraced plans carry zero
    /// instrumentation.
    fn instrument(
        &self,
        op: BoxedOperator<'a>,
        arity: usize,
        est_rows: Option<f64>,
    ) -> BoxedOperator<'a> {
        let Some(trace) = self.ctx.trace() else {
            return op;
        };
        let children = {
            let mut pending = self.pending_spans.borrow_mut();
            let split = pending.len() - arity;
            pending.split_off(split)
        };
        let span = trace.begin_span(op.name(), children, est_rows);
        self.pending_spans.borrow_mut().push(span);
        Box::new(crate::trace::InstrumentedOperator::new(
            op,
            Arc::clone(&self.ctx),
            Arc::clone(trace),
            span,
        ))
    }

    /// The optimizer's cardinality estimate for `plan`, for
    /// estimate-vs-actual annotation of the node's span. Only computed when
    /// tracing is on; `None` when no statistics exist (`ANALYZE` not run).
    fn estimate(&self, plan: &LogicalPlan) -> Option<f64> {
        self.ctx.trace()?;
        crate::optimizer::cardinality::Estimator::new(self.ctx.catalog()).rows(plan)
    }

    /// Lowers a logical plan into an executable operator tree.
    pub fn plan(&self, plan: &LogicalPlan) -> Result<BoxedOperator<'a>> {
        self.lower(plan, false).map(|(op, _)| op)
    }

    /// Recursive lowering; returns the operator plus a *name-resolution
    /// schema* (column names with placeholder types) used to classify join
    /// keys by side. Oracle virtual columns are not part of these schemas —
    /// raw plans reference oracle steps as function calls, never by their
    /// materialised column names.
    ///
    /// `under_limit` is true when a `Limit` sits above this node with only
    /// streaming operators in between: a scan reached that way stays the
    /// lazy serial [`TableScan`] so the limit can stop slicing early.
    /// Blocking operators (sort, aggregate, join) reset the flag — they
    /// drain their input completely regardless of any limit above them.
    fn lower(&self, plan: &LogicalPlan, under_limit: bool) -> Result<(BoxedOperator<'a>, Schema)> {
        match plan {
            LogicalPlan::Scan { table, alias } => {
                // Resolve the table at plan time: missing tables fail before
                // execution starts, and the scan's qualified names feed join
                // classification above.
                let handle = self.ctx.catalog().table(table)?;
                let visible = alias.as_deref().unwrap_or(table);
                let names = Schema::new(
                    handle
                        .read()
                        .schema()
                        .columns()
                        .iter()
                        .map(|c| ColumnDef {
                            name: format!("{visible}.{}", c.name),
                            data_type: c.data_type,
                            sensitivity: c.sensitivity,
                        })
                        .collect(),
                );
                // A scan feeding a limit through streaming operators stays
                // lazy and serial: the parallel scan slices every chunk at
                // open(), wasting the work a LIMIT would skip.
                let scan: BoxedOperator<'a> = if self.ctx.parallelism() > 1 && !under_limit {
                    Box::new(ParallelTableScan::new(
                        Arc::clone(&self.ctx),
                        table,
                        alias.as_deref(),
                    ))
                } else {
                    Box::new(TableScan::new(
                        Arc::clone(&self.ctx),
                        table,
                        alias.as_deref(),
                    ))
                };
                Ok((self.instrument(scan, 0, self.estimate(plan)), names))
            }

            LogicalPlan::Filter { input, predicate } => {
                let (child, schema) = self.lower(input, under_limit)?;
                let child = self.with_oracle_resolve(child, std::slice::from_ref(predicate));
                let filter = Filter::new(Arc::clone(&self.ctx), child, predicate.clone());
                Ok((
                    self.instrument(Box::new(filter), 1, self.estimate(plan)),
                    schema,
                ))
            }

            LogicalPlan::Project { input, items } => {
                let (child, schema) = self.lower(input, under_limit)?;
                let computed: Vec<Expr> = items
                    .iter()
                    .filter_map(|item| match item {
                        ProjectionItem::Named { expr, .. } => Some(expr.clone()),
                        ProjectionItem::Wildcard => None,
                    })
                    .collect();
                let calls = collect_oracle_calls_all(&computed);
                let virtual_columns: Vec<String> = calls
                    .iter()
                    .map(|c| c.to_string().to_ascii_lowercase())
                    .collect();
                let child = self.wrap_calls(child, calls);

                let mut names = Vec::new();
                for item in items {
                    match item {
                        ProjectionItem::Wildcard => {
                            names.extend(schema.columns().iter().cloned());
                        }
                        ProjectionItem::Named { name, .. } => {
                            names.push(placeholder_column(name));
                        }
                    }
                }
                let project =
                    Project::new(Arc::clone(&self.ctx), child, items.clone(), virtual_columns);
                Ok((
                    self.instrument(Box::new(project), 1, self.estimate(plan)),
                    Schema::new(names),
                ))
            }

            LogicalPlan::Join {
                left,
                right,
                kind,
                on,
            } => {
                let (left_op, left_schema) = self.lower(left, false)?;
                let (right_op, right_schema) = self.lower(right, false)?;
                let combined = left_schema.join(&right_schema);

                // Split the ON condition into hash-joinable equality pairs and
                // a residual predicate applied above the join.
                let mut left_keys: Vec<Expr> = Vec::new();
                let mut right_keys: Vec<Expr> = Vec::new();
                let mut residual: Vec<Expr> = Vec::new();
                if let Some(on) = on {
                    for conjunct in split_conjuncts(on) {
                        match classify_equi_conjunct(&conjunct, &left_schema, &right_schema) {
                            Some((l, r)) => {
                                left_keys.push(l);
                                right_keys.push(r);
                            }
                            None => residual.push(conjunct),
                        }
                    }
                }

                // A LEFT JOIN's residual ON conjuncts decide *matching*, not
                // post-join filtering: a filter above the join would drop the
                // null-padded rows it is supposed to keep. The nested-loop
                // operator evaluates the full ON inside the match loop and
                // pads correctly, so LEFT JOINs with residuals take that path.
                let est = self.estimate(plan);
                let residual_left_join = *kind == JoinKind::Left && !residual.is_empty();
                if left_keys.is_empty() || residual_left_join {
                    let join = NestedLoopJoin::new(
                        Arc::clone(&self.ctx),
                        left_op,
                        right_op,
                        *kind,
                        on.clone(),
                    );
                    return Ok((self.instrument(Box::new(join), 2, est), combined));
                }

                // With a limited budget the build side must not materialise
                // unboundedly: the Grace-style spilling join partitions both
                // sides through the pager on overflow, byte-identical output.
                let join: BoxedOperator<'a> = if self.ctx.memory_budget().is_limited() {
                    Box::new(GraceHashJoin::new(
                        Arc::clone(&self.ctx),
                        left_op,
                        right_op,
                        *kind,
                        left_keys,
                        right_keys,
                    ))
                } else {
                    Box::new(HashJoin::new(
                        Arc::clone(&self.ctx),
                        left_op,
                        right_op,
                        *kind,
                        left_keys,
                        right_keys,
                    ))
                };
                // Residual conjuncts become an ordinary filter above the join
                // (oracle-backed residuals resolve there like any predicate).
                // The plan node's estimate annotates the arm's topmost
                // operator — the residual filter's output is the node's
                // output when one exists.
                let residual_pred = conjoin(residual);
                let join =
                    self.instrument(join, 2, if residual_pred.is_some() { None } else { est });
                let op = match residual_pred {
                    Some(predicate) => {
                        let child =
                            self.with_oracle_resolve(join, std::slice::from_ref(&predicate));
                        self.instrument(
                            Box::new(Filter::new(Arc::clone(&self.ctx), child, predicate)),
                            1,
                            est,
                        )
                    }
                    None => join,
                };
                Ok((op, combined))
            }

            LogicalPlan::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let (child, _) = self.lower(input, false)?;
                let mut exprs: Vec<Expr> = group_by.iter().map(|(e, _)| e.clone()).collect();
                exprs.extend(aggregates.iter().filter_map(|a| a.arg.clone()));
                let child = self.with_oracle_resolve(child, &exprs);

                let mut names: Vec<ColumnDef> = group_by
                    .iter()
                    .map(|(_, name)| placeholder_column(name))
                    .collect();
                names.extend(aggregates.iter().map(|a| placeholder_column(&a.name)));
                let budgeted = self.ctx.memory_budget().is_limited();
                let aggregate: BoxedOperator<'a> = if budgeted {
                    Box::new(SpillingHashAggregate::new(
                        Arc::clone(&self.ctx),
                        child,
                        group_by.clone(),
                        aggregates.clone(),
                    ))
                } else if self.ctx.parallelism() > 1 {
                    Box::new(ParallelHashAggregate::new(
                        Arc::clone(&self.ctx),
                        child,
                        group_by.clone(),
                        aggregates.clone(),
                    ))
                } else {
                    Box::new(HashAggregate::new(
                        Arc::clone(&self.ctx),
                        child,
                        group_by.clone(),
                        aggregates.clone(),
                    ))
                };
                Ok((
                    self.instrument(aggregate, 1, self.estimate(plan)),
                    Schema::new(names),
                ))
            }

            LogicalPlan::Sort { input, keys } => {
                let (child, schema) = self.lower(input, false)?;
                let exprs: Vec<Expr> = keys.iter().map(|k| k.expr.clone()).collect();
                let child = self.with_oracle_resolve(child, &exprs);
                let sort: BoxedOperator<'a> = if self.ctx.memory_budget().is_limited() {
                    Box::new(ExternalSort::new(
                        Arc::clone(&self.ctx),
                        child,
                        keys.clone(),
                    ))
                } else {
                    Box::new(Sort::new(Arc::clone(&self.ctx), child, keys.clone()))
                };
                Ok((self.instrument(sort, 1, self.estimate(plan)), schema))
            }

            LogicalPlan::Distinct { input } => {
                let (child, schema) = self.lower(input, under_limit)?;
                Ok((
                    self.instrument(Box::new(Distinct::new(child)), 1, self.estimate(plan)),
                    schema,
                ))
            }

            LogicalPlan::Limit { input, n } => {
                let (child, schema) = self.lower(input, true)?;
                Ok((
                    self.instrument(
                        Box::new(Limit::new(child, *n as usize)),
                        1,
                        self.estimate(plan),
                    ),
                    schema,
                ))
            }
        }
    }

    /// Wraps `child` in an [`OracleResolve`] operator when `exprs` contain
    /// oracle-backed calls.
    fn with_oracle_resolve(&self, child: BoxedOperator<'a>, exprs: &[Expr]) -> BoxedOperator<'a> {
        self.wrap_calls(child, collect_oracle_calls_all(exprs))
    }

    fn wrap_calls(&self, child: BoxedOperator<'a>, calls: Vec<Expr>) -> BoxedOperator<'a> {
        if calls.is_empty() {
            child
        } else {
            self.instrument(
                Box::new(OracleResolve::new(Arc::clone(&self.ctx), child, calls)),
                1,
                None,
            )
        }
    }
}

/// A name-only column entry for the planner's resolution schemas.
fn placeholder_column(name: &str) -> ColumnDef {
    ColumnDef::public(name, DataType::Int)
}

/// Plans and executes a logical plan to completion, concatenating all output
/// batches and recording `rows_returned`.
pub fn execute_plan<'a>(ctx: &Arc<ExecContext<'a>>, plan: &LogicalPlan) -> Result<RecordBatch> {
    crate::operators::execute_plan(ctx, plan, |_| {})
}

#[cfg(test)]
mod tests {
    //! End-to-end pipeline tests: SQL → logical plan → physical operators.
    //! (Carried over from the monolithic executor this pipeline replaced.)

    use super::*;
    use crate::udf::UdfRegistry;
    use crate::EngineError;
    use sdb_sql::plan::PlanBuilder;
    use sdb_sql::{parse_sql, Statement};
    use sdb_storage::{Catalog, Value};

    fn setup_catalog() -> Catalog {
        let catalog = Catalog::new();
        let emp_schema = Schema::new(vec![
            ColumnDef::public("id", DataType::Int),
            ColumnDef::public("name", DataType::Varchar),
            ColumnDef::public("dept_id", DataType::Int),
            ColumnDef::public("salary", DataType::Int),
        ]);
        let emp = catalog.create_table("emp", emp_schema).unwrap();
        {
            let mut t = emp.write();
            for (id, name, dept, salary) in [
                (1, "ann", 10, 100),
                (2, "bob", 10, 200),
                (3, "cat", 20, 300),
                (4, "dan", 20, 400),
                (5, "eve", 30, 500),
            ] {
                t.insert_row(vec![
                    Value::Int(id),
                    Value::Str(name.into()),
                    Value::Int(dept),
                    Value::Int(salary),
                ])
                .unwrap();
            }
        }
        let dept_schema = Schema::new(vec![
            ColumnDef::public("id", DataType::Int),
            ColumnDef::public("dept_name", DataType::Varchar),
        ]);
        let dept = catalog.create_table("dept", dept_schema).unwrap();
        {
            let mut t = dept.write();
            for (id, name) in [(10, "eng"), (20, "ops"), (40, "hr")] {
                t.insert_row(vec![Value::Int(id), Value::Str(name.into())])
                    .unwrap();
            }
        }
        catalog
    }

    fn parse_query(sql: &str) -> sdb_sql::ast::Query {
        match parse_sql(sql).unwrap() {
            Statement::Query(q) => q,
            other => panic!("expected query, got {other:?}"),
        }
    }

    /// Runs `sql` under the given batch size so the multi-batch paths get
    /// exercised alongside the single-batch default.
    fn run_batched(catalog: &Catalog, sql: &str, batch_size: usize) -> RecordBatch {
        let registry = UdfRegistry::with_sdb_udfs();
        let ctx = Arc::new(ExecContext::new(catalog, &registry, None).with_batch_size(batch_size));
        let plan = PlanBuilder::build(&parse_query(sql)).unwrap();
        execute_plan(&ctx, &plan).unwrap_or_else(|e| panic!("query failed: {sql}: {e}"))
    }

    fn run(catalog: &Catalog, sql: &str) -> RecordBatch {
        let single = run_batched(catalog, sql, crate::operators::DEFAULT_BATCH_SIZE);
        // The same query chunked into 2-row batches must agree (ORDER BY
        // queries are deterministic; others in this suite are order-stable
        // because every operator preserves input order).
        let chunked = run_batched(catalog, sql, 2);
        assert_eq!(
            single, chunked,
            "batched execution diverged from single-batch for: {sql}"
        );
        single
    }

    #[test]
    fn scan_and_project() {
        let catalog = setup_catalog();
        let batch = run(&catalog, "SELECT name, salary * 2 AS double_pay FROM emp");
        assert_eq!(batch.num_rows(), 5);
        assert_eq!(batch.schema().column_at(1).name, "double_pay");
        assert_eq!(batch.column(1).get(0), &Value::Int(200));
    }

    #[test]
    fn filter_rows() {
        let catalog = setup_catalog();
        let batch = run(
            &catalog,
            "SELECT name FROM emp WHERE salary > 250 AND dept_id = 20",
        );
        assert_eq!(batch.num_rows(), 2);
        let names: Vec<String> = batch
            .column(0)
            .values()
            .iter()
            .map(|v| v.as_str().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["cat", "dan"]);
    }

    #[test]
    fn wildcard_select() {
        let catalog = setup_catalog();
        let batch = run(&catalog, "SELECT * FROM emp WHERE id = 1");
        assert_eq!(batch.num_rows(), 1);
        assert_eq!(batch.num_columns(), 4);
        assert_eq!(batch.schema().column_at(0).name, "emp.id");
    }

    #[test]
    fn inner_join() {
        let catalog = setup_catalog();
        let batch = run(
            &catalog,
            "SELECT e.name, d.dept_name FROM emp e JOIN dept d ON e.dept_id = d.id ORDER BY e.name",
        );
        assert_eq!(batch.num_rows(), 4); // eve's dept 30 has no match
        assert_eq!(batch.column(1).get(0).as_str().unwrap(), "eng");
    }

    #[test]
    fn left_join_pads_nulls() {
        let catalog = setup_catalog();
        let batch = run(
            &catalog,
            "SELECT e.name, d.dept_name FROM emp e LEFT JOIN dept d ON e.dept_id = d.id ORDER BY e.id",
        );
        assert_eq!(batch.num_rows(), 5);
        assert!(batch.column(1).get(4).is_null());
    }

    #[test]
    fn implicit_join_with_where() {
        let catalog = setup_catalog();
        let batch = run(
            &catalog,
            "SELECT e.name FROM emp e, dept d WHERE e.dept_id = d.id AND d.dept_name = 'ops' ORDER BY e.name",
        );
        assert_eq!(batch.num_rows(), 2);
    }

    #[test]
    fn group_by_aggregates() {
        let catalog = setup_catalog();
        let batch = run(
            &catalog,
            "SELECT dept_id, COUNT(*) AS c, SUM(salary) AS total, AVG(salary) AS mean, MIN(salary) AS lo, MAX(salary) AS hi FROM emp GROUP BY dept_id ORDER BY dept_id",
        );
        assert_eq!(batch.num_rows(), 3);
        // dept 10: count 2, sum 300, avg 150, min 100, max 200
        assert_eq!(batch.column(1).get(0), &Value::Int(2));
        assert_eq!(batch.column(2).get(0), &Value::Int(300));
        assert_eq!(
            batch.column(3).get(0),
            &Value::Decimal {
                units: 1_500_000,
                scale: 4
            }
        );
        assert_eq!(batch.column(4).get(0), &Value::Int(100));
        assert_eq!(batch.column(5).get(0), &Value::Int(200));
    }

    #[test]
    fn global_aggregate_and_having() {
        let catalog = setup_catalog();
        let batch = run(&catalog, "SELECT COUNT(*) AS n, SUM(salary) AS s FROM emp");
        assert_eq!(batch.num_rows(), 1);
        assert_eq!(batch.column(0).get(0), &Value::Int(5));
        assert_eq!(batch.column(1).get(0), &Value::Int(1500));

        let batch = run(
            &catalog,
            "SELECT dept_id, SUM(salary) AS s FROM emp GROUP BY dept_id HAVING SUM(salary) > 400 ORDER BY s DESC",
        );
        assert_eq!(batch.num_rows(), 2);
        assert_eq!(batch.column(1).get(0), &Value::Int(700));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let catalog = setup_catalog();
        let batch = run(
            &catalog,
            "SELECT COUNT(*) AS n, SUM(salary) AS s FROM emp WHERE id > 99",
        );
        assert_eq!(batch.num_rows(), 1);
        assert_eq!(batch.column(0).get(0), &Value::Int(0));
        assert!(batch.column(1).get(0).is_null());
    }

    #[test]
    fn order_limit_distinct() {
        let catalog = setup_catalog();
        let batch = run(
            &catalog,
            "SELECT salary FROM emp ORDER BY salary DESC LIMIT 2",
        );
        assert_eq!(batch.num_rows(), 2);
        assert_eq!(batch.column(0).get(0), &Value::Int(500));

        let batch = run(
            &catalog,
            "SELECT DISTINCT dept_id FROM emp ORDER BY dept_id",
        );
        assert_eq!(batch.num_rows(), 3);
    }

    #[test]
    fn count_distinct() {
        let catalog = setup_catalog();
        let batch = run(&catalog, "SELECT COUNT(DISTINCT dept_id) AS d FROM emp");
        assert_eq!(batch.column(0).get(0), &Value::Int(3));
    }

    #[test]
    fn in_subquery_and_scalar_subquery() {
        let catalog = setup_catalog();
        let batch = run(
            &catalog,
            "SELECT name FROM emp WHERE dept_id IN (SELECT id FROM dept WHERE dept_name = 'eng')",
        );
        assert_eq!(batch.num_rows(), 2);

        let batch = run(
            &catalog,
            "SELECT name FROM emp WHERE salary > (SELECT AVG(salary) FROM emp) ORDER BY name",
        );
        assert_eq!(batch.num_rows(), 2); // 400 and 500 above the mean of 300
    }

    #[test]
    fn exists_subquery() {
        let catalog = setup_catalog();
        let batch = run(
            &catalog,
            "SELECT dept_name FROM dept WHERE EXISTS (SELECT 1 FROM emp WHERE salary > 1000)",
        );
        assert_eq!(batch.num_rows(), 0);
        let batch = run(
            &catalog,
            "SELECT dept_name FROM dept WHERE EXISTS (SELECT 1 FROM emp WHERE salary > 400)",
        );
        assert_eq!(batch.num_rows(), 3);
    }

    #[test]
    fn case_in_aggregation() {
        let catalog = setup_catalog();
        let batch = run(
            &catalog,
            "SELECT SUM(CASE WHEN dept_id = 10 THEN salary ELSE 0 END) AS eng_total FROM emp",
        );
        assert_eq!(batch.column(0).get(0), &Value::Int(300));
    }

    #[test]
    fn stats_track_scans_and_rows() {
        let catalog = setup_catalog();
        let registry = UdfRegistry::with_sdb_udfs();
        let ctx = Arc::new(ExecContext::new(&catalog, &registry, None));
        let plan =
            PlanBuilder::build(&parse_query("SELECT * FROM emp WHERE salary > 250")).unwrap();
        let batch = execute_plan(&ctx, &plan).unwrap();
        let stats = ctx.stats();
        assert_eq!(stats.rows_scanned, 5);
        assert_eq!(stats.rows_returned, batch.num_rows());
        assert_eq!(stats.oracle_round_trips, 0);
    }

    #[test]
    fn missing_table_and_column_errors() {
        let catalog = setup_catalog();
        let registry = UdfRegistry::with_sdb_udfs();
        let ctx = Arc::new(ExecContext::new(&catalog, &registry, None));
        let plan = PlanBuilder::build(&parse_query("SELECT * FROM nope")).unwrap();
        assert!(execute_plan(&ctx, &plan).is_err());

        let plan = PlanBuilder::build(&parse_query("SELECT ghost FROM emp")).unwrap();
        assert!(execute_plan(&ctx, &plan).is_err());
    }

    #[test]
    fn oracle_required_for_secure_comparison() {
        let catalog = setup_catalog();
        // A filter that calls an oracle function must fail without an oracle
        // connected.
        let registry = UdfRegistry::with_sdb_udfs();
        let ctx = Arc::new(ExecContext::new(&catalog, &registry, None));
        let plan = PlanBuilder::build(&parse_query(
            "SELECT name FROM emp WHERE SDB_CMP_GT(salary, id, 'h', '35')",
        ))
        .unwrap();
        let err = execute_plan(&ctx, &plan);
        assert!(matches!(err, Err(EngineError::OracleUnavailable { .. })));
    }

    #[test]
    fn left_join_residual_on_keeps_padded_rows() {
        let catalog = setup_catalog();
        // The residual conjunct (d.dept_name <> 'eng') is part of MATCHING for
        // a LEFT JOIN: ann and bob (dept 10 = eng) must still appear,
        // null-padded, rather than being filtered out above the join.
        let batch = run(
            &catalog,
            "SELECT e.name, d.dept_name FROM emp e \
             LEFT JOIN dept d ON e.dept_id = d.id AND d.dept_name <> 'eng' \
             ORDER BY e.id",
        );
        assert_eq!(
            batch.num_rows(),
            5,
            "every left row must survive a LEFT JOIN"
        );
        assert!(
            batch.column(1).get(0).is_null(),
            "ann's only match fails the residual"
        );
        assert!(
            batch.column(1).get(1).is_null(),
            "bob's only match fails the residual"
        );
        assert_eq!(batch.column(1).get(2).as_str().unwrap(), "ops");
        assert!(batch.column(1).get(4).is_null(), "eve has no dept at all");
    }

    #[test]
    fn limit_above_streaming_operators_keeps_lazy_serial_scan() {
        let catalog = setup_catalog();
        let registry = UdfRegistry::with_sdb_udfs();
        let ctx = Arc::new(ExecContext::new(&catalog, &registry, None).with_parallelism(4));
        let planner = PhysicalPlanner::new(Arc::clone(&ctx));
        let plan_of = |sql: &str| PlanBuilder::build(&parse_query(sql)).unwrap();

        // LIMIT above project/filter: the scan stays lazy and serial so the
        // limit can stop slicing early.
        let op = planner
            .plan(&plan_of("SELECT name FROM emp WHERE salary > 0 LIMIT 2"))
            .unwrap();
        assert_eq!(op.describe(), "Limit(Project(Filter(TableScan)))");

        // No limit: the parallel scan is selected at parallelism > 1.
        let op = planner.plan(&plan_of("SELECT name FROM emp")).unwrap();
        assert_eq!(op.describe(), "Project(ParallelTableScan)");

        // A blocking operator (sort) between limit and scan drains its
        // input completely, so laziness buys nothing — keep the parallel
        // scan.
        let op = planner
            .plan(&plan_of("SELECT name FROM emp ORDER BY name LIMIT 2"))
            .unwrap();
        assert!(
            op.describe().contains("ParallelTableScan"),
            "blocking operators reset the limit flag: {}",
            op.describe()
        );
    }

    #[test]
    fn memory_budget_selects_spilling_variants() {
        let catalog = setup_catalog();
        let registry = UdfRegistry::with_sdb_udfs();
        let sql = "SELECT dept_id, COUNT(*) AS c FROM emp GROUP BY dept_id ORDER BY dept_id";
        let plan = PlanBuilder::build(&parse_query(sql)).unwrap();

        let budgeted = Arc::new(
            ExecContext::new(&catalog, &registry, None)
                .with_memory_budget(sdb_storage::MemoryBudget::bytes(1024))
                .with_parallelism(1),
        );
        let tree = PhysicalPlanner::new(budgeted)
            .plan(&plan)
            .unwrap()
            .describe();
        assert!(tree.contains("ExternalSort"), "{tree}");
        assert!(tree.contains("SpillingHashAggregate"), "{tree}");

        // An explicit unlimited budget keeps the in-memory operators (set
        // explicitly so a CI-level SDB_TEST_MEM_BUDGET cannot leak in).
        let unbudgeted = Arc::new(
            ExecContext::new(&catalog, &registry, None)
                .with_memory_budget(sdb_storage::MemoryBudget::unlimited())
                .with_parallelism(1),
        );
        let tree = PhysicalPlanner::new(unbudgeted)
            .plan(&plan)
            .unwrap()
            .describe();
        assert!(tree.starts_with("Sort("), "{tree}");
        assert!(!tree.contains("ExternalSort"), "{tree}");
        assert!(!tree.contains("Spilling"), "{tree}");
    }

    #[test]
    fn projection_types_stay_stable_across_null_leading_batches() {
        // ROADMAP regression ("Projection type stability across batches"):
        // at batch_size=2 the first batch's CASE values are all NULL (salaries
        // 100 and 200 fail the predicate); the later typed rows must still
        // concat cleanly, with the first concrete type (VARCHAR) winning for
        // the whole column.
        let catalog = setup_catalog();
        let batch = run(
            &catalog,
            "SELECT CASE WHEN salary > 250 THEN name END AS c FROM emp",
        );
        assert_eq!(batch.num_rows(), 5);
        assert_eq!(batch.schema().column_at(0).data_type, DataType::Varchar);
        assert!(
            batch.column(0).get(0).is_null(),
            "salary 100 fails the CASE"
        );
        assert_eq!(batch.column(0).get(4), &Value::Str("eve".into()));
    }

    #[test]
    fn memory_budget_selects_grace_join() {
        let catalog = setup_catalog();
        let registry = UdfRegistry::with_sdb_udfs();
        let equi = "SELECT e.name FROM emp e JOIN dept d ON e.dept_id = d.id";
        let residual_left =
            "SELECT e.name FROM emp e LEFT JOIN dept d ON e.dept_id = d.id AND d.dept_name <> 'x'";

        let budgeted = Arc::new(
            ExecContext::new(&catalog, &registry, None)
                .with_memory_budget(sdb_storage::MemoryBudget::bytes(1024))
                .with_parallelism(1),
        );
        let planner = PhysicalPlanner::new(budgeted);
        let tree = planner
            .plan(&PlanBuilder::build(&parse_query(equi)).unwrap())
            .unwrap()
            .describe();
        assert!(tree.contains("GraceHashJoin"), "{tree}");

        // Residual LEFT JOINs keep the nested-loop plan even under a budget:
        // residuals decide matching there, and both plans must agree.
        let tree = planner
            .plan(&PlanBuilder::build(&parse_query(residual_left)).unwrap())
            .unwrap()
            .describe();
        assert!(tree.contains("NestedLoopJoin"), "{tree}");

        // An explicit unlimited budget keeps the in-memory hash join.
        let unbudgeted = Arc::new(
            ExecContext::new(&catalog, &registry, None)
                .with_memory_budget(sdb_storage::MemoryBudget::unlimited())
                .with_parallelism(1),
        );
        let tree = PhysicalPlanner::new(unbudgeted)
            .plan(&PlanBuilder::build(&parse_query(equi)).unwrap())
            .unwrap()
            .describe();
        assert!(
            tree.contains("HashJoin") && !tree.contains("Grace"),
            "{tree}"
        );
    }

    #[test]
    fn planner_selects_join_operators() {
        let catalog = setup_catalog();
        let registry = UdfRegistry::with_sdb_udfs();
        let ctx = Arc::new(ExecContext::new(&catalog, &registry, None));
        let planner = PhysicalPlanner::new(Arc::clone(&ctx));

        // Equi-join lowers to a hash join (under the projection).
        let plan = PlanBuilder::build(&parse_query(
            "SELECT e.name FROM emp e JOIN dept d ON e.dept_id = d.id",
        ))
        .unwrap();
        assert!(planner.plan(&plan).is_ok());

        // Non-equi ON lowers to a nested-loop join and still runs.
        let batch = run(
            &setup_catalog(),
            "SELECT e.name FROM emp e JOIN dept d ON e.dept_id > d.id ORDER BY e.name",
        );
        assert!(batch.num_rows() > 0);
    }
}
