//! Joins: hash equi-join (with streaming probe side and a morsel-parallel
//! build side) and the nested-loop fallback for non-equi or missing ON
//! conditions.

use std::collections::HashMap;
use std::sync::Arc;

use sdb_sql::ast::{Expr, JoinKind};
use sdb_storage::{partition_ranges, PageStream, PageStreamWriter, RecordBatch, Schema, Value};

use super::expr::join_key_component;
use super::oracle::resolve_for_exprs;
use super::parallel::{effective_workers, scoped_workers};
use super::{materialize_input, BoxedOperator, ExecContext, PhysicalOperator};
use crate::kernels::KeyColumns;
use crate::Result;

/// Hash equi-join: builds a hash table over the materialised right side during
/// `open()`, then streams left batches, probing per row.
///
/// When `ctx.parallelism() > 1` the build side is indexed in parallel: the
/// materialised (and oracle-resolved) right rows are split into contiguous
/// per-worker morsels via [`partition_ranges`], each worker builds a partial
/// key index over its morsel, and the partials are merged in morsel order —
/// so every key's match list stays in ascending row order and the join output
/// is byte-identical to the serial build.
///
/// Oracle-backed calls in the keys (e.g. `SDB_GROUP_TAG` equality surrogates)
/// are resolved inline per side *before* partitioning (oracle round trips stay
/// serial and batched); the virtual columns feed only the key evaluation and
/// never appear in the join output.
pub struct HashJoin<'a> {
    ctx: Arc<ExecContext<'a>>,
    left: BoxedOperator<'a>,
    right: BoxedOperator<'a>,
    kind: JoinKind,
    left_keys: Vec<Expr>,
    right_keys: Vec<Expr>,
    /// Build state: right rows (original columns only) and the key index.
    build: Option<BuildSide>,
}

/// A fully-built hash-join build side: the materialised right rows (original
/// columns only) plus the key index. Shared with the spilling
/// [`super::grace_join::GraceHashJoin`], whose in-memory mode is exactly this
/// operator's build/probe path.
pub(super) struct BuildSide {
    pub(super) right_schema: Schema,
    pub(super) right_rows: RecordBatch,
    pub(super) index: HashMap<String, Vec<usize>>,
}

impl<'a> HashJoin<'a> {
    /// Creates a hash join on the given oriented key pairs.
    pub fn new(
        ctx: Arc<ExecContext<'a>>,
        left: BoxedOperator<'a>,
        right: BoxedOperator<'a>,
        kind: JoinKind,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
    ) -> Self {
        assert!(
            !left_keys.is_empty(),
            "hash join requires at least one key pair"
        );
        HashJoin {
            ctx,
            left,
            right,
            kind,
            left_keys,
            right_keys,
            build: None,
        }
    }
}

/// Evaluates the (resolved and bound) key expressions for one row; `None`
/// when any component is NULL (NULL join keys never match).
pub(super) fn key_of(
    ctx: &ExecContext<'_>,
    exprs: &[Expr],
    batch: &RecordBatch,
    row: usize,
) -> Result<Option<String>> {
    let evaluator = ctx.evaluator();
    let mut parts = Vec::with_capacity(exprs.len());
    for e in exprs {
        let v = evaluator.evaluate(e, batch, row)?;
        if v.is_null() {
            ctx.record_udf_calls(&evaluator);
            return Ok(None);
        }
        parts.push(join_key_component(&v));
    }
    ctx.record_udf_calls(&evaluator);
    Ok(Some(parts.join("\u{1f}")))
}

/// Kernel fast path for key rendering: when vectorised execution is on and
/// every key expression is a plain column reference over typed columns, the
/// whole batch's keys render through [`KeyColumns`] with no per-row
/// interpretation. Plain column keys never touch UDFs or the oracle, so the
/// fast path changes no observable. `None` → scalar path.
fn kernel_join_keys(
    ctx: &ExecContext<'_>,
    keys: &[Expr],
    working: &RecordBatch,
) -> Option<Vec<Option<String>>> {
    if !ctx.vectorised() {
        return None;
    }
    KeyColumns::compile(keys, working.schema())?.join_keys(working)
}

/// Evaluates the rendered join key for every row of a batch. With more than
/// one worker each contiguous morsel evaluates on its own scoped thread and
/// the per-morsel results are concatenated in morsel order, so the output
/// vector is in row order regardless of parallelism.
pub(super) fn keys_of_batch(
    ctx: &ExecContext<'_>,
    keys: &[Expr],
    working: &RecordBatch,
) -> Result<Vec<Option<String>>> {
    if let Some(rendered) = kernel_join_keys(ctx, keys, working) {
        ctx.stats_mut().vectorised_batches += 1;
        return Ok(rendered);
    }
    ctx.stats_mut().scalar_fallback_batches += 1;
    let workers = effective_workers(ctx.parallelism(), working.num_rows());
    let ranges = partition_ranges(working.num_rows(), workers.max(1));
    let parts: Vec<Vec<Option<String>>> = scoped_workers(workers.max(1), |i| {
        let mut out = Vec::new();
        if let Some(range) = ranges.get(i) {
            out.reserve(range.len());
            for row in range.clone() {
                out.push(key_of(ctx, keys, working, row)?);
            }
        }
        Ok(out)
    })?;
    Ok(parts.into_iter().flatten().collect())
}

/// Indexes the build side by key. With more than one worker, each worker
/// indexes one contiguous morsel of rows (global row numbers) and the
/// partial indexes are merged in morsel order.
pub(super) fn build_index(
    ctx: &ExecContext<'_>,
    keys: &[Expr],
    working: &RecordBatch,
) -> Result<HashMap<String, Vec<usize>>> {
    // Kernel path: rendered keys come from one vectorised pass; the serial
    // index insertion visits rows in ascending order, exactly the order the
    // morsel-merge below reconstructs.
    if let Some(rendered) = kernel_join_keys(ctx, keys, working) {
        ctx.stats_mut().vectorised_batches += 1;
        let mut index: HashMap<String, Vec<usize>> = HashMap::new();
        for (row, key) in rendered.into_iter().enumerate() {
            if let Some(key) = key {
                index.entry(key).or_default().push(row);
            }
        }
        return Ok(index);
    }
    ctx.stats_mut().scalar_fallback_batches += 1;
    let workers = effective_workers(ctx.parallelism(), working.num_rows());
    let ranges = partition_ranges(working.num_rows(), workers.max(1));
    let partials: Vec<HashMap<String, Vec<usize>>> = scoped_workers(workers, |i| {
        let mut index: HashMap<String, Vec<usize>> = HashMap::new();
        if let Some(range) = ranges.get(i) {
            for row in range.clone() {
                if let Some(key) = key_of(ctx, keys, working, row)? {
                    index.entry(key).or_default().push(row);
                }
            }
        }
        Ok(index)
    })?;
    let mut merged: HashMap<String, Vec<usize>> = HashMap::new();
    // Morsel order: each key's row list stays in ascending global order.
    for partial in partials {
        if merged.is_empty() {
            merged = partial;
            continue;
        }
        for (key, rows) in partial {
            merged.entry(key).or_default().extend(rows);
        }
    }
    Ok(merged)
}

/// Probes one left batch against a built right side, producing the joined
/// output batch (LEFT JOIN rows null-pad when unmatched). Resolves
/// oracle-backed calls in `left_keys` against a working copy of the batch;
/// output rows come from the original columns.
pub(super) fn probe_batch(
    ctx: &ExecContext<'_>,
    build: &BuildSide,
    kind: JoinKind,
    left_keys: &[Expr],
    batch: RecordBatch,
) -> Result<RecordBatch> {
    let combined_schema = batch.schema().join(&build.right_schema);
    let right_width = build.right_schema.len();

    let mut keys = left_keys.to_vec();
    let working = resolve_for_exprs(ctx, batch.clone(), &mut keys)?;
    let rendered = kernel_join_keys(ctx, &keys, &working);
    match &rendered {
        Some(_) => ctx.stats_mut().vectorised_batches += 1,
        None => ctx.stats_mut().scalar_fallback_batches += 1,
    }

    let mut rows = Vec::new();
    for lrow in 0..working.num_rows() {
        let mut matched = false;
        let key = match &rendered {
            Some(rendered) => rendered[lrow].clone(),
            None => key_of(ctx, &keys, &working, lrow)?,
        };
        if let Some(key) = key {
            if let Some(matches) = build.index.get(&key) {
                for &rrow in matches {
                    let mut row = batch.row(lrow);
                    row.extend(build.right_rows.row(rrow));
                    rows.push(row);
                    matched = true;
                }
            }
        }
        if !matched && kind == JoinKind::Left {
            let mut row = batch.row(lrow);
            row.extend(std::iter::repeat_n(Value::Null, right_width));
            rows.push(row);
        }
    }
    RecordBatch::from_rows(combined_schema, rows).map_err(Into::into)
}

impl PhysicalOperator for HashJoin<'_> {
    fn name(&self) -> &'static str {
        "HashJoin"
    }

    fn describe(&self) -> String {
        format!(
            "{}({}, {})",
            self.name(),
            self.left.describe(),
            self.right.describe()
        )
    }

    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()?;

        // Build phase: materialise the right side and index it by key.
        let right_rows = materialize_input(self.right.as_mut())?
            .unwrap_or_else(|| RecordBatch::empty(Schema::empty()));
        let right_schema = right_rows.schema().clone();

        // Resolve oracle calls in the right keys against a working copy; the
        // output rows come from the original (unaugmented) columns.
        let mut right_keys = self.right_keys.clone();
        let working = resolve_for_exprs(&self.ctx, right_rows.clone(), &mut right_keys)?;
        let index = build_index(&self.ctx, &right_keys, &working)?;
        self.build = Some(BuildSide {
            right_schema,
            right_rows,
            index,
        });
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        let build = self.build.as_ref().expect("join opened");
        let Some(batch) = self.left.next_batch()? else {
            return Ok(None);
        };
        probe_batch(&self.ctx, build, self.kind, &self.left_keys, batch).map(Some)
    }

    fn close(&mut self) -> Result<()> {
        self.build = None;
        self.left.close()?;
        self.right.close()
    }
}

/// Nested-loop join: the fallback when no hashable equality conjunct exists.
///
/// The rewriter never emits oracle calls inside non-equi ON conditions, so the
/// predicate is evaluated directly (it may still use plain UDFs and
/// subqueries).
///
/// With an unlimited [`MemoryBudget`](sdb_storage::MemoryBudget) the right
/// side materialises in RAM as before. Under a limited budget it streams
/// into a pager [`PageStream`] instead (a *block-nested-loop*): each left
/// batch runs one non-consuming pass over the right side's pages
/// ([`PageStream::scan`]), holding one page in memory at a time, and
/// per-left-row match lists are accumulated so the emitted row order is
/// byte-identical to the in-memory loop (left-major, right rows in arrival
/// order). The pass costs IO per left batch — the classic block-nested-loop
/// trade — but the right side no longer occupies unbounded memory, closing
/// the engine's last unbounded materialisation.
pub struct NestedLoopJoin<'a> {
    ctx: Arc<ExecContext<'a>>,
    left: BoxedOperator<'a>,
    right: BoxedOperator<'a>,
    kind: JoinKind,
    on: Option<Expr>,
    right_side: Option<RightSide>,
}

/// How the right side was materialised at `open()`.
enum RightSide {
    /// Unlimited budget: the whole input in RAM.
    InMemory(RecordBatch),
    /// Limited budget: parked in the pager, scanned per left batch.
    Paged { schema: Schema, stream: PageStream },
}

impl<'a> NestedLoopJoin<'a> {
    /// Creates a nested-loop join.
    pub fn new(
        ctx: Arc<ExecContext<'a>>,
        left: BoxedOperator<'a>,
        right: BoxedOperator<'a>,
        kind: JoinKind,
        on: Option<Expr>,
    ) -> Self {
        NestedLoopJoin {
            ctx,
            left,
            right,
            kind,
            on,
            right_side: None,
        }
    }

    /// Evaluates the ON condition for one combined row (`None` = cross join
    /// keeps everything).
    fn keep_row(
        &self,
        evaluator: &crate::eval::Evaluator<'_>,
        combined_schema: &Schema,
        row: &[Value],
    ) -> Result<bool> {
        match &self.on {
            None => Ok(true),
            Some(pred) => {
                let probe = RecordBatch::from_rows(combined_schema.clone(), vec![row.to_vec()])?;
                evaluator.evaluate_predicate(pred, &probe, 0)
            }
        }
    }

    /// Streams the right input into a pager page stream (budgeted path).
    fn park_right(&mut self) -> Result<RightSide> {
        let limit = self
            .ctx
            .memory_budget()
            .limit()
            .expect("paged path requires a limited budget");
        let flush_bytes = (limit / 4).max(1);
        let mut schema = Schema::empty();
        let mut writer: Option<PageStreamWriter> = None;
        while let Some(batch) = self.right.next_batch()? {
            let writer = writer.get_or_insert_with(|| {
                schema = batch.schema().clone();
                PageStreamWriter::new(batch.schema().clone(), flush_bytes, self.ctx.batch_size())
            });
            for row in 0..batch.num_rows() {
                writer.push_row(self.ctx.pager(), batch.row(row))?;
            }
        }
        let stream = match writer {
            Some(writer) => writer.finish(self.ctx.pager())?,
            None => PageStreamWriter::new(Schema::empty(), 1, 1).finish(self.ctx.pager())?,
        };
        Ok(RightSide::Paged { schema, stream })
    }

    /// One left batch against the paged right side: a single pass over the
    /// right pages, with per-left-row buckets restoring the in-memory
    /// (left-major) output order.
    fn probe_paged(
        &self,
        batch: &RecordBatch,
        schema: &Schema,
        stream: &PageStream,
    ) -> Result<RecordBatch> {
        let combined_schema = batch.schema().join(schema);
        let right_width = schema.len();
        let evaluator = self.ctx.evaluator();

        let mut buckets: Vec<Vec<Vec<Value>>> = vec![Vec::new(); batch.num_rows()];
        let mut scan = stream.scan();
        while let Some(page) = scan.next_batch(self.ctx.pager())? {
            for (lrow, bucket) in buckets.iter_mut().enumerate() {
                for rrow in 0..page.num_rows() {
                    let mut row = batch.row(lrow);
                    row.extend(page.row(rrow));
                    if self.keep_row(&evaluator, &combined_schema, &row)? {
                        bucket.push(row);
                    }
                }
            }
        }
        self.ctx.record_udf_calls(&evaluator);

        let mut rows = Vec::new();
        for (lrow, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() && self.kind == JoinKind::Left {
                let mut row = batch.row(lrow);
                row.extend(std::iter::repeat_n(Value::Null, right_width));
                rows.push(row);
            } else {
                rows.extend(bucket);
            }
        }
        RecordBatch::from_rows(combined_schema, rows).map_err(Into::into)
    }

    /// One left batch against the in-memory right side (unlimited budget).
    fn probe_in_memory(&self, batch: &RecordBatch, right: &RecordBatch) -> Result<RecordBatch> {
        let combined_schema = batch.schema().join(right.schema());
        let right_width = right.num_columns();
        let evaluator = self.ctx.evaluator();

        let mut rows = Vec::new();
        for lrow in 0..batch.num_rows() {
            let mut matched = false;
            for rrow in 0..right.num_rows() {
                let mut row = batch.row(lrow);
                row.extend(right.row(rrow));
                if self.keep_row(&evaluator, &combined_schema, &row)? {
                    rows.push(row);
                    matched = true;
                }
            }
            if !matched && self.kind == JoinKind::Left {
                let mut row = batch.row(lrow);
                row.extend(std::iter::repeat_n(Value::Null, right_width));
                rows.push(row);
            }
        }
        self.ctx.record_udf_calls(&evaluator);
        RecordBatch::from_rows(combined_schema, rows).map_err(Into::into)
    }
}

impl PhysicalOperator for NestedLoopJoin<'_> {
    fn name(&self) -> &'static str {
        "NestedLoopJoin"
    }

    fn describe(&self) -> String {
        format!(
            "{}({}, {})",
            self.name(),
            self.left.describe(),
            self.right.describe()
        )
    }

    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()?;
        self.right_side = Some(if self.ctx.memory_budget().is_limited() {
            self.park_right()?
        } else {
            let right = materialize_input(self.right.as_mut())?
                .unwrap_or_else(|| RecordBatch::empty(Schema::empty()));
            RightSide::InMemory(right)
        });
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        let Some(batch) = self.left.next_batch()? else {
            return Ok(None);
        };
        match self.right_side.as_ref().expect("join opened") {
            RightSide::InMemory(right) => self.probe_in_memory(&batch, right).map(Some),
            RightSide::Paged { schema, stream } => {
                self.probe_paged(&batch, schema, stream).map(Some)
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        if let Some(RightSide::Paged { stream, .. }) = self.right_side.take() {
            stream.free(self.ctx.pager())?;
        }
        self.right_side = None;
        self.left.close()?;
        self.right.close()
    }
}
