//! Expression-tree helpers shared by the physical operators: schema binding,
//! conjunct splitting, join-key canonicalisation and output-type inference.

use sdb_sql::ast::{BinaryOp, Expr};
use sdb_storage::{Column, ColumnDef, DataType, RecordBatch, Schema, Sensitivity, Value};

use crate::Result;

/// Replaces every subexpression whose rendered text names an existing input
/// column with a reference to that column.
///
/// This is how projections and sort keys above an aggregate re-use the
/// aggregate's group-expression outputs (whose column names are the rendered
/// expressions, e.g. `YEAR(o.o_orderdate)` or an `SDB_GROUP_TAG(…)` call), and
/// how expressions pick up the virtual columns materialised by the oracle
/// operator, instead of being re-evaluated against a schema that no longer
/// carries the original inputs.
pub fn bind_to_existing_columns(expr: &Expr, schema: &Schema) -> Expr {
    if !matches!(expr, Expr::Column(_) | Expr::Literal(_))
        && schema.index_of(&expr.to_string()).is_ok()
    {
        return Expr::Column(expr.to_string());
    }
    match expr {
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(bind_to_existing_columns(expr, schema)),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(bind_to_existing_columns(left, schema)),
            op: *op,
            right: Box::new(bind_to_existing_columns(right, schema)),
        },
        Expr::Function {
            name,
            args,
            distinct,
            wildcard,
        } => Expr::Function {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| bind_to_existing_columns(a, schema))
                .collect(),
            distinct: *distinct,
            wildcard: *wildcard,
        },
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => Expr::Case {
            operand: operand
                .as_ref()
                .map(|o| Box::new(bind_to_existing_columns(o, schema))),
            branches: branches
                .iter()
                .map(|(w, t)| {
                    (
                        bind_to_existing_columns(w, schema),
                        bind_to_existing_columns(t, schema),
                    )
                })
                .collect(),
            else_expr: else_expr
                .as_ref()
                .map(|e| Box::new(bind_to_existing_columns(e, schema))),
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(bind_to_existing_columns(expr, schema)),
            low: Box::new(bind_to_existing_columns(low, schema)),
            high: Box::new(bind_to_existing_columns(high, schema)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(bind_to_existing_columns(expr, schema)),
            list: list
                .iter()
                .map(|e| bind_to_existing_columns(e, schema))
                .collect(),
            negated: *negated,
        },
        other => other.clone(),
    }
}

/// Splits an AND-tree into its conjuncts.
pub fn split_conjuncts(expr: &Expr) -> Vec<Expr> {
    match expr {
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => {
            let mut out = split_conjuncts(left);
            out.extend(split_conjuncts(right));
            out
        }
        other => vec![other.clone()],
    }
}

/// Re-joins conjuncts into an AND-tree (inverse of [`split_conjuncts`]).
/// Returns `None` for an empty list.
pub fn conjoin(conjuncts: Vec<Expr>) -> Option<Expr> {
    conjuncts
        .into_iter()
        .reduce(|a, b| Expr::binary(a, BinaryOp::And, b))
}

/// If `conjunct` is `left_side_expr = right_side_expr` (in either order),
/// returns the pair oriented as (left-side key, right-side key). `left` and
/// `right` are name-resolution schemas of the two join inputs.
pub fn classify_equi_conjunct(
    conjunct: &Expr,
    left: &Schema,
    right: &Schema,
) -> Option<(Expr, Expr)> {
    let Expr::Binary {
        left: a,
        op: BinaryOp::Eq,
        right: b,
    } = conjunct
    else {
        return None;
    };
    let side = |e: &Expr| -> Option<bool> {
        // true = resolves entirely against the left schema, false = right.
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        if cols.is_empty() {
            return None;
        }
        if cols.iter().all(|c| left.index_of(c).is_ok()) {
            Some(true)
        } else if cols.iter().all(|c| right.index_of(c).is_ok()) {
            Some(false)
        } else {
            None
        }
    };
    match (side(a), side(b)) {
        (Some(true), Some(false)) => Some((a.as_ref().clone(), b.as_ref().clone())),
        (Some(false), Some(true)) => Some((b.as_ref().clone(), a.as_ref().clone())),
        _ => None,
    }
}

/// Canonical string form of a value used as a join / grouping / distinct key.
/// Numerics are normalised so `1`, `1.0` and `1.00` agree.
pub fn join_key_component(v: &Value) -> String {
    match v {
        Value::Null => "\u{0}NULL".to_string(),
        Value::Int(_) | Value::Decimal { .. } | Value::Date(_) | Value::Bool(_) => v
            .as_scaled_i128(4)
            .map(|x| format!("n{x}"))
            .unwrap_or_else(|_| v.render()),
        Value::Str(s) => format!("s{s}"),
        Value::Tag(t) => format!("t{t}"),
        Value::Encrypted(e) => format!("e{e}"),
        Value::EncryptedRowId(_) => format!("r{:?}", v),
    }
}

/// The string payload of a literal expression, if it is one.
pub fn literal_string(expr: &Expr) -> Option<String> {
    match expr {
        Expr::Literal(sdb_sql::ast::Literal::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

/// Appends a virtual column (e.g. a resolved oracle call) to a batch.
pub fn append_virtual_column(
    batch: &RecordBatch,
    def: ColumnDef,
    values: Vec<Value>,
) -> Result<RecordBatch> {
    let mut defs = batch.schema().columns().to_vec();
    defs.push(def.clone());
    let mut columns = batch.columns().to_vec();
    // Virtual columns may mix NULLs with typed values; push unchecked since the
    // values come from the oracle response mapping.
    let mut column = Column::new(def.data_type);
    for v in values {
        column.push_unchecked(v);
    }
    columns.push(column);
    RecordBatch::new(Schema::new(defs), columns).map_err(Into::into)
}

/// Infers the output column definition for a computed column from its
/// expression and produced values.
pub fn infer_column_def(name: &str, expr: &Expr, values: &[Value], input: &Schema) -> ColumnDef {
    // A bare column reference keeps its input definition (type and sensitivity).
    if let Expr::Column(col) = expr {
        if let Ok(idx) = input.index_of(col) {
            let def = input.column_at(idx);
            return ColumnDef {
                name: name.to_string(),
                data_type: def.data_type,
                sensitivity: def.sensitivity,
            };
        }
    }
    let data_type = values
        .iter()
        .find_map(|v| v.data_type())
        .unwrap_or(DataType::Int);
    ColumnDef {
        name: name.to_string(),
        data_type,
        sensitivity: sensitivity_of(data_type),
    }
}

/// Sensitivity classification for a produced column of the given type.
pub fn sensitivity_of(data_type: DataType) -> Sensitivity {
    if data_type.is_encrypted() && data_type != DataType::Tag {
        Sensitivity::Sensitive
    } else {
        Sensitivity::Public
    }
}
