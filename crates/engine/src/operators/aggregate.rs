//! Hash aggregation with grouping: the serial operator and its partitioned
//! parallel variant.
//!
//! Both operators share the same building blocks so their output is
//! byte-identical: `group_morsel` folds a contiguous run of rows into
//! per-group states (group-key values plus the evaluated argument values of
//! every aggregate, in row order), `merge_group_states` combines per-morsel
//! states in morsel order (preserving global first-occurrence group order and
//! global row order within each group), and `finalize_groups` computes the
//! aggregate values and infers the output schema.

use std::collections::HashMap;
use std::sync::Arc;

use num_bigint::BigUint;
use sdb_sql::ast::Expr;
use sdb_sql::plan::{AggFunc, AggregateExpr};
use sdb_storage::{ColumnDef, DataType, RecordBatch, Schema, Value};

use super::expr::{infer_column_def, join_key_component, sensitivity_of};
use super::parallel::{effective_workers, scoped_workers};
use super::{materialize_input, BoxedOperator, ExecContext, PhysicalOperator};
use crate::eval::literal_to_value;
use crate::kernels::{GlobalAggKernel, KeyColumns};
use crate::{EngineError, Result};

/// Per-group accumulation state: the rendered key, the group-key values, the
/// number of rows seen and each aggregate's argument values in row order.
/// Shared with [`super::spill_aggregate::SpillingHashAggregate`], which
/// rebuilds these states from spilled partition rows.
pub(super) struct GroupState {
    pub(super) key: String,
    pub(super) key_values: Vec<Value>,
    pub(super) rows: usize,
    pub(super) arg_values: Vec<Vec<Value>>,
}

/// Binds the grouping expressions and aggregate arguments to the input schema
/// (this picks up oracle virtual columns and pre-computed expression columns
/// by their rendered names). Argument-less aggregates (`COUNT(*)`) get a
/// literal `1` placeholder.
pub(super) fn bind_aggregate_exprs(
    group_by: &[(Expr, String)],
    aggregates: &[AggregateExpr],
    schema: &Schema,
) -> (Vec<Expr>, Vec<Expr>) {
    let bind = |e: &Expr| super::expr::bind_to_existing_columns(e, schema);
    let group_exprs = group_by.iter().map(|(e, _)| bind(e)).collect();
    let agg_args = aggregates
        .iter()
        .map(|agg| {
            agg.arg
                .as_ref()
                .map(&bind)
                .unwrap_or(Expr::Literal(sdb_sql::ast::Literal::Int(1)))
        })
        .collect();
    (group_exprs, agg_args)
}

/// Groups one contiguous morsel of rows, evaluating the grouping expressions
/// and every aggregate argument per row. Groups come back in first-occurrence
/// order; each group's argument values are in row order.
fn group_morsel(
    ctx: &ExecContext<'_>,
    batch: &RecordBatch,
    group_exprs: &[Expr],
    agg_args: &[Expr],
) -> Result<Vec<GroupState>> {
    if ctx.vectorised() {
        if let Some(groups) = group_morsel_vectorised(batch, group_exprs, agg_args) {
            ctx.stats_mut().vectorised_batches += 1;
            return Ok(groups);
        }
    }
    ctx.stats_mut().scalar_fallback_batches += 1;
    let evaluator = ctx.evaluator();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut groups: Vec<GroupState> = Vec::new();
    for row in 0..batch.num_rows() {
        let mut key_values = Vec::with_capacity(group_exprs.len());
        for e in group_exprs {
            key_values.push(evaluator.evaluate(e, batch, row)?);
        }
        let key: String = key_values
            .iter()
            .map(join_key_component)
            .collect::<Vec<_>>()
            .join("\u{1f}");
        let g = match index.get(&key) {
            Some(&g) => g,
            None => {
                index.insert(key.clone(), groups.len());
                groups.push(GroupState {
                    key,
                    key_values,
                    rows: 0,
                    arg_values: vec![Vec::new(); agg_args.len()],
                });
                groups.len() - 1
            }
        };
        groups[g].rows += 1;
        for (j, arg) in agg_args.iter().enumerate() {
            groups[g].arg_values[j].push(evaluator.evaluate(arg, batch, row)?);
        }
    }
    ctx.record_udf_calls(&evaluator);
    Ok(groups)
}

/// One aggregate-argument source in the vectorised grouping path.
enum ArgSource {
    Col(usize),
    Lit(Value),
}

/// Kernel fast path for [`group_morsel`]: when every grouping expression is a
/// plain column over typed vectors and every aggregate argument is a plain
/// column or literal, the group keys render in one vectorised pass
/// ([`KeyColumns::group_keys`]) and the per-row loop reduces to group lookup
/// plus argument clones — no interpreter dispatch. Group order (global
/// first-occurrence), per-group argument row order and rendered keys are
/// byte-identical to the scalar loop; plain columns and literals never touch
/// UDFs, so the skipped `record_udf_calls` would have recorded zero. `None`
/// (out-of-subset expression or untyped column) → scalar loop.
fn group_morsel_vectorised(
    batch: &RecordBatch,
    group_exprs: &[Expr],
    agg_args: &[Expr],
) -> Option<Vec<GroupState>> {
    let key_columns = KeyColumns::compile(group_exprs, batch.schema())?;
    let keys = key_columns.group_keys(batch)?;
    let mut args = Vec::with_capacity(agg_args.len());
    for arg in agg_args {
        args.push(match arg {
            Expr::Column(name) => ArgSource::Col(batch.schema().index_of(name).ok()?),
            Expr::Literal(lit) => ArgSource::Lit(literal_to_value(lit)),
            _ => return None,
        });
    }

    let mut index: HashMap<String, usize> = HashMap::new();
    let mut groups: Vec<GroupState> = Vec::new();
    for (row, key) in keys.into_iter().enumerate() {
        let g = match index.get(&key) {
            Some(&g) => g,
            None => {
                let key_values = key_columns
                    .indices()
                    .iter()
                    .map(|&c| batch.column(c).get(row).clone())
                    .collect();
                index.insert(key.clone(), groups.len());
                groups.push(GroupState {
                    key,
                    key_values,
                    rows: 0,
                    arg_values: vec![Vec::new(); agg_args.len()],
                });
                groups.len() - 1
            }
        };
        groups[g].rows += 1;
        for (j, arg) in args.iter().enumerate() {
            groups[g].arg_values[j].push(match arg {
                ArgSource::Col(c) => batch.column(*c).get(row).clone(),
                ArgSource::Lit(v) => v.clone(),
            });
        }
    }
    Some(groups)
}

/// Merges per-morsel group states in morsel order. Because morsels are
/// contiguous and processed in order, the merged groups are in global
/// first-occurrence order and each group's argument values stay in global row
/// order — exactly what a single [`group_morsel`] over the whole input
/// produces.
fn merge_group_states(parts: Vec<Vec<GroupState>>) -> Vec<GroupState> {
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut merged: Vec<GroupState> = Vec::new();
    for part in parts {
        for state in part {
            match index.get(&state.key) {
                Some(&g) => {
                    let target = &mut merged[g];
                    target.rows += state.rows;
                    for (acc, values) in target.arg_values.iter_mut().zip(state.arg_values) {
                        acc.extend(values);
                    }
                }
                None => {
                    index.insert(state.key.clone(), merged.len());
                    merged.push(state);
                }
            }
        }
    }
    merged
}

/// Computes the aggregate values for every group and assembles the output
/// batch (group columns then aggregate columns, types inferred from the
/// produced values). A global aggregate (no GROUP BY) over an empty input
/// still produces one row.
pub(super) fn finalize_groups(
    group_by: &[(Expr, String)],
    aggregates: &[AggregateExpr],
    group_exprs: &[Expr],
    mut groups: Vec<GroupState>,
    input_schema: &Schema,
) -> Result<RecordBatch> {
    if groups.is_empty() && group_exprs.is_empty() {
        groups.push(GroupState {
            key: String::new(),
            key_values: vec![],
            rows: 0,
            arg_values: vec![Vec::new(); aggregates.len()],
        });
    }

    let mut out_rows: Vec<Vec<Value>> = Vec::with_capacity(groups.len());
    for state in groups {
        let mut out = state.key_values;
        for (agg, values) in aggregates.iter().zip(state.arg_values) {
            out.push(compute_aggregate(agg, state.rows, values)?);
        }
        out_rows.push(out);
    }

    // Output schema: group columns then aggregate columns.
    let mut defs = Vec::new();
    for (i, (_, name)) in group_by.iter().enumerate() {
        let values: Vec<Value> = out_rows.iter().map(|r| r[i].clone()).collect();
        defs.push(infer_column_def(
            name,
            &group_exprs[i],
            &values,
            input_schema,
        ));
    }
    for (j, agg) in aggregates.iter().enumerate() {
        let i = group_by.len() + j;
        let values: Vec<Value> = out_rows.iter().map(|r| r[i].clone()).collect();
        // Aggregate outputs take their type from the produced values (SUM
        // over INT is INT, AVG is DECIMAL(4), encrypted SUM is ENCRYPTED, …).
        let data_type = values
            .iter()
            .find_map(|v| v.data_type())
            .unwrap_or(DataType::Int);
        defs.push(ColumnDef {
            name: agg.name.clone(),
            data_type,
            sensitivity: sensitivity_of(data_type),
        });
    }
    RecordBatch::from_rows(Schema::new(defs), out_rows).map_err(Into::into)
}

/// Groups the materialised input by the grouping expressions and evaluates one
/// aggregate per output column. A global aggregate (no GROUP BY) over an empty
/// input still produces one row.
///
/// Oracle-backed grouping expressions or aggregate arguments (e.g.
/// `SDB_GROUP_TAG` keys, encrypted `SDB_SUM` arguments) are materialised by an
/// [`super::oracle::OracleResolve`] child the planner inserts beneath this
/// operator; the runtime binding pass turns them into column references.
pub struct HashAggregate<'a> {
    ctx: Arc<ExecContext<'a>>,
    input: BoxedOperator<'a>,
    group_by: Vec<(Expr, String)>,
    aggregates: Vec<AggregateExpr>,
    done: bool,
}

impl<'a> HashAggregate<'a> {
    /// Creates an aggregation over `input`.
    pub fn new(
        ctx: Arc<ExecContext<'a>>,
        input: BoxedOperator<'a>,
        group_by: Vec<(Expr, String)>,
        aggregates: Vec<AggregateExpr>,
    ) -> Self {
        HashAggregate {
            ctx,
            input,
            group_by,
            aggregates,
            done: false,
        }
    }
}

impl PhysicalOperator for HashAggregate<'_> {
    fn name(&self) -> &'static str {
        "HashAggregate"
    }

    fn describe(&self) -> String {
        format!("{}({})", self.name(), self.input.describe())
    }

    fn open(&mut self) -> Result<()> {
        self.done = false;
        self.input.open()
    }

    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;

        let batch = materialize_input(self.input.as_mut())?
            .unwrap_or_else(|| RecordBatch::empty(Schema::empty()));
        let (group_exprs, agg_args) =
            bind_aggregate_exprs(&self.group_by, &self.aggregates, batch.schema());
        if let Some(out) =
            try_global_kernel(&self.ctx, &group_exprs, &self.aggregates, &agg_args, &batch)
        {
            return Ok(Some(out));
        }
        let groups = group_morsel(&self.ctx, &batch, &group_exprs, &agg_args)?;
        finalize_groups(
            &self.group_by,
            &self.aggregates,
            &group_exprs,
            groups,
            batch.schema(),
        )
        .map(Some)
    }

    fn close(&mut self) -> Result<()> {
        self.input.close()
    }
}

/// Partitioned parallel hash aggregation: splits the materialised input into
/// per-worker morsels via [`RecordBatch::partition`], accumulates per-worker
/// group states on scoped threads (the expensive part — per-row evaluation of
/// grouping expressions and aggregate arguments), and merges the states in
/// morsel order at drain. Output is byte-identical to [`HashAggregate`].
///
/// Oracle round trips stay serial: the [`super::oracle::OracleResolve`] child
/// the planner inserts beneath this operator resolves while the input is
/// being materialised, before any fan-out.
pub struct ParallelHashAggregate<'a> {
    ctx: Arc<ExecContext<'a>>,
    input: BoxedOperator<'a>,
    group_by: Vec<(Expr, String)>,
    aggregates: Vec<AggregateExpr>,
    done: bool,
}

impl<'a> ParallelHashAggregate<'a> {
    /// Creates a parallel aggregation over `input`.
    pub fn new(
        ctx: Arc<ExecContext<'a>>,
        input: BoxedOperator<'a>,
        group_by: Vec<(Expr, String)>,
        aggregates: Vec<AggregateExpr>,
    ) -> Self {
        ParallelHashAggregate {
            ctx,
            input,
            group_by,
            aggregates,
            done: false,
        }
    }
}

impl PhysicalOperator for ParallelHashAggregate<'_> {
    fn name(&self) -> &'static str {
        "ParallelHashAggregate"
    }

    fn describe(&self) -> String {
        format!("{}({})", self.name(), self.input.describe())
    }

    fn open(&mut self) -> Result<()> {
        self.done = false;
        self.input.open()
    }

    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;

        let batch = materialize_input(self.input.as_mut())?
            .unwrap_or_else(|| RecordBatch::empty(Schema::empty()));
        let (group_exprs, agg_args) =
            bind_aggregate_exprs(&self.group_by, &self.aggregates, batch.schema());
        if let Some(out) =
            try_global_kernel(&self.ctx, &group_exprs, &self.aggregates, &agg_args, &batch)
        {
            return Ok(Some(out));
        }

        let workers = effective_workers(self.ctx.parallelism(), batch.num_rows());
        let groups = if workers <= 1 {
            group_morsel(&self.ctx, &batch, &group_exprs, &agg_args)?
        } else {
            let morsels = batch.partition(workers);
            let ctx = &self.ctx;
            let group_exprs = &group_exprs;
            let agg_args = &agg_args;
            let parts = scoped_workers(morsels.len(), |i| {
                group_morsel(ctx, &morsels[i], group_exprs, agg_args)
            })?;
            merge_group_states(parts)
        };
        finalize_groups(
            &self.group_by,
            &self.aggregates,
            &group_exprs,
            groups,
            batch.schema(),
        )
        .map(Some)
    }

    fn close(&mut self) -> Result<()> {
        self.input.close()
    }
}

/// Global-aggregate kernel fast path shared by [`HashAggregate`] and
/// [`ParallelHashAggregate`]: with no GROUP BY and every aggregate in the
/// [`GlobalAggKernel`] subset (plain typed column arguments, no DISTINCT on
/// SUM/AVG/COUNT), the whole result computes as columnar folds — validity
/// popcounts for COUNT, scaled `i128` accumulation for SUM/AVG, index-tracked
/// MIN/MAX. The emitted batch is byte-identical to
/// [`finalize_groups`]'s single-row output, including the empty-input row.
/// `None` → scalar path (which also owns every error surface).
fn try_global_kernel(
    ctx: &ExecContext<'_>,
    group_exprs: &[Expr],
    aggregates: &[AggregateExpr],
    agg_args: &[Expr],
    batch: &RecordBatch,
) -> Option<RecordBatch> {
    if !ctx.vectorised() || !group_exprs.is_empty() {
        return None;
    }
    let out =
        GlobalAggKernel::compile(aggregates, agg_args, batch.schema())?.execute(aggregates, batch);
    if out.is_some() {
        // A kernel miss falls through to `group_morsel`, which counts the
        // scalar fallback itself — only the hit is recorded here.
        ctx.stats_mut().vectorised_batches += 1;
    }
    out
}

/// Computes one aggregate over the values of one group.
pub fn compute_aggregate(
    agg: &AggregateExpr,
    group_size: usize,
    values: Vec<Value>,
) -> Result<Value> {
    let non_null: Vec<Value> = values.into_iter().filter(|v| !v.is_null()).collect();
    let distinct_filter = |vals: Vec<Value>| -> Vec<Value> {
        if !agg.distinct {
            return vals;
        }
        let mut seen = std::collections::HashSet::new();
        vals.into_iter()
            .filter(|v| seen.insert(join_key_component(v)))
            .collect()
    };

    match agg.func {
        AggFunc::Count => {
            if agg.arg.is_none() {
                Ok(Value::Int(group_size as i64))
            } else {
                Ok(Value::Int(distinct_filter(non_null).len() as i64))
            }
        }
        AggFunc::Sum => {
            let vals = distinct_filter(non_null);
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            if vals.iter().any(|v| matches!(v, Value::Encrypted(_))) {
                // Encrypted SUM: fold with plain big-integer addition. Each
                // share is a canonical residue, so the integer sum is congruent
                // to the modular sum; the proxy reduces modulo n on decryption.
                let mut acc = BigUint::from(0u32);
                for v in &vals {
                    acc += v.as_encrypted()?;
                }
                return Ok(Value::Encrypted(acc));
            }
            let scale = vals
                .iter()
                .map(|v| match v {
                    Value::Decimal { scale, .. } => *scale,
                    _ => 0,
                })
                .max()
                .unwrap_or(0);
            let mut acc: i128 = 0;
            for v in &vals {
                acc += v.as_scaled_i128(scale).map_err(EngineError::Storage)?;
            }
            if scale == 0 {
                Ok(Value::Int(acc as i64))
            } else {
                Ok(Value::Decimal {
                    units: acc as i64,
                    scale,
                })
            }
        }
        AggFunc::Avg => {
            let vals = distinct_filter(non_null);
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let mut acc: i128 = 0;
            for v in &vals {
                acc += v.as_scaled_i128(4).map_err(EngineError::Storage)?;
            }
            Ok(Value::Decimal {
                units: (acc / vals.len() as i128) as i64,
                scale: 4,
            })
        }
        AggFunc::Min => Ok(non_null
            .into_iter()
            .min_by(|a, b| a.cmp_total(b))
            .unwrap_or(Value::Null)),
        AggFunc::Max => Ok(non_null
            .into_iter()
            .max_by(|a, b| a.cmp_total(b))
            .unwrap_or(Value::Null)),
    }
}
