//! Hash aggregation with grouping.

use std::collections::HashMap;
use std::rc::Rc;

use num_bigint::BigUint;
use sdb_sql::ast::Expr;
use sdb_sql::plan::{AggFunc, AggregateExpr};
use sdb_storage::{ColumnDef, DataType, RecordBatch, Schema, Value};

use super::expr::{infer_column_def, join_key_component, sensitivity_of};
use super::{materialize_input, BoxedOperator, ExecContext, PhysicalOperator};
use crate::{EngineError, Result};

/// Groups the materialised input by the grouping expressions and evaluates one
/// aggregate per output column. A global aggregate (no GROUP BY) over an empty
/// input still produces one row.
///
/// Oracle-backed grouping expressions or aggregate arguments (e.g.
/// `SDB_GROUP_TAG` keys, encrypted `SDB_SUM` arguments) are materialised by an
/// [`super::oracle::OracleResolve`] child the planner inserts beneath this
/// operator; the runtime binding pass turns them into column references.
pub struct HashAggregate<'a> {
    ctx: Rc<ExecContext<'a>>,
    input: BoxedOperator<'a>,
    group_by: Vec<(Expr, String)>,
    aggregates: Vec<AggregateExpr>,
    done: bool,
}

impl<'a> HashAggregate<'a> {
    /// Creates an aggregation over `input`.
    pub fn new(
        ctx: Rc<ExecContext<'a>>,
        input: BoxedOperator<'a>,
        group_by: Vec<(Expr, String)>,
        aggregates: Vec<AggregateExpr>,
    ) -> Self {
        HashAggregate {
            ctx,
            input,
            group_by,
            aggregates,
            done: false,
        }
    }
}

impl PhysicalOperator for HashAggregate<'_> {
    fn name(&self) -> &'static str {
        "HashAggregate"
    }

    fn open(&mut self) -> Result<()> {
        self.done = false;
        self.input.open()
    }

    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;

        let batch = materialize_input(self.input.as_mut())?
            .unwrap_or_else(|| RecordBatch::empty(Schema::empty()));

        // Bind grouping expressions and aggregate arguments to the input schema
        // (this picks up oracle virtual columns and pre-computed expression
        // columns by their rendered names).
        let bind = |e: &Expr| super::expr::bind_to_existing_columns(e, batch.schema());
        let group_exprs: Vec<Expr> = self.group_by.iter().map(|(e, _)| bind(e)).collect();
        let agg_args: Vec<Expr> = self
            .aggregates
            .iter()
            .map(|agg| {
                agg.arg
                    .as_ref()
                    .map(&bind)
                    .unwrap_or(Expr::Literal(sdb_sql::ast::Literal::Int(1)))
            })
            .collect();

        let evaluator = self.ctx.evaluator();

        // Group rows.
        let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        for row in 0..batch.num_rows() {
            let mut key_values = Vec::with_capacity(group_exprs.len());
            for e in &group_exprs {
                key_values.push(evaluator.evaluate(e, &batch, row)?);
            }
            let key: String = key_values
                .iter()
                .map(join_key_component)
                .collect::<Vec<_>>()
                .join("\u{1f}");
            match index.get(&key) {
                Some(&g) => groups[g].1.push(row),
                None => {
                    index.insert(key, groups.len());
                    groups.push((key_values, vec![row]));
                }
            }
        }
        // A global aggregate over an empty input still produces one row.
        if groups.is_empty() && group_exprs.is_empty() {
            groups.push((vec![], vec![]));
        }

        // Evaluate aggregate arguments per row per aggregate.
        let mut out_rows: Vec<Vec<Value>> = Vec::with_capacity(groups.len());
        for (key_values, rows) in &groups {
            let mut out = key_values.clone();
            for (agg, arg_expr) in self.aggregates.iter().zip(agg_args.iter()) {
                let mut values = Vec::with_capacity(rows.len());
                for &row in rows {
                    values.push(evaluator.evaluate(arg_expr, &batch, row)?);
                }
                out.push(compute_aggregate(agg, rows.len(), values)?);
            }
            out_rows.push(out);
        }
        self.ctx.record_udf_calls(&evaluator);

        // Output schema: group columns then aggregate columns.
        let mut defs = Vec::new();
        for (i, (_, name)) in self.group_by.iter().enumerate() {
            let values: Vec<Value> = out_rows.iter().map(|r| r[i].clone()).collect();
            defs.push(infer_column_def(
                name,
                &group_exprs[i],
                &values,
                batch.schema(),
            ));
        }
        for (j, agg) in self.aggregates.iter().enumerate() {
            let i = self.group_by.len() + j;
            let values: Vec<Value> = out_rows.iter().map(|r| r[i].clone()).collect();
            // Aggregate outputs take their type from the produced values (SUM
            // over INT is INT, AVG is DECIMAL(4), encrypted SUM is ENCRYPTED, …).
            let data_type = values
                .iter()
                .find_map(|v| v.data_type())
                .unwrap_or(DataType::Int);
            defs.push(ColumnDef {
                name: agg.name.clone(),
                data_type,
                sensitivity: sensitivity_of(data_type),
            });
        }
        RecordBatch::from_rows(Schema::new(defs), out_rows)
            .map(Some)
            .map_err(Into::into)
    }

    fn close(&mut self) -> Result<()> {
        self.input.close()
    }
}

/// Computes one aggregate over the values of one group.
pub fn compute_aggregate(
    agg: &AggregateExpr,
    group_size: usize,
    values: Vec<Value>,
) -> Result<Value> {
    let non_null: Vec<Value> = values.into_iter().filter(|v| !v.is_null()).collect();
    let distinct_filter = |vals: Vec<Value>| -> Vec<Value> {
        if !agg.distinct {
            return vals;
        }
        let mut seen = std::collections::HashSet::new();
        vals.into_iter()
            .filter(|v| seen.insert(join_key_component(v)))
            .collect()
    };

    match agg.func {
        AggFunc::Count => {
            if agg.arg.is_none() {
                Ok(Value::Int(group_size as i64))
            } else {
                Ok(Value::Int(distinct_filter(non_null).len() as i64))
            }
        }
        AggFunc::Sum => {
            let vals = distinct_filter(non_null);
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            if vals.iter().any(|v| matches!(v, Value::Encrypted(_))) {
                // Encrypted SUM: fold with plain big-integer addition. Each
                // share is a canonical residue, so the integer sum is congruent
                // to the modular sum; the proxy reduces modulo n on decryption.
                let mut acc = BigUint::from(0u32);
                for v in &vals {
                    acc += v.as_encrypted()?;
                }
                return Ok(Value::Encrypted(acc));
            }
            let scale = vals
                .iter()
                .map(|v| match v {
                    Value::Decimal { scale, .. } => *scale,
                    _ => 0,
                })
                .max()
                .unwrap_or(0);
            let mut acc: i128 = 0;
            for v in &vals {
                acc += v.as_scaled_i128(scale).map_err(EngineError::Storage)?;
            }
            if scale == 0 {
                Ok(Value::Int(acc as i64))
            } else {
                Ok(Value::Decimal {
                    units: acc as i64,
                    scale,
                })
            }
        }
        AggFunc::Avg => {
            let vals = distinct_filter(non_null);
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let mut acc: i128 = 0;
            for v in &vals {
                acc += v.as_scaled_i128(4).map_err(EngineError::Storage)?;
            }
            Ok(Value::Decimal {
                units: (acc / vals.len() as i128) as i64,
                scale: 4,
            })
        }
        AggFunc::Min => Ok(non_null
            .into_iter()
            .min_by(|a, b| a.cmp_total(b))
            .unwrap_or(Value::Null)),
        AggFunc::Max => Ok(non_null
            .into_iter()
            .max_by(|a, b| a.cmp_total(b))
            .unwrap_or(Value::Null)),
    }
}
