//! The SDB oracle-call operator: resolves the interactive protocol steps
//! (secure comparisons, group tags, rank surrogates) the rewriter leaves in the
//! plan as pseudo-function calls.
//!
//! For each distinct call, one batched round trip per input batch ships the
//! (blinded or encrypted) operands to the DO proxy and scatters the opaque
//! answers back as a *virtual column* named by the call's rendered text.
//! Downstream expressions pick the column up through
//! [`expr::bind_to_existing_columns`], so the operators above never see the
//! call itself.

use std::time::Instant;

use num_bigint::BigUint;
use rand::Rng;

use sdb_sql::ast::Expr;
use sdb_storage::{ColumnDef, DataType, RecordBatch, Value};

use super::expr::{self, append_virtual_column, literal_string};
use super::{BoxedOperator, ExecContext, PhysicalOperator};
use crate::secure::{
    oracle_fns, parse_biguint_arg, sign_to_bool, OracleRequest, OracleRequestKind, OracleResponse,
    OracleRow,
};
use crate::{EngineError, Result};
use std::sync::Arc;

/// Physical operator materialising oracle-backed calls as virtual columns.
///
/// Sign and group-tag calls resolve per input batch: signs are per-row facts
/// and tags come from a keyed PRF of the plaintext, so both are stable across
/// round trips. Rank surrogates are only comparable *within one request* (the
/// proxy reserves a fresh rank block per request), so when any registered call
/// is a rank call this operator turns blocking and resolves the whole
/// materialised input in a single round trip — exactly the guarantee ORDER BY
/// and MIN/MAX over sensitive columns need.
pub struct OracleResolve<'a> {
    ctx: Arc<ExecContext<'a>>,
    input: BoxedOperator<'a>,
    calls: Vec<Expr>,
    /// True when any call demands whole-input resolution (rank surrogates).
    blocking: bool,
    done: bool,
}

impl<'a> OracleResolve<'a> {
    /// Creates the operator for the given (deduplicated) oracle calls.
    pub fn new(ctx: Arc<ExecContext<'a>>, input: BoxedOperator<'a>, calls: Vec<Expr>) -> Self {
        let blocking = calls.iter().any(|call| match call {
            Expr::Function { name, .. } => name.eq_ignore_ascii_case(oracle_fns::RANK),
            _ => false,
        });
        OracleResolve {
            ctx,
            input,
            calls,
            blocking,
            done: false,
        }
    }
}

impl PhysicalOperator for OracleResolve<'_> {
    fn name(&self) -> &'static str {
        "OracleResolve"
    }

    fn describe(&self) -> String {
        format!("{}({})", self.name(), self.input.describe())
    }

    fn open(&mut self) -> Result<()> {
        self.done = false;
        self.input.open()
    }

    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        if self.blocking {
            if self.done {
                return Ok(None);
            }
            self.done = true;
            let batch = super::materialize_input(self.input.as_mut())?
                .unwrap_or_else(|| RecordBatch::empty(sdb_storage::Schema::empty()));
            return resolve_oracle_calls(&self.ctx, batch, &self.calls).map(Some);
        }
        match self.input.next_batch()? {
            None => Ok(None),
            Some(batch) => resolve_oracle_calls(&self.ctx, batch, &self.calls).map(Some),
        }
    }

    fn close(&mut self) -> Result<()> {
        self.input.close()
    }
}

/// Collects the distinct oracle-backed calls appearing in `expr` into `out`.
pub fn collect_oracle_calls(expr: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Function { name, .. } = expr {
        if oracle_fns::is_oracle_fn(name) {
            if !out.iter().any(|e| e.to_string() == expr.to_string()) {
                out.push(expr.clone());
            }
            return; // arguments are evaluated by the resolution pass itself
        }
    }
    match expr {
        Expr::Unary { expr, .. } => collect_oracle_calls(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_oracle_calls(left, out);
            collect_oracle_calls(right, out);
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_oracle_calls(a, out);
            }
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(o) = operand {
                collect_oracle_calls(o, out);
            }
            for (w, t) in branches {
                collect_oracle_calls(w, out);
                collect_oracle_calls(t, out);
            }
            if let Some(e) = else_expr {
                collect_oracle_calls(e, out);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_oracle_calls(expr, out);
            collect_oracle_calls(low, out);
            collect_oracle_calls(high, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_oracle_calls(expr, out);
            for e in list {
                collect_oracle_calls(e, out);
            }
        }
        _ => {}
    }
}

/// Collects the distinct oracle calls across several expressions.
pub fn collect_oracle_calls_all(exprs: &[Expr]) -> Vec<Expr> {
    let mut calls = Vec::new();
    for e in exprs {
        collect_oracle_calls(e, &mut calls);
    }
    calls
}

/// Resolves each oracle call against `batch` with one batched round trip,
/// appending the per-row answers as virtual columns. Calls whose rendered name
/// already exists as a column (materialised by an operator below) are skipped.
pub fn resolve_oracle_calls(
    ctx: &ExecContext<'_>,
    batch: RecordBatch,
    calls: &[Expr],
) -> Result<RecordBatch> {
    if calls.is_empty() {
        return Ok(batch);
    }
    let oracle = ctx
        .oracle()
        .cloned()
        .ok_or_else(|| EngineError::OracleUnavailable {
            operation: calls[0].to_string(),
        })?;

    let mut batch = batch;
    for call in calls {
        let rendered = call.to_string();
        if batch.schema().index_of(&rendered).is_ok() {
            continue; // already materialised by an earlier operator or call
        }
        let (name, args) = match call {
            Expr::Function { name, args, .. } => (name.to_ascii_uppercase(), args),
            _ => unreachable!("collect_oracle_calls only returns function nodes"),
        };
        let is_cmp = oracle_fns::is_cmp_fn(&name);
        let expected_arity = if is_cmp { 4 } else { 3 };
        if args.len() != expected_arity {
            return Err(EngineError::UdfInvocation {
                name: name.clone(),
                detail: format!("expected {expected_arity} arguments, found {}", args.len()),
            });
        }
        let handle = literal_string(&args[2]).ok_or_else(|| EngineError::UdfInvocation {
            name: name.clone(),
            detail: "third argument must be a string key handle".into(),
        })?;
        let modulus = if is_cmp {
            Some(parse_biguint_arg(
                &name,
                &literal_string(&args[3]).ok_or_else(|| EngineError::UdfInvocation {
                    name: name.clone(),
                    detail: "fourth argument must be the public modulus as a string".into(),
                })?,
            )?)
        } else {
            None
        };

        // Evaluate the share and row-id expressions for every row.
        let evaluator = ctx.evaluator();
        let mut present_rows: Vec<usize> = Vec::new();
        let mut oracle_rows: Vec<OracleRow> = Vec::new();
        for row in 0..batch.num_rows() {
            let share = evaluator.evaluate(&args[0], &batch, row)?;
            let row_id = evaluator.evaluate(&args[1], &batch, row)?;
            if share.is_null() || row_id.is_null() {
                continue;
            }
            let mut share = share.as_encrypted()?.clone();
            let row_id = row_id.as_encrypted_row_id()?.clone();
            if let Some(n) = &modulus {
                // Blind the difference with a fresh positive factor so the DO
                // proxy (and anything watching the channel) learns only signs.
                let factor: u64 = ctx.rng_mut().gen_range(1..(1u64 << 30));
                share = share * BigUint::from(factor) % n;
            }
            present_rows.push(row);
            oracle_rows.push(OracleRow { row_id, share });
        }
        ctx.record_udf_calls(&evaluator);

        let kind = if is_cmp {
            OracleRequestKind::Sign
        } else if name == oracle_fns::GROUP_TAG {
            OracleRequestKind::GroupTag
        } else {
            OracleRequestKind::Rank
        };
        let request = OracleRequest {
            kind,
            handle,
            rows: oracle_rows,
        };

        {
            let mut stats = ctx.stats_mut();
            stats.oracle_round_trips += 1;
            stats.oracle_rows_shipped += request.rows.len();
            stats.oracle_bytes_shipped += request.approx_size_bytes();
        }
        let start = Instant::now();
        let response = oracle
            .resolve(request)
            .map_err(|e| EngineError::OracleProtocol { detail: e })?;
        ctx.stats_mut().oracle_time += start.elapsed();

        if response.len() != present_rows.len() {
            return Err(EngineError::OracleProtocol {
                detail: format!(
                    "oracle returned {} answers for {} rows",
                    response.len(),
                    present_rows.len()
                ),
            });
        }

        // Scatter the per-row answers into a full-length column (NULL where the
        // inputs were NULL).
        let mut values = vec![Value::Null; batch.num_rows()];
        let data_type = match &response {
            OracleResponse::Signs(signs) => {
                for (pos, sign) in present_rows.iter().zip(signs.iter()) {
                    values[*pos] = Value::Bool(sign_to_bool(&name, *sign)?);
                }
                DataType::Bool
            }
            OracleResponse::Tags(tags) => {
                for (pos, tag) in present_rows.iter().zip(tags.iter()) {
                    values[*pos] = Value::Tag(*tag);
                }
                DataType::Tag
            }
            OracleResponse::Ranks(ranks) => {
                for (pos, rank) in present_rows.iter().zip(ranks.iter()) {
                    values[*pos] = Value::Int(*rank as i64);
                }
                DataType::Int
            }
        };

        batch = append_virtual_column(&batch, ColumnDef::public(&rendered, data_type), values)?;
    }
    Ok(batch)
}

/// Convenience: resolves the oracle calls found in `exprs` (if any) against a
/// materialised batch, then binds the expressions to the resulting schema so
/// resolved calls become column references. Used by operators that resolve
/// inline (hash-join keys) rather than through an [`OracleResolve`] child.
pub fn resolve_for_exprs(
    ctx: &ExecContext<'_>,
    batch: RecordBatch,
    exprs: &mut [Expr],
) -> Result<RecordBatch> {
    let calls = collect_oracle_calls_all(exprs);
    let batch = resolve_oracle_calls(ctx, batch, &calls)?;
    for e in exprs.iter_mut() {
        *e = expr::bind_to_existing_columns(e, batch.schema());
    }
    Ok(batch)
}
