//! The SDB oracle-call operator: resolves the interactive protocol steps
//! (secure comparisons, group tags, rank surrogates) the rewriter leaves in the
//! plan as pseudo-function calls.
//!
//! Round trips to the DO proxy are the unit cost the protocol prices highest,
//! so resolution is *amortized and memoized*:
//!
//! * **Cross-batch accumulation** — instead of one round trip per registered
//!   call per input batch, [`OracleResolve`] parks raw input batches in the
//!   pager (spilling past the memory budget like any other parked stream)
//!   while buffering each call's prepared operand rows. At a byte/row
//!   threshold ([`ORACLE_FLUSH_BYTES`] / [`ORACLE_FLUSH_ROWS`]) or
//!   end-of-input it flushes *one coalesced request per call*, then streams
//!   the parked batches back out with the answers attached. A multi-predicate
//!   filter over dozens of batches thus costs one trip per distinct call, not
//!   one per call per batch, under any `MemoryBudget`.
//! * **Encrypted-value memoization** — sign and group-tag answers are
//!   deterministic in the operand ciphertexts (the proxy decrypts with the
//!   row-id-derived item key; tags are a keyed PRF of the plaintext), so
//!   resolved answers are remembered in a per-query `OracleMemo` keyed by
//!   `(request kind, key handle, row-id ciphertext, pre-blinding share)`.
//!   Hot operands — join keys probed per spilled chunk, correlated subquery
//!   operands — never re-travel the link; hits are counted in
//!   `oracle_memo_hits`. Rank surrogates are *never* memoized: the proxy
//!   allocates a fresh rank block per request, so surrogates are only
//!   comparable within one request.
//!
//! For each distinct call the answers come back as a *virtual column* named by
//! the call's rendered text. Downstream expressions pick the column up through
//! [`expr::bind_to_existing_columns`], so the operators above never see the
//! call itself.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use num_bigint::BigUint;
use parking_lot::Mutex;
use rand::Rng;

use sdb_crypto::EncryptedRowId;
use sdb_sql::ast::Expr;
use sdb_storage::{
    ColumnDef, DataType, PageStreamReader, PageStreamWriter, RecordBatch, Schema, Value,
};

use super::expr::{self, append_virtual_column, literal_string};
use super::{BoxedOperator, ExecContext, PhysicalOperator};
use crate::secure::{
    oracle_fns, parse_biguint_arg, sign_to_bool, OracleRequest, OracleRequestKind, OracleResponse,
    OracleRow,
};
use crate::{EngineError, Result};

/// Accumulated operand bytes (across all registered calls) that force a
/// mid-stream flush of the cross-batch accumulator. Deliberately independent
/// of the `MemoryBudget`: parked input batches spill through the pager, so a
/// tiny budget must not reintroduce per-batch round trips.
pub const ORACLE_FLUSH_BYTES: usize = 4 << 20;

/// Accumulated input rows that force a mid-stream flush of the cross-batch
/// accumulator.
pub const ORACLE_FLUSH_ROWS: usize = 1 << 20;

/// Key of one memoized oracle answer: request-kind discriminant, proxy key
/// handle, row-id ciphertext and the **pre-blinding** share (the blinding
/// factor is fresh per shipped row, so only the unblinded share is stable).
type MemoKey = (u8, String, EncryptedRowId, BigUint);

/// A memoized oracle answer. Rank surrogates are never memoized — they are
/// only comparable within the single request that allocated them.
#[derive(Clone, Copy)]
enum MemoAnswer {
    /// The sign verdict of a comparison request.
    Sign(i8),
    /// The opaque group tag of a group-tag request.
    Tag(u64),
}

/// The per-query encrypted-value memo: answers of past sign/group-tag
/// requests, shared across operators and subquery contexts (`Mutex`-guarded
/// like the subquery cache) so hot operands never re-travel the oracle link.
#[derive(Default)]
pub(crate) struct OracleMemo {
    entries: Mutex<HashMap<MemoKey, MemoAnswer>>,
}

fn kind_tag(kind: OracleRequestKind) -> u8 {
    match kind {
        OracleRequestKind::Sign => 0,
        OracleRequestKind::GroupTag => 1,
        OracleRequestKind::Rank => 2,
    }
}

/// One registered oracle call, parsed once per operator (not once per batch):
/// the operand expressions, key handle, request kind and — for comparisons —
/// the public modulus used for blinding.
struct PreparedCall {
    /// Upper-cased function name (decides the sign→bool mapping).
    name: String,
    /// The call's rendered text: the virtual column's name.
    rendered: String,
    kind: OracleRequestKind,
    handle: String,
    /// Blinding modulus (comparison calls only).
    modulus: Option<BigUint>,
    /// The share operand expression (`args[0]`).
    share_expr: Expr,
    /// The row-id operand expression (`args[1]`).
    row_id_expr: Expr,
}

impl PreparedCall {
    fn parse(call: &Expr) -> Result<PreparedCall> {
        let (name, args) = match call {
            Expr::Function { name, args, .. } => (name.to_ascii_uppercase(), args),
            _ => unreachable!("collect_oracle_calls only returns function nodes"),
        };
        let is_cmp = oracle_fns::is_cmp_fn(&name);
        let expected_arity = if is_cmp { 4 } else { 3 };
        if args.len() != expected_arity {
            return Err(EngineError::UdfInvocation {
                name: name.clone(),
                detail: format!("expected {expected_arity} arguments, found {}", args.len()),
            });
        }
        let handle = literal_string(&args[2]).ok_or_else(|| EngineError::UdfInvocation {
            name: name.clone(),
            detail: "third argument must be a string key handle".into(),
        })?;
        let modulus = if is_cmp {
            Some(parse_biguint_arg(
                &name,
                &literal_string(&args[3]).ok_or_else(|| EngineError::UdfInvocation {
                    name: name.clone(),
                    detail: "fourth argument must be the public modulus as a string".into(),
                })?,
            )?)
        } else {
            None
        };
        let kind = if is_cmp {
            OracleRequestKind::Sign
        } else if name == oracle_fns::GROUP_TAG {
            OracleRequestKind::GroupTag
        } else {
            OracleRequestKind::Rank
        };
        Ok(PreparedCall {
            rendered: call.to_string(),
            name,
            kind,
            handle,
            modulus,
            share_expr: args[0].clone(),
            row_id_expr: args[1].clone(),
        })
    }

    /// The virtual column's type, known before any answer arrives (needed to
    /// emit schema-correct columns when every row was NULL or memoized).
    fn data_type(&self) -> DataType {
        match self.kind {
            OracleRequestKind::Sign => DataType::Bool,
            OracleRequestKind::GroupTag => DataType::Tag,
            OracleRequestKind::Rank => DataType::Int,
        }
    }

    fn memo_key(&self, row: &OracleRow) -> MemoKey {
        (
            kind_tag(self.kind),
            self.handle.clone(),
            row.row_id.clone(),
            row.share.clone(),
        )
    }

    fn memo_value(&self, answer: MemoAnswer) -> Result<Value> {
        match answer {
            MemoAnswer::Sign(sign) => Ok(Value::Bool(sign_to_bool(&self.name, sign)?)),
            MemoAnswer::Tag(tag) => Ok(Value::Tag(tag)),
        }
    }
}

/// One call's operand rows accumulated so far. Shares are kept
/// **pre-blinding** so the memo key stays stable across requests; the fresh
/// blinding factor is applied only to rows that actually ship.
#[derive(Default)]
struct CallBuffer {
    /// Position of each operand row in the accumulated input (epoch-global).
    present: Vec<usize>,
    rows: Vec<OracleRow>,
}

/// Evaluates one call's operand expressions over `batch`, appending the
/// non-NULL rows to `buffer` at positions offset by `base`. Returns the
/// approximate operand bytes added (for the flush threshold).
fn gather_operands(
    ctx: &ExecContext<'_>,
    call: &PreparedCall,
    batch: &RecordBatch,
    base: usize,
    buffer: &mut CallBuffer,
) -> Result<usize> {
    let evaluator = ctx.evaluator();
    let mut bytes = 0usize;
    for row in 0..batch.num_rows() {
        let share = evaluator.evaluate(&call.share_expr, batch, row)?;
        let row_id = evaluator.evaluate(&call.row_id_expr, batch, row)?;
        if share.is_null() || row_id.is_null() {
            continue;
        }
        let share = share.as_encrypted()?.clone();
        let row_id = row_id.as_encrypted_row_id()?.clone();
        bytes += row_id.size_bytes() + (share.bits() as usize).div_ceil(8);
        buffer.present.push(base + row);
        buffer.rows.push(OracleRow { row_id, share });
    }
    ctx.record_udf_calls(&evaluator);
    Ok(bytes)
}

/// Resolves one call's buffered operands into a full-length value column
/// (NULL where the operands were NULL): memo lookups first, then — only if
/// any rows miss — a single round trip for the misses, whose answers are
/// scattered back and memoized. Zero buffered rows (or an all-hit buffer)
/// cost zero trips.
fn resolve_call(
    ctx: &ExecContext<'_>,
    call: &PreparedCall,
    total_rows: usize,
    buffer: CallBuffer,
    coalesced: bool,
) -> Result<Vec<Value>> {
    let CallBuffer { present, rows } = buffer;
    if coalesced {
        ctx.stats_mut().oracle_rows_coalesced += rows.len();
    }
    let mut values = vec![Value::Null; total_rows];

    // Memo lookups (sign/tag answers are deterministic in the operands; rank
    // surrogates are per-request and always ship).
    let mut miss_present: Vec<usize> = Vec::new();
    let mut miss_rows: Vec<OracleRow> = Vec::new();
    if call.kind == OracleRequestKind::Rank {
        miss_present = present;
        miss_rows = rows;
    } else {
        let buffered = present.len();
        let memo = ctx.oracle_memo().entries.lock();
        for (pos, row) in present.into_iter().zip(rows) {
            match memo.get(&call.memo_key(&row)) {
                Some(answer) => values[pos] = call.memo_value(*answer)?,
                None => {
                    miss_present.push(pos);
                    miss_rows.push(row);
                }
            }
        }
        drop(memo);
        ctx.stats_mut().oracle_memo_hits += buffered - miss_present.len();
    }

    if miss_rows.is_empty() {
        return Ok(values); // nothing to ship: no round trip at all
    }

    // A cancelled query must not start another round trip (the flush path
    // resolves one call per iteration, so this bounds post-cancel work to
    // the request already in flight).
    ctx.check_cancelled()?;

    let oracle = ctx
        .oracle()
        .cloned()
        .ok_or_else(|| EngineError::OracleUnavailable {
            operation: call.rendered.clone(),
        })?;

    // Blind comparison shares with a fresh positive factor per shipped row so
    // the DO proxy (and anything watching the channel) learns only signs.
    // Factors are drawn first, in row order (same RNG stream as the old
    // per-row loop), then the whole share column is blinded in one pass.
    let shipped: Vec<OracleRow> = match &call.modulus {
        Some(n) => {
            let factors: Vec<u64> = miss_rows
                .iter()
                .map(|_| ctx.rng_mut().gen_range(1..(1u64 << 30)))
                .collect();
            let shares: Vec<BigUint> = miss_rows.iter().map(|row| row.share.clone()).collect();
            let blinded = sdb_crypto::batch::blind_shares(n, &shares, &factors);
            miss_rows
                .iter()
                .zip(blinded)
                .map(|(row, share)| OracleRow {
                    row_id: row.row_id.clone(),
                    share,
                })
                .collect()
        }
        None => miss_rows.clone(),
    };
    let request = OracleRequest {
        kind: call.kind,
        handle: call.handle.clone(),
        rows: shipped,
    };
    let trip_bytes = request.approx_size_bytes();
    let trip_rows = request.rows.len();
    {
        let mut stats = ctx.stats_mut();
        stats.oracle_round_trips += 1;
        stats.oracle_rows_shipped += trip_rows;
        stats.oracle_bytes_shipped += trip_bytes;
    }
    if let Some(trace) = ctx.trace() {
        trace.event("oracle_trip_start", trip_bytes, trip_rows);
    }
    let start = Instant::now();
    let response = oracle
        .resolve(request)
        .map_err(|e| EngineError::OracleProtocol { detail: e })?;
    ctx.stats_mut().oracle_time += start.elapsed();
    if let Some(trace) = ctx.trace() {
        trace.event("oracle_trip_end", trip_bytes, trip_rows);
    }

    if response.len() != miss_present.len() {
        return Err(EngineError::OracleProtocol {
            detail: format!(
                "oracle returned {} answers for {} rows",
                response.len(),
                miss_present.len()
            ),
        });
    }

    // Scatter the answers and remember them (rank excluded).
    match &response {
        OracleResponse::Signs(signs) => {
            let mut memo = ctx.oracle_memo().entries.lock();
            for ((pos, row), sign) in miss_present.iter().zip(&miss_rows).zip(signs) {
                values[*pos] = Value::Bool(sign_to_bool(&call.name, *sign)?);
                if call.kind == OracleRequestKind::Sign {
                    memo.insert(call.memo_key(row), MemoAnswer::Sign(*sign));
                }
            }
        }
        OracleResponse::Tags(tags) => {
            let mut memo = ctx.oracle_memo().entries.lock();
            for ((pos, row), tag) in miss_present.iter().zip(&miss_rows).zip(tags) {
                values[*pos] = Value::Tag(*tag);
                if call.kind == OracleRequestKind::GroupTag {
                    memo.insert(call.memo_key(row), MemoAnswer::Tag(*tag));
                }
            }
        }
        OracleResponse::Ranks(ranks) => {
            for (pos, rank) in miss_present.iter().zip(ranks) {
                values[*pos] = Value::Int(*rank as i64);
            }
        }
    }
    Ok(values)
}

/// The cross-batch accumulator: parks raw input batches in a pager stream
/// (spilling past the memory budget) while buffering each registered call's
/// prepared operand rows, so one coalesced request per call can resolve an
/// entire run of batches. Also reused by the Grace hash join to resolve
/// key calls once per side instead of once per spilled chunk.
pub(crate) struct OracleAccumulator {
    input_schema: Schema,
    writer: PageStreamWriter,
    total_rows: usize,
    active: Vec<PreparedCall>,
    buffers: Vec<CallBuffer>,
    operand_bytes: usize,
}

impl OracleAccumulator {
    /// Prepares the calls not already materialised as columns of `schema`.
    pub(crate) fn new(
        ctx: &ExecContext<'_>,
        calls: &[Expr],
        schema: &Schema,
    ) -> Result<OracleAccumulator> {
        let mut active = Vec::new();
        for call in calls {
            if schema.index_of(&call.to_string()).is_ok() {
                continue; // already materialised by an operator below
            }
            active.push(PreparedCall::parse(call)?);
        }
        if !active.is_empty() && ctx.oracle().is_none() {
            return Err(EngineError::OracleUnavailable {
                operation: active[0].rendered.clone(),
            });
        }
        let flush_bytes = ctx
            .memory_budget()
            .limit()
            .map(|limit| (limit / 4).max(1))
            .unwrap_or(1 << 20);
        let buffers = active.iter().map(|_| CallBuffer::default()).collect();
        Ok(OracleAccumulator {
            input_schema: schema.clone(),
            writer: PageStreamWriter::new(schema.clone(), flush_bytes, ctx.batch_size()),
            total_rows: 0,
            active,
            buffers,
            operand_bytes: 0,
        })
    }

    /// True when there is nothing to resolve (no registered call, or all of
    /// them already materialised below) — callers should stream the input
    /// through instead of parking it.
    pub(crate) fn is_passthrough(&self) -> bool {
        self.active.is_empty()
    }

    /// Parks one input batch and buffers its operand rows.
    pub(crate) fn push(&mut self, ctx: &ExecContext<'_>, batch: &RecordBatch) -> Result<()> {
        for (call, buffer) in self.active.iter().zip(self.buffers.iter_mut()) {
            self.operand_bytes += gather_operands(ctx, call, batch, self.total_rows, buffer)?;
        }
        for row in 0..batch.num_rows() {
            self.writer.push_row(ctx.pager(), batch.row(row))?;
        }
        self.total_rows += batch.num_rows();
        Ok(())
    }

    /// Whether accumulated operands crossed the flush threshold.
    pub(crate) fn over_threshold(&self) -> bool {
        self.operand_bytes >= ORACLE_FLUSH_BYTES || self.total_rows >= ORACLE_FLUSH_ROWS
    }

    /// Resolves every buffered call — one coalesced round trip per call with
    /// misses — and returns the epoch ready to stream the parked batches back
    /// out with their virtual columns attached.
    pub(crate) fn flush(self, ctx: &ExecContext<'_>) -> Result<Epoch> {
        let OracleAccumulator {
            input_schema,
            writer,
            total_rows,
            active,
            buffers,
            ..
        } = self;
        let stream = writer.finish(ctx.pager())?;
        let mut answers = Vec::with_capacity(active.len());
        for (call, buffer) in active.iter().zip(buffers) {
            answers.push(resolve_call(ctx, call, total_rows, buffer, true)?);
        }
        let columns = active
            .iter()
            .map(|call| ColumnDef::public(&call.rendered, call.data_type()))
            .collect();
        Ok(Epoch {
            reader: stream.reader(),
            input_schema,
            columns,
            answers,
            offset: 0,
            emitted: false,
        })
    }
}

/// One resolved run of parked batches: streams pages back out of the pager
/// (freeing them as it goes) with each call's answer slice attached as a
/// virtual column.
pub(crate) struct Epoch {
    reader: PageStreamReader,
    input_schema: Schema,
    columns: Vec<ColumnDef>,
    /// Epoch-length answer columns, parallel to `columns`.
    answers: Vec<Vec<Value>>,
    offset: usize,
    emitted: bool,
}

impl Epoch {
    /// The next parked batch with its virtual columns attached; emits one
    /// empty schema-carrying batch if the whole epoch held zero rows (so an
    /// empty input still yields the resolved schema downstream).
    pub(crate) fn next_resolved(&mut self, ctx: &ExecContext<'_>) -> Result<Option<RecordBatch>> {
        match self.reader.next_batch(ctx.pager())? {
            Some(page) => {
                let mut batch = (*page).clone();
                let rows = batch.num_rows();
                for (def, answers) in self.columns.iter().zip(&self.answers) {
                    let values = answers[self.offset..self.offset + rows].to_vec();
                    batch = append_virtual_column(&batch, def.clone(), values)?;
                }
                self.offset += rows;
                self.emitted = true;
                Ok(Some(batch))
            }
            None if !self.emitted => {
                self.emitted = true;
                let mut batch = RecordBatch::empty(self.input_schema.clone());
                for def in &self.columns {
                    batch = append_virtual_column(&batch, def.clone(), Vec::new())?;
                }
                Ok(Some(batch))
            }
            None => Ok(None),
        }
    }

    /// Frees any parked pages not yet streamed back (early close).
    pub(crate) fn release(&mut self, ctx: &ExecContext<'_>) {
        self.reader.release(ctx.pager());
    }
}

/// Physical operator materialising oracle-backed calls as virtual columns.
///
/// With cross-batch batching on (the default), input batches are parked in
/// the pager while operand rows accumulate, and each registered call resolves
/// in one coalesced round trip per [`ORACLE_FLUSH_BYTES`]/[`ORACLE_FLUSH_ROWS`]
/// window — for typical inputs, one trip per distinct call total. With
/// batching off ([`ExecContext::with_oracle_batching`]), sign and group-tag
/// calls resolve per input batch as before; either way the encrypted-value
/// memo answers repeated operands locally.
///
/// Rank surrogates are only comparable *within one request* (the proxy
/// reserves a fresh rank block per request), so when any registered call is a
/// rank call this operator turns blocking and resolves the whole input in a
/// single round trip — exactly the guarantee ORDER BY and MIN/MAX over
/// sensitive columns need. A zero-row input short-circuits without any trip.
pub struct OracleResolve<'a> {
    ctx: Arc<ExecContext<'a>>,
    input: BoxedOperator<'a>,
    calls: Vec<Expr>,
    /// True when any call demands whole-input resolution (rank surrogates).
    blocking: bool,
    /// Cross-batch accumulation configured on the context.
    batched: bool,
    /// Runtime mode: resolve per input batch (batching off, or every call
    /// found already materialised below).
    streaming: bool,
    done: bool,
    epoch: Option<Epoch>,
}

impl<'a> OracleResolve<'a> {
    /// Creates the operator for the given (deduplicated) oracle calls.
    pub fn new(ctx: Arc<ExecContext<'a>>, input: BoxedOperator<'a>, calls: Vec<Expr>) -> Self {
        let blocking = calls.iter().any(|call| match call {
            Expr::Function { name, .. } => name.eq_ignore_ascii_case(oracle_fns::RANK),
            _ => false,
        });
        let batched = ctx.oracle_batching();
        OracleResolve {
            ctx,
            input,
            calls,
            blocking,
            batched,
            streaming: !batched,
            done: false,
            epoch: None,
        }
    }

    /// The pre-batching path: blocking rank resolution materialises the whole
    /// input; everything else resolves batch by batch.
    fn next_streaming(&mut self) -> Result<Option<RecordBatch>> {
        if self.blocking {
            if self.done {
                return Ok(None);
            }
            self.done = true;
            let batch = super::materialize_input(self.input.as_mut())?
                .unwrap_or_else(|| RecordBatch::empty(Schema::empty()));
            return resolve_oracle_calls(&self.ctx, batch, &self.calls).map(Some);
        }
        match self.input.next_batch()? {
            None => Ok(None),
            Some(batch) => resolve_oracle_calls(&self.ctx, batch, &self.calls).map(Some),
        }
    }

    /// Accumulates the next run of input batches (all of them when blocking)
    /// and resolves it. `Ok(None)` means the input is exhausted; a
    /// pass-through input flips the operator to streaming and returns the
    /// already-pulled batch.
    fn next_epoch(&mut self) -> Result<Option<RecordBatch>> {
        let Some(first) = self.input.next_batch()? else {
            self.done = true;
            return Ok(None);
        };
        let mut acc = OracleAccumulator::new(&self.ctx, &self.calls, first.schema())?;
        if acc.is_passthrough() {
            // Every call is already a column of the input (or none were
            // registered): nothing to coalesce, stream the input through.
            self.streaming = true;
            return Ok(Some(first));
        }
        acc.push(&self.ctx, &first)?;
        while self.blocking || !acc.over_threshold() {
            match self.input.next_batch()? {
                Some(batch) => acc.push(&self.ctx, &batch)?,
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        self.epoch = Some(acc.flush(&self.ctx)?);
        self.next_resolved()
    }

    fn next_resolved(&mut self) -> Result<Option<RecordBatch>> {
        if let Some(epoch) = &mut self.epoch {
            if let Some(batch) = epoch.next_resolved(&self.ctx)? {
                return Ok(Some(batch));
            }
            self.epoch = None;
        }
        Ok(None)
    }
}

impl PhysicalOperator for OracleResolve<'_> {
    fn name(&self) -> &'static str {
        "OracleResolve"
    }

    fn describe(&self) -> String {
        format!("{}({})", self.name(), self.input.describe())
    }

    fn open(&mut self) -> Result<()> {
        self.done = false;
        self.streaming = !self.batched;
        if let Some(epoch) = &mut self.epoch {
            epoch.release(&self.ctx);
        }
        self.epoch = None;
        self.input.open()
    }

    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        self.ctx.check_cancelled()?;
        if self.streaming {
            return self.next_streaming();
        }
        if let Some(batch) = self.next_resolved()? {
            return Ok(Some(batch));
        }
        if self.done {
            return Ok(None);
        }
        self.next_epoch()
    }

    fn close(&mut self) -> Result<()> {
        if let Some(epoch) = &mut self.epoch {
            epoch.release(&self.ctx);
        }
        self.epoch = None;
        self.input.close()
    }
}

fn collect_into(expr: &Expr, out: &mut Vec<Expr>, seen: &mut HashSet<String>) {
    if let Expr::Function { name, .. } = expr {
        if oracle_fns::is_oracle_fn(name) {
            if seen.insert(expr.to_string()) {
                out.push(expr.clone());
            }
            return; // arguments are evaluated by the resolution pass itself
        }
    }
    match expr {
        Expr::Unary { expr, .. } => collect_into(expr, out, seen),
        Expr::Binary { left, right, .. } => {
            collect_into(left, out, seen);
            collect_into(right, out, seen);
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_into(a, out, seen);
            }
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(o) = operand {
                collect_into(o, out, seen);
            }
            for (w, t) in branches {
                collect_into(w, out, seen);
                collect_into(t, out, seen);
            }
            if let Some(e) = else_expr {
                collect_into(e, out, seen);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_into(expr, out, seen);
            collect_into(low, out, seen);
            collect_into(high, out, seen);
        }
        Expr::InList { expr, list, .. } => {
            collect_into(expr, out, seen);
            for e in list {
                collect_into(e, out, seen);
            }
        }
        _ => {}
    }
}

/// Collects the distinct oracle-backed calls appearing in `expr` into `out`
/// (deduplicated against calls already present in `out`).
pub fn collect_oracle_calls(expr: &Expr, out: &mut Vec<Expr>) {
    // Seed the dedup set from what the caller already collected, then dedup
    // via hashing instead of rendering every collected expr per candidate.
    let mut seen: HashSet<String> = out.iter().map(|e| e.to_string()).collect();
    collect_into(expr, out, &mut seen);
}

/// Collects the distinct oracle calls across several expressions.
pub fn collect_oracle_calls_all(exprs: &[Expr]) -> Vec<Expr> {
    let mut calls = Vec::new();
    let mut seen = HashSet::new();
    for e in exprs {
        collect_into(e, &mut calls, &mut seen);
    }
    calls
}

/// Resolves each oracle call against `batch` — memo hits answered locally,
/// misses in one round trip per call (zero-row batches and all-hit batches
/// cost no trip) — appending the per-row answers as virtual columns. Calls
/// whose rendered name already exists as a column (materialised by an
/// operator below) are skipped.
pub fn resolve_oracle_calls(
    ctx: &ExecContext<'_>,
    batch: RecordBatch,
    calls: &[Expr],
) -> Result<RecordBatch> {
    if calls.is_empty() {
        return Ok(batch);
    }
    if ctx.oracle().is_none() {
        return Err(EngineError::OracleUnavailable {
            operation: calls[0].to_string(),
        });
    }
    let mut batch = batch;
    for call in calls {
        if batch.schema().index_of(&call.to_string()).is_ok() {
            continue; // already materialised by an earlier operator or call
        }
        let call = PreparedCall::parse(call)?;
        let mut buffer = CallBuffer::default();
        gather_operands(ctx, &call, &batch, 0, &mut buffer)?;
        let values = resolve_call(ctx, &call, batch.num_rows(), buffer, false)?;
        batch = append_virtual_column(
            &batch,
            ColumnDef::public(&call.rendered, call.data_type()),
            values,
        )?;
    }
    Ok(batch)
}

/// Convenience: resolves the oracle calls found in `exprs` (if any) against a
/// materialised batch, then binds the expressions to the resulting schema so
/// resolved calls become column references. Used by operators that resolve
/// inline (hash-join keys) rather than through an [`OracleResolve`] child.
pub fn resolve_for_exprs(
    ctx: &ExecContext<'_>,
    batch: RecordBatch,
    exprs: &mut [Expr],
) -> Result<RecordBatch> {
    let calls = collect_oracle_calls_all(exprs);
    let batch = resolve_oracle_calls(ctx, batch, &calls)?;
    for e in exprs.iter_mut() {
        *e = expr::bind_to_existing_columns(e, batch.schema());
    }
    Ok(batch)
}
