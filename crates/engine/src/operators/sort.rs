//! The order-shaping operators: sort, limit and distinct.

use std::collections::HashSet;
use std::sync::Arc;

use sdb_sql::plan::SortKey;
use sdb_storage::{RecordBatch, Schema, Value};

use super::expr::{bind_to_existing_columns, join_key_component};
use super::{materialize_input, BoxedOperator, ExecContext, PhysicalOperator};
use crate::Result;

/// Sorts the materialised input by the given keys (stable, NULLs ordered by
/// the storage layer's total order).
///
/// Oracle-backed sort keys (e.g. `SDB_RANK` surrogates) are materialised by an
/// [`super::oracle::OracleResolve`] child inserted by the planner.
pub struct Sort<'a> {
    ctx: Arc<ExecContext<'a>>,
    input: BoxedOperator<'a>,
    keys: Vec<SortKey>,
    done: bool,
}

impl<'a> Sort<'a> {
    /// Creates a sort over `input`.
    pub fn new(ctx: Arc<ExecContext<'a>>, input: BoxedOperator<'a>, keys: Vec<SortKey>) -> Self {
        Sort {
            ctx,
            input,
            keys,
            done: false,
        }
    }
}

impl PhysicalOperator for Sort<'_> {
    fn name(&self) -> &'static str {
        "Sort"
    }

    fn describe(&self) -> String {
        format!("{}({})", self.name(), self.input.describe())
    }

    fn open(&mut self) -> Result<()> {
        self.done = false;
        self.input.open()
    }

    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let batch = materialize_input(self.input.as_mut())?
            .unwrap_or_else(|| RecordBatch::empty(Schema::empty()));

        let exprs: Vec<_> = self
            .keys
            .iter()
            .map(|k| bind_to_existing_columns(&k.expr, batch.schema()))
            .collect();
        let evaluator = self.ctx.evaluator();

        let mut key_values: Vec<Vec<Value>> = Vec::with_capacity(batch.num_rows());
        for row in 0..batch.num_rows() {
            let mut kv = Vec::with_capacity(exprs.len());
            for e in &exprs {
                kv.push(evaluator.evaluate(e, &batch, row)?);
            }
            key_values.push(kv);
        }
        self.ctx.record_udf_calls(&evaluator);

        let mut order: Vec<usize> = (0..batch.num_rows()).collect();
        order.sort_by(|&a, &b| {
            for (i, key) in self.keys.iter().enumerate() {
                let ord = key_values[a][i].cmp_total(&key_values[b][i]);
                let ord = if key.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        batch.reorder(&order).map(Some).map_err(Into::into)
    }

    fn close(&mut self) -> Result<()> {
        self.input.close()
    }
}

/// Truncates the stream after `n` rows (streaming: stops pulling from its
/// child once satisfied).
pub struct Limit<'a> {
    input: BoxedOperator<'a>,
    n: usize,
    remaining: usize,
    emitted: bool,
}

impl<'a> Limit<'a> {
    /// Creates a limit of `n` rows over `input`.
    pub fn new(input: BoxedOperator<'a>, n: usize) -> Self {
        Limit {
            input,
            n,
            remaining: n,
            emitted: false,
        }
    }
}

impl PhysicalOperator for Limit<'_> {
    fn name(&self) -> &'static str {
        "Limit"
    }

    fn describe(&self) -> String {
        format!("{}({})", self.name(), self.input.describe())
    }

    fn open(&mut self) -> Result<()> {
        self.remaining = self.n;
        self.emitted = false;
        self.input.open()
    }

    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        if self.remaining == 0 && self.emitted {
            return Ok(None);
        }
        let Some(batch) = self.input.next_batch()? else {
            return Ok(None);
        };
        self.emitted = true;
        let take = self.remaining.min(batch.num_rows());
        self.remaining -= take;
        if take == batch.num_rows() {
            Ok(Some(batch))
        } else {
            Ok(Some(batch.limit(take)))
        }
    }

    fn close(&mut self) -> Result<()> {
        self.input.close()
    }
}

/// Removes duplicate rows (first occurrence wins), streaming batch by batch
/// with a running seen-set.
pub struct Distinct<'a> {
    input: BoxedOperator<'a>,
    seen: HashSet<String>,
}

impl<'a> Distinct<'a> {
    /// Creates a distinct over `input`.
    pub fn new(input: BoxedOperator<'a>) -> Self {
        Distinct {
            input,
            seen: HashSet::new(),
        }
    }
}

impl PhysicalOperator for Distinct<'_> {
    fn name(&self) -> &'static str {
        "Distinct"
    }

    fn describe(&self) -> String {
        format!("{}({})", self.name(), self.input.describe())
    }

    fn open(&mut self) -> Result<()> {
        self.seen.clear();
        self.input.open()
    }

    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        let Some(batch) = self.input.next_batch()? else {
            return Ok(None);
        };
        let mut mask = Vec::with_capacity(batch.num_rows());
        for row in 0..batch.num_rows() {
            let key: String = batch
                .row(row)
                .iter()
                .map(join_key_component)
                .collect::<Vec<_>>()
                .join("\u{1f}");
            mask.push(self.seen.insert(key));
        }
        batch.filter(&mask).map(Some).map_err(Into::into)
    }

    fn close(&mut self) -> Result<()> {
        self.input.close()
    }
}
