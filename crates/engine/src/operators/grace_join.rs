//! Grace-style spilling hash join: bounded-memory equi-joins through the
//! pager.
//!
//! The operator starts exactly like the in-memory [`super::join::HashJoin`]:
//! the build (right) side accumulates in RAM. If it finishes within the
//! [`MemoryBudget`](sdb_storage::MemoryBudget) nothing spills and the probe
//! side streams against the shared build/probe machinery — the same code path
//! as the in-memory operator. Once the build side exceeds the budget the
//! operator flips to the classic Grace plan:
//!
//! 1. **Partition** — both inputs hash-partition by join key into `FANOUT`
//!    paired pager streams ([`PageStreamWriter`]), the rendered key riding
//!    along as an extra
//!    column so a faulted-in row never re-evaluates its key (re-evaluation
//!    could re-trigger subquery resolution and would double-count UDF
//!    statistics). Probe rows also carry their global arrival sequence
//!    number. Key evaluation is morsel-parallel (per-worker scoped threads,
//!    concatenated in morsel order — the same parallel build path the
//!    in-memory join uses); routing happens serially in arrival order, so
//!    every stream preserves input order.
//! 2. **Join pairs** — each build partition is materialised and indexed with
//!    the in-memory machinery, then its probe partition streams against it
//!    page by page. A build partition still larger than the budget
//!    recursively re-partitions *both* streams at the next hash level
//!    (bounded depth, like the spilling aggregate); beyond that it is joined
//!    in memory — a single pathological key cannot be split further.
//!    Partition pairs are independent up to the final ordered merge, so with
//!    `parallelism > 1` they join concurrently on scoped worker threads
//!    (`scoped_workers`); concurrency is additionally capped so the
//!    workers' simultaneous build materialisations stay within roughly one
//!    memory budget (`budget / largest build partition`).
//! 3. **Merge** — each pair's output (sequence number attached) parks in an
//!    output stream; the drain phase k-way-merges all output streams by
//!    sequence number.
//!
//! **Byte-identity with [`super::join::HashJoin`]:** the in-memory join
//! emits, for each probe row in arrival order, its matches in ascending
//! build-row order (or one null-padded row for an unmatched LEFT JOIN probe
//! row). Partition streams preserve arrival order, a probe row's entire
//! output lands in exactly one partition (one key → one partition at every
//! level), and within a partition build rows stay in ascending global order —
//! so each output stream is sorted by sequence number and the k-way merge
//! reproduces the in-memory row order exactly, at any parallelism × batch
//! size. NULL join keys never match: null-keyed build rows are dropped at
//! partition time, null-keyed probe rows are dropped for inner joins and
//! routed to partition zero for LEFT JOINs (they only need padding).
//!
//! Residual (non-equi) ON conjuncts are handled exactly as for the in-memory
//! join: the planner puts a [`super::filter::Filter`] above the join for
//! inner joins and falls back to the nested-loop operator for LEFT JOINs,
//! where residuals decide *matching*, not post-join filtering.
//!
//! Oracle-backed keys (group-tag equality surrogates) are resolved through
//! the cross-batch accumulator when oracle batching is on: each side's raw
//! chunks are parked in the pager while operand rows coalesce, so the whole
//! side resolves in **one round trip per key call** and spilled chunks are
//! never re-resolved — the resolved virtual columns ride along when the
//! chunks stream back out for partitioning (and only the rendered
//! `__joinkey` enters the partition streams, so recursion levels pay zero
//! further trips). With batching off, keys resolve per accumulated chunk as
//! before. Tags come from a keyed PRF of the plaintext and are stable across
//! round trips, so partitioning by them is sound (rank surrogates never
//! appear in equi-join keys).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use sdb_sql::ast::{Expr, JoinKind};
use sdb_storage::{
    Column, ColumnDef, DataType, PageStream, PageStreamReader, PageStreamWriter, RecordBatch,
    Schema, Value,
};

use parking_lot::Mutex;

use sdb_storage::partition_ranges;

use super::join::{build_index, keys_of_batch, probe_batch, BuildSide};
use super::oracle::{collect_oracle_calls_all, resolve_for_exprs, OracleAccumulator};
use super::parallel::scoped_workers;
use super::spill_aggregate::{partition_of, FANOUT, MAX_LEVELS};
use super::{BoxedOperator, ExecContext, PhysicalOperator};
use crate::Result;

/// Bounded-memory hash equi-join. Output is byte-identical to the in-memory
/// [`super::join::HashJoin`]; see the [module docs](self) for the design.
pub struct GraceHashJoin<'a> {
    ctx: Arc<ExecContext<'a>>,
    left: BoxedOperator<'a>,
    right: BoxedOperator<'a>,
    kind: JoinKind,
    left_keys: Vec<Expr>,
    right_keys: Vec<Expr>,
    state: Option<State>,
}

/// What the build phase decided.
enum State {
    /// The build side fit in the budget: stream the probe side against the
    /// in-memory build, exactly like [`super::join::HashJoin`].
    InMemory(BuildSide),
    /// The build side spilled: every partition pair has been joined and the
    /// output streams are draining through a sequence-number merge.
    Drain(DrainState),
}

struct DrainState {
    /// The emitted schema: probe columns then build columns, no bookkeeping.
    output_schema: Schema,
    cursors: Vec<OutCursor>,
    /// Min-heap of `(frontier sequence number, cursor index)`. A probe row's
    /// entire output lives in one stream, so sequence numbers never collide
    /// across cursors.
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    /// The probe side produced at least one batch (possibly empty) — the
    /// in-memory operator then emits at least one (possibly empty) batch.
    probe_saw_batch: bool,
    emitted: bool,
}

impl<'a> GraceHashJoin<'a> {
    /// Creates a spilling hash join on the given oriented key pairs.
    pub fn new(
        ctx: Arc<ExecContext<'a>>,
        left: BoxedOperator<'a>,
        right: BoxedOperator<'a>,
        kind: JoinKind,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
    ) -> Self {
        assert!(
            !left_keys.is_empty(),
            "hash join requires at least one key pair"
        );
        GraceHashJoin {
            ctx,
            left,
            right,
            kind,
            left_keys,
            right_keys,
            state: None,
        }
    }

    /// Per-partition flush threshold: a small fraction of the budget so
    /// `FANOUT` writers cannot hoard it.
    fn flush_bytes(&self) -> usize {
        let limit = self.ctx.memory_budget().limit().unwrap_or(usize::MAX);
        (limit / (2 * FANOUT)).max(1)
    }

    /// The page schema of build partition streams: the rendered key, then the
    /// build side's original columns.
    fn build_page_schema(right_schema: &Schema) -> Schema {
        let mut defs = vec![ColumnDef::public("__joinkey", DataType::Varchar)];
        defs.extend(right_schema.columns().iter().cloned());
        Schema::new(defs)
    }

    /// The page schema of probe partition streams: arrival sequence number,
    /// rendered key, then the probe side's original columns.
    fn probe_page_schema(left_schema: &Schema) -> Schema {
        let mut defs = vec![
            ColumnDef::public("__seq", DataType::Int),
            ColumnDef::public("__joinkey", DataType::Varchar),
        ];
        defs.extend(left_schema.columns().iter().cloned());
        Schema::new(defs)
    }

    fn new_writers(&self, schema: &Schema) -> Vec<PageStreamWriter> {
        (0..FANOUT)
            .map(|_| {
                PageStreamWriter::new(schema.clone(), self.flush_bytes(), self.ctx.batch_size())
            })
            .collect()
    }

    /// Drains the build side, accumulating in memory and flipping to
    /// partitioned mode on budget overflow; then (in partitioned mode)
    /// drains the probe side into paired partitions and joins every pair.
    fn build(&mut self) -> Result<State> {
        let limit = self.ctx.memory_budget().limit().unwrap_or(usize::MAX);
        let mut acc: Option<RecordBatch> = None;
        let mut acc_bytes = 0usize;

        let mut overflow = false;
        while let Some(batch) = self.right.next_batch()? {
            acc_bytes += batch.approx_size_bytes();
            match &mut acc {
                None => acc = Some(batch),
                Some(a) => a.append(&batch)?,
            }
            if acc_bytes > limit {
                overflow = true;
                break;
            }
        }

        if !overflow {
            // Everything fit: the in-memory build path, byte for byte.
            let right_rows = acc.unwrap_or_else(|| RecordBatch::empty(Schema::empty()));
            let right_schema = right_rows.schema().clone();
            let mut right_keys = self.right_keys.clone();
            let working = resolve_for_exprs(&self.ctx, right_rows.clone(), &mut right_keys)?;
            let index = build_index(&self.ctx, &right_keys, &working)?;
            return Ok(State::InMemory(BuildSide {
                right_schema,
                right_rows,
                index,
            }));
        }

        // Partitioned build: route the accumulated chunk, then the rest of
        // the build input, into FANOUT keyed streams. When the keys carry
        // oracle calls (and batching is on), the raw chunks are parked in a
        // cross-batch accumulator first so the whole side resolves in one
        // coalesced round trip per call instead of one per chunk.
        let acc = acc.expect("overflow implies at least one batch");
        let right_schema = acc.schema().clone();
        let payload = right_schema.len();
        let build_schema = Self::build_page_schema(&right_schema);
        let mut build_writers = self.new_writers(&build_schema);
        match self.spill_resolver(&self.right_keys, &right_schema)? {
            Some(mut resolver) => {
                resolver.push(&self.ctx, &acc)?;
                while let Some(batch) = self.right.next_batch()? {
                    resolver.push(&self.ctx, &batch)?;
                }
                let mut epoch = resolver.flush(&self.ctx)?;
                while let Some(resolved) = epoch.next_resolved(&self.ctx)? {
                    self.partition_build_chunk(resolved, payload, &mut build_writers)?;
                }
            }
            None => {
                self.partition_build_chunk(acc, payload, &mut build_writers)?;
                while let Some(batch) = self.right.next_batch()? {
                    self.partition_build_chunk(batch, payload, &mut build_writers)?;
                }
            }
        }

        // Partitioned probe: drain the probe side into paired streams,
        // through an accumulator of its own when the probe keys carry
        // oracle calls.
        let mut probe_writers: Option<Vec<PageStreamWriter>> = None;
        let mut left_schema = Schema::empty();
        let mut probe_saw_batch = false;
        let mut next_seq = 0u64;
        let mut probe_resolver: Option<OracleAccumulator> = None;
        while let Some(batch) = self.left.next_batch()? {
            if !probe_saw_batch {
                probe_saw_batch = true;
                left_schema = batch.schema().clone();
                probe_writers = Some(self.new_writers(&Self::probe_page_schema(&left_schema)));
                probe_resolver = self.spill_resolver(&self.left_keys, &left_schema)?;
            }
            match &mut probe_resolver {
                Some(resolver) => resolver.push(&self.ctx, &batch)?,
                None => {
                    let writers = probe_writers.as_mut().expect("created above");
                    self.partition_probe_chunk(batch, left_schema.len(), writers, &mut next_seq)?;
                }
            }
        }
        if let Some(resolver) = probe_resolver {
            let writers = probe_writers.as_mut().expect("created with the resolver");
            let mut epoch = resolver.flush(&self.ctx)?;
            while let Some(resolved) = epoch.next_resolved(&self.ctx)? {
                self.partition_probe_chunk(resolved, left_schema.len(), writers, &mut next_seq)?;
            }
        }

        let pager = Arc::clone(self.ctx.pager());
        let build_streams = finish_writers(build_writers, &pager)?;
        self.ctx.stats_mut().join_build_partitions +=
            build_streams.iter().filter(|s| !s.is_empty()).count();
        let probe_streams = match probe_writers {
            Some(writers) => finish_writers(writers, &pager)?,
            // No probe batches: nothing can be emitted; abandon the build
            // partitions (their pages die with the free below).
            None => {
                for stream in build_streams {
                    stream.free(&pager)?;
                }
                return Ok(State::Drain(DrainState {
                    output_schema: Schema::empty(),
                    cursors: Vec::new(),
                    heap: BinaryHeap::new(),
                    probe_saw_batch: false,
                    emitted: false,
                }));
            }
        };

        // Join every partition pair, recursing on oversized build
        // partitions. Pairs are independent (their outputs merge by sequence
        // number below), so they fan out across workers.
        let output_schema = left_schema.join(&right_schema);
        let joiner = PairJoiner {
            ctx: &self.ctx,
            kind: self.kind,
            flush_bytes: self.flush_bytes(),
        };
        let pairs: Vec<(PageStream, PageStream)> =
            build_streams.into_iter().zip(probe_streams).collect();
        let outputs = joiner.join_pairs(pairs, &output_schema)?;

        let mut cursors = Vec::new();
        let mut heap = BinaryHeap::new();
        for stream in outputs {
            let mut cursor = OutCursor {
                reader: stream.reader(),
                current: None,
                row: 0,
            };
            cursor.fetch(&self.ctx)?;
            if let Some(seq) = cursor.frontier_seq()? {
                heap.push(Reverse((seq, cursors.len())));
            }
            cursors.push(cursor);
        }
        Ok(State::Drain(DrainState {
            output_schema,
            cursors,
            heap,
            probe_saw_batch,
            emitted: false,
        }))
    }

    /// A cross-batch accumulator for the oracle calls in `keys`, or `None`
    /// when there is nothing to coalesce (no calls, batching off, or the
    /// calls already materialised as columns of `schema`).
    fn spill_resolver(&self, keys: &[Expr], schema: &Schema) -> Result<Option<OracleAccumulator>> {
        if !self.ctx.oracle_batching() {
            return Ok(None);
        }
        let calls = collect_oracle_calls_all(keys);
        if calls.is_empty() {
            return Ok(None);
        }
        let resolver = OracleAccumulator::new(&self.ctx, &calls, schema)?;
        Ok((!resolver.is_passthrough()).then_some(resolver))
    }

    /// Routes one build-side chunk into the partition writers. Null-keyed
    /// rows are dropped — they can never match, and LEFT JOIN padding is
    /// driven by the probe side. Only the first `payload` columns of each
    /// row enter the stream (resolved key columns appended by the
    /// accumulator are bookkeeping, not join output).
    fn partition_build_chunk(
        &self,
        batch: RecordBatch,
        payload: usize,
        writers: &mut [PageStreamWriter],
    ) -> Result<()> {
        let mut keys = self.right_keys.clone();
        let working = resolve_for_exprs(&self.ctx, batch.clone(), &mut keys)?;
        let rendered = keys_of_batch(&self.ctx, &keys, &working)?;
        let pager = self.ctx.pager();
        let mut routed = 0usize;
        for (row, key) in rendered.into_iter().enumerate() {
            let Some(key) = key else { continue };
            let p = partition_of(&key, 0);
            let mut out = Vec::with_capacity(1 + payload);
            out.push(Value::Str(key));
            out.extend(batch.row(row).into_iter().take(payload));
            writers[p].push_row(pager, out)?;
            routed += 1;
        }
        self.ctx.stats_mut().join_spilled_rows += routed;
        Ok(())
    }

    /// Routes one probe-side chunk into the partition writers, tagging every
    /// row with its global arrival sequence number. Null-keyed rows are
    /// dropped for inner joins and routed (keyless) to partition zero for
    /// LEFT JOINs, where they will null-pad.
    fn partition_probe_chunk(
        &self,
        batch: RecordBatch,
        payload: usize,
        writers: &mut [PageStreamWriter],
        next_seq: &mut u64,
    ) -> Result<()> {
        let mut keys = self.left_keys.clone();
        let working = resolve_for_exprs(&self.ctx, batch.clone(), &mut keys)?;
        let rendered = keys_of_batch(&self.ctx, &keys, &working)?;
        let pager = self.ctx.pager();
        let mut routed = 0usize;
        for (row, key) in rendered.into_iter().enumerate() {
            let seq = *next_seq;
            *next_seq += 1;
            let (p, key_value) = match key {
                Some(key) => (partition_of(&key, 0), Value::Str(key)),
                None if self.kind == JoinKind::Left => (0, Value::Null),
                None => continue,
            };
            let mut out = Vec::with_capacity(2 + payload);
            out.push(Value::Int(seq as i64));
            out.push(key_value);
            out.extend(batch.row(row).into_iter().take(payload));
            writers[p].push_row(pager, out)?;
            routed += 1;
        }
        self.ctx.stats_mut().join_spilled_rows += routed;
        Ok(())
    }
}

/// The pair-joining phase of the Grace join, factored out of the operator so
/// it can be shared (`Sync`) across scoped worker threads: partition pairs
/// are independent up to the final sequence-number merge.
struct PairJoiner<'j, 'a> {
    ctx: &'j Arc<ExecContext<'a>>,
    kind: JoinKind,
    flush_bytes: usize,
}

impl PairJoiner<'_, '_> {
    fn new_writers(&self, schema: &Schema) -> Vec<PageStreamWriter> {
        (0..FANOUT)
            .map(|_| PageStreamWriter::new(schema.clone(), self.flush_bytes, self.ctx.batch_size()))
            .collect()
    }

    /// Joins every partition pair, fanning independent pairs out across
    /// scoped workers. Concurrency is capped both by the parallelism knob
    /// and by the budget: each in-flight pair may materialise up to one
    /// build partition, so at most `budget / largest build partition`
    /// workers run at once (serial when one partition alone approaches the
    /// budget). Outputs come back in pair order — the sequence-number merge
    /// above does not depend on it, but determinism keeps debugging sane.
    fn join_pairs(
        &self,
        pairs: Vec<(PageStream, PageStream)>,
        output_schema: &Schema,
    ) -> Result<Vec<PageStream>> {
        let workers = self.pair_workers(&pairs);
        if workers <= 1 {
            let mut outputs = Vec::new();
            for (build, probe) in pairs {
                self.join_partition(build, probe, 1, output_schema, &mut outputs)?;
            }
            return Ok(outputs);
        }
        let ranges = partition_ranges(pairs.len(), workers);
        let cells: Vec<Mutex<Option<(PageStream, PageStream)>>> =
            pairs.into_iter().map(|p| Mutex::new(Some(p))).collect();
        let results: Vec<Vec<PageStream>> = scoped_workers(workers, |i| {
            let mut outputs = Vec::new();
            if let Some(range) = ranges.get(i) {
                for idx in range.clone() {
                    let (build, probe) =
                        cells[idx].lock().take().expect("each pair is joined once");
                    self.join_partition(build, probe, 1, output_schema, &mut outputs)?;
                }
            }
            Ok(outputs)
        })?;
        Ok(results.into_iter().flatten().collect())
    }

    /// How many workers may join pairs concurrently without the combined
    /// build materialisations running far past the budget.
    fn pair_workers(&self, pairs: &[(PageStream, PageStream)]) -> usize {
        let parallelism = self.ctx.parallelism().min(pairs.len()).max(1);
        if parallelism <= 1 {
            return 1;
        }
        let Some(limit) = self.ctx.memory_budget().limit() else {
            return parallelism;
        };
        let largest = pairs.iter().map(|(b, _)| b.bytes()).max().unwrap_or(0);
        if largest == 0 {
            return parallelism;
        }
        parallelism.min((limit / largest).max(1))
    }

    /// Joins one build/probe partition pair, re-partitioning both at the
    /// next hash level while the build side still exceeds the budget (and
    /// levels remain). Leaf pairs append their joined rows, sequence numbers
    /// attached, to a fresh output stream.
    fn join_partition(
        &self,
        build: PageStream,
        probe: PageStream,
        level: u32,
        output_schema: &Schema,
        outputs: &mut Vec<PageStream>,
    ) -> Result<()> {
        let pager = Arc::clone(self.ctx.pager());
        if probe.is_empty() {
            // No probe rows: no output can exist (inner or LEFT).
            build.free(&pager)?;
            probe.free(&pager)?;
            return Ok(());
        }
        if build.is_empty() && self.kind != JoinKind::Left {
            // Inner join against nothing: no probe row can match.
            probe.free(&pager)?;
            return Ok(());
        }
        let limit = self.ctx.memory_budget().limit().unwrap_or(usize::MAX);
        if build.bytes() > limit && level <= MAX_LEVELS {
            // Still too big: split both sides by a different hash of the key.
            return self.repartition_pair(build, probe, level, output_schema, outputs);
        }

        // Leaf: materialise and index the build partition, stream the probe
        // partition against it page by page.
        let mut build_rows: Option<RecordBatch> = None;
        let mut reader = build.reader();
        while let Some(page) = reader.next_batch(&pager)? {
            match &mut build_rows {
                None => build_rows = Some(page.as_ref().clone()),
                Some(acc) => acc.append(&page)?,
            }
        }
        let mut index: HashMap<String, Vec<usize>> = HashMap::new();
        if let Some(rows) = &build_rows {
            for row in 0..rows.num_rows() {
                let key = rows.column(0).get(row).as_str()?.to_string();
                index.entry(key).or_default().push(row);
            }
        }

        let mut out = PageStreamWriter::new(
            out_page_schema(output_schema),
            self.flush_bytes,
            self.ctx.batch_size(),
        );
        let mut reader = probe.reader();
        while let Some(page) = reader.next_batch(&pager)? {
            for row in 0..page.num_rows() {
                let seq = page.column(0).get(row).clone();
                let key = page.column(1).get(row);
                let probe_values = || {
                    let mut v = Vec::with_capacity(output_schema.len() + 1);
                    v.push(seq.clone());
                    v.extend((2..page.num_columns()).map(|c| page.column(c).get(row).clone()));
                    v
                };
                let matches = match key {
                    Value::Null => None,
                    other => index.get(other.as_str()?),
                };
                match matches {
                    Some(rows) => {
                        let build_rows = build_rows.as_ref().expect("index nonempty");
                        for &rrow in rows {
                            let mut joined = probe_values();
                            joined.extend(
                                (1..build_rows.num_columns())
                                    .map(|c| build_rows.column(c).get(rrow).clone()),
                            );
                            out.push_row(&pager, joined)?;
                        }
                    }
                    None if self.kind == JoinKind::Left => {
                        let mut padded = probe_values();
                        let pad = output_schema.len() + 1 - padded.len();
                        padded.extend(std::iter::repeat_n(Value::Null, pad));
                        out.push_row(&pager, padded)?;
                    }
                    None => {}
                }
            }
        }
        let stream = out.finish(&pager)?;
        if !stream.is_empty() {
            outputs.push(stream);
        } else {
            stream.free(&pager)?;
        }
        Ok(())
    }

    /// Splits both streams of an oversized pair at hash level `level` and
    /// recurses into the sub-pairs at `level + 1`. Rows keep their attached
    /// key (and sequence number), so re-partitioning never re-evaluates
    /// expressions; order within every sub-stream stays arrival order.
    fn repartition_pair(
        &self,
        build: PageStream,
        probe: PageStream,
        level: u32,
        output_schema: &Schema,
        outputs: &mut Vec<PageStream>,
    ) -> Result<()> {
        let pager = Arc::clone(self.ctx.pager());
        let build_schema = build.schema().clone();
        let mut build_writers = self.new_writers(&build_schema);
        let mut reader = build.reader();
        let mut routed = 0usize;
        while let Some(page) = reader.next_batch(&pager)? {
            for row in 0..page.num_rows() {
                let p = partition_of(page.column(0).get(row).as_str()?, level);
                build_writers[p].push_row(&pager, page.row(row))?;
                routed += 1;
            }
        }

        let probe_schema = probe.schema().clone();
        let mut probe_writers = self.new_writers(&probe_schema);
        let mut reader = probe.reader();
        while let Some(page) = reader.next_batch(&pager)? {
            for row in 0..page.num_rows() {
                let p = match page.column(1).get(row) {
                    Value::Null => 0,
                    other => partition_of(other.as_str()?, level),
                };
                probe_writers[p].push_row(&pager, page.row(row))?;
                routed += 1;
            }
        }
        self.ctx.stats_mut().join_spilled_rows += routed;

        let build_streams = finish_writers(build_writers, &pager)?;
        self.ctx.stats_mut().join_build_partitions +=
            build_streams.iter().filter(|s| !s.is_empty()).count();
        let probe_streams = finish_writers(probe_writers, &pager)?;
        for (sub_build, sub_probe) in build_streams.into_iter().zip(probe_streams) {
            self.join_partition(sub_build, sub_probe, level + 1, output_schema, outputs)?;
        }
        Ok(())
    }
}

impl PhysicalOperator for GraceHashJoin<'_> {
    fn name(&self) -> &'static str {
        "GraceHashJoin"
    }

    fn describe(&self) -> String {
        format!(
            "{}({}, {})",
            self.name(),
            self.left.describe(),
            self.right.describe()
        )
    }

    fn open(&mut self) -> Result<()> {
        self.state = None;
        self.left.open()?;
        self.right.open()
    }

    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        if self.state.is_none() {
            let state = self.build()?;
            self.state = Some(state);
        }
        match self.state.as_mut().expect("built above") {
            State::InMemory(build) => {
                let Some(batch) = self.left.next_batch()? else {
                    return Ok(None);
                };
                probe_batch(&self.ctx, build, self.kind, &self.left_keys, batch).map(Some)
            }
            State::Drain(drain) => {
                if drain.heap.is_empty() {
                    // Match the in-memory operator on degenerate inputs: one
                    // empty combined-schema batch if the probe side produced
                    // batches, nothing at all otherwise.
                    if drain.emitted || !drain.probe_saw_batch {
                        return Ok(None);
                    }
                    drain.emitted = true;
                    return Ok(Some(RecordBatch::empty(drain.output_schema.clone())));
                }
                let mut columns: Vec<Column> = drain
                    .output_schema
                    .columns()
                    .iter()
                    .map(|c| Column::new(c.data_type))
                    .collect();
                let mut rows = 0;
                let batch_size = self.ctx.batch_size();
                while rows < batch_size {
                    let Some(Reverse((_, idx))) = drain.heap.pop() else {
                        break;
                    };
                    let cursor = &mut drain.cursors[idx];
                    {
                        let page = cursor.current.as_ref().expect("frontier implies a page");
                        for (j, column) in columns.iter_mut().enumerate() {
                            column.push_unchecked(page.column(1 + j).get(cursor.row).clone());
                        }
                    }
                    rows += 1;
                    cursor.advance(&self.ctx)?;
                    if let Some(seq) = cursor.frontier_seq()? {
                        drain.heap.push(Reverse((seq, idx)));
                    }
                }
                drain.emitted = true;
                Ok(Some(RecordBatch::new(
                    drain.output_schema.clone(),
                    columns,
                )?))
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        if let Some(State::Drain(mut drain)) = self.state.take() {
            for cursor in &mut drain.cursors {
                cursor.current = None;
                cursor.reader.release(self.ctx.pager());
            }
        }
        self.left.close()?;
        self.right.close()
    }
}

/// One output stream's cursor in the drain merge.
struct OutCursor {
    reader: PageStreamReader,
    current: Option<Arc<RecordBatch>>,
    row: usize,
}

impl OutCursor {
    /// Fetches the next non-empty page (consumed pages are freed by the
    /// reader as it goes).
    fn fetch(&mut self, ctx: &ExecContext<'_>) -> Result<()> {
        self.row = 0;
        self.current = self.reader.next_batch(ctx.pager())?;
        Ok(())
    }

    /// Moves past the current frontier row.
    fn advance(&mut self, ctx: &ExecContext<'_>) -> Result<()> {
        self.row += 1;
        let exhausted = self
            .current
            .as_ref()
            .is_some_and(|page| self.row >= page.num_rows());
        if exhausted {
            self.fetch(ctx)?;
        }
        Ok(())
    }

    /// The current row's sequence number, or `None` when exhausted.
    fn frontier_seq(&self) -> Result<Option<u64>> {
        match &self.current {
            None => Ok(None),
            Some(page) => Ok(Some(page.column(0).get(self.row).as_i64()? as u64)),
        }
    }
}

/// The page schema of output streams: the probe row's sequence number, then
/// the combined output columns.
fn out_page_schema(output_schema: &Schema) -> Schema {
    let mut defs = vec![ColumnDef::public("__seq", DataType::Int)];
    defs.extend(output_schema.columns().iter().cloned());
    Schema::new(defs)
}

/// Seals a set of partition writers into their streams.
fn finish_writers(
    writers: Vec<PageStreamWriter>,
    pager: &sdb_storage::Pager,
) -> Result<Vec<PageStream>> {
    writers
        .into_iter()
        .map(|w| w.finish(pager).map_err(Into::into))
        .collect()
}
