//! The partition-parallel execution layer: worker identity and scoped-thread
//! fan-out.
//!
//! Parallel operators split their (materialised) input into contiguous
//! morsels — via [`sdb_storage::RecordBatch::partition`] or
//! [`sdb_storage::partition_ranges`] — and run one closure per morsel on a
//! `std::thread::scope` (the same pattern the proxy's upload path uses for
//! row encryption). Each worker thread carries a *worker id* in a
//! thread-local, which [`super::ExecContext`] uses to route statistics to the
//! worker's own shard and RNG draws to the worker's own thread-indexed-seed
//! generator. Merging always happens in morsel order, so parallel results are
//! byte-identical to serial ones.

use std::cell::Cell;

use crate::Result;

thread_local! {
    /// The executing thread's worker id (0 on the main thread).
    static WORKER_ID: Cell<usize> = const { Cell::new(0) };
}

/// The current thread's worker id; selects the statistics shard and RNG.
pub(crate) fn current_worker() -> usize {
    WORKER_ID.with(Cell::get)
}

/// Runs `f` with the thread's worker id set to `id`, restoring the previous
/// id afterwards.
pub(crate) fn run_as_worker<R>(id: usize, f: impl FnOnce() -> R) -> R {
    WORKER_ID.with(|w| {
        let previous = w.replace(id);
        let result = f();
        w.set(previous);
        result
    })
}

/// Fan-outs keep at least this many rows per worker: below it, spawning and
/// joining a thread costs more than the per-row work it would absorb, so
/// small inputs stay on the calling thread.
pub(crate) const MIN_MORSEL_ROWS: usize = 128;

/// How many workers a fan-out over `rows` rows should actually use: never
/// more than the context allows, and never so many that a worker's morsel
/// drops below [`MIN_MORSEL_ROWS`].
pub(crate) fn effective_workers(parallelism: usize, rows: usize) -> usize {
    parallelism.min(rows.div_ceil(MIN_MORSEL_ROWS)).max(1)
}

/// Fans `task` out across `workers` scoped threads (worker `i` receives index
/// `i`) and collects the results in worker order. With one worker the task
/// runs inline on the calling thread. A panicking worker propagates the
/// panic; the first worker error (in worker order) is returned.
pub(crate) fn scoped_workers<T: Send>(
    workers: usize,
    task: impl Fn(usize) -> Result<T> + Sync,
) -> Result<Vec<T>> {
    if workers <= 1 {
        return Ok(vec![task(0)?]);
    }
    std::thread::scope(|scope| {
        let task = &task;
        let handles: Vec<_> = (0..workers)
            .map(|i| scope.spawn(move || run_as_worker(i, || task(i))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_id_is_scoped_and_restored() {
        assert_eq!(current_worker(), 0);
        let inner = run_as_worker(3, || {
            let nested = run_as_worker(5, current_worker);
            (current_worker(), nested)
        });
        assert_eq!(inner, (3, 5));
        assert_eq!(current_worker(), 0);
    }

    #[test]
    fn scoped_workers_preserve_order_and_ids() {
        let results = scoped_workers(4, |i| Ok((i, current_worker()))).unwrap();
        assert_eq!(results, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn scoped_workers_propagate_errors() {
        let err = scoped_workers(3, |i| {
            if i == 1 {
                Err(crate::EngineError::Unsupported {
                    detail: "boom".into(),
                })
            } else {
                Ok(i)
            }
        });
        assert!(err.is_err());
    }

    #[test]
    fn effective_worker_clamping() {
        assert_eq!(effective_workers(8, 3), 1, "tiny inputs stay serial");
        assert_eq!(effective_workers(8, 300), 3, "morsels keep ≥128 rows");
        assert_eq!(effective_workers(2, 100_000), 2);
        assert_eq!(effective_workers(4, 0), 1);
    }
}
