//! The physical operator pipeline.
//!
//! Every relational operator is a [`PhysicalOperator`]: a Volcano-style
//! iterator over [`RecordBatch`]es with an `open` / `next_batch` / `close`
//! lifecycle. [`crate::planner::PhysicalPlanner`] lowers a
//! [`sdb_sql::plan::LogicalPlan`] into a tree of boxed operators; the tree
//! shares one [`ExecContext`] carrying the catalog, the UDF registry, the
//! optional DO-proxy oracle and the run's statistics.
//!
//! One file per operator:
//!
//! * [`scan`] — base-table scan, chunked into batches, with a
//!   morsel-parallel variant;
//! * [`filter`] — row filtering over a predicate;
//! * [`project`] — projection / expression evaluation;
//! * [`join`] — hash equi-join (parallel build side) and the nested-loop
//!   fallback;
//! * [`grace_join`] — bounded-memory Grace-style spilling hash join
//!   (selected when a [`MemoryBudget`] is set);
//! * [`aggregate`] — hash aggregation with grouping, with a partitioned
//!   parallel variant;
//! * [`sort`] — sort, limit and distinct (the order-shaping operators);
//! * [`external_sort`] — bounded-memory external merge sort through the
//!   pager (selected when a [`MemoryBudget`] is set);
//! * [`spill_aggregate`] — bounded-memory partition-and-spill aggregation
//!   (likewise budget-selected);
//! * [`oracle`] — the SDB oracle-call operator resolving interactive protocol
//!   steps (comparisons, group tags, ranks) with one batched round trip per
//!   call;
//! * [`parallel`] — the partition-parallel execution layer (worker identity,
//!   scoped-thread fan-out).
//!
//! ## Intra-query parallelism
//!
//! The context is `Send + Sync` ([`PhysicalOperator`] requires `Send`, so
//! whole plans can cross threads) and the blocking operators fan their heavy
//! phases out across `ctx.parallelism()` workers using `std::thread::scope`
//! (see [`parallel`]):
//!
//! * [`scan::ParallelTableScan`] slices the table snapshot into per-worker
//!   morsels and materialises the output batches concurrently;
//! * [`join::HashJoin`] partitions its materialised build side and builds
//!   per-worker hash indexes that are merged in morsel order;
//! * [`aggregate::ParallelHashAggregate`] partitions its input via
//!   [`RecordBatch::partition`], accumulates per-worker group states and
//!   merges them at drain in global first-occurrence order.
//!
//! Partitioning is always by contiguous, in-order morsels and every merge
//! step preserves morsel order, so parallel execution is **byte-identical**
//! to serial execution for the same plan.
//!
//! ## Knobs
//!
//! * `parallelism` (default: available cores; `1` = the serial plans) decides
//!   whether [`crate::planner::PhysicalPlanner`] inserts the parallel
//!   variants and how many workers each fan-out uses.
//! * `batch_size` (default [`DEFAULT_BATCH_SIZE`]) is the number of rows per
//!   batch flowing between operators.
//! * `memory_budget` (default unlimited; `SDB_TEST_MEM_BUDGET` overrides the
//!   default in bytes) bounds what the blocking operators materialise — when
//!   limited, sort, aggregation and hash joins lower to their spilling
//!   variants, which park overflow in the context's [`Pager`] and produce
//!   byte-identical results.
//!
//! All are fields on [`ExecContext`] with builder-style setters, exposed
//! through [`crate::SpEngine::with_parallelism`],
//! [`crate::SpEngine::with_batch_size`] and
//! [`crate::SpEngine::with_memory_budget`].
//!
//! ## Statistics and RNG under parallelism
//!
//! Statistics are sharded per worker ([`crate::stats::ShardedStats`]): worker
//! `i` accumulates into shard `i` without contending with its siblings, and
//! [`ExecContext::stats`] merges all shards into one snapshot. The
//! comparison-blinding RNG is likewise per worker, with thread-indexed seeds
//! (`seed + worker`) so seeded runs stay deterministic at any parallelism.

pub mod aggregate;
pub mod expr;
pub mod external_sort;
pub mod filter;
pub mod grace_join;
pub mod join;
pub mod oracle;
pub mod parallel;
pub mod project;
pub mod scan;
pub mod sort;
pub mod spill_aggregate;

#[cfg(test)]
mod tests;

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sdb_sql::ast::Query;
use sdb_sql::plan::PlanBuilder;
use sdb_storage::{CancelToken, Catalog, MemoryBudget, Pager, RecordBatch, Schema, Value};

use crate::eval::{Evaluator, SubqueryResolver};
use crate::secure::OracleRef;
use crate::stats::{ExecutionStats, ShardedStats};
use crate::udf::UdfRegistry;
use crate::{EngineError, Result};

/// Default number of rows per batch flowing between operators.
pub const DEFAULT_BATCH_SIZE: usize = 4096;

/// A physical operator: a batched iterator over records.
///
/// Lifecycle: `open()` once, `next_batch()` until it returns `None`, then
/// `close()`. Operators own their children; blocking operators (hash join
/// build side, aggregation, sort) drain their input during `open()` or on the
/// first `next_batch()` call.
///
/// `Send` is a supertrait so whole plans can cross threads: a boxed operator
/// tree may be built on one thread and driven on another.
pub trait PhysicalOperator: Send {
    /// A short name for debugging and plan rendering (e.g. `"HashJoin"`).
    fn name(&self) -> &'static str;

    /// A compact one-line rendering of this operator subtree, e.g.
    /// `"Limit(Project(TableScan))"`. Leaves use their name; operators with
    /// children override this to include them.
    fn describe(&self) -> String {
        self.name().to_string()
    }

    /// Prepares the operator (and its children) for execution.
    fn open(&mut self) -> Result<()>;

    /// Produces the next batch, or `None` when exhausted.
    fn next_batch(&mut self) -> Result<Option<RecordBatch>>;

    /// Releases resources (and closes children).
    fn close(&mut self) -> Result<()>;
}

/// A boxed operator tied to the execution context's lifetime.
pub type BoxedOperator<'a> = Box<dyn PhysicalOperator + 'a>;

/// Shared execution state for one query: catalog and registry references, the
/// oracle connection, sharded statistics, the per-worker blinding RNGs and
/// the subquery cache.
///
/// The context is `Send + Sync` and shared as an `Arc` so parallel operators
/// can hand it to scoped worker threads. Worker-local state (the statistics
/// shard, the RNG) is selected by the thread's worker id (see [`parallel`]).
pub struct ExecContext<'a> {
    catalog: &'a Catalog,
    registry: &'a UdfRegistry,
    /// The oracle operators talk to — `oracle_raw`, possibly wrapped in a
    /// [`crate::secure::LatencyOracle`] when latency injection is configured.
    oracle: Option<OracleRef>,
    /// The oracle exactly as the caller provided it (subquery contexts and
    /// latency re-wrapping always start from here, so latency can never be
    /// applied twice).
    oracle_raw: Option<OracleRef>,
    /// Injected per-request oracle latency (`SDB_TEST_ORACLE_LATENCY_MS` or
    /// [`Self::with_oracle_latency`]); `None` = no injection.
    oracle_latency: Option<std::time::Duration>,
    /// The encrypted-value memo: answers of past sign/group-tag requests,
    /// keyed by call fingerprint + operand ciphertexts, shared with subquery
    /// contexts so hot answers never re-travel the link.
    oracle_memo: Arc<oracle::OracleMemo>,
    /// Whether [`oracle::OracleResolve`] (and the Grace join's key
    /// resolution) coalesce operand rows across input batches into one
    /// round trip per registered call (default on; `false` restores the
    /// one-trip-per-call-per-batch behavior).
    oracle_batching: bool,
    stats: ShardedStats,
    /// One blinding RNG per worker; seeded runs use thread-indexed seeds
    /// (`seed + worker`) so parallelism cannot change a seeded run's stream.
    rngs: Vec<Mutex<StdRng>>,
    rng_seed: Option<u64>,
    /// Results of uncorrelated subqueries: bucketed by the cheap SQL
    /// rendering, then matched by full structural equality on the query AST —
    /// so two parameterisations that happen to display the same SQL text
    /// cannot collide, and cache hits never rebuild a plan.
    subquery_cache: Mutex<HashMap<String, Vec<(Query, RecordBatch)>>>,
    batch_size: usize,
    parallelism: usize,
    /// Whether the cost-based optimizer rewrites logical plans before
    /// physical planning (default on; reordering only happens where
    /// statistics exist).
    optimizer: bool,
    /// Test/CI mode (`SDB_TEST_ANALYZE`): analyze missing table statistics
    /// on demand at plan time, so whole suites exercise reordered plans.
    auto_analyze: bool,
    /// Whether operators may route eligible work through the vectorised
    /// columnar kernels (default on; `SDB_TEST_SCALAR_EVAL=1` forces the
    /// scalar row-at-a-time paths for byte-identity cross-checks).
    vectorised: bool,
    /// How much the blocking operators may materialise before spilling.
    budget: MemoryBudget,
    /// The query's buffer pool; spilling operators park runs and partitions
    /// here. Shared so subtrees on different worker threads account against
    /// one budget.
    pager: Arc<Pager>,
    /// The per-query execution trace, when tracing is on (default off).
    /// `Some` makes [`crate::planner::PhysicalPlanner`] wrap every operator
    /// in a [`crate::trace::InstrumentedOperator`] and hooks pager / oracle
    /// events into the owning span; `None` costs nothing.
    trace: Option<Arc<crate::trace::QueryTrace>>,
    /// Cooperative cancellation flag, polled at operator `next_batch` loops,
    /// oracle flushes and pager admissions. Defaults to a never-cancelled
    /// token; the serving layer installs a real one per query.
    cancel: CancelToken,
}

impl<'a> ExecContext<'a> {
    /// Creates a context. `oracle` is the connection back to the DO proxy for
    /// interactive protocol steps; pass `None` for plaintext-only workloads.
    ///
    /// Parallelism defaults to the number of available cores; batch size to
    /// [`DEFAULT_BATCH_SIZE`].
    pub fn new(catalog: &'a Catalog, registry: &'a UdfRegistry, oracle: Option<OracleRef>) -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // `SDB_TEST_MEM_BUDGET` (bytes) forces a default budget so whole test
        // suites can be re-run through the spill paths; an explicit
        // `with_memory_budget` still overrides it.
        let budget = MemoryBudget::from_env();
        // `SDB_TEST_ORACLE_LATENCY_MS` injects a per-request sleep on the
        // oracle link so whole suites (and the benches) can be re-run over a
        // simulated WAN; an explicit `with_oracle_latency` still overrides it.
        let oracle_latency = std::env::var("SDB_TEST_ORACLE_LATENCY_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|ms| *ms > 0)
            .map(std::time::Duration::from_millis);
        ExecContext {
            catalog,
            registry,
            oracle: Self::wrapped_oracle(&oracle, oracle_latency),
            oracle_raw: oracle,
            oracle_latency,
            oracle_memo: Arc::new(oracle::OracleMemo::default()),
            oracle_batching: true,
            stats: ShardedStats::new(parallelism),
            rngs: Self::entropy_rngs(parallelism),
            rng_seed: None,
            subquery_cache: Mutex::new(HashMap::new()),
            batch_size: DEFAULT_BATCH_SIZE,
            parallelism,
            optimizer: true,
            auto_analyze: std::env::var("SDB_TEST_ANALYZE")
                .map(|v| v == "1")
                .unwrap_or(false),
            // `SDB_TEST_SCALAR_EVAL=1` re-runs whole suites through the
            // scalar row-at-a-time paths; an explicit `with_vectorised`
            // still overrides it.
            vectorised: std::env::var("SDB_TEST_SCALAR_EVAL")
                .map(|v| v != "1")
                .unwrap_or(true),
            pager: Arc::new(Pager::new(&budget)),
            budget,
            trace: None,
            cancel: CancelToken::new(),
        }
    }

    /// The oracle operators should actually call: the raw connection, wrapped
    /// in a [`crate::secure::LatencyOracle`] when latency injection is on.
    fn wrapped_oracle(
        raw: &Option<OracleRef>,
        latency: Option<std::time::Duration>,
    ) -> Option<OracleRef> {
        match (raw, latency) {
            (Some(oracle), Some(latency)) => Some(Arc::new(crate::secure::LatencyOracle::new(
                Arc::clone(oracle),
                latency,
            ))),
            (raw, _) => raw.clone(),
        }
    }

    fn entropy_rngs(workers: usize) -> Vec<Mutex<StdRng>> {
        // One OS entropy draw, then derived per-worker streams: seeding every
        // worker from the OS would cost one entropy read per core per query.
        let mut master = StdRng::from_entropy();
        (0..workers.max(1))
            .map(|_| Mutex::new(StdRng::seed_from_u64(master.gen())))
            .collect()
    }

    fn seeded_rngs(seed: u64, workers: usize) -> Vec<Mutex<StdRng>> {
        (0..workers.max(1) as u64)
            .map(|i| Mutex::new(StdRng::seed_from_u64(seed.wrapping_add(i))))
            .collect()
    }

    /// Uses fixed, thread-indexed RNG seeds for the comparison-blinding
    /// factors (worker `i` draws from `seed + i`; tests only).
    pub fn with_rng_seed(self, seed: u64) -> Self {
        ExecContext {
            rngs: Self::seeded_rngs(seed, self.parallelism),
            rng_seed: Some(seed),
            ..self
        }
    }

    /// Bounds how much memory the blocking operators (sort, aggregation) may
    /// materialise before spilling through the pager, and rebuilds the
    /// query's buffer pool under the new budget. With a limited budget the
    /// planner selects the spilling operator variants
    /// ([`crate::operators::external_sort::ExternalSort`],
    /// [`crate::operators::spill_aggregate::SpillingHashAggregate`]), whose
    /// output is byte-identical to the in-memory ones.
    pub fn with_memory_budget(self, budget: MemoryBudget) -> Self {
        let pager = Arc::new(Pager::new(&budget));
        // The budget rebuilds the buffer pool, so the trace's pager hook (if
        // tracing was enabled first) and the cancellation token must be
        // re-installed on the new lease.
        if let Some(trace) = &self.trace {
            crate::trace::install_pager_observer(&pager, trace);
        }
        pager.set_cancel_token(self.cancel.clone());
        ExecContext {
            pager,
            budget,
            ..self
        }
    }

    /// Replaces the query's pager lease — the serving layer's hook for
    /// running many queries against one shared, globally-budgeted
    /// [`sdb_storage::BufferPool`] (create the lease with
    /// [`Pager::shared`]). The trace's pager hook and the cancellation token
    /// are installed on the new lease, and the context's planning budget
    /// becomes the lease's resident-byte *quota* inside the shared pool —
    /// so a query bounded to a share of the global budget spills once its
    /// own pages exceed that share, exactly as it would in a private pool
    /// of that size. The planning budget itself is untouched, so set
    /// [`Self::with_memory_budget`] *first* to the budget the plan should
    /// assume.
    pub fn with_pager(self, pager: Arc<Pager>) -> Self {
        if let Some(trace) = &self.trace {
            crate::trace::install_pager_observer(&pager, trace);
        }
        pager.set_cancel_token(self.cancel.clone());
        pager.set_quota(self.budget.limit());
        ExecContext { pager, ..self }
    }

    /// Installs the cancellation token polled by this query's operators,
    /// oracle flushes and pager (replacing the default never-cancelled
    /// token). Cancelling the token makes the next poll fail with
    /// [`sdb_storage::StorageError::Cancelled`]; the query then unwinds
    /// through its normal error path, releasing its pager lease, spill
    /// files and pins.
    pub fn with_cancel_token(self, cancel: CancelToken) -> Self {
        self.pager.set_cancel_token(cancel.clone());
        ExecContext { cancel, ..self }
    }

    /// Overrides the batch size (power users / tests).
    ///
    /// Panics if `batch_size` is zero.
    pub fn with_batch_size(self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        ExecContext { batch_size, ..self }
    }

    /// Enables or disables the cost-based optimizer (default on; `false`
    /// keeps the purely syntactic plans).
    pub fn with_optimizer(self, optimizer: bool) -> Self {
        ExecContext { optimizer, ..self }
    }

    /// Enables or disables the vectorised columnar kernels (default on;
    /// `false` forces the scalar row-at-a-time paths everywhere). Kernel
    /// output is byte-identical to the scalar paths — this knob exists for
    /// the equivalence cross-checks and for benchmarking the scalar
    /// baseline.
    pub fn with_vectorised(self, vectorised: bool) -> Self {
        ExecContext { vectorised, ..self }
    }

    /// Enables or disables per-query execution tracing (default off; the
    /// `SDB_TRACE=1` env var flips [`crate::SpEngine`]'s default). With
    /// tracing on, the planner wraps every physical operator in a
    /// [`crate::trace::InstrumentedOperator`] recording per-span wall time,
    /// batch/row counts and attributed counter deltas, and pager spill /
    /// eviction events are attached to the owning span. Tracing never
    /// changes query output — instrumented plans are byte-identical.
    pub fn with_tracing(self, tracing: bool) -> Self {
        if !tracing {
            return ExecContext {
                trace: None,
                ..self
            };
        }
        let trace = Arc::new(crate::trace::QueryTrace::new());
        crate::trace::install_pager_observer(&self.pager, &trace);
        ExecContext {
            trace: Some(trace),
            ..self
        }
    }

    /// The active query trace, when tracing is on.
    pub fn trace(&self) -> Option<&Arc<crate::trace::QueryTrace>> {
        self.trace.as_ref()
    }

    /// Enables or disables cross-batch oracle batching (default on). With
    /// batching off, [`oracle::OracleResolve`] pays one round trip per
    /// registered call per input batch and the Grace hash join re-resolves
    /// key calls per spilled chunk — the pre-batching behavior, kept for the
    /// byte-identity cross-checks and for cost-model comparisons.
    pub fn with_oracle_batching(self, oracle_batching: bool) -> Self {
        ExecContext {
            oracle_batching,
            ..self
        }
    }

    /// Injects a fixed per-request latency on the oracle link (tests and
    /// benches; simulates the SP↔proxy WAN round trip). Always rebuilds the
    /// wrapper from the raw connection, so repeated calls never stack sleeps.
    pub fn with_oracle_latency(self, latency: std::time::Duration) -> Self {
        let latency = Some(latency);
        ExecContext {
            oracle: Self::wrapped_oracle(&self.oracle_raw, latency),
            oracle_latency: latency,
            ..self
        }
    }

    /// Overrides the number of workers parallel operators may use (`1`
    /// selects the serial plans). Resizes the statistics shards and the
    /// per-worker RNG pool, preserving any configured seed.
    ///
    /// Panics if `parallelism` is zero.
    pub fn with_parallelism(self, parallelism: usize) -> Self {
        assert!(parallelism > 0, "parallelism must be positive");
        if parallelism == self.parallelism {
            return self;
        }
        ExecContext {
            stats: ShardedStats::new(parallelism),
            rngs: match self.rng_seed {
                Some(seed) => Self::seeded_rngs(seed, parallelism),
                None => Self::entropy_rngs(parallelism),
            },
            parallelism,
            ..self
        }
    }

    /// The catalog queries run against.
    pub fn catalog(&self) -> &'a Catalog {
        self.catalog
    }

    /// The scalar-UDF registry.
    pub fn registry(&self) -> &'a UdfRegistry {
        self.registry
    }

    /// The DO-proxy oracle, if connected (latency-wrapped when injection is
    /// configured).
    pub fn oracle(&self) -> Option<&OracleRef> {
        self.oracle.as_ref()
    }

    /// Whether cross-batch oracle batching is on.
    pub fn oracle_batching(&self) -> bool {
        self.oracle_batching
    }

    /// The shared encrypted-value memo for oracle answers.
    pub(crate) fn oracle_memo(&self) -> &oracle::OracleMemo {
        &self.oracle_memo
    }

    /// Rows per batch.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of workers parallel operators may fan out to (`1` = serial).
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// The memory budget for blocking operators.
    pub fn memory_budget(&self) -> &MemoryBudget {
        &self.budget
    }

    /// Whether the cost-based optimizer runs before physical planning.
    pub fn optimizer_enabled(&self) -> bool {
        self.optimizer
    }

    /// Whether operators may route eligible work through the vectorised
    /// columnar kernels.
    pub fn vectorised(&self) -> bool {
        self.vectorised
    }

    /// A configured [`crate::optimizer::Optimizer`] for this context's
    /// catalog and knobs.
    pub fn optimizer(&self) -> crate::optimizer::Optimizer<'a> {
        crate::optimizer::Optimizer::new(self.catalog)
            .with_batch_size(self.batch_size)
            .with_budget(self.budget.limit())
            .with_auto_analyze(self.auto_analyze)
            .with_oracle_batching(self.oracle_batching)
    }

    /// The query's buffer pool lease.
    pub fn pager(&self) -> &Arc<Pager> {
        &self.pager
    }

    /// The query's cancellation token.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Polls the cancellation token; operators call this at the top of their
    /// `next_batch` loops. Fails with [`EngineError::Storage`] wrapping
    /// [`sdb_storage::StorageError::Cancelled`] once cancelled.
    pub fn check_cancelled(&self) -> Result<()> {
        self.cancel.check()?;
        Ok(())
    }

    /// A snapshot of the statistics accumulated so far, merged across all
    /// worker shards, with the pager's spill counters folded in.
    pub fn stats(&self) -> ExecutionStats {
        let mut snapshot = self.stats.snapshot();
        snapshot.absorb_pager(&self.pager.stats());
        snapshot
    }

    /// Locks the current worker's statistics shard (operators record as they
    /// run; workers never contend with their siblings).
    pub(crate) fn stats_mut(&self) -> MutexGuard<'_, ExecutionStats> {
        self.stats.shard(parallel::current_worker())
    }

    /// Locks the current worker's blinding RNG.
    pub(crate) fn rng_mut(&self) -> MutexGuard<'_, StdRng> {
        self.rngs[parallel::current_worker() % self.rngs.len()].lock()
    }

    /// An expression evaluator wired to this context's registry and subquery
    /// resolution.
    pub(crate) fn evaluator(&self) -> Evaluator<'_> {
        Evaluator::new(self.registry).with_subqueries(self)
    }

    /// Folds an evaluator's UDF counter into the statistics.
    pub(crate) fn record_udf_calls(&self, evaluator: &Evaluator<'_>) {
        self.stats_mut().udf_calls += evaluator.udf_calls();
    }
}

impl SubqueryResolver for ExecContext<'_> {
    fn scalar(&self, query: &Query) -> Result<Value> {
        let batch = self.run_subquery(query)?;
        if batch.num_columns() != 1 {
            return Err(EngineError::Expression {
                detail: "scalar subquery must return exactly one column".into(),
            });
        }
        match batch.num_rows() {
            0 => Ok(Value::Null),
            1 => Ok(batch.column(0).get(0).clone()),
            n => Err(EngineError::Expression {
                detail: format!("scalar subquery returned {n} rows"),
            }),
        }
    }

    fn column(&self, query: &Query) -> Result<Vec<Value>> {
        let batch = self.run_subquery(query)?;
        if batch.num_columns() == 0 {
            return Ok(vec![]);
        }
        Ok(batch.column(0).values().to_vec())
    }
}

impl ExecContext<'_> {
    /// Plans and runs an uncorrelated subquery against the same catalog,
    /// registry and oracle, caching the result. Entries are bucketed by the
    /// SQL rendering and matched by structural equality on the query AST
    /// (literal types and every parameter value included), so distinct
    /// parameterisations that display the same SQL text get distinct cache
    /// entries. The subquery's statistics are merged into this context's
    /// totals.
    ///
    /// The whole lookup-or-execute runs under the cache lock: concurrent
    /// parallel workers needing the same subquery wait for the first
    /// execution instead of racing to duplicate it (and its oracle round
    /// trips and statistics). Subqueries themselves run serially — they may
    /// already be executing on a parallel worker, and nesting thread scopes
    /// per subquery would oversubscribe the machine for work that is cached
    /// after its first execution.
    fn run_subquery(&self, query: &Query) -> Result<RecordBatch> {
        let key = query.to_string();
        let mut cache = self.subquery_cache.lock();
        if let Some(entries) = cache.get(&key) {
            if let Some((_, batch)) = entries.iter().find(|(q, _)| q == query) {
                return Ok(batch.clone());
            }
        }
        let plan = PlanBuilder::build(query)?;
        // Start from the *raw* oracle so the latency wrapper is applied
        // exactly once, and share the parent's encrypted-value memo so
        // answers the parent already paid for never re-travel the link.
        let mut sub = ExecContext::new(self.catalog, self.registry, self.oracle_raw.clone())
            .with_batch_size(self.batch_size)
            .with_memory_budget(self.budget.clone())
            .with_optimizer(self.optimizer)
            .with_oracle_batching(self.oracle_batching)
            .with_vectorised(self.vectorised)
            .with_parallelism(1);
        sub.oracle = Self::wrapped_oracle(&sub.oracle_raw, self.oracle_latency);
        sub.oracle_latency = self.oracle_latency;
        sub.oracle_memo = Arc::clone(&self.oracle_memo);
        // Cancelling the parent must also stop a subquery in flight.
        sub = sub.with_cancel_token(self.cancel.clone());
        // Attribute the subquery's wall time to the parent: `total_time` is
        // only stamped at the top-level execute, so without this counter a
        // subquery-heavy parent under-reports where its time went. Cache
        // hits return above and cost (and record) nothing.
        let started = std::time::Instant::now();
        let batch = execute_plan(&Arc::new(sub), &plan, |sub_stats| {
            self.stats_mut().merge(sub_stats);
        })?;
        self.stats_mut().subquery_time += started.elapsed();
        cache
            .entry(key)
            .or_default()
            .push((query.clone(), batch.clone()));
        Ok(batch)
    }
}

/// Plans and drains a logical plan to completion, concatenating all produced
/// batches. `on_finish` receives the context's final statistics (used to merge
/// subquery stats into a parent). When the context's optimizer knob is on,
/// the logical plan passes through the cost-based optimizer first.
pub(crate) fn execute_plan<'a>(
    ctx: &Arc<ExecContext<'a>>,
    plan: &sdb_sql::plan::LogicalPlan,
    on_finish: impl FnOnce(&ExecutionStats),
) -> Result<RecordBatch> {
    let optimized;
    let plan = if ctx.optimizer_enabled() {
        optimized = ctx.optimizer().optimize(plan);
        &optimized
    } else {
        plan
    };
    let mut root = crate::planner::PhysicalPlanner::new(Arc::clone(ctx)).plan(plan)?;
    let batch = drain_operator(root.as_mut())?;
    ctx.stats_mut().rows_returned = batch.num_rows();
    on_finish(&ctx.stats());
    Ok(batch)
}

/// Runs one operator's full lifecycle, concatenating its output batches.
pub fn drain_operator(root: &mut dyn PhysicalOperator) -> Result<RecordBatch> {
    root.open()?;
    let result = materialize_input(root)?;
    root.close()?;
    Ok(result.unwrap_or_else(|| RecordBatch::empty(Schema::empty())))
}

/// Drains an operator into a single materialised batch, for blocking
/// consumers (join build sides, aggregation, sort). Returns `None` when the
/// input produced no batches at all. Accumulates with in-place appends, so
/// the total cost is linear in the rows produced.
pub(crate) fn materialize_input(input: &mut dyn PhysicalOperator) -> Result<Option<RecordBatch>> {
    let mut result: Option<RecordBatch> = None;
    while let Some(batch) = input.next_batch()? {
        match &mut result {
            None => result = Some(batch),
            Some(acc) => acc.append(&batch)?,
        }
    }
    Ok(result)
}
