//! The physical operator pipeline.
//!
//! Every relational operator is a [`PhysicalOperator`]: a Volcano-style
//! iterator over [`RecordBatch`]es with an `open` / `next_batch` / `close`
//! lifecycle. [`crate::planner::PhysicalPlanner`] lowers a
//! [`sdb_sql::plan::LogicalPlan`] into a tree of boxed operators; the tree
//! shares one [`ExecContext`] carrying the catalog, the UDF registry, the
//! optional DO-proxy oracle and the run's statistics.
//!
//! One file per operator:
//!
//! * [`scan`] — base-table scan, chunked into batches;
//! * [`filter`] — row filtering over a predicate;
//! * [`project`] — projection / expression evaluation;
//! * [`join`] — hash equi-join and the nested-loop fallback;
//! * [`aggregate`] — hash aggregation with grouping;
//! * [`sort`] — sort, limit and distinct (the order-shaping operators);
//! * [`oracle`] — the SDB oracle-call operator resolving interactive protocol
//!   steps (comparisons, group tags, ranks) with one batched round trip per
//!   call.

pub mod aggregate;
pub mod expr;
pub mod filter;
pub mod join;
pub mod oracle;
pub mod project;
pub mod scan;
pub mod sort;

#[cfg(test)]
mod tests;

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sdb_sql::ast::Query;
use sdb_sql::plan::PlanBuilder;
use sdb_storage::{Catalog, RecordBatch, Schema, Value};

use crate::eval::{Evaluator, SubqueryResolver};
use crate::secure::OracleRef;
use crate::stats::ExecutionStats;
use crate::udf::UdfRegistry;
use crate::{EngineError, Result};

/// Default number of rows per batch flowing between operators.
pub const DEFAULT_BATCH_SIZE: usize = 4096;

/// A physical operator: a batched iterator over records.
///
/// Lifecycle: `open()` once, `next_batch()` until it returns `None`, then
/// `close()`. Operators own their children; blocking operators (hash join
/// build side, aggregation, sort) drain their input during `open()` or on the
/// first `next_batch()` call.
pub trait PhysicalOperator {
    /// A short name for debugging and plan rendering (e.g. `"HashJoin"`).
    fn name(&self) -> &'static str;

    /// Prepares the operator (and its children) for execution.
    fn open(&mut self) -> Result<()>;

    /// Produces the next batch, or `None` when exhausted.
    fn next_batch(&mut self) -> Result<Option<RecordBatch>>;

    /// Releases resources (and closes children).
    fn close(&mut self) -> Result<()>;
}

/// A boxed operator tied to the execution context's lifetime.
pub type BoxedOperator<'a> = Box<dyn PhysicalOperator + 'a>;

/// Shared execution state for one query: catalog and registry references, the
/// oracle connection, statistics, the blinding RNG and the subquery cache.
pub struct ExecContext<'a> {
    catalog: &'a Catalog,
    registry: &'a UdfRegistry,
    oracle: Option<OracleRef>,
    stats: RefCell<ExecutionStats>,
    rng: RefCell<StdRng>,
    subquery_cache: RefCell<HashMap<String, RecordBatch>>,
    batch_size: usize,
}

impl<'a> ExecContext<'a> {
    /// Creates a context. `oracle` is the connection back to the DO proxy for
    /// interactive protocol steps; pass `None` for plaintext-only workloads.
    pub fn new(catalog: &'a Catalog, registry: &'a UdfRegistry, oracle: Option<OracleRef>) -> Self {
        ExecContext {
            catalog,
            registry,
            oracle,
            stats: RefCell::new(ExecutionStats::default()),
            rng: RefCell::new(StdRng::from_entropy()),
            subquery_cache: RefCell::new(HashMap::new()),
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }

    /// Uses a fixed RNG seed for the comparison-blinding factors (tests only).
    pub fn with_rng_seed(self, seed: u64) -> Self {
        ExecContext {
            rng: RefCell::new(StdRng::seed_from_u64(seed)),
            ..self
        }
    }

    /// Overrides the batch size (power users / tests).
    ///
    /// Panics if `batch_size` is zero.
    pub fn with_batch_size(self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        ExecContext { batch_size, ..self }
    }

    /// The catalog queries run against.
    pub fn catalog(&self) -> &'a Catalog {
        self.catalog
    }

    /// The scalar-UDF registry.
    pub fn registry(&self) -> &'a UdfRegistry {
        self.registry
    }

    /// The DO-proxy oracle, if connected.
    pub fn oracle(&self) -> Option<&OracleRef> {
        self.oracle.as_ref()
    }

    /// Rows per batch.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// A snapshot of the statistics accumulated so far.
    pub fn stats(&self) -> ExecutionStats {
        self.stats.borrow().clone()
    }

    /// Mutable access to the statistics (operators record as they run).
    pub(crate) fn stats_mut(&self) -> std::cell::RefMut<'_, ExecutionStats> {
        self.stats.borrow_mut()
    }

    /// Mutable access to the blinding RNG.
    pub(crate) fn rng_mut(&self) -> std::cell::RefMut<'_, StdRng> {
        self.rng.borrow_mut()
    }

    /// An expression evaluator wired to this context's registry and subquery
    /// resolution.
    pub(crate) fn evaluator(&self) -> Evaluator<'_> {
        Evaluator::new(self.registry).with_subqueries(self)
    }

    /// Folds an evaluator's UDF counter into the statistics.
    pub(crate) fn record_udf_calls(&self, evaluator: &Evaluator<'_>) {
        self.stats.borrow_mut().udf_calls += evaluator.udf_calls();
    }
}

impl SubqueryResolver for ExecContext<'_> {
    fn scalar(&self, query: &Query) -> Result<Value> {
        let batch = self.run_subquery(query)?;
        if batch.num_columns() != 1 {
            return Err(EngineError::Expression {
                detail: "scalar subquery must return exactly one column".into(),
            });
        }
        match batch.num_rows() {
            0 => Ok(Value::Null),
            1 => Ok(batch.column(0).get(0).clone()),
            n => Err(EngineError::Expression {
                detail: format!("scalar subquery returned {n} rows"),
            }),
        }
    }

    fn column(&self, query: &Query) -> Result<Vec<Value>> {
        let batch = self.run_subquery(query)?;
        if batch.num_columns() == 0 {
            return Ok(vec![]);
        }
        Ok(batch.column(0).values().to_vec())
    }
}

impl ExecContext<'_> {
    /// Plans and runs an uncorrelated subquery against the same catalog,
    /// registry and oracle, caching the result by its SQL rendering. The
    /// subquery's statistics are merged into this context's totals.
    fn run_subquery(&self, query: &Query) -> Result<RecordBatch> {
        let key = query.to_string();
        if let Some(cached) = self.subquery_cache.borrow().get(&key) {
            return Ok(cached.clone());
        }
        let plan = PlanBuilder::build(query)?;
        let sub = ExecContext::new(self.catalog, self.registry, self.oracle.clone())
            .with_batch_size(self.batch_size);
        let batch = execute_plan(&Rc::new(sub), &plan, |sub_stats| {
            self.stats.borrow_mut().merge(sub_stats);
        })?;
        self.subquery_cache.borrow_mut().insert(key, batch.clone());
        Ok(batch)
    }
}

/// Plans and drains a logical plan to completion, concatenating all produced
/// batches. `on_finish` receives the context's final statistics (used to merge
/// subquery stats into a parent).
pub(crate) fn execute_plan<'a>(
    ctx: &Rc<ExecContext<'a>>,
    plan: &sdb_sql::plan::LogicalPlan,
    on_finish: impl FnOnce(&ExecutionStats),
) -> Result<RecordBatch> {
    let mut root = crate::planner::PhysicalPlanner::new(Rc::clone(ctx)).plan(plan)?;
    let batch = drain_operator(root.as_mut())?;
    ctx.stats.borrow_mut().rows_returned = batch.num_rows();
    on_finish(&ctx.stats());
    Ok(batch)
}

/// Runs one operator's full lifecycle, concatenating its output batches.
pub fn drain_operator(root: &mut dyn PhysicalOperator) -> Result<RecordBatch> {
    root.open()?;
    let result = materialize_input(root)?;
    root.close()?;
    Ok(result.unwrap_or_else(|| RecordBatch::empty(Schema::empty())))
}

/// Drains an operator into a single materialised batch, for blocking
/// consumers (join build sides, aggregation, sort). Returns `None` when the
/// input produced no batches at all. Accumulates with in-place appends, so
/// the total cost is linear in the rows produced.
pub(crate) fn materialize_input(input: &mut dyn PhysicalOperator) -> Result<Option<RecordBatch>> {
    let mut result: Option<RecordBatch> = None;
    while let Some(batch) = input.next_batch()? {
        match &mut result {
            None => result = Some(batch),
            Some(acc) => acc.append(&batch)?,
        }
    }
    Ok(result)
}
