//! Projection: expression evaluation into named output columns.

use std::collections::VecDeque;
use std::sync::Arc;

use sdb_sql::ast::Expr;
use sdb_sql::plan::ProjectionItem;
use sdb_storage::{Column, ColumnDef, RecordBatch, Schema, Value};

use super::expr::{bind_to_existing_columns, infer_column_def};
use super::{BoxedOperator, ExecContext, PhysicalOperator};
use crate::Result;

enum Output {
    /// Pass an input column through unchanged (wildcard expansion).
    Passthrough(usize),
    /// Evaluate expression `index` under the given output name.
    Computed { index: usize, name: String },
}

/// One processed-but-not-yet-emitted batch: passthrough columns plus the raw
/// values of each computed expression (typed only at emission time).
struct StagedBatch {
    passthrough: Vec<(ColumnDef, Column)>,
    computed: Vec<Vec<Value>>,
}

/// Evaluates projection items against each input batch.
///
/// Computed-column types are inferred from produced values. To keep the
/// output schema stable across batches, the first *concrete* inference per
/// column (a non-NULL value, or a direct column reference) is locked and
/// reused; batches whose computed values are still all-NULL are staged until
/// a concrete type arrives (or the input ends), so an all-NULL leading batch
/// can no longer disagree with a typed later batch.
///
/// `virtual_columns` names the oracle virtual columns materialised by an
/// [`super::oracle::OracleResolve`] child; wildcard expansion skips them so
/// `SELECT *` output matches the logical input schema.
pub struct Project<'a> {
    ctx: Arc<ExecContext<'a>>,
    input: BoxedOperator<'a>,
    items: Vec<ProjectionItem>,
    virtual_columns: Vec<String>,
    /// Concrete defs locked in for each computed expression, once known.
    locked: Vec<Option<ColumnDef>>,
    /// Batches staged while some computed column is still type-ambiguous.
    staged: VecDeque<StagedBatch>,
    /// Fully-typed batches ready for emission.
    ready: VecDeque<RecordBatch>,
    /// The interleaving of passthrough and computed outputs (stable across
    /// batches because the input schema is stable; refreshed per batch).
    output_order: Vec<Output>,
    input_done: bool,
}

impl<'a> Project<'a> {
    /// Creates a projection over `input`.
    pub fn new(
        ctx: Arc<ExecContext<'a>>,
        input: BoxedOperator<'a>,
        items: Vec<ProjectionItem>,
        virtual_columns: Vec<String>,
    ) -> Self {
        let computed_count = items
            .iter()
            .filter(|item| matches!(item, ProjectionItem::Named { .. }))
            .count();
        Project {
            ctx,
            input,
            items,
            virtual_columns,
            locked: vec![None; computed_count],
            staged: VecDeque::new(),
            ready: VecDeque::new(),
            output_order: Vec::new(),
            input_done: false,
        }
    }

    /// Evaluates the projection over one input batch and stages the result.
    fn stage_batch(&mut self, batch: RecordBatch) -> Result<()> {
        let mut outputs = Vec::new();
        let mut exprs = Vec::new();
        for item in &self.items {
            match item {
                ProjectionItem::Wildcard => {
                    for (i, def) in batch.schema().columns().iter().enumerate() {
                        if self
                            .virtual_columns
                            .iter()
                            .any(|v| v.eq_ignore_ascii_case(&def.name))
                        {
                            continue;
                        }
                        outputs.push(Output::Passthrough(i));
                    }
                }
                ProjectionItem::Named { expr, name } => {
                    outputs.push(Output::Computed {
                        index: exprs.len(),
                        name: name.clone(),
                    });
                    // Expressions that literally name an input column (e.g. the
                    // projection of a GROUP BY expression such as `YEAR(d)` above
                    // an aggregate whose output column is named "YEAR(d)", or a
                    // resolved oracle call) bind to that column instead of being
                    // re-evaluated.
                    exprs.push(bind_to_existing_columns(expr, batch.schema()));
                }
            }
        }

        let evaluator = self.ctx.evaluator();
        let mut computed: Vec<Vec<Value>> = vec![Vec::with_capacity(batch.num_rows()); exprs.len()];
        for row in 0..batch.num_rows() {
            for (i, expr) in exprs.iter().enumerate() {
                computed[i].push(evaluator.evaluate(expr, &batch, row)?);
            }
        }
        self.ctx.record_udf_calls(&evaluator);

        // Lock in concrete defs: a direct column reference is concrete even
        // with no rows; otherwise the first non-NULL value decides.
        let mut computed_names = vec![String::new(); exprs.len()];
        for output in &outputs {
            if let Output::Computed { index, name } = output {
                computed_names[*index] = name.clone();
            }
        }
        for (i, expr) in exprs.iter().enumerate() {
            if self.locked[i].is_some() {
                continue;
            }
            let is_concrete = matches!(expr, Expr::Column(c) if batch.schema().index_of(c).is_ok())
                || computed[i].iter().any(|v| !v.is_null());
            if is_concrete {
                self.locked[i] = Some(infer_column_def(
                    &computed_names[i],
                    expr,
                    &computed[i],
                    batch.schema(),
                ));
            }
        }

        let mut passthrough = Vec::new();
        for output in &outputs {
            if let Output::Passthrough(i) = output {
                passthrough.push((
                    batch.schema().column_at(*i).clone(),
                    batch.column(*i).clone(),
                ));
            }
        }
        self.staged.push_back(StagedBatch {
            passthrough,
            computed,
        });
        self.output_order = outputs;
        Ok(())
    }

    /// True when every computed column has a locked (concrete) type.
    fn types_settled(&self) -> bool {
        self.locked.iter().all(Option::is_some)
    }

    /// Converts all staged batches into ready record batches, typing weak
    /// (never-concrete) columns with the historical Int default.
    fn flush_staged(&mut self) -> Result<()> {
        while let Some(staged) = self.staged.pop_front() {
            let mut defs = Vec::new();
            let mut columns = Vec::new();
            let mut passthrough = staged.passthrough.into_iter();
            let mut computed: Vec<Option<Vec<Value>>> =
                staged.computed.into_iter().map(Some).collect();
            for output in &self.output_order {
                match output {
                    Output::Passthrough(_) => {
                        let (def, column) = passthrough.next().expect("passthrough count fixed");
                        defs.push(def);
                        columns.push(column);
                    }
                    Output::Computed { index, name } => {
                        let values = computed[*index].take().expect("each computed used once");
                        let def = match &self.locked[*index] {
                            Some(locked) => locked.clone(),
                            // Never saw a concrete value anywhere: fall back to
                            // the historical all-NULL default.
                            None => ColumnDef::public(name, sdb_storage::DataType::Int),
                        };
                        let mut column = Column::new(def.data_type);
                        for v in values {
                            column.push(v)?;
                        }
                        defs.push(def);
                        columns.push(column);
                    }
                }
            }
            self.ready
                .push_back(RecordBatch::new(Schema::new(defs), columns)?);
        }
        Ok(())
    }
}

impl PhysicalOperator for Project<'_> {
    fn name(&self) -> &'static str {
        "Project"
    }

    fn describe(&self) -> String {
        format!("{}({})", self.name(), self.input.describe())
    }

    fn open(&mut self) -> Result<()> {
        self.locked = vec![None; self.locked.len()];
        self.staged.clear();
        self.ready.clear();
        self.input_done = false;
        self.input.open()
    }

    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        loop {
            if let Some(batch) = self.ready.pop_front() {
                return Ok(Some(batch));
            }
            if self.input_done {
                return Ok(None);
            }
            match self.input.next_batch()? {
                None => {
                    self.input_done = true;
                    self.flush_staged()?;
                }
                Some(batch) => {
                    self.stage_batch(batch)?;
                    if self.types_settled() {
                        self.flush_staged()?;
                    }
                }
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.input.close()
    }
}
