//! Unit tests for the individual physical operators: empty inputs, single
//! batches, and multi-batch boundaries.

use std::sync::Arc;

use sdb_sql::ast::{BinaryOp, Expr, JoinKind, Literal};
use sdb_sql::plan::{AggFunc, AggregateExpr, ProjectionItem, SortKey};
use sdb_storage::{Catalog, ColumnDef, DataType, RecordBatch, Schema, Value};

use super::aggregate::HashAggregate;
use super::filter::Filter;
use super::join::{HashJoin, NestedLoopJoin};
use super::project::Project;
use super::scan::TableScan;
use super::sort::{Distinct, Limit, Sort};
use super::{drain_operator, BoxedOperator, ExecContext, PhysicalOperator};
use crate::udf::UdfRegistry;
use crate::Result;

fn registry() -> UdfRegistry {
    UdfRegistry::with_sdb_udfs()
}

fn catalog_with_numbers(rows: &[(i64, i64)]) -> Catalog {
    let catalog = Catalog::new();
    let schema = Schema::new(vec![
        ColumnDef::public("a", DataType::Int),
        ColumnDef::public("b", DataType::Int),
    ]);
    let table = catalog.create_table("numbers", schema).unwrap();
    let mut guard = table.write();
    for &(a, b) in rows {
        guard
            .insert_row(vec![Value::Int(a), Value::Int(b)])
            .unwrap();
    }
    drop(guard);
    catalog
}

fn col(name: &str) -> Expr {
    Expr::Column(name.to_string())
}

fn int(v: i64) -> Expr {
    Expr::Literal(Literal::Int(v))
}

/// A source operator replaying a fixed list of batches (for operators whose
/// inputs are easier to stage directly than through a scan).
struct FixedBatches {
    batches: Vec<RecordBatch>,
    next: usize,
}

impl FixedBatches {
    fn new(batches: Vec<RecordBatch>) -> Self {
        FixedBatches { batches, next: 0 }
    }

    fn boxed<'a>(batches: Vec<RecordBatch>) -> BoxedOperator<'a> {
        Box::new(FixedBatches::new(batches))
    }
}

impl PhysicalOperator for FixedBatches {
    fn name(&self) -> &'static str {
        "FixedBatches"
    }
    fn open(&mut self) -> Result<()> {
        self.next = 0;
        Ok(())
    }
    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        let batch = self.batches.get(self.next).cloned();
        self.next += 1;
        Ok(batch)
    }
    fn close(&mut self) -> Result<()> {
        Ok(())
    }
}

fn int_batches(schema: &Schema, chunks: &[&[(i64, i64)]]) -> Vec<RecordBatch> {
    chunks
        .iter()
        .map(|chunk| {
            RecordBatch::from_rows(
                schema.clone(),
                chunk
                    .iter()
                    .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)])
                    .collect(),
            )
            .unwrap()
        })
        .collect()
}

fn ab_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::public("a", DataType::Int),
        ColumnDef::public("b", DataType::Int),
    ])
}

// ---------------------------------------------------------------------------
// TableScan
// ---------------------------------------------------------------------------

#[test]
fn scan_chunks_by_batch_size() {
    let rows: Vec<(i64, i64)> = (0..5).map(|i| (i, i * 10)).collect();
    let catalog = catalog_with_numbers(&rows);
    let reg = registry();
    let ctx = Arc::new(ExecContext::new(&catalog, &reg, None).with_batch_size(2));
    let mut scan = TableScan::new(Arc::clone(&ctx), "numbers", None);
    scan.open().unwrap();
    let sizes: Vec<usize> = std::iter::from_fn(|| scan.next_batch().unwrap())
        .map(|b| b.num_rows())
        .collect();
    scan.close().unwrap();
    assert_eq!(sizes, vec![2, 2, 1]);
    assert_eq!(ctx.stats().rows_scanned, 5);
}

#[test]
fn scan_of_empty_table_emits_schema_batch() {
    let catalog = catalog_with_numbers(&[]);
    let reg = registry();
    let ctx = Arc::new(ExecContext::new(&catalog, &reg, None));
    let mut scan = TableScan::new(ctx, "numbers", Some("n"));
    let batch = drain_operator(&mut scan).unwrap();
    assert_eq!(batch.num_rows(), 0);
    assert_eq!(batch.schema().column_at(0).name, "n.a");
}

#[test]
fn parallel_scan_matches_serial_rows_and_stats() {
    use super::scan::ParallelTableScan;
    // 300 rows: enough for the MIN_MORSEL_ROWS floor to grant three workers.
    let rows: Vec<(i64, i64)> = (0..300).map(|i| (i, i * 10)).collect();
    let catalog = catalog_with_numbers(&rows);
    let reg = registry();

    let serial_ctx = Arc::new(ExecContext::new(&catalog, &reg, None).with_batch_size(32));
    let mut serial = TableScan::new(Arc::clone(&serial_ctx), "numbers", None);
    let expected = drain_operator(&mut serial).unwrap();

    let ctx = Arc::new(
        ExecContext::new(&catalog, &reg, None)
            .with_batch_size(32)
            .with_parallelism(3),
    );
    let mut scan = ParallelTableScan::new(Arc::clone(&ctx), "numbers", None);
    let out = drain_operator(&mut scan).unwrap();
    assert_eq!(
        out, expected,
        "parallel scan must preserve global row order"
    );
    assert_eq!(
        ctx.stats().rows_scanned,
        300,
        "emitted chunks must account the full scan count"
    );
}

#[test]
fn parallel_scan_of_empty_table_emits_schema_batch() {
    use super::scan::ParallelTableScan;
    let catalog = catalog_with_numbers(&[]);
    let reg = registry();
    let ctx = Arc::new(ExecContext::new(&catalog, &reg, None).with_parallelism(4));
    let mut scan = ParallelTableScan::new(ctx, "numbers", Some("n"));
    let batch = drain_operator(&mut scan).unwrap();
    assert_eq!(batch.num_rows(), 0);
    assert_eq!(batch.schema().column_at(0).name, "n.a");
}

/// Plans must be able to cross threads: `PhysicalOperator` has `Send` as a
/// supertrait, so a boxed operator tree is `Send` (compile-time check).
#[test]
fn operator_trees_are_send() {
    fn assert_send<T: Send>(_: &T) {}
    let batches = int_batches(&ab_schema(), &[&[(1, 1)]]);
    let op: BoxedOperator<'static> = FixedBatches::boxed(batches);
    assert_send(&op);
}

// ---------------------------------------------------------------------------
// Filter
// ---------------------------------------------------------------------------

#[test]
fn filter_across_batches_and_empty_input() {
    let catalog = Catalog::new();
    let reg = registry();
    let ctx = Arc::new(ExecContext::new(&catalog, &reg, None));
    let schema = ab_schema();

    // Predicate a > 2 over batches [(1,1),(3,3)] and [(5,5)].
    let input = FixedBatches::boxed(int_batches(&schema, &[&[(1, 1), (3, 3)], &[(5, 5)]]));
    let predicate = Expr::binary(col("a"), BinaryOp::Gt, int(2));
    let mut filter = Filter::new(Arc::clone(&ctx), input, predicate.clone());
    let out = drain_operator(&mut filter).unwrap();
    assert_eq!(out.num_rows(), 2);
    assert_eq!(out.column(0).get(0), &Value::Int(3));

    // Empty input keeps the schema.
    let input = FixedBatches::boxed(vec![RecordBatch::empty(schema.clone())]);
    let mut filter = Filter::new(ctx, input, predicate);
    let out = drain_operator(&mut filter).unwrap();
    assert_eq!(out.num_rows(), 0);
    assert_eq!(out.num_columns(), 2);
}

// ---------------------------------------------------------------------------
// Project
// ---------------------------------------------------------------------------

#[test]
fn project_computes_per_batch() {
    let catalog = Catalog::new();
    let reg = registry();
    let ctx = Arc::new(ExecContext::new(&catalog, &reg, None));
    let schema = ab_schema();
    let input = FixedBatches::boxed(int_batches(&schema, &[&[(1, 10)], &[(2, 20)], &[]]));
    let items = vec![
        ProjectionItem::Named {
            expr: Expr::binary(col("a"), BinaryOp::Add, col("b")),
            name: "sum".into(),
        },
        ProjectionItem::Wildcard,
    ];
    let mut project = Project::new(ctx, input, items, vec![]);
    let out = drain_operator(&mut project).unwrap();
    assert_eq!(out.num_columns(), 3);
    assert_eq!(out.schema().column_at(0).name, "sum");
    assert_eq!(out.column(0).get(1), &Value::Int(22));
    assert_eq!(out.num_rows(), 2);
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

fn join_sides(schema: &Schema) -> (BoxedOperator<'static>, BoxedOperator<'static>) {
    // Left: 4 rows split across two batches; right: 3 rows, one batch.
    let left = FixedBatches::boxed(int_batches(
        schema,
        &[&[(1, 100), (2, 200)], &[(2, 201), (4, 400)]],
    ));
    let right_schema = Schema::new(vec![
        ColumnDef::public("k", DataType::Int),
        ColumnDef::public("v", DataType::Int),
    ]);
    let right = FixedBatches::boxed(vec![RecordBatch::from_rows(
        right_schema,
        vec![
            vec![Value::Int(1), Value::Int(-1)],
            vec![Value::Int(2), Value::Int(-2)],
            vec![Value::Int(9), Value::Int(-9)],
        ],
    )
    .unwrap()]);
    (left, right)
}

#[test]
fn hash_join_streams_probe_batches() {
    let catalog = Catalog::new();
    let reg = registry();
    let ctx = Arc::new(ExecContext::new(&catalog, &reg, None));
    let schema = ab_schema();
    let (left, right) = join_sides(&schema);
    let mut join = HashJoin::new(
        Arc::clone(&ctx),
        left,
        right,
        JoinKind::Inner,
        vec![col("a")],
        vec![col("k")],
    );
    let out = drain_operator(&mut join).unwrap();
    // Matches: a=1 (1 row), a=2 twice (2 rows); a=4 unmatched.
    assert_eq!(out.num_rows(), 3);
    assert_eq!(out.num_columns(), 4);

    // Left join pads the unmatched row with NULLs.
    let (left, right) = join_sides(&schema);
    let mut join = HashJoin::new(
        ctx,
        left,
        right,
        JoinKind::Left,
        vec![col("a")],
        vec![col("k")],
    );
    let out = drain_operator(&mut join).unwrap();
    assert_eq!(out.num_rows(), 4);
    assert!(out.column(2).get(3).is_null());
}

#[test]
fn hash_join_with_empty_sides() {
    let catalog = Catalog::new();
    let reg = registry();
    let ctx = Arc::new(ExecContext::new(&catalog, &reg, None));
    let schema = ab_schema();
    let empty = || FixedBatches::boxed(vec![RecordBatch::empty(ab_schema())]);

    let left = FixedBatches::boxed(int_batches(&schema, &[&[(1, 1)]]));
    let mut join = HashJoin::new(
        Arc::clone(&ctx),
        left,
        empty(),
        JoinKind::Inner,
        vec![col("a")],
        vec![col("a")],
    );
    assert_eq!(drain_operator(&mut join).unwrap().num_rows(), 0);

    let right = FixedBatches::boxed(int_batches(&schema, &[&[(1, 1)]]));
    let mut join = HashJoin::new(
        ctx,
        empty(),
        right,
        JoinKind::Inner,
        vec![col("a")],
        vec![col("a")],
    );
    let out = drain_operator(&mut join).unwrap();
    assert_eq!(out.num_rows(), 0);
    assert_eq!(out.num_columns(), 4);
}

#[test]
fn nested_loop_join_applies_predicate() {
    let catalog = Catalog::new();
    let reg = registry();
    let ctx = Arc::new(ExecContext::new(&catalog, &reg, None));
    let schema = ab_schema();
    let (left, right) = join_sides(&schema);
    let on = Expr::binary(col("a"), BinaryOp::Lt, col("k"));
    let mut join = NestedLoopJoin::new(ctx, left, right, JoinKind::Inner, Some(on));
    let out = drain_operator(&mut join).unwrap();
    // a<k pairs: 1<2, 1<9, 2<9, 2<9, 4<9 = 5 rows.
    assert_eq!(out.num_rows(), 5);
}

// ---------------------------------------------------------------------------
// Aggregate
// ---------------------------------------------------------------------------

#[test]
fn aggregate_groups_across_batch_boundaries() {
    let catalog = Catalog::new();
    let reg = registry();
    let ctx = Arc::new(ExecContext::new(&catalog, &reg, None));
    let schema = ab_schema();
    // Group 1 spans both batches.
    let input = FixedBatches::boxed(int_batches(&schema, &[&[(1, 10), (2, 20)], &[(1, 30)]]));
    let mut aggregate = HashAggregate::new(
        ctx,
        input,
        vec![(col("a"), "a".into())],
        vec![AggregateExpr {
            func: AggFunc::Sum,
            arg: Some(col("b")),
            distinct: false,
            name: "s".into(),
        }],
    );
    let out = drain_operator(&mut aggregate).unwrap();
    assert_eq!(out.num_rows(), 2);
    let row0 = out.row(0);
    assert_eq!(row0, vec![Value::Int(1), Value::Int(40)]);
}

#[test]
fn global_aggregate_over_empty_input_yields_one_row() {
    let catalog = Catalog::new();
    let reg = registry();
    let ctx = Arc::new(ExecContext::new(&catalog, &reg, None));
    let input = FixedBatches::boxed(vec![RecordBatch::empty(ab_schema())]);
    let mut aggregate = HashAggregate::new(
        ctx,
        input,
        vec![],
        vec![AggregateExpr {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
            name: "n".into(),
        }],
    );
    let out = drain_operator(&mut aggregate).unwrap();
    assert_eq!(out.num_rows(), 1);
    assert_eq!(out.column(0).get(0), &Value::Int(0));
}

// ---------------------------------------------------------------------------
// Sort / Limit / Distinct
// ---------------------------------------------------------------------------

#[test]
fn sort_merges_batches() {
    let catalog = Catalog::new();
    let reg = registry();
    let ctx = Arc::new(ExecContext::new(&catalog, &reg, None));
    let schema = ab_schema();
    let input = FixedBatches::boxed(int_batches(&schema, &[&[(3, 0), (1, 0)], &[(2, 0)]]));
    let keys = vec![SortKey {
        expr: col("a"),
        desc: false,
    }];
    let mut sort = Sort::new(ctx, input, keys);
    let out = drain_operator(&mut sort).unwrap();
    let values: Vec<i64> = out
        .column(0)
        .values()
        .iter()
        .map(|v| v.as_i64().unwrap())
        .collect();
    assert_eq!(values, vec![1, 2, 3]);
}

#[test]
fn limit_stops_mid_batch_and_across_batches() {
    let schema = ab_schema();
    // Limit 3 over batches of 2+2 rows → 2 rows then 1 row.
    let input = FixedBatches::boxed(int_batches(
        &schema,
        &[&[(1, 0), (2, 0)], &[(3, 0), (4, 0)]],
    ));
    let mut limit = Limit::new(input, 3);
    let out = drain_operator(&mut limit).unwrap();
    assert_eq!(out.num_rows(), 3);

    // Limit 0 still yields the schema.
    let input = FixedBatches::boxed(int_batches(&schema, &[&[(1, 0)]]));
    let mut limit = Limit::new(input, 0);
    let out = drain_operator(&mut limit).unwrap();
    assert_eq!(out.num_rows(), 0);
    assert_eq!(out.num_columns(), 2);
}

#[test]
fn distinct_deduplicates_across_batches() {
    let schema = ab_schema();
    // The duplicate of (1, 10) sits in a later batch: the seen-set must span
    // batch boundaries.
    let input = FixedBatches::boxed(int_batches(
        &schema,
        &[&[(1, 10), (2, 20)], &[(1, 10), (3, 30)]],
    ));
    let mut distinct = Distinct::new(input);
    let out = drain_operator(&mut distinct).unwrap();
    assert_eq!(out.num_rows(), 3);
}

// ---------------------------------------------------------------------------
// OracleResolve batching semantics
// ---------------------------------------------------------------------------

/// A stub DO-proxy oracle that answers every request and counts round trips
/// through the context's statistics (which the operator updates itself).
struct StubOracle;

impl crate::secure::SdbOracle for StubOracle {
    fn resolve(&self, request: crate::secure::OracleRequest) -> crate::secure::OracleResult {
        use crate::secure::{OracleRequestKind, OracleResponse};
        let n = request.rows.len();
        Ok(match request.kind {
            OracleRequestKind::Sign => OracleResponse::Signs(vec![1; n]),
            OracleRequestKind::GroupTag => OracleResponse::Tags((0..n as u64).collect()),
            OracleRequestKind::Rank => OracleResponse::Ranks((0..n as u64).collect()),
        })
    }
}

fn encrypted_batches(chunks: usize, rows_per_chunk: usize) -> Vec<RecordBatch> {
    use num_bigint::BigUint;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(9);
    let cipher = sdb_crypto::SiesCipher::from_master(&mut rng);
    let schema = Schema::new(vec![
        ColumnDef::sensitive("v", DataType::Encrypted),
        ColumnDef::public("rid", DataType::EncryptedRowId),
    ]);
    (0..chunks)
        .map(|c| {
            let rows = (0..rows_per_chunk)
                .map(|r| {
                    let rid = sdb_crypto::EncryptedRowId(
                        cipher.encrypt_biguint(&mut rng, &BigUint::from((c * 100 + r) as u64 + 1)),
                    );
                    vec![
                        Value::Encrypted(BigUint::from((c * 10 + r) as u64 + 3)),
                        Value::EncryptedRowId(rid),
                    ]
                })
                .collect();
            RecordBatch::from_rows(schema.clone(), rows).unwrap()
        })
        .collect()
}

fn oracle_call(name: &str) -> Expr {
    Expr::Function {
        name: name.to_string(),
        args: vec![
            col("v"),
            col("rid"),
            Expr::Literal(Literal::Str("h1".into())),
        ],
        distinct: false,
        wildcard: false,
    }
}

/// A comparison call (arity 4: share, row id, handle, public modulus).
fn cmp_call(handle: &str) -> Expr {
    Expr::Function {
        name: "SDB_CMP_GT".to_string(),
        args: vec![
            col("v"),
            col("rid"),
            Expr::Literal(Literal::Str(handle.into())),
            Expr::Literal(Literal::Str("1000003".into())),
        ],
        distinct: false,
        wildcard: false,
    }
}

/// A stub whose answers depend only on the (stable) row-id ciphertext — like
/// the real proxy, whose verdicts are invariant under the SP's blinding
/// factors and request chunking. Required for byte-identity comparisons
/// across batching modes (positional answers would differ by chunking).
struct ContentOracle;

impl crate::secure::SdbOracle for ContentOracle {
    fn resolve(&self, request: crate::secure::OracleRequest) -> crate::secure::OracleResult {
        use crate::secure::{OracleRequestKind, OracleResponse};
        let body_sum = |r: &crate::secure::OracleRow| -> u64 {
            r.row_id.0.body.iter().map(|&b| u64::from(b)).sum()
        };
        Ok(match request.kind {
            OracleRequestKind::Sign => OracleResponse::Signs(
                request
                    .rows
                    .iter()
                    .map(|r| if body_sum(r).is_multiple_of(2) { 1 } else { -1 })
                    .collect(),
            ),
            OracleRequestKind::GroupTag => {
                OracleResponse::Tags(request.rows.iter().map(|r| body_sum(r) % 16).collect())
            }
            OracleRequestKind::Rank => {
                OracleResponse::Ranks((0..request.rows.len() as u64).collect())
            }
        })
    }
}

#[test]
fn rank_calls_resolve_in_one_round_trip_across_batches() {
    use super::oracle::OracleResolve;
    let catalog = Catalog::new();
    let reg = registry();
    let oracle: crate::secure::OracleRef = std::sync::Arc::new(StubOracle);

    // Rank surrogates are only comparable within one request: multi-batch
    // input must still produce exactly one round trip.
    let ctx = Arc::new(ExecContext::new(&catalog, &reg, Some(oracle.clone())));
    let input = FixedBatches::boxed(encrypted_batches(3, 2));
    let mut resolve = OracleResolve::new(Arc::clone(&ctx), input, vec![oracle_call("SDB_RANK")]);
    let out = drain_operator(&mut resolve).unwrap();
    assert_eq!(out.num_rows(), 6);
    assert_eq!(
        ctx.stats().oracle_round_trips,
        1,
        "ranks must batch across input batches"
    );
    // All six rows answered from one rank block, in request order.
    assert_eq!(out.column(2).get(5), &Value::Int(5));

    // Group tags coalesce across input batches too (the cross-batch
    // accumulator): one trip for three input batches.
    let ctx = Arc::new(ExecContext::new(&catalog, &reg, Some(oracle.clone())));
    let input = FixedBatches::boxed(encrypted_batches(3, 2));
    let mut resolve =
        OracleResolve::new(Arc::clone(&ctx), input, vec![oracle_call("SDB_GROUP_TAG")]);
    let out = drain_operator(&mut resolve).unwrap();
    assert_eq!(out.num_rows(), 6);
    let stats = ctx.stats();
    assert_eq!(stats.oracle_round_trips, 1, "tags coalesce across batches");
    assert_eq!(stats.oracle_rows_coalesced, 6);

    // With batching off, tags resolve per batch — the pre-batching behavior.
    let ctx = Arc::new(ExecContext::new(&catalog, &reg, Some(oracle)).with_oracle_batching(false));
    let input = FixedBatches::boxed(encrypted_batches(3, 2));
    let mut resolve =
        OracleResolve::new(Arc::clone(&ctx), input, vec![oracle_call("SDB_GROUP_TAG")]);
    let out = drain_operator(&mut resolve).unwrap();
    assert_eq!(out.num_rows(), 6);
    let stats = ctx.stats();
    assert_eq!(
        stats.oracle_round_trips, 3,
        "unbatched tags resolve per batch"
    );
    assert_eq!(stats.oracle_rows_coalesced, 0);
}

#[test]
fn batching_is_byte_identical_and_one_trip_per_call_under_any_budget() {
    use super::oracle::OracleResolve;
    let catalog = Catalog::new();
    let reg = registry();
    let calls = || vec![cmp_call("h1"), cmp_call("h2"), oracle_call("SDB_GROUP_TAG")];

    // Reference: batching off, unlimited budget (one trip per call per batch).
    let oracle: crate::secure::OracleRef = std::sync::Arc::new(ContentOracle);
    let ref_ctx = Arc::new(
        ExecContext::new(&catalog, &reg, Some(oracle.clone())).with_oracle_batching(false),
    );
    let input = FixedBatches::boxed(encrypted_batches(25, 16));
    let mut resolve = OracleResolve::new(Arc::clone(&ref_ctx), input, calls());
    let expected = drain_operator(&mut resolve).unwrap();
    assert_eq!(expected.num_rows(), 400);
    assert_eq!(
        ref_ctx.stats().oracle_round_trips,
        75,
        "3 calls x 25 batches without batching"
    );

    // Batched: one coalesced trip per distinct call, identical answers —
    // with and without a budget that forces the parked batches to spill.
    for budget in [None, Some(4096usize)] {
        let mut ctx = ExecContext::new(&catalog, &reg, Some(oracle.clone()));
        if let Some(bytes) = budget {
            ctx = ctx.with_memory_budget(sdb_storage::MemoryBudget::bytes(bytes));
        }
        let ctx = Arc::new(ctx);
        let input = FixedBatches::boxed(encrypted_batches(25, 16));
        let mut resolve = OracleResolve::new(Arc::clone(&ctx), input, calls());
        let out = drain_operator(&mut resolve).unwrap();
        assert_eq!(expected, out, "batched output diverged (budget {budget:?})");
        let stats = ctx.stats();
        assert_eq!(
            stats.oracle_round_trips, 3,
            "one coalesced trip per distinct call (budget {budget:?})"
        );
        assert_eq!(stats.oracle_rows_coalesced, 1200, "400 rows x 3 calls");
        assert_eq!(stats.oracle_rows_shipped, 1200);
        assert_eq!(ctx.pager().resident_bytes(), 0, "parked pages all freed");
        if budget.is_some() {
            assert!(
                stats.pages_spilled > 0,
                "a 4K budget must spill the parked batches: {stats:?}"
            );
        }
    }
}

#[test]
fn memo_answers_repeated_operands_without_new_trips() {
    use super::oracle::OracleResolve;
    let catalog = Catalog::new();
    let reg = registry();
    let oracle: crate::secure::OracleRef = std::sync::Arc::new(ContentOracle);

    // Batches 1 and 3 carry identical (share, row id) operands. Streaming
    // (batching off) resolves batch by batch: the third batch is answered
    // entirely from the memo — two trips total, zero for the repeat.
    let mut batches = encrypted_batches(2, 2);
    batches.push(batches[0].clone());
    let ctx = Arc::new(
        ExecContext::new(&catalog, &reg, Some(oracle.clone())).with_oracle_batching(false),
    );
    let input = FixedBatches::boxed(batches.clone());
    let mut resolve = OracleResolve::new(Arc::clone(&ctx), input, vec![cmp_call("h1")]);
    let out = drain_operator(&mut resolve).unwrap();
    assert_eq!(out.num_rows(), 6);
    let stats = ctx.stats();
    assert_eq!(
        stats.oracle_round_trips, 2,
        "the repeated batch must not travel the link"
    );
    assert_eq!(stats.oracle_memo_hits, 2);
    assert_eq!(stats.oracle_rows_shipped, 4);
    // The memoized answers are the same the oracle would have given.
    assert_eq!(out.column(2).get(0), out.column(2).get(4));
    assert_eq!(out.column(2).get(1), out.column(2).get(5));
}

#[test]
fn zero_row_rank_input_short_circuits_without_a_trip() {
    use super::oracle::OracleResolve;
    let catalog = Catalog::new();
    let reg = registry();
    let oracle: crate::secure::OracleRef = std::sync::Arc::new(StubOracle);
    let schema = Schema::new(vec![
        ColumnDef::sensitive("v", DataType::Encrypted),
        ColumnDef::public("rid", DataType::EncryptedRowId),
    ]);

    for batching in [true, false] {
        let ctx = Arc::new(
            ExecContext::new(&catalog, &reg, Some(oracle.clone())).with_oracle_batching(batching),
        );
        let input = FixedBatches::boxed(vec![RecordBatch::empty(schema.clone())]);
        let mut resolve =
            OracleResolve::new(Arc::clone(&ctx), input, vec![oracle_call("SDB_RANK")]);
        let out = drain_operator(&mut resolve).unwrap();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(
            out.num_columns(),
            3,
            "the rank column still appears (batching={batching})"
        );
        assert_eq!(
            ctx.stats().oracle_round_trips,
            0,
            "zero-row rank resolution must not travel the link (batching={batching})"
        );
    }
}

// ---------------------------------------------------------------------------
// Project type stability across batches
// ---------------------------------------------------------------------------

#[test]
fn project_locks_computed_types_across_null_leading_batches() {
    let catalog = Catalog::new();
    let reg = registry();
    let ctx = Arc::new(ExecContext::new(&catalog, &reg, None));
    let schema = Schema::new(vec![
        ColumnDef::public("a", DataType::Int),
        ColumnDef::public("name", DataType::Varchar),
    ]);
    let batch = |rows: Vec<(i64, &str)>| {
        RecordBatch::from_rows(
            schema.clone(),
            rows.into_iter()
                .map(|(a, s)| vec![Value::Int(a), Value::Str(s.into())])
                .collect(),
        )
        .unwrap()
    };
    // CASE WHEN a > 10 THEN name END: all-NULL in the first batch (would have
    // inferred Int per-batch), Varchar in the second.
    let case = Expr::Case {
        operand: None,
        branches: vec![(Expr::binary(col("a"), BinaryOp::Gt, int(10)), col("name"))],
        else_expr: None,
    };
    let input = FixedBatches::boxed(vec![
        batch(vec![(1, "low"), (2, "lower")]),
        batch(vec![(100, "high")]),
    ]);
    let items = vec![ProjectionItem::Named {
        expr: case,
        name: "c".into(),
    }];
    let mut project = Project::new(ctx, input, items, vec![]);
    let out = drain_operator(&mut project).unwrap();
    assert_eq!(out.num_rows(), 3);
    assert_eq!(out.schema().column_at(0).data_type, DataType::Varchar);
    assert!(out.column(0).get(0).is_null());
    assert_eq!(out.column(0).get(2), &Value::Str("high".into()));
}

// ---------------------------------------------------------------------------
// ExternalSort / SpillingHashAggregate (bounded-memory variants)
// ---------------------------------------------------------------------------

/// A context whose tiny budget forces the spilling operators to actually
/// spill on a few hundred rows.
fn tiny_budget_ctx<'a>(
    catalog: &'a Catalog,
    reg: &'a UdfRegistry,
    batch_size: usize,
) -> Arc<ExecContext<'a>> {
    Arc::new(
        ExecContext::new(catalog, reg, None)
            .with_memory_budget(sdb_storage::MemoryBudget::bytes(256))
            .with_batch_size(batch_size),
    )
}

fn spillable_rows() -> Vec<(i64, i64)> {
    // Many duplicate keys (a % 5) so sort stability and group merging are
    // both exercised; values are distinct so misordered rows are visible.
    (0..400).map(|i| (i % 5, i)).collect()
}

#[test]
fn external_sort_is_byte_identical_to_in_memory_sort() {
    use super::external_sort::ExternalSort;

    let rows = spillable_rows();
    let catalog = catalog_with_numbers(&rows);
    let reg = registry();
    let keys = vec![SortKey {
        expr: col("a"),
        desc: false,
    }];

    let in_memory_ctx = Arc::new(ExecContext::new(&catalog, &reg, None).with_batch_size(32));
    let mut reference = Sort::new(
        Arc::clone(&in_memory_ctx),
        Box::new(TableScan::new(Arc::clone(&in_memory_ctx), "numbers", None)),
        keys.clone(),
    );
    let expected = drain_operator(&mut reference).unwrap();

    let ctx = tiny_budget_ctx(&catalog, &reg, 32);
    let mut external = ExternalSort::new(
        Arc::clone(&ctx),
        Box::new(TableScan::new(Arc::clone(&ctx), "numbers", None)),
        keys,
    );
    let out = drain_operator(&mut external).unwrap();

    assert_eq!(
        expected, out,
        "spill-forced sort must match the stable sort"
    );
    let stats = ctx.stats();
    assert!(
        stats.pages_spilled > 0,
        "256-byte budget must spill: {stats:?}"
    );
    assert!(stats.spill_bytes_read > 0, "merge must fault pages back in");
    assert_eq!(ctx.pager().resident_bytes(), 0, "all pages freed at close");
}

#[test]
fn external_sort_empty_input_matches_sort() {
    use super::external_sort::ExternalSort;

    let catalog = catalog_with_numbers(&[]);
    let reg = registry();
    let ctx = tiny_budget_ctx(&catalog, &reg, 32);
    let keys = vec![SortKey {
        expr: col("a"),
        desc: true,
    }];
    let mut reference = Sort::new(
        Arc::clone(&ctx),
        Box::new(TableScan::new(Arc::clone(&ctx), "numbers", None)),
        keys.clone(),
    );
    let expected = drain_operator(&mut reference).unwrap();
    let mut external = ExternalSort::new(
        Arc::clone(&ctx),
        Box::new(TableScan::new(Arc::clone(&ctx), "numbers", None)),
        keys,
    );
    assert_eq!(expected, drain_operator(&mut external).unwrap());
}

#[test]
fn spilling_aggregate_is_byte_identical_to_hash_aggregate() {
    use super::spill_aggregate::SpillingHashAggregate;

    let rows = spillable_rows();
    let catalog = catalog_with_numbers(&rows);
    let reg = registry();
    let group_by = vec![(col("a"), "a".to_string())];
    let aggregates = vec![
        AggregateExpr {
            func: AggFunc::Sum,
            arg: Some(col("b")),
            distinct: false,
            name: "s".into(),
        },
        AggregateExpr {
            func: AggFunc::Count,
            arg: Some(col("b")),
            distinct: true,
            name: "dc".into(),
        },
        AggregateExpr {
            func: AggFunc::Min,
            arg: Some(col("b")),
            distinct: false,
            name: "lo".into(),
        },
    ];

    let in_memory_ctx = Arc::new(ExecContext::new(&catalog, &reg, None).with_batch_size(32));
    let mut reference = HashAggregate::new(
        Arc::clone(&in_memory_ctx),
        Box::new(TableScan::new(Arc::clone(&in_memory_ctx), "numbers", None)),
        group_by.clone(),
        aggregates.clone(),
    );
    let expected = drain_operator(&mut reference).unwrap();

    let ctx = tiny_budget_ctx(&catalog, &reg, 32);
    let mut spilling = SpillingHashAggregate::new(
        Arc::clone(&ctx),
        Box::new(TableScan::new(Arc::clone(&ctx), "numbers", None)),
        group_by,
        aggregates,
    );
    let out = drain_operator(&mut spilling).unwrap();

    assert_eq!(
        expected, out,
        "groups must come back in first-occurrence order"
    );
    assert!(ctx.stats().pages_spilled > 0, "256-byte budget must spill");
    assert_eq!(ctx.pager().resident_bytes(), 0, "partition pages all freed");
}

#[test]
fn spilling_aggregate_global_and_empty_inputs() {
    use super::spill_aggregate::SpillingHashAggregate;

    let aggregates = vec![AggregateExpr {
        func: AggFunc::Count,
        arg: None,
        distinct: false,
        name: "n".into(),
    }];
    for rows in [vec![], spillable_rows()] {
        let catalog = catalog_with_numbers(&rows);
        let reg = registry();
        let ctx = tiny_budget_ctx(&catalog, &reg, 32);
        let mut reference = HashAggregate::new(
            Arc::clone(&ctx),
            Box::new(TableScan::new(Arc::clone(&ctx), "numbers", None)),
            vec![],
            aggregates.clone(),
        );
        let expected = drain_operator(&mut reference).unwrap();
        let mut spilling = SpillingHashAggregate::new(
            Arc::clone(&ctx),
            Box::new(TableScan::new(Arc::clone(&ctx), "numbers", None)),
            vec![],
            aggregates.clone(),
        );
        assert_eq!(
            expected,
            drain_operator(&mut spilling).unwrap(),
            "global aggregate over {} rows",
            rows.len()
        );
    }
}

// ---------------------------------------------------------------------------
// GraceHashJoin (bounded-memory hash join)
// ---------------------------------------------------------------------------

/// Join inputs with duplicate and NULL keys: `rows` become `(key, payload)`
/// pairs, `None` keys become SQL NULLs.
fn keyed_batches(schema: &Schema, chunks: &[&[(Option<i64>, i64)]]) -> Vec<RecordBatch> {
    chunks
        .iter()
        .map(|chunk| {
            RecordBatch::from_rows(
                schema.clone(),
                chunk
                    .iter()
                    .map(|&(k, v)| vec![k.map(Value::Int).unwrap_or(Value::Null), Value::Int(v)])
                    .collect(),
            )
            .unwrap()
        })
        .collect()
}

/// Cross-checks GraceHashJoin (tiny budget, forced spilling) against the
/// in-memory HashJoin on the same inputs, for both join kinds.
#[test]
fn grace_join_is_byte_identical_to_hash_join() {
    use super::grace_join::GraceHashJoin;

    let schema = ab_schema();
    let right_schema = Schema::new(vec![
        ColumnDef::public("k", DataType::Int),
        ColumnDef::public("v", DataType::Int),
    ]);
    // Build side: 300 rows over 10 keys (plus NULLs that must never match),
    // split across many batches. Probe side: duplicate keys, a NULL key and
    // keys with no match.
    let build_rows: Vec<(Option<i64>, i64)> = (0..300)
        .map(|i| {
            if i % 29 == 0 {
                (None, i)
            } else {
                (Some(i % 10), i)
            }
        })
        .collect();
    let probe_rows: Vec<(Option<i64>, i64)> = (0..60)
        .map(|i| {
            if i % 13 == 0 {
                (None, 1000 + i)
            } else {
                (Some(i % 15), 1000 + i)
            }
        })
        .collect();
    let build_chunks: Vec<&[(Option<i64>, i64)]> = build_rows.chunks(32).collect();
    let probe_chunks: Vec<&[(Option<i64>, i64)]> = probe_rows.chunks(7).collect();

    let catalog = Catalog::new();
    let reg = registry();
    for kind in [JoinKind::Inner, JoinKind::Left] {
        let unlimited = Arc::new(ExecContext::new(&catalog, &reg, None).with_batch_size(16));
        let mut reference = HashJoin::new(
            Arc::clone(&unlimited),
            FixedBatches::boxed(keyed_batches(&schema, &probe_chunks)),
            FixedBatches::boxed(keyed_batches(&right_schema, &build_chunks)),
            kind,
            vec![col("a")],
            vec![col("k")],
        );
        let expected = drain_operator(&mut reference).unwrap();

        let ctx = tiny_budget_ctx(&catalog, &reg, 16);
        let mut grace = GraceHashJoin::new(
            Arc::clone(&ctx),
            FixedBatches::boxed(keyed_batches(&schema, &probe_chunks)),
            FixedBatches::boxed(keyed_batches(&right_schema, &build_chunks)),
            kind,
            vec![col("a")],
            vec![col("k")],
        );
        let out = drain_operator(&mut grace).unwrap();
        assert_eq!(expected, out, "{kind:?} join diverged");
        let stats = ctx.stats();
        assert!(
            stats.join_spilled_rows > 0,
            "a 256-byte budget must force partitioning: {stats:?}"
        );
        assert!(stats.join_build_partitions > 0);
        assert_eq!(
            ctx.pager().resident_bytes(),
            0,
            "all partition and output pages freed"
        );
    }
}

/// One giant key cannot be split by re-partitioning: recursion must bottom
/// out and join the pathological partition in memory, still correctly.
#[test]
fn grace_join_survives_single_key_skew() {
    use super::grace_join::GraceHashJoin;

    let schema = ab_schema();
    let right_schema = Schema::new(vec![
        ColumnDef::public("k", DataType::Int),
        ColumnDef::public("v", DataType::Int),
    ]);
    let build_rows: Vec<(Option<i64>, i64)> = (0..200).map(|i| (Some(7), i)).collect();
    let build_chunks: Vec<&[(Option<i64>, i64)]> = build_rows.chunks(25).collect();
    let probe: &[(Option<i64>, i64)] = &[(Some(7), 1), (Some(8), 2), (Some(7), 3)];

    let catalog = Catalog::new();
    let reg = registry();
    let ctx = tiny_budget_ctx(&catalog, &reg, 16);
    let mut grace = GraceHashJoin::new(
        Arc::clone(&ctx),
        FixedBatches::boxed(keyed_batches(&schema, &[probe])),
        FixedBatches::boxed(keyed_batches(&right_schema, &build_chunks)),
        JoinKind::Inner,
        vec![col("a")],
        vec![col("k")],
    );
    let out = drain_operator(&mut grace).unwrap();
    // Two probe rows match all 200 build rows each; the a=8 row matches none.
    assert_eq!(out.num_rows(), 400);
    assert_eq!(ctx.pager().resident_bytes(), 0);
}

/// Empty sides under a budget behave exactly like the in-memory join: an
/// empty build side joins nothing, an empty (but schema-carrying) probe side
/// yields an empty combined batch.
#[test]
fn grace_join_with_empty_sides() {
    use super::grace_join::GraceHashJoin;

    let catalog = Catalog::new();
    let reg = registry();
    let schema = ab_schema();
    let empty = || FixedBatches::boxed(vec![RecordBatch::empty(ab_schema())]);

    let ctx = tiny_budget_ctx(&catalog, &reg, 16);
    let left = FixedBatches::boxed(int_batches(&schema, &[&[(1, 1)]]));
    let mut join = GraceHashJoin::new(
        Arc::clone(&ctx),
        left,
        empty(),
        JoinKind::Inner,
        vec![col("a")],
        vec![col("a")],
    );
    assert_eq!(drain_operator(&mut join).unwrap().num_rows(), 0);

    let right = FixedBatches::boxed(int_batches(&schema, &[&[(1, 1)]]));
    let mut join = GraceHashJoin::new(
        Arc::clone(&ctx),
        empty(),
        right,
        JoinKind::Inner,
        vec![col("a")],
        vec![col("a")],
    );
    let out = drain_operator(&mut join).unwrap();
    assert_eq!(out.num_rows(), 0);
    assert_eq!(out.num_columns(), 4);
}

/// A spill-forced Grace join whose keys are oracle group tags: each side
/// resolves in exactly one coalesced round trip, spilled chunks are never
/// re-resolved (the rendered `__joinkey` rides the partition streams), and
/// the output stays byte-identical to the in-memory join.
#[test]
fn grace_join_resolves_oracle_keys_in_one_trip_per_side() {
    use super::grace_join::GraceHashJoin;

    let catalog = Catalog::new();
    let reg = registry();
    let oracle: crate::secure::OracleRef = std::sync::Arc::new(ContentOracle);
    let tag_key = |handle: &str| Expr::Function {
        name: "SDB_GROUP_TAG".to_string(),
        args: vec![
            col("v"),
            col("rid"),
            Expr::Literal(Literal::Str(handle.into())),
        ],
        distinct: false,
        wildcard: false,
    };
    // Probe (left): 48 rows in 6 batches; build (right): 32 rows in 4
    // batches. Distinct handles per side so the memo cannot mask trip counts.
    let left_in = || FixedBatches::boxed(encrypted_batches(6, 8));
    let right_in = || FixedBatches::boxed(encrypted_batches(4, 8));

    let unlimited =
        Arc::new(ExecContext::new(&catalog, &reg, Some(oracle.clone())).with_batch_size(16));
    let mut reference = HashJoin::new(
        Arc::clone(&unlimited),
        left_in(),
        right_in(),
        JoinKind::Inner,
        vec![tag_key("hL")],
        vec![tag_key("hR")],
    );
    let expected = drain_operator(&mut reference).unwrap();
    assert!(expected.num_rows() > 0, "tags must produce matches");

    // Batched Grace under a spill-forcing budget: one trip per side, total.
    let ctx = Arc::new(
        ExecContext::new(&catalog, &reg, Some(oracle.clone()))
            .with_memory_budget(sdb_storage::MemoryBudget::bytes(256))
            .with_batch_size(16),
    );
    let mut grace = GraceHashJoin::new(
        Arc::clone(&ctx),
        left_in(),
        right_in(),
        JoinKind::Inner,
        vec![tag_key("hL")],
        vec![tag_key("hR")],
    );
    let out = drain_operator(&mut grace).unwrap();
    assert_eq!(expected, out, "oracle-keyed grace join diverged");
    let stats = ctx.stats();
    assert!(
        stats.join_spilled_rows > 0,
        "a 256-byte budget must force partitioning: {stats:?}"
    );
    assert_eq!(
        stats.oracle_round_trips, 2,
        "one coalesced trip per side, zero per spilled chunk"
    );
    assert_eq!(stats.oracle_rows_shipped, 80, "48 probe + 32 build rows");
    assert_eq!(stats.oracle_memo_hits, 0, "handles differ per side");
    assert_eq!(ctx.pager().resident_bytes(), 0);

    // Batching off: every accumulated chunk pays its own trips, same bytes.
    let ctx = Arc::new(
        ExecContext::new(&catalog, &reg, Some(oracle))
            .with_memory_budget(sdb_storage::MemoryBudget::bytes(256))
            .with_batch_size(16)
            .with_oracle_batching(false),
    );
    let mut grace = GraceHashJoin::new(
        Arc::clone(&ctx),
        left_in(),
        right_in(),
        JoinKind::Inner,
        vec![tag_key("hL")],
        vec![tag_key("hR")],
    );
    let out = drain_operator(&mut grace).unwrap();
    assert_eq!(expected, out, "unbatched grace join diverged");
    assert!(
        ctx.stats().oracle_round_trips > 2,
        "per-chunk resolution pays a trip per chunk: {:?}",
        ctx.stats()
    );
}

#[test]
fn describe_renders_operator_trees() {
    let catalog = catalog_with_numbers(&[(1, 2)]);
    let reg = registry();
    let ctx = Arc::new(ExecContext::new(&catalog, &reg, None));
    let scan: BoxedOperator<'_> = Box::new(TableScan::new(Arc::clone(&ctx), "numbers", None));
    let filter: BoxedOperator<'_> = Box::new(Filter::new(
        Arc::clone(&ctx),
        scan,
        Expr::Binary {
            left: Box::new(col("a")),
            op: BinaryOp::Gt,
            right: Box::new(int(0)),
        },
    ));
    let limit = Limit::new(filter, 1);
    assert_eq!(limit.describe(), "Limit(Filter(TableScan))");
}
