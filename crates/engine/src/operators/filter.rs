//! Row filtering.

use std::sync::Arc;

use sdb_sql::ast::Expr;
use sdb_storage::RecordBatch;

use super::expr::bind_to_existing_columns;
use super::{BoxedOperator, ExecContext, PhysicalOperator};
use crate::kernels::CompiledPredicate;
use crate::Result;

/// Keeps the rows for which `predicate` evaluates to true (NULL drops the
/// row, per SQL semantics).
///
/// Oracle-backed calls inside the predicate are materialised by an
/// [`super::oracle::OracleResolve`] child the planner inserts beneath this
/// operator; the runtime binding pass then turns those calls into references
/// to the virtual columns. The virtual columns stay in the output batch (they
/// are stripped by the projection above, exactly as in the monolithic
/// executor this pipeline replaced).
pub struct Filter<'a> {
    ctx: Arc<ExecContext<'a>>,
    input: BoxedOperator<'a>,
    predicate: Expr,
}

impl<'a> Filter<'a> {
    /// Creates a filter over `input`.
    pub fn new(ctx: Arc<ExecContext<'a>>, input: BoxedOperator<'a>, predicate: Expr) -> Self {
        Filter {
            ctx,
            input,
            predicate,
        }
    }
}

impl PhysicalOperator for Filter<'_> {
    fn name(&self) -> &'static str {
        "Filter"
    }

    fn describe(&self) -> String {
        format!("{}({})", self.name(), self.input.describe())
    }

    fn open(&mut self) -> Result<()> {
        self.input.open()
    }

    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        let Some(batch) = self.input.next_batch()? else {
            return Ok(None);
        };
        let bound = bind_to_existing_columns(&self.predicate, batch.schema());
        // Vectorised path: predicates in the kernel subset (typed column /
        // literal comparisons, Kleene AND/OR/NOT, LIKE, IN, IS NULL) evaluate
        // to a selection bitmap without per-row interpretation. The kernel
        // only compiles infallible, UDF-free predicates, so skipping the
        // scalar loop changes no observable (including UDF call counts).
        if self.ctx.vectorised() {
            if let Some(compiled) = CompiledPredicate::compile(&bound, batch.schema()) {
                if let Some(selection) = compiled.selection(&batch) {
                    self.ctx.stats_mut().vectorised_batches += 1;
                    return batch
                        .filter_bitmap(&selection)
                        .map(Some)
                        .map_err(Into::into);
                }
            }
        }
        self.ctx.stats_mut().scalar_fallback_batches += 1;
        let evaluator = self.ctx.evaluator();
        let mut mask = Vec::with_capacity(batch.num_rows());
        for row in 0..batch.num_rows() {
            mask.push(evaluator.evaluate_predicate(&bound, &batch, row)?);
        }
        self.ctx.record_udf_calls(&evaluator);
        batch.filter(&mask).map(Some).map_err(Into::into)
    }

    fn close(&mut self) -> Result<()> {
        self.input.close()
    }
}
