//! External merge sort: bounded-memory sorting through the pager.
//!
//! The classic two-phase design, morsel-parallel where it pays:
//!
//! 1. **Run generation** — input batches accumulate (with their evaluated
//!    sort-key values prepended as extra columns) until the
//!    [`MemoryBudget`](sdb_storage::MemoryBudget) is reached; the
//!    accumulated run is then sorted — in parallel, by sorting per-worker
//!    morsels on scoped threads and merging them, which is exactly a
//!    parallel merge sort — and parked in the pager as a sequence of
//!    `batch_size`-row pages. Under budget pressure the pager transparently
//!    spills those pages to disk.
//! 2. **K-way merge on drain** — one cursor per run pins its frontier page
//!    (pages are faulted back in on demand and freed as soon as they are
//!    consumed) and a binary heap pops the globally smallest row, emitting
//!    output batches of `batch_size` rows.
//!
//! Ties break by run index and then by position within the run. Runs are
//! contiguous chunks of the input in arrival order and each run is sorted
//! with a position tie-break, so the merged output is **byte-identical** to
//! the in-memory [`super::sort::Sort`]'s stable sort, at any parallelism and
//! any batch size.
//!
//! Spilled key columns ride along with the data instead of being
//! re-evaluated after a page faults back in: re-evaluation could re-trigger
//! subquery resolution and would double-count UDF statistics.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use sdb_sql::plan::SortKey;
use sdb_storage::{
    partition_ranges, Column, ColumnDef, DataType, PageId, PinnedPage, RecordBatch, Schema, Value,
};

use super::expr::bind_to_existing_columns;
use super::parallel::{effective_workers, scoped_workers};
use super::{BoxedOperator, ExecContext, PhysicalOperator};
use crate::Result;

/// Sorts its input by the given keys within a memory budget, spilling sorted
/// runs through the pager. Output is byte-identical to [`super::sort::Sort`].
pub struct ExternalSort<'a> {
    ctx: Arc<ExecContext<'a>>,
    input: BoxedOperator<'a>,
    keys: Vec<SortKey>,
    /// Set once the build phase (run generation) has completed.
    merge: Option<MergeState>,
    /// The schema of emitted batches (the input schema, keys stripped).
    output_schema: Schema,
    /// True once the single empty batch for an empty input was emitted.
    emitted: bool,
}

impl<'a> ExternalSort<'a> {
    /// Creates an external sort over `input`.
    pub fn new(ctx: Arc<ExecContext<'a>>, input: BoxedOperator<'a>, keys: Vec<SortKey>) -> Self {
        ExternalSort {
            ctx,
            input,
            keys,
            merge: None,
            output_schema: Schema::empty(),
            emitted: false,
        }
    }

    /// Drains the input into sorted runs parked in the pager.
    fn build(&mut self) -> Result<MergeState> {
        let desc: Arc<Vec<bool>> = Arc::new(self.keys.iter().map(|k| k.desc).collect());
        let limit = self.ctx.memory_budget().limit().unwrap_or(usize::MAX);
        let mut runs: Vec<Vec<PageId>> = Vec::new();
        let mut run_buf: Option<RecordBatch> = None;
        let mut run_bytes = 0usize;
        let mut bound_keys: Option<Vec<sdb_sql::ast::Expr>> = None;

        while let Some(batch) = self.input.next_batch()? {
            if bound_keys.is_none() {
                self.output_schema = batch.schema().clone();
                bound_keys = Some(
                    self.keys
                        .iter()
                        .map(|k| bind_to_existing_columns(&k.expr, batch.schema()))
                        .collect(),
                );
            }
            let combined = self.attach_keys(&batch, bound_keys.as_ref().expect("bound above"))?;
            run_bytes += combined.approx_size_bytes();
            match &mut run_buf {
                None => run_buf = Some(combined),
                Some(acc) => acc.append(&combined)?,
            }
            if run_bytes >= limit {
                if let Some(run) = run_buf.take() {
                    runs.push(self.seal_run(run, &desc)?);
                }
                run_bytes = 0;
            }
        }
        if let Some(run) = run_buf.take() {
            if run.num_rows() > 0 {
                runs.push(self.seal_run(run, &desc)?);
            }
        }

        let mut cursors = Vec::with_capacity(runs.len());
        let mut heap = BinaryHeap::with_capacity(runs.len());
        for (i, pages) in runs.into_iter().enumerate() {
            let mut cursor = RunCursor {
                pages,
                next_page: 0,
                row: 0,
                current: None,
            };
            cursor.advance_page(&self.ctx)?;
            if let Some(key) = cursor.frontier_key(self.keys.len()) {
                heap.push(MergeEntry {
                    key,
                    run: i,
                    desc: Arc::clone(&desc),
                });
            }
            cursors.push(cursor);
        }
        Ok(MergeState {
            cursors,
            heap,
            desc,
        })
    }

    /// Prepends the evaluated key values as extra columns (named `__sortkey*`
    /// so they can never shadow data columns downstream — they are stripped
    /// before emission anyway).
    fn attach_keys(
        &self,
        batch: &RecordBatch,
        bound: &[sdb_sql::ast::Expr],
    ) -> Result<RecordBatch> {
        let evaluator = self.ctx.evaluator();
        let mut key_columns: Vec<Column> = (0..bound.len())
            .map(|_| Column::new(DataType::Int))
            .collect();
        for row in 0..batch.num_rows() {
            for (expr, column) in bound.iter().zip(key_columns.iter_mut()) {
                column.push_unchecked(evaluator.evaluate(expr, batch, row)?);
            }
        }
        self.ctx.record_udf_calls(&evaluator);

        let mut defs: Vec<ColumnDef> = (0..bound.len())
            .map(|i| ColumnDef::public(&format!("__sortkey{i}"), DataType::Int))
            .collect();
        defs.extend(batch.schema().columns().iter().cloned());
        key_columns.extend(batch.columns().iter().cloned());
        Ok(RecordBatch::new(Schema::new(defs), key_columns)?)
    }

    /// Sorts one run (morsel-parallel) and parks it in the pager as
    /// `batch_size`-row pages.
    fn seal_run(&self, run: RecordBatch, desc: &Arc<Vec<bool>>) -> Result<Vec<PageId>> {
        let order = sorted_order(&self.ctx, &run, desc)?;
        let sorted = run.reorder(&order)?;
        let batch_size = self.ctx.batch_size();
        let mut pages = Vec::with_capacity(sorted.num_rows().div_ceil(batch_size).max(1));
        let mut offset = 0;
        while offset < sorted.num_rows() {
            let take = batch_size.min(sorted.num_rows() - offset);
            pages.push(self.ctx.pager().append_page(sorted.slice(offset, take)?)?);
            offset += take;
        }
        Ok(pages)
    }
}

impl PhysicalOperator for ExternalSort<'_> {
    fn name(&self) -> &'static str {
        "ExternalSort"
    }

    fn describe(&self) -> String {
        format!("{}({})", self.name(), self.input.describe())
    }

    fn open(&mut self) -> Result<()> {
        self.merge = None;
        self.output_schema = Schema::empty();
        self.emitted = false;
        self.input.open()
    }

    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        if self.merge.is_none() {
            let state = self.build()?;
            self.merge = Some(state);
        }
        let num_keys = self.keys.len();
        let state = self.merge.as_mut().expect("built above");
        if state.heap.is_empty() {
            // Match the in-memory sort on empty inputs: one empty batch
            // carrying the (possibly empty) schema.
            if self.emitted {
                return Ok(None);
            }
            self.emitted = true;
            return Ok(Some(RecordBatch::empty(self.output_schema.clone())));
        }

        let mut columns: Vec<Column> = self
            .output_schema
            .columns()
            .iter()
            .map(|c| Column::new(c.data_type))
            .collect();
        let mut rows = 0;
        let batch_size = self.ctx.batch_size();
        while rows < batch_size {
            let Some(entry) = state.heap.pop() else {
                break;
            };
            let cursor = &mut state.cursors[entry.run];
            {
                let page = cursor.current.as_ref().expect("frontier implies a page");
                for (j, column) in columns.iter_mut().enumerate() {
                    column.push_unchecked(page.column(num_keys + j).get(cursor.row).clone());
                }
            }
            rows += 1;
            cursor.advance_row(&self.ctx)?;
            if let Some(key) = cursor.frontier_key(num_keys) {
                state.heap.push(MergeEntry {
                    key,
                    run: entry.run,
                    desc: Arc::clone(&state.desc),
                });
            }
        }
        self.emitted = true;
        Ok(Some(RecordBatch::new(self.output_schema.clone(), columns)?))
    }

    fn close(&mut self) -> Result<()> {
        if let Some(state) = self.merge.take() {
            for mut cursor in state.cursors {
                cursor.release(&self.ctx);
            }
        }
        self.input.close()
    }
}

/// A cursor over one sorted run's pages.
struct RunCursor {
    pages: Vec<PageId>,
    next_page: usize,
    row: usize,
    current: Option<PinnedPage>,
}

impl RunCursor {
    /// Pins the next page, freeing the exhausted one (its spill slot and
    /// frame are no longer needed once consumed).
    fn advance_page(&mut self, ctx: &ExecContext<'_>) -> Result<()> {
        if let Some(done) = self.current.take() {
            let id = done.id();
            drop(done);
            ctx.pager().free_page(id)?;
        }
        self.row = 0;
        while self.next_page < self.pages.len() {
            let page = ctx.pager().pin(self.pages[self.next_page])?;
            self.next_page += 1;
            if page.num_rows() > 0 {
                self.current = Some(page);
                return Ok(());
            }
            let id = page.id();
            drop(page);
            ctx.pager().free_page(id)?;
        }
        Ok(())
    }

    /// Moves past the current frontier row.
    fn advance_row(&mut self, ctx: &ExecContext<'_>) -> Result<()> {
        self.row += 1;
        let exhausted = self
            .current
            .as_ref()
            .is_some_and(|page| self.row >= page.num_rows());
        if exhausted {
            self.advance_page(ctx)?;
        }
        Ok(())
    }

    /// The current row's key values, or `None` when the run is exhausted.
    fn frontier_key(&self, num_keys: usize) -> Option<Vec<Value>> {
        let page = self.current.as_ref()?;
        Some(
            (0..num_keys)
                .map(|i| page.column(i).get(self.row).clone())
                .collect(),
        )
    }

    /// Unpins and frees every page still held (early close / error paths).
    fn release(&mut self, ctx: &ExecContext<'_>) {
        if let Some(page) = self.current.take() {
            let id = page.id();
            drop(page);
            let _ = ctx.pager().free_page(id);
        }
        for &id in &self.pages[self.next_page..] {
            let _ = ctx.pager().free_page(id);
        }
        self.next_page = self.pages.len();
    }
}

/// Everything the drain phase needs: run cursors plus the merge heap.
struct MergeState {
    cursors: Vec<RunCursor>,
    heap: BinaryHeap<MergeEntry>,
    desc: Arc<Vec<bool>>,
}

/// One run's frontier in the merge heap. The heap is a max-heap, so `Ord` is
/// reversed: popping yields the row that sorts *first*.
struct MergeEntry {
    key: Vec<Value>,
    run: usize,
    desc: Arc<Vec<bool>>,
}

impl MergeEntry {
    /// Forward sort order: key columns with their desc flags, then the run
    /// index (runs are input-order chunks, so this preserves stability).
    fn forward_cmp(&self, other: &Self) -> Ordering {
        for (i, desc) in self.desc.iter().enumerate() {
            let ord = self.key[i].cmp_total(&other.key[i]);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        self.run.cmp(&other.run)
    }
}

impl Ord for MergeEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.forward_cmp(self)
    }
}

impl PartialOrd for MergeEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for MergeEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for MergeEntry {}

/// Compares two rows of a key-prefixed run batch: key columns first (with
/// desc flags), then position — a total order whose sort equals a stable
/// sort by keys alone.
fn compare_rows(batch: &RecordBatch, desc: &[bool], a: usize, b: usize) -> Ordering {
    for (i, d) in desc.iter().enumerate() {
        let ord = batch.column(i).get(a).cmp_total(batch.column(i).get(b));
        let ord = if *d { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    a.cmp(&b)
}

/// The sorted row order of one run. With more than one worker, per-worker
/// morsels sort on scoped threads and merge afterwards — a parallel merge
/// sort whose result is identical to the serial sort because the comparator
/// carries the position tie-break.
fn sorted_order(
    ctx: &ExecContext<'_>,
    run: &RecordBatch,
    desc: &Arc<Vec<bool>>,
) -> Result<Vec<usize>> {
    let rows = run.num_rows();
    let workers = effective_workers(ctx.parallelism(), rows);
    if workers <= 1 {
        let mut order: Vec<usize> = (0..rows).collect();
        order.sort_unstable_by(|&a, &b| compare_rows(run, desc, a, b));
        return Ok(order);
    }
    let ranges = partition_ranges(rows, workers);
    let parts: Vec<Vec<usize>> = scoped_workers(ranges.len(), |i| {
        let mut order: Vec<usize> = ranges[i].clone().collect();
        order.sort_unstable_by(|&a, &b| compare_rows(run, desc, a, b));
        Ok(order)
    })?;
    // Merge the sorted morsels (frontier scan: worker counts are small).
    let mut heads = vec![0usize; parts.len()];
    let mut order = Vec::with_capacity(rows);
    for _ in 0..rows {
        let mut best: Option<(usize, usize)> = None; // (part, row index)
        for (p, part) in parts.iter().enumerate() {
            let Some(&candidate) = part.get(heads[p]) else {
                continue;
            };
            best = match best {
                None => Some((p, candidate)),
                Some((_, current))
                    if compare_rows(run, desc, candidate, current) == Ordering::Less =>
                {
                    Some((p, candidate))
                }
                keep => keep,
            };
        }
        let (p, row) = best.expect("total counts match");
        heads[p] += 1;
        order.push(row);
    }
    Ok(order)
}
