//! Base-table scan.

use std::rc::Rc;

use sdb_storage::{ColumnDef, RecordBatch, Schema};

use super::{ExecContext, PhysicalOperator};
use crate::Result;

/// Scans a catalog table, emitting batches of at most `ctx.batch_size()` rows.
///
/// Column names are qualified with the visible table name (the alias if one
/// was given) so joins and qualified references resolve; bare references still
/// work through the schema's suffix matching.
pub struct TableScan<'a> {
    ctx: Rc<ExecContext<'a>>,
    table: String,
    alias: Option<String>,
    /// The table snapshot, taken at `open()`.
    source: Option<RecordBatch>,
    /// Next row offset into the snapshot.
    offset: usize,
    /// True until the first batch is emitted (an empty table still yields one
    /// empty batch so downstream operators learn the schema).
    emitted: bool,
}

impl<'a> TableScan<'a> {
    /// Creates a scan of `table` (visible under `alias` if given).
    pub fn new(ctx: Rc<ExecContext<'a>>, table: &str, alias: Option<&str>) -> Self {
        TableScan {
            ctx,
            table: table.to_string(),
            alias: alias.map(str::to_string),
            source: None,
            offset: 0,
            emitted: false,
        }
    }
}

impl PhysicalOperator for TableScan<'_> {
    fn name(&self) -> &'static str {
        "TableScan"
    }

    fn open(&mut self) -> Result<()> {
        let handle = self.ctx.catalog().table(&self.table)?;
        let guard = handle.read();
        let batch = guard.scan();
        let visible = self.alias.as_deref().unwrap_or(&self.table);

        // Qualify column names with the visible table name.
        let qualified = Schema::new(
            batch
                .schema()
                .columns()
                .iter()
                .map(|c| ColumnDef {
                    name: format!("{visible}.{}", c.name),
                    data_type: c.data_type,
                    sensitivity: c.sensitivity,
                })
                .collect(),
        );
        self.source = Some(RecordBatch::new(qualified, batch.columns().to_vec())?);
        self.offset = 0;
        self.emitted = false;
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        let total = match &self.source {
            Some(source) => source.num_rows(),
            // The whole-table fast path below already handed the snapshot off.
            None => return Ok(None),
        };
        if self.offset >= total {
            if self.emitted {
                return Ok(None);
            }
            // Empty table: emit one empty batch carrying the schema.
            self.emitted = true;
            let schema = self
                .source
                .as_ref()
                .expect("checked above")
                .schema()
                .clone();
            return Ok(Some(RecordBatch::empty(schema)));
        }
        let take = self.ctx.batch_size().min(total - self.offset);
        // Whole-table-in-one-batch fast path: hand the snapshot off instead of
        // cloning it row by row.
        let batch = if self.offset == 0 && take == total {
            self.source.take().expect("checked above")
        } else {
            self.source
                .as_ref()
                .expect("checked above")
                .slice(self.offset, take)?
        };
        self.offset += take;
        self.emitted = true;
        self.ctx.stats_mut().rows_scanned += take;
        Ok(Some(batch))
    }

    fn close(&mut self) -> Result<()> {
        self.source = None;
        Ok(())
    }
}
