//! Base-table scan: the serial chunked scan and its morsel-parallel variant.

use std::collections::VecDeque;
use std::sync::Arc;

use sdb_storage::{partition_ranges, ColumnDef, RecordBatch, Schema};

use super::parallel::{effective_workers, scoped_workers};
use super::{ExecContext, PhysicalOperator};
use crate::Result;

/// Takes a snapshot of `table` with column names qualified by the visible
/// table name (the alias if one was given) so joins and qualified references
/// resolve; bare references still work through the schema's suffix matching.
fn qualified_snapshot(
    ctx: &ExecContext<'_>,
    table: &str,
    alias: Option<&str>,
) -> Result<RecordBatch> {
    let handle = ctx.catalog().table(table)?;
    let guard = handle.read();
    let batch = guard.scan();
    let visible = alias.unwrap_or(table);
    let qualified = Schema::new(
        batch
            .schema()
            .columns()
            .iter()
            .map(|c| ColumnDef {
                name: format!("{visible}.{}", c.name),
                data_type: c.data_type,
                sensitivity: c.sensitivity,
            })
            .collect(),
    );
    Ok(RecordBatch::new(qualified, batch.columns().to_vec())?)
}

/// Scans a catalog table, emitting batches of at most `ctx.batch_size()` rows.
pub struct TableScan<'a> {
    ctx: Arc<ExecContext<'a>>,
    table: String,
    alias: Option<String>,
    /// The table snapshot, taken at `open()`.
    source: Option<RecordBatch>,
    /// Next row offset into the snapshot.
    offset: usize,
    /// True until the first batch is emitted (an empty table still yields one
    /// empty batch so downstream operators learn the schema).
    emitted: bool,
}

impl<'a> TableScan<'a> {
    /// Creates a scan of `table` (visible under `alias` if given).
    pub fn new(ctx: Arc<ExecContext<'a>>, table: &str, alias: Option<&str>) -> Self {
        TableScan {
            ctx,
            table: table.to_string(),
            alias: alias.map(str::to_string),
            source: None,
            offset: 0,
            emitted: false,
        }
    }
}

impl PhysicalOperator for TableScan<'_> {
    fn name(&self) -> &'static str {
        "TableScan"
    }

    fn open(&mut self) -> Result<()> {
        self.source = Some(qualified_snapshot(
            &self.ctx,
            &self.table,
            self.alias.as_deref(),
        )?);
        self.offset = 0;
        self.emitted = false;
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        self.ctx.check_cancelled()?;
        let total = match &self.source {
            Some(source) => source.num_rows(),
            // The whole-table fast path below already handed the snapshot off.
            None => return Ok(None),
        };
        if self.offset >= total {
            if self.emitted {
                return Ok(None);
            }
            // Empty table: emit one empty batch carrying the schema.
            self.emitted = true;
            let schema = self
                .source
                .as_ref()
                .expect("checked above")
                .schema()
                .clone();
            return Ok(Some(RecordBatch::empty(schema)));
        }
        let take = self.ctx.batch_size().min(total - self.offset);
        // Whole-table-in-one-batch fast path: hand the snapshot off instead of
        // cloning it row by row.
        let batch = if self.offset == 0 && take == total {
            self.source.take().expect("checked above")
        } else {
            self.source
                .as_ref()
                .expect("checked above")
                .slice(self.offset, take)?
        };
        self.offset += take;
        self.emitted = true;
        self.ctx.stats_mut().rows_scanned += take;
        Ok(Some(batch))
    }

    fn close(&mut self) -> Result<()> {
        self.source = None;
        Ok(())
    }
}

/// Morsel-parallel table scan: `open()` splits the snapshot's row range into
/// one contiguous morsel per worker and materialises each morsel's batches on
/// a scoped worker thread; `next_batch()` then replays the chunks in global
/// row order, accounting `rows_scanned` as chunks are actually handed
/// downstream (so a consumer that stops early — `LIMIT` — reports roughly the
/// same scan count as the serial scan).
///
/// The emitted rows (and their order) are identical to [`TableScan`]'s; only
/// the batch boundaries may differ, since each morsel is chunked
/// independently. Unlike the serial scan, the slicing work all happens at
/// `open()` — a `LIMIT` above this operator saves emission, not
/// materialisation (a limit-aware planner choice is a ROADMAP item).
pub struct ParallelTableScan<'a> {
    ctx: Arc<ExecContext<'a>>,
    table: String,
    alias: Option<String>,
    chunks: VecDeque<RecordBatch>,
}

impl<'a> ParallelTableScan<'a> {
    /// Creates a parallel scan of `table` (visible under `alias` if given).
    pub fn new(ctx: Arc<ExecContext<'a>>, table: &str, alias: Option<&str>) -> Self {
        ParallelTableScan {
            ctx,
            table: table.to_string(),
            alias: alias.map(str::to_string),
            chunks: VecDeque::new(),
        }
    }
}

impl PhysicalOperator for ParallelTableScan<'_> {
    fn name(&self) -> &'static str {
        "ParallelTableScan"
    }

    fn open(&mut self) -> Result<()> {
        let snapshot = qualified_snapshot(&self.ctx, &self.table, self.alias.as_deref())?;
        let total = snapshot.num_rows();
        if total == 0 {
            // Empty table: one empty batch carrying the schema.
            self.chunks = VecDeque::from([RecordBatch::empty(snapshot.schema().clone())]);
            return Ok(());
        }
        let workers = effective_workers(self.ctx.parallelism(), total);
        let ranges = partition_ranges(total, workers);
        let batch_size = self.ctx.batch_size();
        let snapshot = &snapshot;
        let per_worker: Vec<Vec<RecordBatch>> = scoped_workers(workers, |i| {
            let range = ranges[i].clone();
            let mut out = Vec::with_capacity((range.len()).div_ceil(batch_size));
            let mut offset = range.start;
            while offset < range.end {
                let take = batch_size.min(range.end - offset);
                out.push(snapshot.slice(offset, take)?);
                offset += take;
            }
            Ok(out)
        })?;
        self.chunks = per_worker.into_iter().flatten().collect();
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        self.ctx.check_cancelled()?;
        let chunk = self.chunks.pop_front();
        if let Some(chunk) = &chunk {
            self.ctx.stats_mut().rows_scanned += chunk.num_rows();
        }
        Ok(chunk)
    }

    fn close(&mut self) -> Result<()> {
        self.chunks.clear();
        Ok(())
    }
}
