//! Bounded-memory hash aggregation: partition-and-spill with recursive
//! re-aggregation.
//!
//! The operator streams its input and evaluates each row into a *prepared
//! row* — a global arrival sequence number, the grouping-key values and every
//! aggregate's argument value. Prepared rows accumulate in memory until the
//! [`MemoryBudget`](sdb_storage::MemoryBudget) is exceeded, at which point
//! they are hash-partitioned by grouping key into `FANOUT` spill streams
//! parked in the pager (same-key rows always land in the same partition).
//! At the end each partition is re-aggregated independently; a partition
//! still larger than the budget is recursively re-partitioned with a
//! different hash level, up to `MAX_LEVELS` (beyond that it is aggregated
//! in memory — a single pathological group cannot be split by key).
//!
//! **Byte-identity with [`super::aggregate::HashAggregate`]:** the in-memory
//! operator emits groups in global first-occurrence order with each group's
//! argument values in global row order. Spilled rows keep their arrival
//! order within every partition (writes happen in arrival order, reads in
//! page order), so per-partition aggregation preserves row order; the final
//! groups are then sorted by their minimum sequence number, which *is* the
//! global first-occurrence order. If the input never exceeds the budget,
//! nothing spills and the pending rows aggregate directly — the same code
//! path minus the partitioning.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use sdb_sql::ast::Expr;
use sdb_sql::plan::AggregateExpr;
use sdb_storage::{ColumnDef, DataType, PageStream, PageStreamWriter, RecordBatch, Schema, Value};

use super::aggregate::{bind_aggregate_exprs, finalize_groups, GroupState};
use super::expr::join_key_component;
use super::{BoxedOperator, ExecContext, PhysicalOperator};
use crate::Result;

/// Number of spill partitions per level (shared with
/// [`super::grace_join::GraceHashJoin`], which partitions the same way).
pub(super) const FANOUT: usize = 8;

/// Maximum re-partitioning depth before giving up on splitting further.
pub(super) const MAX_LEVELS: u32 = 3;

/// One input row, evaluated and ready to group or spill.
struct PreparedRow {
    /// Global arrival index (drives first-occurrence ordering).
    seq: u64,
    /// Rendered grouping key (the same derivation the in-memory operator
    /// uses: components joined with a unit separator).
    key: String,
    key_values: Vec<Value>,
    args: Vec<Value>,
}

impl PreparedRow {
    fn approx_size(&self) -> usize {
        16 + self.key.len()
            + self
                .key_values
                .iter()
                .chain(self.args.iter())
                .map(Value::approx_size)
                .sum::<usize>()
    }

    /// The page layout of a prepared row: sequence number, key values, then
    /// argument values ([`decode_rows`] inverts this).
    fn into_values(self) -> Vec<Value> {
        let mut out = Vec::with_capacity(1 + self.key_values.len() + self.args.len());
        out.push(Value::Int(self.seq as i64));
        out.extend(self.key_values);
        out.extend(self.args);
        out
    }
}

/// Hash aggregation that spills prepared rows through the pager when group
/// state would exceed the memory budget. Output is byte-identical to
/// [`super::aggregate::HashAggregate`].
pub struct SpillingHashAggregate<'a> {
    ctx: Arc<ExecContext<'a>>,
    input: BoxedOperator<'a>,
    group_by: Vec<(Expr, String)>,
    aggregates: Vec<AggregateExpr>,
    done: bool,
}

impl<'a> SpillingHashAggregate<'a> {
    /// Creates a spilling aggregation over `input`.
    pub fn new(
        ctx: Arc<ExecContext<'a>>,
        input: BoxedOperator<'a>,
        group_by: Vec<(Expr, String)>,
        aggregates: Vec<AggregateExpr>,
    ) -> Self {
        SpillingHashAggregate {
            ctx,
            input,
            group_by,
            aggregates,
            done: false,
        }
    }

    /// The page schema for spilled prepared rows: sequence number, then the
    /// key values, then the aggregate argument values. The declared types are
    /// placeholders — the page codec tags every value individually.
    fn page_schema(&self) -> Schema {
        let mut defs = vec![ColumnDef::public("__seq", DataType::Int)];
        defs.extend(
            (0..self.group_by.len()).map(|i| ColumnDef::public(&format!("__k{i}"), DataType::Int)),
        );
        defs.extend(
            (0..self.aggregates.len())
                .map(|j| ColumnDef::public(&format!("__a{j}"), DataType::Int)),
        );
        Schema::new(defs)
    }

    /// Evaluates one input batch into prepared rows.
    fn prepare_batch(
        &self,
        batch: &RecordBatch,
        group_exprs: &[Expr],
        agg_args: &[Expr],
        next_seq: &mut u64,
        out: &mut Vec<PreparedRow>,
        out_bytes: &mut usize,
    ) -> Result<()> {
        let evaluator = self.ctx.evaluator();
        for row in 0..batch.num_rows() {
            let mut key_values = Vec::with_capacity(group_exprs.len());
            for e in group_exprs {
                key_values.push(evaluator.evaluate(e, batch, row)?);
            }
            let key: String = key_values
                .iter()
                .map(join_key_component)
                .collect::<Vec<_>>()
                .join("\u{1f}");
            let mut args = Vec::with_capacity(agg_args.len());
            for a in agg_args {
                args.push(evaluator.evaluate(a, batch, row)?);
            }
            let prepared = PreparedRow {
                seq: *next_seq,
                key,
                key_values,
                args,
            };
            *next_seq += 1;
            *out_bytes += prepared.approx_size();
            out.push(prepared);
        }
        self.ctx.record_udf_calls(&evaluator);
        Ok(())
    }

    /// One partition writer per fanout slot, flushing at a small fraction of
    /// the budget so `FANOUT` writers cannot hoard it.
    fn partition_writers(&self, page_schema: &Schema) -> Vec<PageStreamWriter> {
        let limit = self.ctx.memory_budget().limit().unwrap_or(usize::MAX);
        let flush_bytes = (limit / (2 * FANOUT)).max(1);
        (0..FANOUT)
            .map(|_| PageStreamWriter::new(page_schema.clone(), flush_bytes, self.ctx.batch_size()))
            .collect()
    }

    /// Streams the input, spilling on overflow, and produces the final
    /// groups in global first-occurrence order.
    fn aggregate_input(&mut self) -> Result<(Vec<GroupState>, Vec<Expr>, Schema)> {
        let limit = self.ctx.memory_budget().limit().unwrap_or(usize::MAX);
        let page_schema = self.page_schema();
        let mut input_schema = Schema::empty();
        let mut bound: Option<(Vec<Expr>, Vec<Expr>)> = None;
        let mut pending: Vec<PreparedRow> = Vec::new();
        let mut pending_bytes = 0usize;
        let mut partitions: Option<Vec<PageStreamWriter>> = None;
        let mut next_seq = 0u64;

        while let Some(batch) = self.input.next_batch()? {
            if bound.is_none() {
                input_schema = batch.schema().clone();
                bound = Some(bind_aggregate_exprs(
                    &self.group_by,
                    &self.aggregates,
                    batch.schema(),
                ));
            }
            let (group_exprs, agg_args) = bound.as_ref().expect("bound above");
            self.prepare_batch(
                &batch,
                group_exprs,
                agg_args,
                &mut next_seq,
                &mut pending,
                &mut pending_bytes,
            )?;
            if pending_bytes > limit {
                if partitions.is_none() {
                    partitions = Some(self.partition_writers(&page_schema));
                }
                let writers = partitions.as_mut().expect("created above");
                spill_rows(&self.ctx, writers, pending.drain(..), 0)?;
                pending_bytes = 0;
            }
        }
        let (group_exprs, _) = bound.unwrap_or_else(|| {
            bind_aggregate_exprs(&self.group_by, &self.aggregates, &Schema::empty())
        });

        let groups = match partitions {
            // Everything fit: aggregate the pending rows directly. They are
            // in arrival order, so the groups come out exactly as the
            // in-memory operator would produce them.
            None => {
                let mut groups = Vec::new();
                group_rows_into(pending, &mut HashMap::new(), &mut Vec::new(), &mut groups);
                groups
            }
            Some(mut writers) => {
                spill_rows(&self.ctx, &mut writers, pending.drain(..), 0)?;
                let mut collected: Vec<(u64, GroupState)> = Vec::new();
                for writer in writers {
                    let run = writer.finish(self.ctx.pager())?;
                    self.aggregate_partition(run, 1, &page_schema, &mut collected)?;
                }
                // Minimum sequence number == global first occurrence.
                collected.sort_by_key(|(min_seq, _)| *min_seq);
                collected.into_iter().map(|(_, state)| state).collect()
            }
        };
        Ok((groups, group_exprs, input_schema))
    }

    /// Re-aggregates one spilled partition, recursively re-partitioning at
    /// the next hash level while it exceeds the budget (and further levels
    /// remain).
    fn aggregate_partition(
        &self,
        run: PageStream,
        level: u32,
        page_schema: &Schema,
        out: &mut Vec<(u64, GroupState)>,
    ) -> Result<()> {
        let limit = self.ctx.memory_budget().limit().unwrap_or(usize::MAX);
        if run.bytes() > limit && level <= MAX_LEVELS {
            // Still too big: split by a different hash of the same keys.
            let mut writers = self.partition_writers(page_schema);
            let mut reader = run.reader();
            while let Some(batch) = reader.next_batch(self.ctx.pager())? {
                let rows = decode_rows(&batch, self.group_by.len(), self.aggregates.len())?;
                spill_rows(&self.ctx, &mut writers, rows.into_iter(), level)?;
            }
            for writer in writers {
                let sub = writer.finish(self.ctx.pager())?;
                if !sub.is_empty() {
                    self.aggregate_partition(sub, level + 1, page_schema, out)?;
                }
            }
            return Ok(());
        }
        // Small enough (or unsplittable): fold the partition's rows into
        // group states page by page, keeping only one page resident (the
        // reader frees each page as it is consumed).
        let mut index: HashMap<String, usize> = HashMap::new();
        let mut groups: Vec<GroupState> = Vec::new();
        let mut min_seqs: Vec<u64> = Vec::new();
        let mut reader = run.reader();
        while let Some(batch) = reader.next_batch(self.ctx.pager())? {
            let rows = decode_rows(&batch, self.group_by.len(), self.aggregates.len())?;
            group_rows_into(rows, &mut index, &mut min_seqs, &mut groups);
        }
        out.extend(min_seqs.into_iter().zip(groups));
        Ok(())
    }
}

impl PhysicalOperator for SpillingHashAggregate<'_> {
    fn name(&self) -> &'static str {
        "SpillingHashAggregate"
    }

    fn describe(&self) -> String {
        format!("{}({})", self.name(), self.input.describe())
    }

    fn open(&mut self) -> Result<()> {
        self.done = false;
        self.input.open()
    }

    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let (groups, group_exprs, input_schema) = self.aggregate_input()?;
        finalize_groups(
            &self.group_by,
            &self.aggregates,
            &group_exprs,
            groups,
            &input_schema,
        )
        .map(Some)
    }

    fn close(&mut self) -> Result<()> {
        self.input.close()
    }
}

/// Deterministic partition assignment: same key, same level → same
/// partition; a different level reshuffles keys. Shared with the Grace hash
/// join so both spilling operators split identically.
pub(super) fn partition_of(key: &str, level: u32) -> usize {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    level.hash(&mut hasher);
    key.hash(&mut hasher);
    (hasher.finish() % FANOUT as u64) as usize
}

/// Routes prepared rows (in arrival order) to their partitions' writers.
fn spill_rows(
    ctx: &ExecContext<'_>,
    writers: &mut [PageStreamWriter],
    rows: impl Iterator<Item = PreparedRow>,
    level: u32,
) -> Result<()> {
    for row in rows {
        let p = partition_of(&row.key, level);
        writers[p].push_row(ctx.pager(), row.into_values())?;
    }
    Ok(())
}

/// Folds prepared rows (already in arrival order) into group states,
/// continuing an existing index/groups pair across calls (one call per
/// partition page). `min_seqs[i]` is group `i`'s first arrival.
fn group_rows_into(
    rows: Vec<PreparedRow>,
    index: &mut HashMap<String, usize>,
    min_seqs: &mut Vec<u64>,
    groups: &mut Vec<GroupState>,
) {
    for row in rows {
        let g = match index.get(&row.key) {
            Some(&g) => g,
            None => {
                index.insert(row.key.clone(), groups.len());
                min_seqs.push(row.seq);
                groups.push(GroupState {
                    key: row.key,
                    key_values: row.key_values,
                    rows: 0,
                    arg_values: vec![Vec::new(); row.args.len()],
                });
                groups.len() - 1
            }
        };
        groups[g].rows += 1;
        for (acc, value) in groups[g].arg_values.iter_mut().zip(row.args) {
            acc.push(value);
        }
    }
}

/// Unpacks a page batch back into prepared rows (re-deriving the rendered
/// key from the key values — the same derivation that produced it).
fn decode_rows(batch: &RecordBatch, num_keys: usize, num_args: usize) -> Result<Vec<PreparedRow>> {
    let mut rows = Vec::with_capacity(batch.num_rows());
    for r in 0..batch.num_rows() {
        let seq = batch.column(0).get(r).as_i64()? as u64;
        let key_values: Vec<Value> = (0..num_keys)
            .map(|i| batch.column(1 + i).get(r).clone())
            .collect();
        let args: Vec<Value> = (0..num_args)
            .map(|j| batch.column(1 + num_keys + j).get(r).clone())
            .collect();
        let key: String = key_values
            .iter()
            .map(join_key_component)
            .collect::<Vec<_>>()
            .join("\u{1f}");
        rows.push(PreparedRow {
            seq,
            key,
            key_values,
            args,
        });
    }
    Ok(rows)
}
