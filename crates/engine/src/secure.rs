//! The secure-operation plumbing of the SP engine: the oracle interface to the
//! data owner's proxy and shared helpers for the SDB UDFs.
//!
//! ## Why an oracle exists
//!
//! Most SDB operators are pure server-side modular arithmetic over secret shares
//! (multiplication, key update, addition of key-unified columns, SUM folding).
//! Comparisons, grouping and ranking, however, cannot be decided by the SP alone —
//! that is exactly the information the encryption is designed to withhold. The
//! paper's architecture handles this with proxy interaction (the client cost the
//! demo breaks down in step 2); this module is that interaction boundary.
//!
//! Everything that crosses the boundary is *blinded or encrypted*: sign requests
//! carry multiplicatively blinded differences, group/rank requests carry ordinary
//! secret shares plus encrypted row ids. What comes back is deliberately opaque:
//! sign bits, opaque group tags or opaque rank surrogates. The
//! [`OracleTraffic`](crate::stats::ExecutionStats) counters and the audit layer in
//! `sdb` (core crate) watch this boundary.

use std::fmt;
use std::sync::Arc;

use num_bigint::BigUint;
use sdb_crypto::EncryptedRowId;
use serde::{Deserialize, Serialize};

use crate::{EngineError, Result};

/// What the SP is asking the DO proxy to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OracleRequestKind {
    /// Return the sign (−1/0/+1) of each blinded difference.
    Sign,
    /// Return an opaque equality tag per row (equal plaintexts ⇔ equal tags).
    GroupTag,
    /// Return an opaque order-preserving surrogate per row.
    Rank,
}

/// One row shipped to the oracle: the encrypted row id (so the proxy can derive the
/// item key) and an encrypted or blinded share.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleRow {
    /// Encrypted row id as stored at the SP.
    pub row_id: EncryptedRowId,
    /// The encrypted (possibly blinded) value.
    pub share: BigUint,
}

/// A batched request from the SP to the DO proxy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleRequest {
    /// Which protocol step this is.
    pub kind: OracleRequestKind,
    /// The proxy-side key handle identifying which column key applies
    /// (established during query rewriting; opaque to the SP).
    pub handle: String,
    /// The rows to resolve.
    pub rows: Vec<OracleRow>,
}

impl OracleRequest {
    /// Approximate wire size in bytes (for cost accounting).
    pub fn approx_size_bytes(&self) -> usize {
        self.handle.len()
            + self
                .rows
                .iter()
                .map(|r| r.row_id.size_bytes() + (r.share.bits() as usize).div_ceil(8))
                .sum::<usize>()
    }
}

/// The proxy's answer to an [`OracleRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OracleResponse {
    /// Per-row signs for a [`OracleRequestKind::Sign`] request.
    Signs(Vec<i8>),
    /// Per-row opaque equality tags for a [`OracleRequestKind::GroupTag`] request.
    Tags(Vec<u64>),
    /// Per-row opaque rank surrogates for a [`OracleRequestKind::Rank`] request.
    Ranks(Vec<u64>),
}

impl OracleResponse {
    /// Number of per-row answers carried.
    pub fn len(&self) -> usize {
        match self {
            OracleResponse::Signs(v) => v.len(),
            OracleResponse::Tags(v) => v.len(),
            OracleResponse::Ranks(v) => v.len(),
        }
    }

    /// True when the response is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Result alias for oracle implementations (they live on the proxy side, so their
/// error is a plain string from the engine's point of view).
pub type OracleResult = std::result::Result<OracleResponse, String>;

/// The interface the DO proxy exposes to the SP engine for interactive protocol
/// steps. Implemented by `sdb-proxy`; the engine only sees this trait.
pub trait SdbOracle: Send + Sync {
    /// Resolves a batched request.
    fn resolve(&self, request: OracleRequest) -> OracleResult;
}

/// Shared handle to an oracle.
pub type OracleRef = Arc<dyn SdbOracle>;

/// An oracle that refuses every request. Used when the engine runs plaintext-only
/// workloads (the baseline path) — any secure operation reaching it is a bug or an
/// unsupported query, and surfaces as a clear error.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullOracle;

impl SdbOracle for NullOracle {
    fn resolve(&self, request: OracleRequest) -> OracleResult {
        Err(format!(
            "no DO proxy connected (request kind {:?}, {} rows)",
            request.kind,
            request.rows.len()
        ))
    }
}

/// An [`SdbOracle`] wrapper injecting a fixed per-request latency before
/// delegating to the wrapped oracle — a simulated WAN round trip.
///
/// The in-process proxy answers in microseconds, which hides the protocol's
/// real unit cost; wrapping it makes every round trip pay a realistic RTT, so
/// tests and benches can *observe* (as wall-clock time) whether operators
/// batch their oracle traffic or quietly regress to per-batch or per-row
/// trips. Enable it globally with `SDB_TEST_ORACLE_LATENCY_MS` (every
/// [`crate::ExecContext`] wraps its oracle when the variable is set) or
/// explicitly via [`crate::SpEngine::with_oracle_latency`].
pub struct LatencyOracle {
    inner: OracleRef,
    latency: std::time::Duration,
}

impl LatencyOracle {
    /// Wraps `inner`, delaying every request by `latency`.
    pub fn new(inner: OracleRef, latency: std::time::Duration) -> Self {
        LatencyOracle { inner, latency }
    }

    /// Wraps `inner` with the latency named by `SDB_TEST_ORACLE_LATENCY_MS`,
    /// or returns it unchanged when the variable is unset, unparsable or
    /// zero.
    pub fn wrap_from_env(inner: OracleRef) -> OracleRef {
        match std::env::var("SDB_TEST_ORACLE_LATENCY_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            Some(ms) if ms > 0 => Arc::new(LatencyOracle::new(
                inner,
                std::time::Duration::from_millis(ms),
            )),
            _ => inner,
        }
    }
}

impl SdbOracle for LatencyOracle {
    fn resolve(&self, request: OracleRequest) -> OracleResult {
        std::thread::sleep(self.latency);
        self.inner.resolve(request)
    }
}

impl fmt::Display for OracleRequestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleRequestKind::Sign => write!(f, "sign"),
            OracleRequestKind::GroupTag => write!(f, "group-tag"),
            OracleRequestKind::Rank => write!(f, "rank"),
        }
    }
}

/// Names of the oracle-backed pseudo-functions the rewriter may emit. These are not
/// ordinary scalar UDFs — the executor resolves them with a batched oracle call
/// before row-wise evaluation.
pub mod oracle_fns {
    /// `SDB_CMP_GT(diff_e, row_id, handle, n)` — strictly greater.
    pub const CMP_GT: &str = "SDB_CMP_GT";
    /// `SDB_CMP_GE(diff_e, row_id, handle, n)` — greater or equal.
    pub const CMP_GE: &str = "SDB_CMP_GE";
    /// `SDB_CMP_LT(diff_e, row_id, handle, n)` — strictly less.
    pub const CMP_LT: &str = "SDB_CMP_LT";
    /// `SDB_CMP_LE(diff_e, row_id, handle, n)` — less or equal.
    pub const CMP_LE: &str = "SDB_CMP_LE";
    /// `SDB_CMP_EQ(diff_e, row_id, handle, n)` — equal.
    pub const CMP_EQ: &str = "SDB_CMP_EQ";
    /// `SDB_CMP_NE(diff_e, row_id, handle, n)` — not equal.
    pub const CMP_NE: &str = "SDB_CMP_NE";
    /// `SDB_GROUP_TAG(col_e, row_id, handle)` — opaque equality tag.
    pub const GROUP_TAG: &str = "SDB_GROUP_TAG";
    /// `SDB_RANK(col_e, row_id, handle)` — opaque order surrogate.
    pub const RANK: &str = "SDB_RANK";

    /// All comparison function names.
    pub const ALL_CMP: [&str; 6] = [CMP_GT, CMP_GE, CMP_LT, CMP_LE, CMP_EQ, CMP_NE];

    /// True if `name` is any oracle-backed function.
    pub fn is_oracle_fn(name: &str) -> bool {
        let upper = name.to_ascii_uppercase();
        ALL_CMP.contains(&upper.as_str()) || upper == GROUP_TAG || upper == RANK
    }

    /// True if `name` is an oracle-backed comparison.
    pub fn is_cmp_fn(name: &str) -> bool {
        ALL_CMP.contains(&name.to_ascii_uppercase().as_str())
    }
}

/// Parses a UDF string argument carrying a big decimal number (`n`, `p`, `q`, …).
pub fn parse_biguint_arg(name: &str, text: &str) -> Result<BigUint> {
    BigUint::parse_bytes(text.as_bytes(), 10).ok_or_else(|| EngineError::UdfInvocation {
        name: name.to_string(),
        detail: format!("argument '{text}' is not a decimal integer"),
    })
}

/// Converts a sign (−1/0/+1) into the boolean outcome of a comparison operator.
pub fn sign_to_bool(op: &str, sign: i8) -> Result<bool> {
    match op.to_ascii_uppercase().as_str() {
        "SDB_CMP_GT" => Ok(sign > 0),
        "SDB_CMP_GE" => Ok(sign >= 0),
        "SDB_CMP_LT" => Ok(sign < 0),
        "SDB_CMP_LE" => Ok(sign <= 0),
        "SDB_CMP_EQ" => Ok(sign == 0),
        "SDB_CMP_NE" => Ok(sign != 0),
        other => Err(EngineError::UdfInvocation {
            name: other.to_string(),
            detail: "not a comparison oracle function".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_oracle_refuses() {
        let oracle = NullOracle;
        let req = OracleRequest {
            kind: OracleRequestKind::Sign,
            handle: "h".into(),
            rows: vec![],
        };
        assert!(oracle.resolve(req).is_err());
    }

    #[test]
    fn oracle_fn_classification() {
        assert!(oracle_fns::is_oracle_fn("sdb_cmp_gt"));
        assert!(oracle_fns::is_oracle_fn("SDB_GROUP_TAG"));
        assert!(oracle_fns::is_oracle_fn("SDB_RANK"));
        assert!(!oracle_fns::is_oracle_fn("SDB_MULTIPLY"));
        assert!(oracle_fns::is_cmp_fn("SDB_CMP_EQ"));
        assert!(!oracle_fns::is_cmp_fn("SDB_RANK"));
    }

    #[test]
    fn sign_to_bool_semantics() {
        assert!(sign_to_bool("SDB_CMP_GT", 1).unwrap());
        assert!(!sign_to_bool("SDB_CMP_GT", 0).unwrap());
        assert!(sign_to_bool("SDB_CMP_GE", 0).unwrap());
        assert!(sign_to_bool("SDB_CMP_LT", -1).unwrap());
        assert!(sign_to_bool("SDB_CMP_LE", -1).unwrap());
        assert!(sign_to_bool("SDB_CMP_EQ", 0).unwrap());
        assert!(sign_to_bool("SDB_CMP_NE", 1).unwrap());
        assert!(sign_to_bool("SDB_MULTIPLY", 0).is_err());
    }

    #[test]
    fn biguint_arg_parsing() {
        assert_eq!(
            parse_biguint_arg("SDB_MULTIPLY", "12345678901234567890").unwrap(),
            BigUint::parse_bytes(b"12345678901234567890", 10).unwrap()
        );
        assert!(parse_biguint_arg("SDB_MULTIPLY", "not-a-number").is_err());
    }

    #[test]
    fn latency_oracle_delays_then_delegates() {
        struct Echo;
        impl SdbOracle for Echo {
            fn resolve(&self, request: OracleRequest) -> OracleResult {
                Ok(OracleResponse::Signs(vec![1; request.rows.len()]))
            }
        }
        let oracle = LatencyOracle::new(Arc::new(Echo), std::time::Duration::from_millis(5));
        let started = std::time::Instant::now();
        let response = oracle
            .resolve(OracleRequest {
                kind: OracleRequestKind::Sign,
                handle: "h".into(),
                rows: vec![],
            })
            .unwrap();
        assert!(started.elapsed() >= std::time::Duration::from_millis(5));
        assert_eq!(response, OracleResponse::Signs(vec![]));
    }

    #[test]
    fn wrap_from_env_without_the_variable_is_identity() {
        // The test runner may or may not have the variable set; only assert
        // the unset path (a private temp var name nothing else reads).
        if std::env::var("SDB_TEST_ORACLE_LATENCY_MS").is_err() {
            let inner: OracleRef = Arc::new(NullOracle);
            let wrapped = LatencyOracle::wrap_from_env(Arc::clone(&inner));
            assert!(Arc::ptr_eq(&inner, &wrapped));
        }
    }

    #[test]
    fn response_len() {
        assert_eq!(OracleResponse::Signs(vec![1, -1, 0]).len(), 3);
        assert!(OracleResponse::Tags(vec![]).is_empty());
    }
}
