//! Row-wise expression evaluation over record batches.
//!
//! The evaluator is shared by every physical operator (filter, project, join,
//! aggregate argument evaluation, sort keys). It is deliberately interpretive —
//! the paper's SP engine is an off-the-shelf system, and nothing in the evaluation
//! claims depends on vectorisation — but it implements proper SQL semantics for the
//! supported dialect: three-valued logic, NULL propagation, mixed INT/DECIMAL
//! arithmetic, date arithmetic, LIKE, CASE, IN and (uncorrelated) subqueries.

use std::cell::Cell;

use sdb_sql::ast::{BinaryOp, Expr, Literal, Query, UnaryOp};
use sdb_storage::{RecordBatch, Value};

use crate::udf::UdfRegistry;
use crate::{EngineError, Result};

/// Resolves uncorrelated subqueries on behalf of the evaluator.
///
/// Implemented by the executor (which plans and runs the subquery against the same
/// catalog); kept as a trait so the evaluator stays independent of the executor.
pub trait SubqueryResolver {
    /// Runs the subquery and returns its single scalar result (one row, one column).
    fn scalar(&self, query: &Query) -> Result<Value>;
    /// Runs the subquery and returns its first column as a list of values.
    fn column(&self, query: &Query) -> Result<Vec<Value>>;
}

/// Expression evaluator bound to a batch schema.
pub struct Evaluator<'a> {
    registry: &'a UdfRegistry,
    subqueries: Option<&'a dyn SubqueryResolver>,
    udf_calls: Cell<usize>,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator using `registry` for function calls.
    pub fn new(registry: &'a UdfRegistry) -> Self {
        Evaluator {
            registry,
            subqueries: None,
            udf_calls: Cell::new(0),
        }
    }

    /// Attaches a subquery resolver.
    pub fn with_subqueries(mut self, resolver: &'a dyn SubqueryResolver) -> Self {
        self.subqueries = Some(resolver);
        self
    }

    /// Number of scalar UDF invocations made so far.
    pub fn udf_calls(&self) -> usize {
        self.udf_calls.get()
    }

    /// Evaluates `expr` against row `row` of `batch`.
    pub fn evaluate(&self, expr: &Expr, batch: &RecordBatch, row: usize) -> Result<Value> {
        match expr {
            Expr::Column(name) => {
                let col = batch.column_by_name(name)?;
                Ok(col.get(row).clone())
            }
            Expr::Literal(lit) => Ok(literal_to_value(lit)),
            Expr::Unary { op, expr } => {
                let v = self.evaluate(expr, batch, row)?;
                self.eval_unary(*op, v)
            }
            Expr::Binary { left, op, right } => {
                // Short-circuit logical operators to get 3-valued logic right.
                if *op == BinaryOp::And || *op == BinaryOp::Or {
                    let l = self.evaluate(left, batch, row)?;
                    return self.eval_logical(*op, l, || self.evaluate(right, batch, row));
                }
                let l = self.evaluate(left, batch, row)?;
                let r = self.evaluate(right, batch, row)?;
                self.eval_binary(*op, l, r)
            }
            Expr::Function { name, args, .. } => {
                if sdb_sql::ast::is_aggregate_name(name) {
                    return Err(EngineError::Expression {
                        detail: format!("aggregate {name} outside of GROUP BY context"),
                    });
                }
                let udf = self
                    .registry
                    .get(name)
                    .ok_or_else(|| EngineError::UnknownFunction { name: name.clone() })?;
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.evaluate(a, batch, row)?);
                }
                self.udf_calls.set(self.udf_calls.get() + 1);
                udf.invoke(&values)
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                for (when, then) in branches {
                    let matches = match operand {
                        Some(op) => {
                            let lhs = self.evaluate(op, batch, row)?;
                            let rhs = self.evaluate(when, batch, row)?;
                            matches!(self.eval_binary(BinaryOp::Eq, lhs, rhs)?, Value::Bool(true))
                        }
                        None => {
                            matches!(self.evaluate(when, batch, row)?, Value::Bool(true))
                        }
                    };
                    if matches {
                        return self.evaluate(then, batch, row);
                    }
                }
                match else_expr {
                    Some(e) => self.evaluate(e, batch, row),
                    None => Ok(Value::Null),
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = self.evaluate(expr, batch, row)?;
                let lo = self.evaluate(low, batch, row)?;
                let hi = self.evaluate(high, batch, row)?;
                let ge = self.eval_binary(BinaryOp::GtEq, v.clone(), lo)?;
                let le = self.eval_binary(BinaryOp::LtEq, v, hi)?;
                let both = self.eval_logical(BinaryOp::And, ge, || Ok(le))?;
                self.maybe_negate(both, *negated)
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = self.evaluate(expr, batch, row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for candidate in list {
                    let c = self.evaluate(candidate, batch, row)?;
                    if c.is_null() {
                        saw_null = true;
                        continue;
                    }
                    if values_equal(&v, &c) {
                        return self.maybe_negate(Value::Bool(true), *negated);
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    self.maybe_negate(Value::Bool(false), *negated)
                }
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                let resolver = self.subqueries.ok_or_else(|| EngineError::Unsupported {
                    detail: "subquery evaluation requires an executor context".into(),
                })?;
                let v = self.evaluate(expr, batch, row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let candidates = resolver.column(query)?;
                let found = candidates.iter().any(|c| values_equal(&v, c));
                self.maybe_negate(Value::Bool(found), *negated)
            }
            Expr::ScalarSubquery(query) => {
                let resolver = self.subqueries.ok_or_else(|| EngineError::Unsupported {
                    detail: "subquery evaluation requires an executor context".into(),
                })?;
                resolver.scalar(query)
            }
            Expr::Exists { query, negated } => {
                let resolver = self.subqueries.ok_or_else(|| EngineError::Unsupported {
                    detail: "subquery evaluation requires an executor context".into(),
                })?;
                let rows = resolver.column(query)?;
                self.maybe_negate(Value::Bool(!rows.is_empty()), *negated)
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = self.evaluate(expr, batch, row)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Str(s) => {
                        self.maybe_negate(Value::Bool(like_match(pattern, &s)), *negated)
                    }
                    other => Err(EngineError::Expression {
                        detail: format!("LIKE applied to non-string value {other:?}"),
                    }),
                }
            }
            Expr::IsNull { expr, negated } => {
                let v = self.evaluate(expr, batch, row)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
        }
    }

    /// Evaluates a predicate for filtering: NULL counts as "do not keep".
    pub fn evaluate_predicate(&self, expr: &Expr, batch: &RecordBatch, row: usize) -> Result<bool> {
        match self.evaluate(expr, batch, row)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(EngineError::Expression {
                detail: format!("predicate evaluated to non-boolean {other:?}"),
            }),
        }
    }

    fn maybe_negate(&self, v: Value, negated: bool) -> Result<Value> {
        if !negated {
            return Ok(v);
        }
        match v {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            Value::Null => Ok(Value::Null),
            other => Err(EngineError::Expression {
                detail: format!("cannot negate non-boolean {other:?}"),
            }),
        }
    }

    fn eval_unary(&self, op: UnaryOp, v: Value) -> Result<Value> {
        match (op, v) {
            (_, Value::Null) => Ok(Value::Null),
            (UnaryOp::Neg, Value::Int(i)) => Ok(Value::Int(-i)),
            (UnaryOp::Neg, Value::Decimal { units, scale }) => Ok(Value::Decimal {
                units: -units,
                scale,
            }),
            (UnaryOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
            (op, v) => Err(EngineError::Expression {
                detail: format!("cannot apply {op:?} to {v:?}"),
            }),
        }
    }

    fn eval_logical<F>(&self, op: BinaryOp, left: Value, right: F) -> Result<Value>
    where
        F: FnOnce() -> Result<Value>,
    {
        let as_tri = |v: &Value| -> Result<Option<bool>> {
            match v {
                Value::Bool(b) => Ok(Some(*b)),
                Value::Null => Ok(None),
                other => Err(EngineError::Expression {
                    detail: format!("logical operator applied to {other:?}"),
                }),
            }
        };
        let l = as_tri(&left)?;
        match op {
            BinaryOp::And => match l {
                Some(false) => Ok(Value::Bool(false)),
                _ => {
                    let r = as_tri(&right()?)?;
                    Ok(match (l, r) {
                        (_, Some(false)) => Value::Bool(false),
                        (Some(true), Some(true)) => Value::Bool(true),
                        _ => Value::Null,
                    })
                }
            },
            BinaryOp::Or => match l {
                Some(true) => Ok(Value::Bool(true)),
                _ => {
                    let r = as_tri(&right()?)?;
                    Ok(match (l, r) {
                        (_, Some(true)) => Value::Bool(true),
                        (Some(false), Some(false)) => Value::Bool(false),
                        _ => Value::Null,
                    })
                }
            },
            other => Err(EngineError::Expression {
                detail: format!("{other:?} is not a logical operator"),
            }),
        }
    }

    fn eval_binary(&self, op: BinaryOp, left: Value, right: Value) -> Result<Value> {
        if left.is_null() || right.is_null() {
            return Ok(Value::Null);
        }
        if op.is_comparison() {
            return compare_values(op, &left, &right);
        }
        if op.is_arithmetic() {
            return arithmetic(op, &left, &right);
        }
        Err(EngineError::Expression {
            detail: format!("unexpected binary operator {op:?}"),
        })
    }
}

/// Converts an AST literal into a runtime value.
pub fn literal_to_value(lit: &Literal) -> Value {
    match lit {
        Literal::Null => Value::Null,
        Literal::Int(v) => Value::Int(*v),
        Literal::Decimal { units, scale } => Value::Decimal {
            units: *units,
            scale: *scale,
        },
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Date(d) => Value::Date(*d),
        Literal::Bool(b) => Value::Bool(*b),
    }
}

/// SQL equality between two non-null values (strings compare textually, numerics
/// numerically across INT/DECIMAL/DATE).
pub fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Encrypted(x), Value::Encrypted(y)) => x == y,
        (Value::Tag(x), Value::Tag(y)) => x == y,
        _ => numeric_pair(a, b).map(|(x, y)| x == y).unwrap_or(false),
    }
}

fn numeric_pair(a: &Value, b: &Value) -> Option<(i128, i128)> {
    let scale = numeric_scale(a).max(numeric_scale(b));
    match (a.as_scaled_i128(scale), b.as_scaled_i128(scale)) {
        (Ok(x), Ok(y)) => Some((x, y)),
        _ => None,
    }
}

fn numeric_scale(v: &Value) -> u8 {
    match v {
        Value::Decimal { scale, .. } => *scale,
        _ => 0,
    }
}

fn compare_values(op: BinaryOp, left: &Value, right: &Value) -> Result<Value> {
    use std::cmp::Ordering;
    let ordering = match (left, right) {
        (Value::Str(a), Value::Str(b)) => a.cmp(b),
        (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
        (Value::Tag(a), Value::Tag(b)) => a.cmp(b),
        _ => match numeric_pair(left, right) {
            Some((a, b)) => a.cmp(&b),
            None => {
                return Err(EngineError::Expression {
                    detail: format!("cannot compare {left:?} with {right:?}"),
                })
            }
        },
    };
    let result = match op {
        BinaryOp::Eq => ordering == Ordering::Equal,
        BinaryOp::NotEq => ordering != Ordering::Equal,
        BinaryOp::Lt => ordering == Ordering::Less,
        BinaryOp::LtEq => ordering != Ordering::Greater,
        BinaryOp::Gt => ordering == Ordering::Greater,
        BinaryOp::GtEq => ordering != Ordering::Less,
        _ => unreachable!("checked by caller"),
    };
    Ok(Value::Bool(result))
}

fn arithmetic(op: BinaryOp, left: &Value, right: &Value) -> Result<Value> {
    // Date arithmetic: DATE ± INT days, DATE − DATE.
    if let (Value::Date(d), Value::Int(i)) = (left, right) {
        return match op {
            BinaryOp::Add => Ok(Value::Date(d + *i as i32)),
            BinaryOp::Sub => Ok(Value::Date(d - *i as i32)),
            _ => Err(EngineError::Expression {
                detail: "only + and - are defined between DATE and INT".into(),
            }),
        };
    }
    if let (Value::Date(a), Value::Date(b)) = (left, right) {
        if op == BinaryOp::Sub {
            return Ok(Value::Int(i64::from(a - b)));
        }
        return Err(EngineError::Expression {
            detail: "only - is defined between two DATEs".into(),
        });
    }

    let ls = numeric_scale(left);
    let rs = numeric_scale(right);
    let (a, b) = numeric_pair(left, right).ok_or_else(|| EngineError::Expression {
        detail: format!("cannot apply {op:?} to {left:?} and {right:?}"),
    })?;
    let common = ls.max(rs);

    let (units, scale): (i128, u8) = match op {
        BinaryOp::Add => (a + b, common),
        BinaryOp::Sub => (a - b, common),
        BinaryOp::Mul => {
            // a and b are both at `common` scale; the raw product is at 2·common.
            (a * b, common.saturating_mul(2))
        }
        BinaryOp::Div => {
            if b == 0 {
                return Err(EngineError::Expression {
                    detail: "division by zero".into(),
                });
            }
            if common == 0 {
                // Pure integer division.
                return Ok(Value::Int((a / b) as i64));
            }
            // Produce a scale-4 decimal: (a / b) at scale 4.
            ((a * 10_000) / b, 4)
        }
        BinaryOp::Mod => {
            if b == 0 {
                return Err(EngineError::Expression {
                    detail: "modulo by zero".into(),
                });
            }
            (a % b, common)
        }
        _ => unreachable!("checked by caller"),
    };

    // Normalise: integers stay integers, decimals stay at their scale but clamp
    // the scale back down to at most 6 digits to keep magnitudes inside i64 range
    // (TPC-H's deepest product — price × discount × tax — has exactly 6 decimals,
    // so the common workloads stay exact).
    if scale == 0 {
        let v = i64::try_from(units).map_err(|_| EngineError::Expression {
            detail: "integer overflow in arithmetic".into(),
        })?;
        return Ok(Value::Int(v));
    }
    let (units, scale) = if scale > 6 {
        (units / 10i128.pow(u32::from(scale - 6)), 6)
    } else {
        (units, scale)
    };
    let units = i64::try_from(units).map_err(|_| EngineError::Expression {
        detail: "decimal overflow in arithmetic".into(),
    })?;
    Ok(Value::Decimal { units, scale })
}

/// SQL LIKE matching with `%` (any run) and `_` (any single character).
pub fn like_match(pattern: &str, text: &str) -> bool {
    fn inner(p: &[u8], t: &[u8]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some(b'%') => {
                // Match zero or more characters.
                (0..=t.len()).any(|k| inner(&p[1..], &t[k..]))
            }
            Some(b'_') => !t.is_empty() && inner(&p[1..], &t[1..]),
            Some(c) => t.first() == Some(c) && inner(&p[1..], &t[1..]),
        }
    }
    inner(pattern.as_bytes(), text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdb_sql::parse_sql;
    use sdb_sql::Statement;
    use sdb_storage::{ColumnDef, DataType, Schema};

    fn sample_batch() -> RecordBatch {
        let schema = Schema::new(vec![
            ColumnDef::public("a", DataType::Int),
            ColumnDef::public("b", DataType::Int),
            ColumnDef::public("price", DataType::Decimal { scale: 2 }),
            ColumnDef::public("name", DataType::Varchar),
            ColumnDef::public("d", DataType::Date),
        ]);
        RecordBatch::from_rows(
            schema,
            vec![
                vec![
                    Value::Int(1),
                    Value::Int(10),
                    Value::Decimal {
                        units: 1050,
                        scale: 2,
                    },
                    Value::Str("alpha".into()),
                    Value::Date(100),
                ],
                vec![
                    Value::Int(2),
                    Value::Null,
                    Value::Decimal {
                        units: 250,
                        scale: 2,
                    },
                    Value::Str("beta".into()),
                    Value::Date(200),
                ],
            ],
        )
        .unwrap()
    }

    /// Parses the expression of `SELECT <expr> FROM t` for concise test setup.
    fn expr(text: &str) -> Expr {
        let sql = format!("SELECT {text} FROM t");
        match parse_sql(&sql).unwrap() {
            Statement::Query(q) => match q.projections.into_iter().next().unwrap() {
                sdb_sql::SelectItem::Expr { expr, .. } => expr,
                other => panic!("unexpected {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    fn eval(text: &str, row: usize) -> Value {
        let registry = UdfRegistry::with_sdb_udfs();
        let evaluator = Evaluator::new(&registry);
        evaluator
            .evaluate(&expr(text), &sample_batch(), row)
            .unwrap()
    }

    #[test]
    fn column_and_literal() {
        assert_eq!(eval("a", 0), Value::Int(1));
        assert_eq!(eval("42", 0), Value::Int(42));
        assert_eq!(eval("'hi'", 0), Value::Str("hi".into()));
    }

    #[test]
    fn arithmetic_mixed_types() {
        assert_eq!(eval("a + b", 0), Value::Int(11));
        assert_eq!(
            eval("price * 2", 0),
            Value::Decimal {
                units: 210_000,
                scale: 4
            }
        );
        assert_eq!(
            eval("price + 1", 0),
            Value::Decimal {
                units: 1150,
                scale: 2
            }
        );
        assert_eq!(eval("b / a", 0), Value::Int(10));
        assert_eq!(eval("7 / 2", 0), Value::Int(3));
        assert_eq!(
            eval("price / 2", 0),
            Value::Decimal {
                units: 52500,
                scale: 4
            }
        );
        assert_eq!(eval("b % 3", 0), Value::Int(1));
        assert_eq!(eval("-a", 0), Value::Int(-1));
    }

    #[test]
    fn decimal_multiplication_rescales() {
        // 10.50 * 0.10 = 1.05 → at scale 4: 1.0500
        assert_eq!(
            eval("price * 0.10", 0),
            Value::Decimal {
                units: 10500,
                scale: 4
            }
        );
    }

    #[test]
    fn null_propagation() {
        assert_eq!(eval("b + 1", 1), Value::Null);
        assert_eq!(eval("b > 1", 1), Value::Null);
        assert_eq!(eval("-b", 1), Value::Null);
    }

    #[test]
    fn three_valued_logic() {
        // b is NULL on row 1.
        assert_eq!(eval("b > 1 AND a = 2", 1), Value::Null);
        assert_eq!(eval("b > 1 AND a = 99", 1), Value::Bool(false));
        assert_eq!(eval("b > 1 OR a = 2", 1), Value::Bool(true));
        assert_eq!(eval("b > 1 OR a = 99", 1), Value::Null);
        assert_eq!(eval("NOT (a = 2)", 1), Value::Bool(false));
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval("a < b", 0), Value::Bool(true));
        assert_eq!(eval("price >= 10.5", 0), Value::Bool(true));
        assert_eq!(eval("price >= 10.51", 0), Value::Bool(false));
        assert_eq!(eval("name = 'alpha'", 0), Value::Bool(true));
        assert_eq!(eval("name <> 'alpha'", 0), Value::Bool(false));
        assert_eq!(eval("d > DATE '1970-01-01'", 0), Value::Bool(true));
    }

    #[test]
    fn date_arithmetic() {
        assert_eq!(eval("d + 5", 0), Value::Date(105));
        assert_eq!(eval("d - 5", 0), Value::Date(95));
        assert_eq!(eval("d - DATE '1970-01-01'", 0), Value::Int(100));
    }

    #[test]
    fn predicates() {
        assert_eq!(eval("a BETWEEN 1 AND 5", 0), Value::Bool(true));
        assert_eq!(eval("a NOT BETWEEN 1 AND 5", 0), Value::Bool(false));
        assert_eq!(eval("a IN (3, 2, 1)", 0), Value::Bool(true));
        assert_eq!(eval("a NOT IN (3, 2)", 0), Value::Bool(true));
        assert_eq!(eval("name LIKE 'al%'", 0), Value::Bool(true));
        assert_eq!(eval("name LIKE '%et%'", 1), Value::Bool(true));
        assert_eq!(eval("name LIKE 'a_pha'", 0), Value::Bool(true));
        assert_eq!(eval("name NOT LIKE 'b%'", 0), Value::Bool(true));
        assert_eq!(eval("b IS NULL", 1), Value::Bool(true));
        assert_eq!(eval("b IS NOT NULL", 1), Value::Bool(false));
    }

    #[test]
    fn case_expression() {
        assert_eq!(
            eval(
                "CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' ELSE 'many' END",
                0
            ),
            Value::Str("one".into())
        );
        assert_eq!(
            eval("CASE WHEN a = 1 THEN 'one' ELSE 'other' END", 1),
            Value::Str("other".into())
        );
        assert_eq!(eval("CASE WHEN a = 99 THEN 1 END", 0), Value::Null);
        assert_eq!(
            eval("CASE a WHEN 2 THEN 'two' ELSE 'no' END", 1),
            Value::Str("two".into())
        );
    }

    #[test]
    fn udf_calls_through_registry() {
        assert_eq!(eval("ABS(0 - a)", 0), Value::Int(1));
        let registry = UdfRegistry::with_sdb_udfs();
        let evaluator = Evaluator::new(&registry);
        evaluator
            .evaluate(&expr("ABS(a)"), &sample_batch(), 0)
            .unwrap();
        assert_eq!(evaluator.udf_calls(), 1);
    }

    #[test]
    fn unknown_function_and_aggregate_errors() {
        let registry = UdfRegistry::with_sdb_udfs();
        let evaluator = Evaluator::new(&registry);
        assert!(matches!(
            evaluator.evaluate(&expr("NO_SUCH_FN(a)"), &sample_batch(), 0),
            Err(EngineError::UnknownFunction { .. })
        ));
        assert!(evaluator
            .evaluate(&expr("SUM(a)"), &sample_batch(), 0)
            .is_err());
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let registry = UdfRegistry::with_sdb_udfs();
        let evaluator = Evaluator::new(&registry);
        assert!(evaluator
            .evaluate(&expr("a / 0"), &sample_batch(), 0)
            .is_err());
        assert!(evaluator
            .evaluate(&expr("a % 0"), &sample_batch(), 0)
            .is_err());
    }

    #[test]
    fn like_matcher_edge_cases() {
        assert!(like_match("%", ""));
        assert!(like_match("%", "anything"));
        assert!(like_match("", ""));
        assert!(!like_match("", "x"));
        assert!(like_match("a%b%c", "aXXbYYc"));
        assert!(!like_match("a%b%c", "aXXbYY"));
        assert!(like_match("_%", "x"));
        assert!(!like_match("_", ""));
    }

    #[test]
    fn predicate_helper_treats_null_as_false() {
        let registry = UdfRegistry::with_sdb_udfs();
        let evaluator = Evaluator::new(&registry);
        let batch = sample_batch();
        assert!(!evaluator
            .evaluate_predicate(&expr("b > 1"), &batch, 1)
            .unwrap());
        assert!(evaluator
            .evaluate_predicate(&expr("a = 2"), &batch, 1)
            .unwrap());
        assert!(evaluator.evaluate_predicate(&expr("a"), &batch, 1).is_err());
    }
}
