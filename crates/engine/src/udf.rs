//! The UDF registry and the built-in scalar functions, including the SDB secure
//! scalar UDFs.
//!
//! The paper's prototype registers its secure operators as Hive UDFs inside Spark
//! SQL; here they are [`ScalarUdf`] implementations registered in a [`UdfRegistry`]
//! that the expression evaluator consults. The SDB UDFs operate exclusively on
//! [`Value::Encrypted`] shares and the public modulus `n` — no key material.

use std::collections::HashMap;
use std::sync::Arc;

use num_bigint::BigUint;
use sdb_storage::Value;

use crate::secure::parse_biguint_arg;
use crate::{EngineError, Result};

/// A scalar user-defined function evaluated row by row.
pub trait ScalarUdf: Send + Sync {
    /// The function's upper-case name.
    fn name(&self) -> &str;
    /// Evaluates the function on one row's argument values.
    fn invoke(&self, args: &[Value]) -> Result<Value>;
}

/// Registry of scalar UDFs, keyed by upper-case name.
#[derive(Clone)]
pub struct UdfRegistry {
    udfs: HashMap<String, Arc<dyn ScalarUdf>>,
}

impl std::fmt::Debug for UdfRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.udfs.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        f.debug_struct("UdfRegistry").field("udfs", &names).finish()
    }
}

impl UdfRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        UdfRegistry {
            udfs: HashMap::new(),
        }
    }

    /// The standard registry: plain scalar helpers plus the full SDB UDF set.
    /// This is what the paper's "relational engine with a set of SDB UDFs" means.
    pub fn with_sdb_udfs() -> Self {
        let mut registry = UdfRegistry::empty();
        registry.register(Arc::new(YearUdf));
        registry.register(Arc::new(AbsUdf));
        registry.register(Arc::new(SdbMultiplyUdf));
        registry.register(Arc::new(SdbAddUdf));
        registry.register(Arc::new(SdbKeyUpdateUdf));
        registry.register(Arc::new(SdbMulPlainUdf));
        registry.register(Arc::new(SdbAddPlainUdf));
        registry.register(Arc::new(SdbTagEqUdf));
        registry
    }

    /// Registers a UDF (replacing any previous one with the same name).
    pub fn register(&mut self, udf: Arc<dyn ScalarUdf>) {
        self.udfs.insert(udf.name().to_ascii_uppercase(), udf);
    }

    /// Looks up a UDF by (case-insensitive) name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn ScalarUdf>> {
        self.udfs.get(&name.to_ascii_uppercase()).cloned()
    }

    /// Registered UDF names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.udfs.keys().cloned().collect();
        names.sort_unstable();
        names
    }
}

impl Default for UdfRegistry {
    fn default() -> Self {
        UdfRegistry::with_sdb_udfs()
    }
}

// ---------------------------------------------------------------------------
// Plain scalar helpers
// ---------------------------------------------------------------------------

/// `YEAR(date)` — extracts the calendar year from a date value.
pub struct YearUdf;

impl ScalarUdf for YearUdf {
    fn name(&self) -> &str {
        "YEAR"
    }

    fn invoke(&self, args: &[Value]) -> Result<Value> {
        let [arg] = args else {
            return Err(arity_error("YEAR", 1, args.len()));
        };
        match arg {
            Value::Null => Ok(Value::Null),
            Value::Date(days) => {
                let (year, _, _) = sdb_sql::dates::civil_from_days(*days);
                Ok(Value::Int(i64::from(year)))
            }
            other => Err(EngineError::UdfInvocation {
                name: "YEAR".into(),
                detail: format!("expected DATE argument, found {other:?}"),
            }),
        }
    }
}

/// `ABS(x)` — absolute value of an integer or decimal.
pub struct AbsUdf;

impl ScalarUdf for AbsUdf {
    fn name(&self) -> &str {
        "ABS"
    }

    fn invoke(&self, args: &[Value]) -> Result<Value> {
        let [arg] = args else {
            return Err(arity_error("ABS", 1, args.len()));
        };
        match arg {
            Value::Null => Ok(Value::Null),
            Value::Int(v) => Ok(Value::Int(v.abs())),
            Value::Decimal { units, scale } => Ok(Value::Decimal {
                units: units.abs(),
                scale: *scale,
            }),
            other => Err(EngineError::UdfInvocation {
                name: "ABS".into(),
                detail: format!("expected numeric argument, found {other:?}"),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// SDB secure scalar UDFs
// ---------------------------------------------------------------------------

fn encrypted_arg(udf: &str, v: &Value) -> Result<BigUint> {
    match v {
        Value::Encrypted(e) => Ok(e.clone()),
        other => Err(EngineError::UdfInvocation {
            name: udf.to_string(),
            detail: format!("expected an encrypted share, found {other:?}"),
        }),
    }
}

fn string_arg<'a>(udf: &str, v: &'a Value) -> Result<&'a str> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(EngineError::UdfInvocation {
            name: udf.to_string(),
            detail: format!("expected a string parameter, found {other:?}"),
        }),
    }
}

fn arity_error(name: &str, expected: usize, found: usize) -> EngineError {
    EngineError::UdfInvocation {
        name: name.to_string(),
        detail: format!("expected {expected} arguments, found {found}"),
    }
}

/// `SDB_MULTIPLY(a_e, b_e, n)` — the EE multiplication of paper §2.2:
/// `A_e × B_e mod n`. The proxy separately tracks the result column key
/// `⟨m_A·m_B, x_A+x_B⟩`.
pub struct SdbMultiplyUdf;

impl ScalarUdf for SdbMultiplyUdf {
    fn name(&self) -> &str {
        "SDB_MULTIPLY"
    }

    fn invoke(&self, args: &[Value]) -> Result<Value> {
        let [a, b, n] = args else {
            return Err(arity_error("SDB_MULTIPLY", 3, args.len()));
        };
        if a.is_null() || b.is_null() {
            return Ok(Value::Null);
        }
        let a = encrypted_arg("SDB_MULTIPLY", a)?;
        let b = encrypted_arg("SDB_MULTIPLY", b)?;
        let n = parse_biguint_arg("SDB_MULTIPLY", string_arg("SDB_MULTIPLY", n)?)?;
        Ok(Value::Encrypted((a * b) % n))
    }
}

/// `SDB_ADD(a_e, b_e, n)` — modular addition of two shares that have already been
/// key-unified (the rewriter guarantees this by wrapping operands in
/// `SDB_KEY_UPDATE` to a common target key).
pub struct SdbAddUdf;

impl ScalarUdf for SdbAddUdf {
    fn name(&self) -> &str {
        "SDB_ADD"
    }

    fn invoke(&self, args: &[Value]) -> Result<Value> {
        let [a, b, n] = args else {
            return Err(arity_error("SDB_ADD", 3, args.len()));
        };
        if a.is_null() || b.is_null() {
            return Ok(Value::Null);
        }
        let a = encrypted_arg("SDB_ADD", a)?;
        let b = encrypted_arg("SDB_ADD", b)?;
        let n = parse_biguint_arg("SDB_ADD", string_arg("SDB_ADD", n)?)?;
        Ok(Value::Encrypted((a + b) % n))
    }
}

/// `SDB_KEY_UPDATE(a_e, s_e, p, q, n)` — re-encrypts a share from its source column
/// key to a proxy-chosen target key using the auxiliary all-ones column `S`:
/// `A'_e = A_e · S_e^p · q mod n` (DESIGN.md §2). `p`, `q` and `n` arrive as decimal
/// strings because they exceed 64-bit integer range.
pub struct SdbKeyUpdateUdf;

impl ScalarUdf for SdbKeyUpdateUdf {
    fn name(&self) -> &str {
        "SDB_KEY_UPDATE"
    }

    fn invoke(&self, args: &[Value]) -> Result<Value> {
        let [a, s, p, q, n] = args else {
            return Err(arity_error("SDB_KEY_UPDATE", 5, args.len()));
        };
        if a.is_null() {
            return Ok(Value::Null);
        }
        let a = encrypted_arg("SDB_KEY_UPDATE", a)?;
        let s = encrypted_arg("SDB_KEY_UPDATE", s)?;
        let p = parse_biguint_arg("SDB_KEY_UPDATE", string_arg("SDB_KEY_UPDATE", p)?)?;
        let q = parse_biguint_arg("SDB_KEY_UPDATE", string_arg("SDB_KEY_UPDATE", q)?)?;
        let n = parse_biguint_arg("SDB_KEY_UPDATE", string_arg("SDB_KEY_UPDATE", n)?)?;
        let s_pow = s.modpow(&p, &n);
        Ok(Value::Encrypted((a * s_pow % &n) * q % n))
    }
}

/// Encodes a plaintext numeric [`Value`] into `Z_n` at the given fixed-point scale
/// (negative values wrap to `n − |v|`). Used by the EP ("encrypted ⊗ plain") UDFs,
/// which operate on plain columns the SP stores in the clear.
fn encode_plain_operand(udf: &str, value: &Value, scale: &Value, n: &BigUint) -> Result<BigUint> {
    let scale = match scale {
        Value::Int(s) if (0..=18).contains(s) => *s as u8,
        other => {
            return Err(EngineError::UdfInvocation {
                name: udf.to_string(),
                detail: format!("scale argument must be an integer in 0..=18, found {other:?}"),
            })
        }
    };
    let units = value.as_scaled_i128(scale).map_err(EngineError::Storage)?;
    let magnitude = BigUint::from(units.unsigned_abs());
    if units >= 0 {
        Ok(magnitude % n)
    } else {
        Ok(n - (magnitude % n))
    }
}

/// `SDB_MUL_PLAIN(a_e, plain, scale, n)` — EP multiplication by a *per-row plain*
/// operand: `C_e = A_e · enc(plain) mod n` with the column key unchanged, because
/// `D(C_e, ik_A) = plain · a`.
pub struct SdbMulPlainUdf;

impl ScalarUdf for SdbMulPlainUdf {
    fn name(&self) -> &str {
        "SDB_MUL_PLAIN"
    }

    fn invoke(&self, args: &[Value]) -> Result<Value> {
        let [a, plain, scale, n] = args else {
            return Err(arity_error("SDB_MUL_PLAIN", 4, args.len()));
        };
        if a.is_null() || plain.is_null() {
            return Ok(Value::Null);
        }
        let a = encrypted_arg("SDB_MUL_PLAIN", a)?;
        let n = parse_biguint_arg("SDB_MUL_PLAIN", string_arg("SDB_MUL_PLAIN", n)?)?;
        let operand = encode_plain_operand("SDB_MUL_PLAIN", plain, scale, &n)?;
        Ok(Value::Encrypted(a * operand % n))
    }
}

/// `SDB_ADD_PLAIN(a_e, plain, scale, s_e, n)` — EP addition with a per-row plain
/// operand. The rewriter first key-updates `A` to the auxiliary column `S`'s key, so
/// `A_e` and `S_e` share item keys; then
/// `C_e = A_e + enc(plain)·S_e mod n` decrypts to `a + plain` under `ck_S`.
pub struct SdbAddPlainUdf;

impl ScalarUdf for SdbAddPlainUdf {
    fn name(&self) -> &str {
        "SDB_ADD_PLAIN"
    }

    fn invoke(&self, args: &[Value]) -> Result<Value> {
        let [a, plain, scale, s, n] = args else {
            return Err(arity_error("SDB_ADD_PLAIN", 5, args.len()));
        };
        if a.is_null() || plain.is_null() {
            return Ok(Value::Null);
        }
        let a = encrypted_arg("SDB_ADD_PLAIN", a)?;
        let s = encrypted_arg("SDB_ADD_PLAIN", s)?;
        let n = parse_biguint_arg("SDB_ADD_PLAIN", string_arg("SDB_ADD_PLAIN", n)?)?;
        let operand = encode_plain_operand("SDB_ADD_PLAIN", plain, scale, &n)?;
        Ok(Value::Encrypted((a + operand * s) % n))
    }
}

/// `SDB_TAG_EQ(tag_column, 'tag')` — equality against a deterministic tag the proxy
/// computed for a literal (sensitive VARCHAR equality predicates).
pub struct SdbTagEqUdf;

impl ScalarUdf for SdbTagEqUdf {
    fn name(&self) -> &str {
        "SDB_TAG_EQ"
    }

    fn invoke(&self, args: &[Value]) -> Result<Value> {
        let [tag, expected] = args else {
            return Err(arity_error("SDB_TAG_EQ", 2, args.len()));
        };
        if tag.is_null() {
            return Ok(Value::Null);
        }
        let tag = match tag {
            Value::Tag(t) => *t,
            other => {
                return Err(EngineError::UdfInvocation {
                    name: "SDB_TAG_EQ".into(),
                    detail: format!("first argument must be a TAG column, found {other:?}"),
                })
            }
        };
        let expected: u64 = string_arg("SDB_TAG_EQ", expected)?.parse().map_err(|_| {
            EngineError::UdfInvocation {
                name: "SDB_TAG_EQ".into(),
                detail: "second argument must be a decimal tag string".into(),
            }
        })?;
        Ok(Value::Bool(tag == expected))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sdb_crypto::share::{
        decrypt_value, encrypt_value, gen_item_key, ColumnKeyAlgebra, KeyUpdateParams,
    };
    use sdb_crypto::{KeyConfig, SystemKey};
    use sdb_sql::dates::days_from_civil;

    #[test]
    fn registry_lookup_and_names() {
        let registry = UdfRegistry::with_sdb_udfs();
        assert!(registry.get("sdb_multiply").is_some());
        assert!(registry.get("SDB_KEY_UPDATE").is_some());
        assert!(registry.get("NOPE").is_none());
        assert!(registry.names().contains(&"SDB_ADD".to_string()));
        let debug = format!("{registry:?}");
        assert!(debug.contains("SDB_MULTIPLY"));
    }

    #[test]
    fn year_udf() {
        let udf = YearUdf;
        let d = days_from_civil(1995, 7, 4);
        assert_eq!(udf.invoke(&[Value::Date(d)]).unwrap(), Value::Int(1995));
        assert_eq!(udf.invoke(&[Value::Null]).unwrap(), Value::Null);
        assert!(udf.invoke(&[Value::Int(5)]).is_err());
        assert!(udf.invoke(&[]).is_err());
    }

    #[test]
    fn abs_udf() {
        let udf = AbsUdf;
        assert_eq!(udf.invoke(&[Value::Int(-5)]).unwrap(), Value::Int(5));
        assert_eq!(
            udf.invoke(&[Value::Decimal {
                units: -250,
                scale: 2
            }])
            .unwrap(),
            Value::Decimal {
                units: 250,
                scale: 2
            }
        );
        assert!(udf.invoke(&[Value::Str("x".into())]).is_err());
    }

    /// End-to-end check of the three SDB UDFs against the crypto layer: what the
    /// SP computes through UDFs decrypts to the right answer with the proxy's keys.
    #[test]
    fn sdb_udfs_match_protocols() {
        let mut rng = StdRng::seed_from_u64(123);
        let key = SystemKey::generate(&mut rng, KeyConfig::TEST).unwrap();
        let n_str = Value::Str(key.n().to_string());

        let ck_a = key.gen_column_key(&mut rng);
        let ck_b = key.gen_column_key(&mut rng);
        let ck_s = key.gen_aux_column_key(&mut rng);
        let ck_t = key.gen_column_key(&mut rng);
        let r = key.gen_row_id(&mut rng);

        let a = BigUint::from(21u32);
        let b = BigUint::from(2u32);
        let a_e = encrypt_value(&key, &a, &gen_item_key(&key, &ck_a, &r));
        let b_e = encrypt_value(&key, &b, &gen_item_key(&key, &ck_b, &r));
        let s_e = encrypt_value(&key, &BigUint::from(1u32), &gen_item_key(&key, &ck_s, &r));

        // Multiplication.
        let mult = SdbMultiplyUdf
            .invoke(&[
                Value::Encrypted(a_e.clone()),
                Value::Encrypted(b_e.clone()),
                n_str.clone(),
            ])
            .unwrap();
        let ck_c = ColumnKeyAlgebra::multiply(&key, &ck_a, &ck_b);
        match mult {
            Value::Encrypted(c_e) => {
                assert_eq!(
                    decrypt_value(&key, &c_e, &gen_item_key(&key, &ck_c, &r)),
                    BigUint::from(42u32)
                );
            }
            other => panic!("unexpected {other:?}"),
        }

        // Key update then addition.
        let pa = KeyUpdateParams::compute(&key, &ck_a, &ck_s, &ck_t).unwrap();
        let pb = KeyUpdateParams::compute(&key, &ck_b, &ck_s, &ck_t).unwrap();
        let a_t = SdbKeyUpdateUdf
            .invoke(&[
                Value::Encrypted(a_e),
                Value::Encrypted(s_e.clone()),
                Value::Str(pa.p.to_string()),
                Value::Str(pa.q.to_string()),
                n_str.clone(),
            ])
            .unwrap();
        let b_t = SdbKeyUpdateUdf
            .invoke(&[
                Value::Encrypted(b_e),
                Value::Encrypted(s_e),
                Value::Str(pb.p.to_string()),
                Value::Str(pb.q.to_string()),
                n_str.clone(),
            ])
            .unwrap();
        let sum = SdbAddUdf.invoke(&[a_t, b_t, n_str]).unwrap();
        match sum {
            Value::Encrypted(c_e) => {
                assert_eq!(
                    decrypt_value(&key, &c_e, &gen_item_key(&key, &ck_t, &r)),
                    BigUint::from(23u32)
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// The EP UDFs: multiply / add an encrypted share with a plain per-row operand.
    #[test]
    fn sdb_plain_operand_udfs() {
        let mut rng = StdRng::seed_from_u64(321);
        let key = SystemKey::generate(&mut rng, KeyConfig::TEST).unwrap();
        let n_str = Value::Str(key.n().to_string());
        let codec = sdb_crypto::SignedCodec::new(&key);

        let ck_a = key.gen_column_key(&mut rng);
        let ck_s = key.gen_aux_column_key(&mut rng);
        let r = key.gen_row_id(&mut rng);
        let a = codec.encode(37).unwrap();
        let a_e = encrypt_value(&key, &a, &gen_item_key(&key, &ck_a, &r));
        let s_e = encrypt_value(&key, &BigUint::from(1u32), &gen_item_key(&key, &ck_s, &r));

        // 37 * (-4) = -148, key unchanged.
        let product = SdbMulPlainUdf
            .invoke(&[
                Value::Encrypted(a_e.clone()),
                Value::Int(-4),
                Value::Int(0),
                n_str.clone(),
            ])
            .unwrap();
        match product {
            Value::Encrypted(c_e) => {
                let plain = decrypt_value(&key, &c_e, &gen_item_key(&key, &ck_a, &r));
                assert_eq!(codec.decode(&plain).unwrap(), -148);
            }
            other => panic!("unexpected {other:?}"),
        }

        // Key-update A to S's key, then add plain 5: 37 + 5 = 42 under ck_S.
        let params = KeyUpdateParams::compute(&key, &ck_a, &ck_s, &ck_s).unwrap();
        let a_at_s = SdbKeyUpdateUdf
            .invoke(&[
                Value::Encrypted(a_e),
                Value::Encrypted(s_e.clone()),
                Value::Str(params.p.to_string()),
                Value::Str(params.q.to_string()),
                n_str.clone(),
            ])
            .unwrap();
        let sum = SdbAddPlainUdf
            .invoke(&[
                a_at_s,
                Value::Int(5),
                Value::Int(0),
                Value::Encrypted(s_e),
                n_str,
            ])
            .unwrap();
        match sum {
            Value::Encrypted(c_e) => {
                let plain = decrypt_value(&key, &c_e, &gen_item_key(&key, &ck_s, &r));
                assert_eq!(codec.decode(&plain).unwrap(), 42);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sdb_tag_eq_udf() {
        let udf = SdbTagEqUdf;
        assert_eq!(
            udf.invoke(&[Value::Tag(12345), Value::Str("12345".into())])
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            udf.invoke(&[Value::Tag(12345), Value::Str("999".into())])
                .unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            udf.invoke(&[Value::Null, Value::Str("1".into())]).unwrap(),
            Value::Null
        );
        assert!(udf
            .invoke(&[Value::Int(1), Value::Str("1".into())])
            .is_err());
        assert!(udf
            .invoke(&[Value::Tag(1), Value::Str("abc".into())])
            .is_err());
    }

    #[test]
    fn plain_operand_scale_handling() {
        let mut rng = StdRng::seed_from_u64(99);
        let key = SystemKey::generate(&mut rng, KeyConfig::TEST).unwrap();
        let codec = sdb_crypto::SignedCodec::new(&key);
        let ck = key.gen_column_key(&mut rng);
        let r = key.gen_row_id(&mut rng);
        // Price 12.50 stored sensitive at scale 2 → units 1250.
        let p_e = encrypt_value(
            &key,
            &codec.encode(1250).unwrap(),
            &gen_item_key(&key, &ck, &r),
        );
        // Multiply by plain decimal 0.08 at scale 2 → units 8; result units at scale 4.
        let out = SdbMulPlainUdf
            .invoke(&[
                Value::Encrypted(p_e),
                Value::Decimal { units: 8, scale: 2 },
                Value::Int(2),
                Value::Str(key.n().to_string()),
            ])
            .unwrap();
        match out {
            Value::Encrypted(c_e) => {
                let plain = decrypt_value(&key, &c_e, &gen_item_key(&key, &ck, &r));
                // 1250 * 8 = 10000 units at scale 4 = 1.0000 (12.50 * 0.08).
                assert_eq!(codec.decode(&plain).unwrap(), 10_000);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Invalid scale argument.
        assert!(SdbMulPlainUdf
            .invoke(&[
                Value::Encrypted(BigUint::from(1u32)),
                Value::Int(1),
                Value::Int(99),
                Value::Str(key.n().to_string())
            ])
            .is_err());
    }

    #[test]
    fn sdb_udfs_validate_arguments() {
        let n = Value::Str("35".into());
        assert!(SdbMultiplyUdf
            .invoke(&[Value::Int(1), Value::Int(2), n.clone()])
            .is_err());
        assert!(SdbMultiplyUdf.invoke(&[Value::Int(1)]).is_err());
        assert!(SdbAddUdf
            .invoke(&[
                Value::Encrypted(BigUint::from(1u32)),
                Value::Encrypted(BigUint::from(2u32)),
                Value::Str("xyz".into())
            ])
            .is_err());
        assert!(SdbKeyUpdateUdf.invoke(&[Value::Null]).is_err());
        // NULL encrypted operands propagate NULL.
        assert_eq!(
            SdbMultiplyUdf
                .invoke(&[Value::Null, Value::Encrypted(BigUint::from(2u32)), n])
                .unwrap(),
            Value::Null
        );
    }
}
