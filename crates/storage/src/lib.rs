//! # sdb-storage
//!
//! The storage substrate of the SDB reproduction: typed values, schemas, columnar
//! tables, record batches and a catalog. This is the "data store" half of the
//! service provider that the paper gets for free from Spark SQL — here it is built
//! from scratch so that the whole system is self-contained (see `DESIGN.md` §4).
//!
//! Sensitive columns are stored as [`Value::Encrypted`] residues (the `v_e` shares
//! of the paper) next to plain insensitive columns, exactly mirroring the paper's
//! storage layout: *"the SP stores the plain values of insensitive data and the
//! secret shares of sensitive data"*.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod bitmap;
pub mod cancel;
pub mod catalog;
pub mod column;
pub mod columnar;
pub mod error;
pub mod pager;
pub mod persist;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use batch::{partition_ranges, RecordBatch};
pub use bitmap::Bitmap;
pub use cancel::CancelToken;
pub use catalog::Catalog;
pub use column::Column;
pub use columnar::{ColumnVector, ColumnarColumn};
pub use error::StorageError;
pub use pager::{
    BufferPool, MemoryBudget, PageId, PageStream, PageStreamReader, PageStreamScan,
    PageStreamWriter, Pager, PagerEvent, PagerObserver, PagerStats, PinnedPage,
};
pub use schema::{resolve_name, ColumnDef, NameResolution, Schema, Sensitivity};
pub use stats::{analyze_table, ColumnStats, HllSketch, TableStats};
pub use table::Table;
pub use value::{DataType, Value};

/// Library result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
