//! A single column of values plus simple statistics used for storage accounting.

use serde::{Deserialize, Serialize};

use crate::{DataType, Result, Value};

/// A typed column of values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    data_type: DataType,
    values: Vec<Value>,
}

impl Column {
    /// Creates an empty column of the given type.
    pub fn new(data_type: DataType) -> Self {
        Column {
            data_type,
            values: Vec::new(),
        }
    }

    /// Creates a column from existing values, checking each against the type.
    pub fn from_values(data_type: DataType, values: Vec<Value>) -> Result<Self> {
        for v in &values {
            v.check_type(data_type)?;
        }
        Ok(Column { data_type, values })
    }

    /// The column's declared type.
    pub fn data_type(&self) -> DataType {
        self.data_type
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends a value after type-checking it.
    pub fn push(&mut self, value: Value) -> Result<()> {
        value.check_type(self.data_type)?;
        self.values.push(value);
        Ok(())
    }

    /// Appends a value without type-checking (used by trusted internal paths).
    pub fn push_unchecked(&mut self, value: Value) {
        self.values.push(value);
    }

    /// The value at `idx`.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Mutable access to all values (engine-internal).
    pub fn values_mut(&mut self) -> &mut Vec<Value> {
        &mut self.values
    }

    /// Rough serialised size in bytes, used for key-store / storage accounting
    /// (experiment E2).
    pub fn approx_size_bytes(&self) -> usize {
        self.values.iter().map(Value::approx_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use num_bigint::BigUint;

    #[test]
    fn push_type_checks() {
        let mut c = Column::new(DataType::Int);
        assert!(c.push(Value::Int(1)).is_ok());
        assert!(c.push(Value::Null).is_ok());
        assert!(c.push(Value::Str("no".into())).is_err());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn from_values_validates() {
        assert!(Column::from_values(DataType::Int, vec![Value::Int(1), Value::Int(2)]).is_ok());
        assert!(Column::from_values(DataType::Int, vec![Value::Bool(true)]).is_err());
    }

    #[test]
    fn size_accounting_counts_encrypted_values_larger() {
        let plain = Column::from_values(DataType::Int, vec![Value::Int(7); 10]).unwrap();
        let enc = Column::from_values(
            DataType::Encrypted,
            vec![Value::Encrypted(BigUint::from(1u8) << 255u32); 10],
        )
        .unwrap();
        assert!(enc.approx_size_bytes() > plain.approx_size_bytes());
    }
}
