//! Typed columnar vectors behind the [`Column`] codec boundary.
//!
//! [`Column`] stays the canonical row-exchange representation (a `Vec<Value>`
//! with `Value`-level accessors, so every operator keeps compiling), but hot
//! paths pivot a column into a [`ColumnVector`] — one contiguous typed vector
//! per data type, paired with a validity [`Bitmap`] — and run their loops over
//! the typed data with no enum dispatch per element:
//!
//! * `Vec<i64>` for INT, `Vec<i32>` for DATE, packed bits for BOOL,
//!   `Vec<u64>` for TAG;
//! * DECIMAL keeps per-element `units`/`scale` pairs plus an *int marker*
//!   bitmap, because a `DECIMAL(s)` column may legally store `Value::Int`
//!   (see [`Value::check_type`]) and the round trip back to [`Value`] must be
//!   byte-identical — `Value::Int(5)` and `Value::Decimal { units: 5, scale:
//!   0 }` compare equal numerically but are distinct variants;
//! * VARCHAR packs every string into one byte buffer with an offsets array;
//! * ENCRYPTED / ENC_ROW_ID get dedicated vectors of their payload types;
//! * columns whose *runtime* contents deviate from the declared type
//!   (sort-key columns built through `push_unchecked` mix types freely) fall
//!   back to [`ColumnVector::Values`], which kernels treat as "not columnar —
//!   use the scalar path".
//!
//! The contract is exact round-tripping: for every column,
//! `ColumnarColumn::from_column(c).to_column(c.data_type()) == c`.

use num_bigint::BigUint;
use sdb_crypto::EncryptedRowId;

use crate::bitmap::Bitmap;
use crate::{Column, DataType, Value};

/// The typed payload of a columnar column. NULL slots hold a zero/empty
/// placeholder in the typed vectors; the validity bitmap is authoritative.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnVector {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// Fixed-point decimals: scaled units and per-element scales. `ints`
    /// marks elements that were stored as `Value::Int` (scale slot is 0
    /// there), so reconstruction restores the exact enum variant.
    Decimal {
        /// Scaled integer units per element.
        units: Vec<i64>,
        /// Digits after the decimal point, per element.
        scales: Vec<u8>,
        /// Elements that round-trip to `Value::Int` rather than
        /// `Value::Decimal`.
        ints: Bitmap,
    },
    /// Offset-packed UTF-8 strings: element `i` spans
    /// `bytes[offsets[i]..offsets[i + 1]]`.
    Str {
        /// `len + 1` byte offsets into `bytes`.
        offsets: Vec<u32>,
        /// The concatenated string payloads.
        bytes: Vec<u8>,
    },
    /// Days since the Unix epoch.
    Date(Vec<i32>),
    /// Booleans, packed one bit per element.
    Bool(Bitmap),
    /// Deterministic equality tags.
    Tag(Vec<u64>),
    /// SDB secret shares.
    Encrypted(Vec<BigUint>),
    /// Encrypted row ids / SIES payloads.
    EncryptedRowId(Vec<EncryptedRowId>),
    /// Fallback for columns whose runtime contents are not homogeneous:
    /// the raw values, signalling "no kernel for this column".
    Values(Vec<Value>),
}

/// A column pivoted into typed-vector form: payload plus validity bitmap.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarColumn {
    vector: ColumnVector,
    validity: Bitmap,
}

impl ColumnarColumn {
    /// Pivots a [`Column`] into typed-vector form in one pass. Columns whose
    /// runtime values deviate from the declared type fall back to
    /// [`ColumnVector::Values`].
    pub fn from_column(column: &Column) -> ColumnarColumn {
        let values = column.values();
        let n = values.len();
        let mut validity = Bitmap::new_set(n);
        for (i, v) in values.iter().enumerate() {
            if v.is_null() {
                validity.set(i, false);
            }
        }
        let vector = match column.data_type() {
            DataType::Int => extract_int(values),
            DataType::Decimal { .. } => extract_decimal(values),
            DataType::Varchar => extract_str(values),
            DataType::Date => extract_date(values),
            DataType::Bool => extract_bool(values),
            DataType::Tag => extract_tag(values),
            DataType::Encrypted => extract_encrypted(values),
            DataType::EncryptedRowId => extract_row_id(values),
        };
        match vector {
            Some(vector) => ColumnarColumn { vector, validity },
            None => ColumnarColumn {
                vector: ColumnVector::Values(values.to_vec()),
                validity,
            },
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.validity.len()
    }

    /// True when the column holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    /// The validity bitmap (bit set = value present, clear = NULL).
    pub fn validity(&self) -> &Bitmap {
        &self.validity
    }

    /// Number of NULLs (popcount of the cleared validity bits).
    pub fn null_count(&self) -> usize {
        self.validity.count_clear()
    }

    /// The typed payload.
    pub fn vector(&self) -> &ColumnVector {
        &self.vector
    }

    /// True when the payload is typed (kernels can run); false for the
    /// [`ColumnVector::Values`] fallback.
    pub fn is_typed(&self) -> bool {
        !matches!(self.vector, ColumnVector::Values(_))
    }

    /// Reconstructs the exact [`Value`] at `idx` (byte-identical to the value
    /// the column was pivoted from).
    pub fn value_at(&self, idx: usize) -> Value {
        if !self.validity.get(idx) {
            if let ColumnVector::Values(values) = &self.vector {
                return values[idx].clone();
            }
            return Value::Null;
        }
        match &self.vector {
            ColumnVector::Int(v) => Value::Int(v[idx]),
            ColumnVector::Decimal {
                units,
                scales,
                ints,
            } => {
                if ints.get(idx) {
                    Value::Int(units[idx])
                } else {
                    Value::Decimal {
                        units: units[idx],
                        scale: scales[idx],
                    }
                }
            }
            ColumnVector::Str { offsets, bytes } => {
                let s = &bytes[offsets[idx] as usize..offsets[idx + 1] as usize];
                Value::Str(String::from_utf8(s.to_vec()).expect("packed from valid UTF-8"))
            }
            ColumnVector::Date(v) => Value::Date(v[idx]),
            ColumnVector::Bool(bits) => Value::Bool(bits.get(idx)),
            ColumnVector::Tag(v) => Value::Tag(v[idx]),
            ColumnVector::Encrypted(v) => Value::Encrypted(v[idx].clone()),
            ColumnVector::EncryptedRowId(v) => Value::EncryptedRowId(v[idx].clone()),
            ColumnVector::Values(values) => values[idx].clone(),
        }
    }

    /// The string at `idx` (only valid for [`ColumnVector::Str`] elements
    /// whose validity bit is set).
    pub fn str_at(&self, idx: usize) -> Option<&str> {
        match &self.vector {
            ColumnVector::Str { offsets, bytes } if self.validity.get(idx) => {
                let s = &bytes[offsets[idx] as usize..offsets[idx + 1] as usize];
                Some(std::str::from_utf8(s).expect("packed from valid UTF-8"))
            }
            _ => None,
        }
    }

    /// Pivots back to a row-exchange [`Column`] of the given declared type.
    /// Exact inverse of [`ColumnarColumn::from_column`].
    pub fn to_column(&self, data_type: DataType) -> Column {
        let mut column = Column::new(data_type);
        for i in 0..self.len() {
            column.push_unchecked(self.value_at(i));
        }
        column
    }
}

fn extract_int(values: &[Value]) -> Option<ColumnVector> {
    let mut out = Vec::with_capacity(values.len());
    for v in values {
        match v {
            Value::Int(i) => out.push(*i),
            Value::Null => out.push(0),
            _ => return None,
        }
    }
    Some(ColumnVector::Int(out))
}

fn extract_decimal(values: &[Value]) -> Option<ColumnVector> {
    let mut units = Vec::with_capacity(values.len());
    let mut scales = Vec::with_capacity(values.len());
    let mut ints = Bitmap::new_clear(values.len());
    for (i, v) in values.iter().enumerate() {
        match v {
            Value::Decimal { units: u, scale } => {
                units.push(*u);
                scales.push(*scale);
            }
            Value::Int(u) => {
                units.push(*u);
                scales.push(0);
                ints.set(i, true);
            }
            Value::Null => {
                units.push(0);
                scales.push(0);
            }
            _ => return None,
        }
    }
    Some(ColumnVector::Decimal {
        units,
        scales,
        ints,
    })
}

fn extract_str(values: &[Value]) -> Option<ColumnVector> {
    let mut offsets = Vec::with_capacity(values.len() + 1);
    let mut bytes = Vec::new();
    offsets.push(0u32);
    for v in values {
        match v {
            Value::Str(s) => bytes.extend_from_slice(s.as_bytes()),
            Value::Null => {}
            _ => return None,
        }
        offsets.push(u32::try_from(bytes.len()).ok()?);
    }
    Some(ColumnVector::Str { offsets, bytes })
}

fn extract_date(values: &[Value]) -> Option<ColumnVector> {
    let mut out = Vec::with_capacity(values.len());
    for v in values {
        match v {
            Value::Date(d) => out.push(*d),
            Value::Null => out.push(0),
            _ => return None,
        }
    }
    Some(ColumnVector::Date(out))
}

fn extract_bool(values: &[Value]) -> Option<ColumnVector> {
    let mut bits = Bitmap::new_clear(values.len());
    for (i, v) in values.iter().enumerate() {
        match v {
            Value::Bool(b) => bits.set(i, *b),
            Value::Null => {}
            _ => return None,
        }
    }
    Some(ColumnVector::Bool(bits))
}

fn extract_tag(values: &[Value]) -> Option<ColumnVector> {
    let mut out = Vec::with_capacity(values.len());
    for v in values {
        match v {
            Value::Tag(t) => out.push(*t),
            Value::Null => out.push(0),
            _ => return None,
        }
    }
    Some(ColumnVector::Tag(out))
}

fn extract_encrypted(values: &[Value]) -> Option<ColumnVector> {
    let mut out = Vec::with_capacity(values.len());
    for v in values {
        match v {
            Value::Encrypted(e) => out.push(e.clone()),
            Value::Null => out.push(BigUint::from(0u32)),
            _ => return None,
        }
    }
    Some(ColumnVector::Encrypted(out))
}

fn extract_row_id(values: &[Value]) -> Option<ColumnVector> {
    let mut out = Vec::with_capacity(values.len());
    for v in values {
        match v {
            Value::EncryptedRowId(r) => out.push(r.clone()),
            Value::Null => out.push(EncryptedRowId(sdb_crypto::sies::SiesCiphertext {
                nonce: 0,
                body: Vec::new(),
                tag: 0,
            })),
            _ => return None,
        }
    }
    Some(ColumnVector::EncryptedRowId(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data_type: DataType, values: Vec<Value>) {
        let mut column = Column::new(data_type);
        for v in values {
            column.push_unchecked(v);
        }
        let pivoted = ColumnarColumn::from_column(&column);
        assert_eq!(
            pivoted.to_column(data_type),
            column,
            "round trip must be byte-identical for {data_type:?}"
        );
        assert_eq!(
            pivoted.null_count(),
            column.values().iter().filter(|v| v.is_null()).count()
        );
    }

    #[test]
    fn int_column_roundtrip_with_nulls() {
        roundtrip(
            DataType::Int,
            vec![Value::Int(1), Value::Null, Value::Int(-7), Value::Int(0)],
        );
    }

    #[test]
    fn decimal_column_preserves_int_variants_and_mixed_scales() {
        roundtrip(
            DataType::Decimal { scale: 2 },
            vec![
                Value::Decimal {
                    units: 1299,
                    scale: 2,
                },
                Value::Int(5), // legal in a DECIMAL column; must come back as Int
                Value::Null,
                Value::Decimal { units: 7, scale: 0 }, // distinct from Int(7)
                Value::Decimal {
                    units: -31,
                    scale: 4,
                },
            ],
        );
    }

    #[test]
    fn str_column_packs_offsets() {
        roundtrip(
            DataType::Varchar,
            vec![
                Value::Str("alpha".into()),
                Value::Str(String::new()),
                Value::Null,
                Value::Str("héllo \u{1f}".into()),
            ],
        );
        let mut column = Column::new(DataType::Varchar);
        column.push_unchecked(Value::Str("ab".into()));
        column.push_unchecked(Value::Null);
        column.push_unchecked(Value::Str("cde".into()));
        let pivoted = ColumnarColumn::from_column(&column);
        assert_eq!(pivoted.str_at(0), Some("ab"));
        assert_eq!(pivoted.str_at(1), None);
        assert_eq!(pivoted.str_at(2), Some("cde"));
    }

    #[test]
    fn remaining_types_roundtrip() {
        roundtrip(DataType::Date, vec![Value::Date(19_000), Value::Null]);
        roundtrip(
            DataType::Bool,
            vec![Value::Bool(true), Value::Bool(false), Value::Null],
        );
        roundtrip(DataType::Tag, vec![Value::Tag(u64::MAX), Value::Null]);
        roundtrip(
            DataType::Encrypted,
            vec![Value::Encrypted(BigUint::from(1u8) << 200u32), Value::Null],
        );
        roundtrip(
            DataType::EncryptedRowId,
            vec![
                Value::EncryptedRowId(EncryptedRowId(sdb_crypto::sies::SiesCiphertext {
                    nonce: 7,
                    body: vec![1, 2, 3],
                    tag: 9,
                })),
                Value::Null,
            ],
        );
    }

    #[test]
    fn heterogeneous_column_falls_back_to_values() {
        let mut column = Column::new(DataType::Int);
        column.push_unchecked(Value::Int(1));
        column.push_unchecked(Value::Str("two".into()));
        column.push_unchecked(Value::Null);
        let pivoted = ColumnarColumn::from_column(&column);
        assert!(!pivoted.is_typed());
        assert_eq!(pivoted.to_column(DataType::Int), column);
    }

    #[test]
    fn empty_column_roundtrip() {
        roundtrip(DataType::Int, vec![]);
        roundtrip(DataType::Varchar, vec![]);
    }

    #[test]
    fn word_boundary_lengths_roundtrip() {
        for len in [64usize, 65, 63, 128] {
            let values: Vec<Value> = (0..len)
                .map(|i| {
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i as i64)
                    }
                })
                .collect();
            roundtrip(DataType::Int, values);
        }
    }
}
