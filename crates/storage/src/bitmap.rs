//! Validity / selection bitmaps: one bit per row, packed into `u64` words.
//!
//! The columnar layer pairs every [`crate::columnar::ColumnVector`] with a
//! validity bitmap (bit set = value present, clear = NULL), and the engine's
//! selection kernels evaluate predicates into selection bitmaps of the same
//! shape. Counting set bits is a word-wise popcount, and the logical
//! operations (`and`/`or`/`and_not`) work a word at a time, so a 4096-row
//! batch costs 64 word operations instead of 4096 branch tests.
//!
//! Bits past `len` inside the last word are kept **zero** at all times — every
//! mutating operation re-masks the tail — so `count_set` and the word-wise
//! combinators never see garbage at word boundaries (rows % 64 ∈ {0, 1, 63}
//! are exercised explicitly in the tests).

use serde::{Deserialize, Serialize};

/// A fixed-length bitmap over row indices `0..len`, packed into `u64` words.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// A bitmap of `len` bits, all clear.
    pub fn new_clear(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// A bitmap of `len` bits, all set.
    pub fn new_set(len: usize) -> Self {
        let mut b = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        b.mask_tail();
        b
    }

    /// Builds a bitmap from a boolean slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut b = Bitmap::new_clear(bits.len());
        for (i, &set) in bits.iter().enumerate() {
            if set {
                b.words[i / 64] |= 1u64 << (i % 64);
            }
        }
        b
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at `idx`.
    pub fn get(&self, idx: usize) -> bool {
        debug_assert!(idx < self.len);
        self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Sets or clears the bit at `idx`.
    pub fn set(&mut self, idx: usize, value: bool) {
        debug_assert!(idx < self.len);
        let mask = 1u64 << (idx % 64);
        if value {
            self.words[idx / 64] |= mask;
        } else {
            self.words[idx / 64] &= !mask;
        }
    }

    /// Number of set bits (word-wise popcount).
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of clear bits — for a validity bitmap, the NULL count.
    pub fn count_clear(&self) -> usize {
        self.len - self.count_set()
    }

    /// True when every bit is set.
    pub fn all_set(&self) -> bool {
        self.count_set() == self.len
    }

    /// True when no bit is set.
    pub fn none_set(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Word-wise `self & other`. Panics if the lengths differ.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// Word-wise `self | other`. Panics if the lengths differ.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
            len: self.len,
        }
    }

    /// Word-wise `self & !other`. Panics if the lengths differ.
    pub fn and_not(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & !b)
                .collect(),
            len: self.len,
        }
    }

    /// Word-wise complement (tail bits stay zero).
    pub fn not(&self) -> Bitmap {
        let mut out = Bitmap {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        out.mask_tail();
        out
    }

    /// Iterates the indices of the set bits in ascending order.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// Copies the bitmap out as a boolean vector (scalar-path interop).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// The raw words (serialisation; tail bits beyond `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bitmap from raw words produced by [`Bitmap::words`].
    /// Returns `None` if the word count does not match `len`.
    pub fn from_words(words: Vec<u64>, len: usize) -> Option<Self> {
        if words.len() != len.div_ceil(64) {
            return None;
        }
        let mut b = Bitmap { words, len };
        b.mask_tail();
        Some(b)
    }

    /// Clears the unused bits of the last word so popcounts stay exact.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The word-boundary lengths the acceptance criteria call out, plus the
    /// surrounding edge cases.
    const EDGE_LENS: [usize; 7] = [0, 1, 63, 64, 65, 127, 128];

    #[test]
    fn set_get_count_roundtrip_at_word_boundaries() {
        for len in EDGE_LENS {
            let mut b = Bitmap::new_clear(len);
            assert_eq!(b.count_set(), 0);
            for i in 0..len {
                if i % 3 == 0 {
                    b.set(i, true);
                }
            }
            let expected = (0..len).filter(|i| i % 3 == 0).count();
            assert_eq!(b.count_set(), expected, "len={len}");
            assert_eq!(b.count_clear(), len - expected, "len={len}");
            for i in 0..len {
                assert_eq!(b.get(i), i % 3 == 0, "len={len} i={i}");
            }
        }
    }

    #[test]
    fn new_set_masks_the_tail_word() {
        for len in EDGE_LENS {
            let b = Bitmap::new_set(len);
            assert_eq!(b.count_set(), len, "len={len}");
            assert!(b.all_set() || len == 0);
            // The complement must be all-clear: tail bits leaked into the
            // last word would show up here.
            assert_eq!(b.not().count_set(), 0, "len={len}");
        }
    }

    #[test]
    fn logical_ops_match_boolean_reference() {
        for len in EDGE_LENS {
            let a_bits: Vec<bool> = (0..len).map(|i| i % 2 == 0).collect();
            let b_bits: Vec<bool> = (0..len).map(|i| i % 3 == 0).collect();
            let a = Bitmap::from_bools(&a_bits);
            let b = Bitmap::from_bools(&b_bits);
            for i in 0..len {
                assert_eq!(a.and(&b).get(i), a_bits[i] && b_bits[i]);
                assert_eq!(a.or(&b).get(i), a_bits[i] || b_bits[i]);
                assert_eq!(a.and_not(&b).get(i), a_bits[i] && !b_bits[i]);
                assert_eq!(a.not().get(i), !a_bits[i]);
            }
            assert_eq!(a.not().count_set(), len - a.count_set());
        }
    }

    #[test]
    fn iter_set_yields_ascending_indices() {
        let bits: Vec<bool> = (0..130).map(|i| i % 7 == 0).collect();
        let b = Bitmap::from_bools(&bits);
        let set: Vec<usize> = b.iter_set().collect();
        let expected: Vec<usize> = (0..130).filter(|i| i % 7 == 0).collect();
        assert_eq!(set, expected);
        assert_eq!(b.to_bools(), bits);
    }

    #[test]
    fn words_roundtrip() {
        for len in EDGE_LENS {
            let bits: Vec<bool> = (0..len).map(|i| i % 5 != 1).collect();
            let b = Bitmap::from_bools(&bits);
            let back = Bitmap::from_words(b.words().to_vec(), len).unwrap();
            assert_eq!(b, back);
        }
        assert!(Bitmap::from_words(vec![0; 3], 64).is_none());
    }
}
