//! Tables: named, schema'd collections of rows stored column-major.

use serde::{Deserialize, Serialize};

use crate::{Column, RecordBatch, Result, Schema, StorageError, Value};

/// A stored table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    num_rows: usize,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: &str, schema: Schema) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|c| Column::new(c.data_type))
            .collect();
        Table {
            name: name.to_ascii_lowercase(),
            schema,
            columns,
            num_rows: 0,
        }
    }

    /// The table name (lower-cased).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Inserts one row (values in schema order).
    pub fn insert_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.len(),
                found: row.len(),
            });
        }
        for (col, value) in self.columns.iter_mut().zip(row) {
            col.push(value)?;
        }
        self.num_rows += 1;
        Ok(())
    }

    /// Inserts many rows.
    pub fn insert_rows(&mut self, rows: Vec<Vec<Value>>) -> Result<()> {
        for row in rows {
            self.insert_row(row)?;
        }
        Ok(())
    }

    /// Appends a whole record batch whose schema matches this table's.
    pub fn append_batch(&mut self, batch: &RecordBatch) -> Result<()> {
        if batch.schema() != &self.schema {
            return Err(StorageError::Invalid {
                detail: format!("batch schema does not match table {}", self.name),
            });
        }
        for (col, src) in self.columns.iter_mut().zip(batch.columns().iter()) {
            for v in src.values() {
                col.push_unchecked(v.clone());
            }
        }
        self.num_rows += batch.num_rows();
        Ok(())
    }

    /// Materialises the whole table as a record batch (a full scan).
    pub fn scan(&self) -> RecordBatch {
        RecordBatch::new(self.schema.clone(), self.columns.clone())
            .expect("table columns are consistent by construction")
    }

    /// A column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// Rough storage footprint in bytes.
    pub fn approx_size_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.approx_size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnDef, DataType};

    fn employee_table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::public("id", DataType::Int),
            ColumnDef::sensitive("salary", DataType::Int),
            ColumnDef::public("dept", DataType::Varchar),
        ]);
        Table::new("Employees", schema)
    }

    #[test]
    fn insert_and_scan() {
        let mut t = employee_table();
        assert_eq!(t.name(), "employees");
        t.insert_row(vec![
            Value::Int(1),
            Value::Int(100),
            Value::Str("eng".into()),
        ])
        .unwrap();
        t.insert_row(vec![
            Value::Int(2),
            Value::Int(200),
            Value::Str("ops".into()),
        ])
        .unwrap();
        assert_eq!(t.num_rows(), 2);
        let b = t.scan();
        assert_eq!(b.num_rows(), 2);
        assert_eq!(
            b.column_by_name("dept").unwrap().get(1),
            &Value::Str("ops".into())
        );
    }

    #[test]
    fn arity_and_type_enforced() {
        let mut t = employee_table();
        assert!(t.insert_row(vec![Value::Int(1)]).is_err());
        assert!(t
            .insert_row(vec![
                Value::Str("x".into()),
                Value::Int(1),
                Value::Str("y".into())
            ])
            .is_err());
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn append_batch_requires_same_schema() {
        let mut t = employee_table();
        let other_schema = Schema::new(vec![ColumnDef::public("id", DataType::Int)]);
        let batch = RecordBatch::from_rows(other_schema, vec![vec![Value::Int(1)]]).unwrap();
        assert!(t.append_batch(&batch).is_err());

        let good = RecordBatch::from_rows(
            t.schema().clone(),
            vec![vec![
                Value::Int(3),
                Value::Int(300),
                Value::Str("hr".into()),
            ]],
        )
        .unwrap();
        t.append_batch(&good).unwrap();
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn size_grows_with_rows() {
        let mut t = employee_table();
        let before = t.approx_size_bytes();
        t.insert_row(vec![
            Value::Int(1),
            Value::Int(100),
            Value::Str("eng".into()),
        ])
        .unwrap();
        assert!(t.approx_size_bytes() > before);
    }
}
