//! Cooperative query cancellation.
//!
//! A [`CancelToken`] is a cheap, cloneable flag shared between a running
//! query and whoever may need to stop it (a serving session's `cancel()`
//! call, an admission timeout, a shutdown path). Execution code *polls* the
//! token at its natural yield points — operator `next_batch` loops, oracle
//! flushes, pager admissions and spill writes — via [`CancelToken::check`],
//! which returns [`StorageError::Cancelled`] once the token is tripped.
//! Cancellation is therefore cooperative and prompt but never preemptive:
//! a cancelled query unwinds through its normal error path, so RAII cleanup
//! (pager leases, spill files, pinned frames) runs exactly as it would on
//! any other error.
//!
//! For deterministic tests the token can also be armed to trip itself after
//! a fixed number of polls ([`CancelToken::cancel_after_checks`]): because a
//! serial query polls in a reproducible order, "cancel mid-scan" or "cancel
//! mid-spill" become exact, replayable program points instead of timing
//! races.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::{Result, StorageError};

/// Poll count that disables the self-trip fuse.
const FUSE_DISARMED: u64 = u64::MAX;

#[derive(Debug, Default)]
struct TokenState {
    cancelled: AtomicBool,
    /// Number of [`CancelToken::check`] calls observed so far.
    checks: AtomicU64,
    /// Trip the token when `checks` reaches this value (tests);
    /// [`FUSE_DISARMED`] means never.
    fuse: AtomicU64,
}

/// A cloneable cancellation flag polled cooperatively by running queries.
///
/// All clones share one underlying flag: cancelling any clone cancels them
/// all. The default token is never cancelled until someone calls
/// [`CancelToken::cancel`].
///
/// ```
/// use sdb_storage::CancelToken;
///
/// let token = CancelToken::new();
/// assert!(token.check().is_ok());
/// token.cancel();
/// assert!(token.check().is_err());
/// assert!(token.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    state: Arc<TokenState>,
}

impl CancelToken {
    /// Creates an untripped token.
    pub fn new() -> Self {
        CancelToken {
            state: Arc::new(TokenState {
                cancelled: AtomicBool::new(false),
                checks: AtomicU64::new(0),
                fuse: AtomicU64::new(FUSE_DISARMED),
            }),
        }
    }

    /// Creates a token that trips itself on the `n`-th [`check`] call
    /// (1-based): the first `n - 1` checks pass, the `n`-th and all later
    /// ones fail. Serial queries poll in a deterministic order, so this pins
    /// "cancel exactly mid-scan / mid-spill / mid-flush" without timing
    /// races (tests).
    ///
    /// [`check`]: CancelToken::check
    pub fn cancel_after_checks(n: u64) -> Self {
        let token = CancelToken::new();
        token.state.fuse.store(n, Ordering::Relaxed);
        token
    }

    /// Trips the token. Idempotent; all clones observe the cancellation.
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token has been tripped (without counting as a poll).
    pub fn is_cancelled(&self) -> bool {
        self.state.cancelled.load(Ordering::Acquire)
    }

    /// Number of [`CancelToken::check`] polls observed so far (tests use
    /// this to calibrate [`CancelToken::cancel_after_checks`] fuses).
    pub fn checks(&self) -> u64 {
        self.state.checks.load(Ordering::Relaxed)
    }

    /// Polls the token: returns [`StorageError::Cancelled`] if it has been
    /// tripped (or trips now, when armed with
    /// [`CancelToken::cancel_after_checks`]), `Ok(())` otherwise.
    pub fn check(&self) -> Result<()> {
        let polls = self.state.checks.fetch_add(1, Ordering::Relaxed) + 1;
        if polls >= self.state.fuse.load(Ordering::Relaxed) {
            self.cancel();
        }
        if self.is_cancelled() {
            Err(StorageError::Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_token_never_trips_on_its_own() {
        let token = CancelToken::new();
        for _ in 0..1000 {
            token.check().unwrap();
        }
        assert_eq!(token.checks(), 1000);
        assert!(!token.is_cancelled());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        clone.cancel();
        assert!(token.is_cancelled());
        assert_eq!(token.check(), Err(StorageError::Cancelled));
    }

    #[test]
    fn fuse_trips_on_the_exact_poll() {
        let token = CancelToken::cancel_after_checks(3);
        token.check().unwrap();
        token.check().unwrap();
        assert!(token.check().is_err(), "third poll must trip");
        assert!(token.check().is_err(), "and it stays tripped");
        assert!(token.is_cancelled());
    }

    #[test]
    fn is_cancelled_does_not_count_as_a_poll() {
        let token = CancelToken::cancel_after_checks(1);
        assert!(!token.is_cancelled());
        assert!(!token.is_cancelled());
        assert!(token.check().is_err());
    }
}
