//! Catalog persistence: save/load the whole catalog as JSON.
//!
//! The paper's SP relies on the underlying engine (Spark SQL) for durable storage;
//! this module provides the equivalent capability for the reproduction so uploads
//! survive process restarts in the examples.

use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::{Catalog, Result, StorageError, Table};

/// Serialisable snapshot of a catalog.
#[derive(Debug, Serialize, Deserialize)]
pub struct CatalogSnapshot {
    /// All tables, in name order.
    pub tables: Vec<Table>,
}

impl CatalogSnapshot {
    /// Captures a snapshot of `catalog`.
    pub fn capture(catalog: &Catalog) -> Self {
        CatalogSnapshot {
            tables: catalog.snapshot(),
        }
    }

    /// Restores the snapshot into a fresh catalog.
    pub fn restore(self) -> Result<Catalog> {
        let catalog = Catalog::new();
        for table in self.tables {
            catalog.register_table(table)?;
        }
        Ok(catalog)
    }
}

/// Saves a catalog to a JSON file.
pub fn save_catalog(catalog: &Catalog, path: &Path) -> Result<()> {
    let snapshot = CatalogSnapshot::capture(catalog);
    let json = serde_json::to_string(&snapshot).map_err(|e| StorageError::Persistence {
        detail: format!("serialisation failed: {e}"),
    })?;
    fs::write(path, json).map_err(|e| StorageError::Persistence {
        detail: format!("write {} failed: {e}", path.display()),
    })
}

/// Loads a catalog from a JSON file.
pub fn load_catalog(path: &Path) -> Result<Catalog> {
    let json = fs::read_to_string(path).map_err(|e| StorageError::Persistence {
        detail: format!("read {} failed: {e}", path.display()),
    })?;
    let snapshot: CatalogSnapshot =
        serde_json::from_str(&json).map_err(|e| StorageError::Persistence {
            detail: format!("deserialisation failed: {e}"),
        })?;
    snapshot.restore()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnDef, DataType, Schema, Value};

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("sdb-storage-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.json");

        let cat = Catalog::new();
        let schema = Schema::new(vec![
            ColumnDef::public("id", DataType::Int),
            ColumnDef::sensitive("balance", DataType::Int),
        ]);
        let handle = cat.create_table("accounts", schema).unwrap();
        handle
            .write()
            .insert_row(vec![Value::Int(1), Value::Int(500)])
            .unwrap();

        save_catalog(&cat, &path).unwrap();
        let loaded = load_catalog(&path).unwrap();
        assert_eq!(loaded.table_names(), vec!["accounts"]);
        assert_eq!(loaded.table("accounts").unwrap().read().num_rows(), 1);

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load_catalog(Path::new("/nonexistent/sdb/catalog.json"));
        assert!(err.is_err());
    }
}
