//! Schemas: column definitions, sensitivity flags and lookup helpers.

use serde::{Deserialize, Serialize};

use crate::{DataType, Result, StorageError};

/// Whether a column holds sensitive data.
///
/// Sensitivity is a *data-owner* concept: the DO marks the columns that must never
/// appear in plain form at the SP (demo step 1: "choose the attributes that need to
/// be protected"). On the SP side a sensitive column's physical type is
/// [`DataType::Encrypted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sensitivity {
    /// Stored in plain form at the SP.
    Public,
    /// Stored as SDB secret shares at the SP.
    Sensitive,
}

impl Sensitivity {
    /// True when sensitive.
    pub fn is_sensitive(&self) -> bool {
        matches!(self, Sensitivity::Sensitive)
    }
}

/// Definition of one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (case-insensitive matching, stored lower-cased).
    pub name: String,
    /// Logical data type.
    pub data_type: DataType,
    /// Sensitivity classification.
    pub sensitivity: Sensitivity,
}

impl ColumnDef {
    /// A public (plain) column.
    pub fn public(name: &str, data_type: DataType) -> Self {
        ColumnDef {
            name: name.to_ascii_lowercase(),
            data_type,
            sensitivity: Sensitivity::Public,
        }
    }

    /// A sensitive column.
    pub fn sensitive(name: &str, data_type: DataType) -> Self {
        ColumnDef {
            name: name.to_ascii_lowercase(),
            data_type,
            sensitivity: Sensitivity::Sensitive,
        }
    }
}

/// An ordered collection of column definitions.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Creates a schema from column definitions.
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        Schema { columns }
    }

    /// Empty schema.
    pub fn empty() -> Self {
        Schema { columns: vec![] }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The column definitions in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Index of a column by (case-insensitive) name.
    ///
    /// Accepts both bare names (`price`) and qualified names (`lineitem.price`):
    ///
    /// * an exact (case-insensitive) match always wins;
    /// * a *qualified* lookup (`t.price`) additionally matches a column stored under
    ///   the bare name `price` (but never a column qualified with a *different*
    ///   table);
    /// * a *bare* lookup (`price`) matches a stored qualified name `*.price`
    ///   provided exactly one candidate exists.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        match resolve_name(self.columns.iter().map(|c| c.name.as_str()), name) {
            NameResolution::One(idx) => Ok(idx),
            NameResolution::Ambiguous(n) => Err(StorageError::Invalid {
                detail: format!("ambiguous column reference {name} ({n} candidates)"),
            }),
            NameResolution::None => Err(StorageError::ColumnNotFound {
                name: name.to_string(),
                context: format!("schema with {} columns", self.columns.len()),
            }),
        }
    }

    /// The definition of column `name`.
    pub fn column(&self, name: &str) -> Result<&ColumnDef> {
        Ok(&self.columns[self.index_of(name)?])
    }

    /// The definition at position `idx`.
    pub fn column_at(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }

    /// Names of all sensitive columns.
    pub fn sensitive_columns(&self) -> Vec<&str> {
        self.columns
            .iter()
            .filter(|c| c.sensitivity.is_sensitive())
            .map(|c| c.name.as_str())
            .collect()
    }

    /// Appends a column, returning the new schema (builder style).
    pub fn with_column(mut self, def: ColumnDef) -> Self {
        self.columns.push(def);
        self
    }

    /// Concatenates two schemas (used by joins).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// Projects a subset of columns by index.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
        }
    }
}

/// Outcome of resolving a column reference against a list of names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameResolution {
    /// No candidate matched.
    None,
    /// Exactly one candidate: its position in the input order.
    One(usize),
    /// Multiple candidates (the count).
    Ambiguous(usize),
}

/// Resolves a (possibly qualified) column reference against an ordered list
/// of stored column names — **the** name-resolution rules of this engine,
/// shared by [`Schema::index_of`] and by the optimizer's plan-time
/// resolution so the two can never drift:
///
/// * an exact (case-insensitive) match always wins, first position on
///   duplicates — self-joins legitimately duplicate qualified names;
/// * a *qualified* lookup (`t.price`) additionally matches a name stored
///   bare as `price` (but never one qualified with a *different* table);
/// * a *bare* lookup (`price`) matches a stored qualified `*.price`,
///   provided exactly one candidate exists.
pub fn resolve_name<'a>(
    names: impl Iterator<Item = &'a str> + Clone,
    name: &str,
) -> NameResolution {
    let needle = name.to_ascii_lowercase();
    // Exact match first (first position wins on duplicates).
    if let Some(idx) = names
        .clone()
        .position(|stored| stored.eq_ignore_ascii_case(&needle))
    {
        return NameResolution::One(idx);
    }
    let needle_is_qualified = needle.contains('.');
    let bare = needle.rsplit('.').next().unwrap_or(&needle);
    let mut fallback = names.enumerate().filter(|(_, stored)| {
        let stored = stored.to_ascii_lowercase();
        if needle_is_qualified {
            // `t.price` may fall back to an unqualified stored `price`, but
            // must not match `other.price`.
            !stored.contains('.') && stored == bare
        } else {
            // Bare `price` may match a stored qualified `*.price`.
            stored.rsplit('.').next() == Some(bare)
        }
    });
    match fallback.next() {
        None => NameResolution::None,
        Some((idx, _)) => match fallback.count() {
            0 => NameResolution::One(idx),
            more => NameResolution::Ambiguous(more + 1),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            ColumnDef::public("id", DataType::Int),
            ColumnDef::sensitive("salary", DataType::Int),
            ColumnDef::public("name", DataType::Varchar),
        ])
    }

    #[test]
    fn index_lookup_case_insensitive() {
        let s = sample();
        assert_eq!(s.index_of("ID").unwrap(), 0);
        assert_eq!(s.index_of("Salary").unwrap(), 1);
        assert!(s.index_of("missing").is_err());
    }

    #[test]
    fn qualified_lookup() {
        let s = Schema::new(vec![
            ColumnDef::public("emp.id", DataType::Int),
            ColumnDef::public("dept.id", DataType::Int),
            ColumnDef::public("emp.name", DataType::Varchar),
        ]);
        assert_eq!(s.index_of("emp.id").unwrap(), 0);
        assert_eq!(s.index_of("dept.id").unwrap(), 1);
        assert_eq!(s.index_of("name").unwrap(), 2);
        // Ambiguous bare name.
        assert!(s.index_of("id").is_err());
    }

    #[test]
    fn bare_schema_accepts_qualified_lookup() {
        let s = sample();
        assert_eq!(s.index_of("emp.salary").unwrap(), 1);
    }

    #[test]
    fn sensitive_columns_listed() {
        let s = sample();
        assert_eq!(s.sensitive_columns(), vec!["salary"]);
    }

    #[test]
    fn join_and_project() {
        let a = sample();
        let b = Schema::new(vec![ColumnDef::public("dept", DataType::Varchar)]);
        let j = a.join(&b);
        assert_eq!(j.len(), 4);
        let p = j.project(&[3, 0]);
        assert_eq!(p.column_at(0).name, "dept");
        assert_eq!(p.column_at(1).name, "id");
    }

    #[test]
    fn schema_serde_roundtrip() {
        let s = sample();
        let json = serde_json::to_string(&s).unwrap();
        let back: Schema = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
