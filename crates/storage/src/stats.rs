//! Table and column statistics: the raw material of cost-based optimization.
//!
//! `ANALYZE` (and the client upload path) walks a [`Table`] once and records,
//! per column: the row count, the NULL count, the minimum and maximum of the
//! plain comparable values, the average encoded width, and a distinct-count
//! estimate from a small HyperLogLog-style sketch ([`HllSketch`]). The
//! resulting [`TableStats`] live in the [`crate::Catalog`] next to the table
//! itself; the engine's optimizer reads them to estimate cardinalities and to
//! order joins.
//!
//! Statistics are a *snapshot*: inserts after an analyze do not update them
//! (the optimizer treats them as estimates, never as truth), and dropping or
//! replacing a table discards its stats. Encrypted columns are counted like
//! any other, but their min/max stay `None` (shares are not comparable) and
//! their distinct estimate approaches the row count (randomised encryption
//! makes every share unique) — honest answers for what the SP can actually
//! see.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

use crate::{Table, Value};

/// Number of HyperLogLog registers (2^8). The standard error of the estimate
/// is ~`1.04 / sqrt(256)` ≈ 6.5%, plenty for join-ordering decisions at a
/// 256-byte footprint per column.
const HLL_REGISTERS: usize = 256;

/// Register-index bits (`log2(HLL_REGISTERS)`).
const HLL_INDEX_BITS: u32 = 8;

/// A small HyperLogLog sketch estimating the number of distinct values.
///
/// Values are fed as 64-bit hashes; the top `HLL_INDEX_BITS` select a
/// register and the register keeps the maximum leading-zero rank of the
/// remaining bits. Sketches of disjoint scans [`merge`](HllSketch::merge) by
/// taking the register-wise maximum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HllSketch {
    registers: Vec<u8>,
}

impl Default for HllSketch {
    fn default() -> Self {
        HllSketch::new()
    }
}

impl HllSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        HllSketch {
            registers: vec![0; HLL_REGISTERS],
        }
    }

    /// Feeds one pre-hashed value.
    pub fn insert_hash(&mut self, hash: u64) {
        let index = (hash >> (64 - HLL_INDEX_BITS)) as usize;
        // Rank = leading zeros of the remaining bits, 1-based, capped so it
        // fits a u8 register.
        let rest = hash << HLL_INDEX_BITS;
        let rank = (rest.leading_zeros() + 1).min(64 - HLL_INDEX_BITS + 1) as u8;
        if rank > self.registers[index] {
            self.registers[index] = rank;
        }
    }

    /// Feeds one runtime value (NULLs should be skipped by the caller).
    pub fn insert_value(&mut self, value: &Value) {
        let mut hasher = DefaultHasher::new();
        hash_value(value, &mut hasher);
        self.insert_hash(hasher.finish());
    }

    /// The estimated number of distinct values fed so far.
    pub fn estimate(&self) -> f64 {
        let m = HLL_REGISTERS as f64;
        // Bias-correction constant for m = 256.
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        if raw <= 2.5 * m && zeros > 0 {
            // Small-range correction: linear counting is more accurate here.
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// Merges another sketch (register-wise maximum): the result estimates
    /// the distinct count of the union of both inputs.
    pub fn merge(&mut self, other: &HllSketch) {
        for (mine, theirs) in self.registers.iter_mut().zip(&other.registers) {
            *mine = (*mine).max(*theirs);
        }
    }
}

/// Hashes a value for distinct counting. Numerics are normalised to a common
/// scale first so `1`, `1.0` and `1.00` count as one distinct value (matching
/// the engine's join-key canonicalisation).
fn hash_value(value: &Value, hasher: &mut DefaultHasher) {
    match value {
        Value::Null => 0u8.hash(hasher),
        Value::Int(_) | Value::Decimal { .. } | Value::Date(_) | Value::Bool(_) => {
            1u8.hash(hasher);
            match value.as_scaled_i128(4) {
                Ok(v) => v.hash(hasher),
                Err(_) => value.render().hash(hasher),
            }
        }
        Value::Str(s) => {
            2u8.hash(hasher);
            s.hash(hasher);
        }
        Value::Tag(t) => {
            3u8.hash(hasher);
            t.hash(hasher);
        }
        other => {
            4u8.hash(hasher);
            other.render().hash(hasher);
        }
    }
}

/// Statistics for one column of an analyzed table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Column name (unqualified, as stored in the table schema).
    pub name: String,
    /// Number of NULL values.
    pub null_count: usize,
    /// Estimated number of distinct non-NULL values.
    pub distinct: f64,
    /// Minimum non-NULL value, for plain comparable types only.
    pub min: Option<Value>,
    /// Maximum non-NULL value, for plain comparable types only.
    pub max: Option<Value>,
    /// Average approximate width of a value in bytes.
    pub avg_width: f64,
}

impl ColumnStats {
    /// Fraction of rows that are NULL in this column.
    pub fn null_fraction(&self, row_count: usize) -> f64 {
        if row_count == 0 {
            0.0
        } else {
            self.null_count as f64 / row_count as f64
        }
    }
}

/// Statistics for one analyzed table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableStats {
    /// Table name (lower-cased, as registered in the catalog).
    pub table: String,
    /// Number of rows at analyze time.
    pub row_count: usize,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Looks up a column's statistics by (unqualified, case-insensitive)
    /// name.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Estimated average row width in bytes.
    pub fn avg_row_width(&self) -> f64 {
        self.columns.iter().map(|c| c.avg_width).sum()
    }
}

/// True for the types whose values the planner may meaningfully compare (and
/// therefore record min/max for).
fn comparable(value: &Value) -> bool {
    matches!(
        value,
        Value::Int(_) | Value::Decimal { .. } | Value::Str(_) | Value::Date(_) | Value::Bool(_)
    )
}

/// Analyzes a table in one pass: row count plus per-column NULL counts,
/// min/max over plain comparable values, average widths and an
/// [`HllSketch`]-based distinct estimate.
pub fn analyze_table(table: &Table) -> TableStats {
    let rows = table.num_rows();
    let columns = table
        .schema()
        .columns()
        .iter()
        .map(|def| {
            let column = table
                .column(&def.name)
                .expect("schema columns exist by construction");
            let mut null_count = 0usize;
            let mut sketch = HllSketch::new();
            let mut min: Option<Value> = None;
            let mut max: Option<Value> = None;
            let mut width = 0usize;
            for value in column.values() {
                width += value.approx_size();
                if value.is_null() {
                    null_count += 1;
                    continue;
                }
                sketch.insert_value(value);
                if comparable(value) {
                    let smaller = min
                        .as_ref()
                        .map(|m| value.cmp_total(m) == std::cmp::Ordering::Less)
                        .unwrap_or(true);
                    if smaller {
                        min = Some(value.clone());
                    }
                    let bigger = max
                        .as_ref()
                        .map(|m| value.cmp_total(m) == std::cmp::Ordering::Greater)
                        .unwrap_or(true);
                    if bigger {
                        max = Some(value.clone());
                    }
                }
            }
            let non_null = rows - null_count;
            // The sketch cannot report more distinct values than were fed.
            let distinct = sketch.estimate().min(non_null as f64);
            ColumnStats {
                name: def.name.clone(),
                null_count,
                distinct,
                min,
                max,
                avg_width: if rows == 0 {
                    0.0
                } else {
                    width as f64 / rows as f64
                },
            }
        })
        .collect();
    TableStats {
        table: table.name().to_string(),
        row_count: rows,
        columns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnDef, DataType, Schema};

    #[test]
    fn hll_is_exactish_for_small_cardinalities() {
        let mut sketch = HllSketch::new();
        for i in 0..50 {
            sketch.insert_value(&Value::Int(i));
            sketch.insert_value(&Value::Int(i)); // duplicates are free
        }
        let est = sketch.estimate();
        assert!(
            (est - 50.0).abs() / 50.0 < 0.10,
            "linear-counting range should be close, got {est}"
        );
    }

    #[test]
    fn hll_error_stays_within_bounds_at_larger_cardinalities() {
        // Standard error for 256 registers is ~6.5%; assert a generous 3-sigma
        // bound so the test is deterministic-hash-stable, not flaky.
        for &n in &[1_000usize, 10_000, 50_000] {
            let mut sketch = HllSketch::new();
            for i in 0..n {
                sketch.insert_value(&Value::Str(format!("value-{i}")));
            }
            let est = sketch.estimate();
            let err = (est - n as f64).abs() / n as f64;
            assert!(err < 0.20, "estimate {est} for {n} distinct (err {err:.3})");
        }
    }

    #[test]
    fn hll_merge_estimates_the_union() {
        let mut a = HllSketch::new();
        let mut b = HllSketch::new();
        for i in 0..2_000 {
            a.insert_value(&Value::Int(i));
            b.insert_value(&Value::Int(i + 1_000)); // half overlaps
        }
        a.merge(&b);
        let est = a.estimate();
        let err = (est - 3_000.0).abs() / 3_000.0;
        assert!(err < 0.20, "union estimate {est} (err {err:.3})");
    }

    #[test]
    fn numeric_normalisation_dedupes_across_scales() {
        let mut sketch = HllSketch::new();
        sketch.insert_value(&Value::Int(1));
        sketch.insert_value(&Value::Decimal {
            units: 100,
            scale: 2,
        });
        assert!(sketch.estimate() < 1.5, "1 and 1.00 are one distinct value");
    }

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::public("id", DataType::Int),
            ColumnDef::public("grp", DataType::Int),
            ColumnDef::public("name", DataType::Varchar),
        ]);
        let mut t = Table::new("s", schema);
        for i in 0..100i64 {
            let name = if i % 10 == 0 {
                Value::Null
            } else {
                Value::Str(format!("n{}", i % 7))
            };
            t.insert_row(vec![Value::Int(i), Value::Int(i % 4), name])
                .unwrap();
        }
        t
    }

    #[test]
    fn analyze_collects_counts_bounds_and_distincts() {
        let stats = analyze_table(&sample_table());
        assert_eq!(stats.row_count, 100);
        assert_eq!(stats.columns.len(), 3);

        let id = stats.column("id").unwrap();
        assert_eq!(id.null_count, 0);
        assert_eq!(id.min, Some(Value::Int(0)));
        assert_eq!(id.max, Some(Value::Int(99)));
        assert!((id.distinct - 100.0).abs() < 10.0, "{}", id.distinct);

        let grp = stats.column("grp").unwrap();
        assert!((grp.distinct - 4.0).abs() < 1.0, "{}", grp.distinct);

        let name = stats.column("name").unwrap();
        assert_eq!(name.null_count, 10);
        assert!((name.null_fraction(100) - 0.1).abs() < 1e-9);
        assert!((name.distinct - 7.0).abs() < 1.5, "{}", name.distinct);
        assert!(name.avg_width > 0.0);
        assert!(stats.avg_row_width() > 0.0);
    }

    #[test]
    fn analyze_of_empty_table_is_all_zeroes() {
        let schema = Schema::new(vec![ColumnDef::public("a", DataType::Int)]);
        let stats = analyze_table(&Table::new("e", schema));
        assert_eq!(stats.row_count, 0);
        let a = stats.column("a").unwrap();
        assert_eq!(a.null_count, 0);
        assert_eq!(a.distinct, 0.0);
        assert!(a.min.is_none() && a.max.is_none());
    }

    #[test]
    fn distinct_estimate_never_exceeds_fed_rows() {
        let schema = Schema::new(vec![ColumnDef::public("a", DataType::Int)]);
        let mut t = Table::new("t", schema);
        for i in 0..3 {
            t.insert_row(vec![Value::Int(i)]).unwrap();
        }
        let stats = analyze_table(&t);
        assert!(stats.column("a").unwrap().distinct <= 3.0);
    }

    #[test]
    fn stats_serde_roundtrip() {
        let stats = analyze_table(&sample_table());
        let json = serde_json::to_string(&stats).unwrap();
        let back: TableStats = serde_json::from_str(&json).unwrap();
        assert_eq!(stats, back);
    }
}
