//! The catalog: a thread-safe registry of tables, shared between the storage layer
//! and the execution engine.
//!
//! Alongside the tables themselves the catalog stores their optimizer
//! statistics ([`TableStats`]) — populated by the `ANALYZE` path (the client
//! upload path analyzes automatically), dropped with the table, and read by
//! the engine's cost-based planner.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::stats::{analyze_table, TableStats};
use crate::{Result, Schema, StorageError, Table};

/// A shared handle to a stored table.
pub type TableHandle = Arc<RwLock<Table>>;

/// Thread-safe table registry.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<BTreeMap<String, TableHandle>>,
    /// Optimizer statistics per table, keyed like `tables`.
    stats: RwLock<BTreeMap<String, Arc<TableStats>>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Creates a new empty table, failing if the name is taken.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<TableHandle> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(StorageError::TableAlreadyExists { name: key });
        }
        let handle = Arc::new(RwLock::new(Table::new(&key, schema)));
        tables.insert(key, handle.clone());
        Ok(handle)
    }

    /// Registers an already-populated table, failing if the name is taken.
    pub fn register_table(&self, table: Table) -> Result<TableHandle> {
        let key = table.name().to_string();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(StorageError::TableAlreadyExists { name: key });
        }
        let handle = Arc::new(RwLock::new(table));
        tables.insert(key, handle.clone());
        Ok(handle)
    }

    /// Replaces (or inserts) a table unconditionally. Any statistics for the
    /// old table are discarded.
    pub fn register_or_replace(&self, table: Table) -> TableHandle {
        let key = table.name().to_string();
        let handle = Arc::new(RwLock::new(table));
        self.stats.write().remove(&key);
        self.tables.write().insert(key, handle.clone());
        handle
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Result<TableHandle> {
        let key = name.to_ascii_lowercase();
        self.tables
            .read()
            .get(&key)
            .cloned()
            .ok_or(StorageError::TableNotFound { name: key })
    }

    /// Drops a table (and its statistics).
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.write().remove(&key).is_none() {
            return Err(StorageError::TableNotFound { name: key });
        }
        self.stats.write().remove(&key);
        Ok(())
    }

    /// Analyzes one table and stores its statistics, returning them.
    pub fn analyze(&self, name: &str) -> Result<Arc<TableStats>> {
        let handle = self.table(name)?;
        let stats = Arc::new(analyze_table(&handle.read()));
        self.stats
            .write()
            .insert(stats.table.clone(), Arc::clone(&stats));
        Ok(stats)
    }

    /// Analyzes every registered table, returning the statistics in table
    /// name order.
    pub fn analyze_all(&self) -> Result<Vec<Arc<TableStats>>> {
        self.table_names()
            .into_iter()
            .map(|name| self.analyze(&name))
            .collect()
    }

    /// The stored statistics for a table, if it has been analyzed.
    pub fn table_stats(&self, name: &str) -> Option<Arc<TableStats>> {
        self.stats.read().get(&name.to_ascii_lowercase()).cloned()
    }

    /// Stores externally-computed statistics (tests, replication).
    pub fn put_stats(&self, stats: TableStats) {
        self.stats
            .write()
            .insert(stats.table.clone(), Arc::new(stats));
    }

    /// Discards a table's statistics without touching the table.
    pub fn clear_stats(&self, name: &str) {
        self.stats.write().remove(&name.to_ascii_lowercase());
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.read().len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.read().is_empty()
    }

    /// Total approximate storage footprint across all tables.
    pub fn approx_size_bytes(&self) -> usize {
        self.tables
            .read()
            .values()
            .map(|t| t.read().approx_size_bytes())
            .sum()
    }

    /// Snapshot of all tables (cloned), used by persistence.
    pub fn snapshot(&self) -> Vec<Table> {
        self.tables
            .read()
            .values()
            .map(|t| t.read().clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnDef, DataType, Value};

    fn schema() -> Schema {
        Schema::new(vec![ColumnDef::public("id", DataType::Int)])
    }

    #[test]
    fn create_lookup_drop() {
        let cat = Catalog::new();
        cat.create_table("t1", schema()).unwrap();
        assert!(cat.table("T1").is_ok());
        assert_eq!(cat.table_names(), vec!["t1"]);
        assert!(cat.create_table("t1", schema()).is_err());
        cat.drop_table("t1").unwrap();
        assert!(cat.table("t1").is_err());
        assert!(cat.drop_table("t1").is_err());
    }

    #[test]
    fn register_and_mutate_through_handle() {
        let cat = Catalog::new();
        let handle = cat.create_table("t", schema()).unwrap();
        handle.write().insert_row(vec![Value::Int(7)]).unwrap();
        assert_eq!(cat.table("t").unwrap().read().num_rows(), 1);
    }

    #[test]
    fn register_or_replace_overwrites() {
        let cat = Catalog::new();
        cat.create_table("t", schema()).unwrap();
        let mut replacement = Table::new("t", schema());
        replacement.insert_row(vec![Value::Int(1)]).unwrap();
        cat.register_or_replace(replacement);
        assert_eq!(cat.table("t").unwrap().read().num_rows(), 1);
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn concurrent_access() {
        use std::thread;
        let cat = Arc::new(Catalog::new());
        let handle = cat.create_table("shared", schema()).unwrap();
        let mut joins = vec![];
        for i in 0..8 {
            let h = handle.clone();
            joins.push(thread::spawn(move || {
                for j in 0..100 {
                    h.write().insert_row(vec![Value::Int(i * 100 + j)]).unwrap();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(handle.read().num_rows(), 800);
    }

    #[test]
    fn analyze_stores_and_invalidation_clears_stats() {
        let cat = Catalog::new();
        let handle = cat.create_table("t", schema()).unwrap();
        for i in 0..10 {
            handle.write().insert_row(vec![Value::Int(i)]).unwrap();
        }
        assert!(cat.table_stats("t").is_none(), "no stats before ANALYZE");
        let stats = cat.analyze("t").unwrap();
        assert_eq!(stats.row_count, 10);
        assert_eq!(cat.table_stats("T").unwrap().row_count, 10);

        // Replacing the table discards the stale statistics.
        cat.register_or_replace(Table::new("t", schema()));
        assert!(cat.table_stats("t").is_none());

        // Dropping does too.
        cat.analyze("t").unwrap();
        cat.drop_table("t").unwrap();
        assert!(cat.table_stats("t").is_none());
        assert!(cat.analyze("t").is_err(), "missing tables fail to analyze");
    }

    #[test]
    fn analyze_all_covers_every_table() {
        let cat = Catalog::new();
        cat.create_table("a", schema()).unwrap();
        cat.create_table("b", schema()).unwrap();
        let all = cat.analyze_all().unwrap();
        assert_eq!(all.len(), 2);
        assert!(cat.table_stats("a").is_some() && cat.table_stats("b").is_some());
    }

    #[test]
    fn snapshot_is_deep() {
        let cat = Catalog::new();
        let handle = cat.create_table("t", schema()).unwrap();
        handle.write().insert_row(vec![Value::Int(1)]).unwrap();
        let snap = cat.snapshot();
        handle.write().insert_row(vec![Value::Int(2)]).unwrap();
        assert_eq!(snap[0].num_rows(), 1);
    }
}
