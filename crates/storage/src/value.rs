//! Runtime values and their data types.
//!
//! Plain (insensitive) values use ordinary SQL types. Sensitive data appears in one
//! of three encrypted forms, mirroring what the SP stores in the paper:
//!
//! * [`Value::Encrypted`] — a secret share `v_e ∈ Z_n` (paper Eq. 3);
//! * [`Value::EncryptedRowId`] — a row id under the conventional row-id cipher;
//! * [`Value::Tag`] — a keyed deterministic equality tag (optional mode, E7).

use std::cmp::Ordering;
use std::fmt;

use num_bigint::BigUint;
use sdb_crypto::EncryptedRowId;
use serde::{Deserialize, Serialize};

use crate::{Result, StorageError};

/// Logical data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// Fixed-point decimal stored as a scaled 64-bit integer; `scale` is the number
    /// of digits after the decimal point (TPC-H uses 2).
    Decimal {
        /// Digits after the decimal point.
        scale: u8,
    },
    /// UTF-8 string.
    Varchar,
    /// Date as days since 1970-01-01.
    Date,
    /// Boolean.
    Bool,
    /// An SDB secret share (residue modulo the public `n`).
    Encrypted,
    /// An encrypted row id.
    EncryptedRowId,
    /// A deterministic equality tag.
    Tag,
}

impl DataType {
    /// True for the three encrypted representations.
    pub fn is_encrypted(&self) -> bool {
        matches!(
            self,
            DataType::Encrypted | DataType::EncryptedRowId | DataType::Tag
        )
    }

    /// True for types the plaintext expression evaluator can do arithmetic on.
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int | DataType::Decimal { .. })
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Decimal { scale } => write!(f, "DECIMAL({scale})"),
            DataType::Varchar => write!(f, "VARCHAR"),
            DataType::Date => write!(f, "DATE"),
            DataType::Bool => write!(f, "BOOL"),
            DataType::Encrypted => write!(f, "ENCRYPTED"),
            DataType::EncryptedRowId => write!(f, "ENC_ROW_ID"),
            DataType::Tag => write!(f, "TAG"),
        }
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// Fixed-point decimal: the scaled integer representation. The scale lives in
    /// the column's [`DataType::Decimal`]; a standalone literal carries its scale.
    Decimal {
        /// Scaled integer units (e.g. cents for scale 2).
        units: i64,
        /// Digits after the decimal point.
        scale: u8,
    },
    /// UTF-8 string.
    Str(String),
    /// Days since the Unix epoch.
    Date(i32),
    /// Boolean.
    Bool(bool),
    /// SDB secret share.
    Encrypted(BigUint),
    /// Encrypted row id.
    EncryptedRowId(EncryptedRowId),
    /// Deterministic equality tag.
    Tag(u64),
}

impl Value {
    /// The value's runtime data type, or `None` for NULL (which is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Decimal { scale, .. } => Some(DataType::Decimal { scale: *scale }),
            Value::Str(_) => Some(DataType::Varchar),
            Value::Date(_) => Some(DataType::Date),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Encrypted(_) => Some(DataType::Encrypted),
            Value::EncryptedRowId(_) => Some(DataType::EncryptedRowId),
            Value::Tag(_) => Some(DataType::Tag),
        }
    }

    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True if the value is stored in one of the encrypted representations.
    pub fn is_encrypted(&self) -> bool {
        self.data_type().map(|t| t.is_encrypted()).unwrap_or(false)
    }

    /// Checks that the value may be stored in a column of type `expected`.
    /// NULL is storable in any column.
    pub fn check_type(&self, expected: DataType) -> Result<()> {
        match (self.data_type(), expected) {
            (None, _) => Ok(()),
            (Some(DataType::Int), DataType::Decimal { .. }) => Ok(()),
            (Some(actual), exp) if actual == exp => Ok(()),
            (Some(actual), exp) => Err(StorageError::TypeMismatch {
                expected: exp.to_string(),
                found: actual.to_string(),
            }),
        }
    }

    /// Extracts an `i64`, widening decimals to their scaled units.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Decimal { units, .. } => Ok(*units),
            Value::Date(d) => Ok(i64::from(*d)),
            Value::Bool(b) => Ok(i64::from(*b)),
            other => Err(StorageError::TypeMismatch {
                expected: "numeric".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    /// Extracts the numeric value as an `i128` in *common units* for the given
    /// target scale: integers and decimals are rescaled so that arithmetic across
    /// `INT` and `DECIMAL(s)` is exact.
    pub fn as_scaled_i128(&self, target_scale: u8) -> Result<i128> {
        let (units, scale) = match self {
            Value::Int(v) => (i128::from(*v), 0u8),
            Value::Decimal { units, scale } => (i128::from(*units), *scale),
            Value::Date(d) => (i128::from(*d), 0u8),
            Value::Bool(b) => (i128::from(*b), 0u8),
            other => {
                return Err(StorageError::TypeMismatch {
                    expected: "numeric".into(),
                    found: format!("{other:?}"),
                })
            }
        };
        let diff = i32::from(target_scale) - i32::from(scale);
        Ok(match diff.cmp(&0) {
            Ordering::Equal => units,
            Ordering::Greater => units * 10i128.pow(diff as u32),
            Ordering::Less => units / 10i128.pow((-diff) as u32),
        })
    }

    /// Extracts a string reference.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(StorageError::TypeMismatch {
                expected: "VARCHAR".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    /// Extracts a boolean.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(StorageError::TypeMismatch {
                expected: "BOOL".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    /// Extracts an encrypted share.
    pub fn as_encrypted(&self) -> Result<&BigUint> {
        match self {
            Value::Encrypted(e) => Ok(e),
            other => Err(StorageError::TypeMismatch {
                expected: "ENCRYPTED".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    /// Extracts an encrypted row id.
    pub fn as_encrypted_row_id(&self) -> Result<&EncryptedRowId> {
        match self {
            Value::EncryptedRowId(r) => Ok(r),
            other => Err(StorageError::TypeMismatch {
                expected: "ENC_ROW_ID".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    /// Builds a decimal from a float-like pair (integer part, hundredths) — used by
    /// the workload generator. Prefer [`Value::decimal_from_units`] where exactness
    /// matters.
    pub fn decimal_from_units(units: i64, scale: u8) -> Value {
        Value::Decimal { units, scale }
    }

    /// Rough serialised size in bytes, used for storage accounting and the
    /// memory-budget bookkeeping of the spilling operators.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Decimal { .. } => 9,
            Value::Str(s) => s.len() + 4,
            Value::Date(_) => 4,
            Value::Bool(_) => 1,
            Value::Encrypted(e) => (e.bits() as usize).div_ceil(8) + 4,
            Value::EncryptedRowId(r) => r.size_bytes(),
            Value::Tag(_) => 8,
        }
    }

    /// Renders the value the way the CLI / examples print result rows.
    pub fn render(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(v) => v.to_string(),
            Value::Decimal { units, scale } => {
                if *scale == 0 {
                    units.to_string()
                } else {
                    let divisor = 10i64.pow(u32::from(*scale));
                    let sign = if *units < 0 { "-" } else { "" };
                    let abs = units.unsigned_abs();
                    let int_part = abs / divisor.unsigned_abs();
                    let frac = abs % divisor.unsigned_abs();
                    format!(
                        "{sign}{int_part}.{frac:0width$}",
                        width = usize::from(*scale)
                    )
                }
            }
            Value::Str(s) => s.clone(),
            Value::Date(d) => format!("date#{d}"),
            Value::Bool(b) => b.to_string(),
            Value::Encrypted(e) => format!(
                "ENC[{}…]",
                e.to_string().chars().take(12).collect::<String>()
            ),
            Value::EncryptedRowId(_) => "ENC_ROW_ID[…]".to_string(),
            Value::Tag(t) => format!("TAG[{t:x}]"),
        }
    }

    /// Total-order comparison used by ORDER BY and MIN/MAX over *plaintext* values.
    /// NULLs sort first; cross-type comparisons fall back to a stable type ordering.
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (
                Int(_) | Decimal { .. } | Date(_) | Bool(_),
                Int(_) | Decimal { .. } | Date(_) | Bool(_),
            ) => {
                let scale = self.numeric_scale().max(other.numeric_scale());
                let a = self.as_scaled_i128(scale).unwrap_or(i128::MIN);
                let b = other.as_scaled_i128(scale).unwrap_or(i128::MIN);
                a.cmp(&b)
            }
            (Str(a), Str(b)) => a.cmp(b),
            (Encrypted(a), Encrypted(b)) => a.cmp(b),
            (Tag(a), Tag(b)) => a.cmp(b),
            // Stable but arbitrary cross-type order.
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }

    fn numeric_scale(&self) -> u8 {
        match self {
            Value::Decimal { scale, .. } => *scale,
            _ => 0,
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Decimal { .. } => 3,
            Value::Date(_) => 4,
            Value::Str(_) => 5,
            Value::Tag(_) => 6,
            Value::Encrypted(_) => 7,
            Value::EncryptedRowId(_) => 8,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_types_classified() {
        assert!(DataType::Encrypted.is_encrypted());
        assert!(DataType::Tag.is_encrypted());
        assert!(!DataType::Int.is_encrypted());
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Decimal { scale: 2 }.is_numeric());
        assert!(!DataType::Varchar.is_numeric());
    }

    #[test]
    fn check_type_accepts_null_and_int_into_decimal() {
        assert!(Value::Null.check_type(DataType::Varchar).is_ok());
        assert!(Value::Int(5)
            .check_type(DataType::Decimal { scale: 2 })
            .is_ok());
        assert!(Value::Int(5).check_type(DataType::Int).is_ok());
        assert!(Value::Str("x".into()).check_type(DataType::Int).is_err());
    }

    #[test]
    fn scaled_arithmetic_bridges_int_and_decimal() {
        let price = Value::Decimal {
            units: 1299,
            scale: 2,
        }; // 12.99
        let qty = Value::Int(3);
        assert_eq!(price.as_scaled_i128(2).unwrap(), 1299);
        assert_eq!(qty.as_scaled_i128(2).unwrap(), 300);
        assert_eq!(price.as_scaled_i128(0).unwrap(), 12);
    }

    #[test]
    fn render_decimal() {
        assert_eq!(
            Value::Decimal {
                units: 1299,
                scale: 2
            }
            .render(),
            "12.99"
        );
        assert_eq!(
            Value::Decimal {
                units: -1299,
                scale: 2
            }
            .render(),
            "-12.99"
        );
        assert_eq!(Value::Decimal { units: 5, scale: 2 }.render(), "0.05");
        assert_eq!(Value::Decimal { units: 7, scale: 0 }.render(), "7");
    }

    #[test]
    fn total_order_handles_nulls_and_mixed_numerics() {
        let mut vals = [
            Value::Int(3),
            Value::Null,
            Value::Decimal {
                units: 250,
                scale: 2,
            }, // 2.50
            Value::Int(-1),
        ];
        vals.sort_by(|a, b| a.cmp_total(b));
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(-1));
        assert_eq!(
            vals[2],
            Value::Decimal {
                units: 250,
                scale: 2
            }
        );
        assert_eq!(vals[3], Value::Int(3));
    }

    #[test]
    fn string_ordering() {
        assert_eq!(
            Value::Str("apple".into()).cmp_total(&Value::Str("banana".into())),
            Ordering::Less
        );
    }

    #[test]
    fn encrypted_accessors() {
        let v = Value::Encrypted(BigUint::from(99u32));
        assert!(v.is_encrypted());
        assert_eq!(v.as_encrypted().unwrap(), &BigUint::from(99u32));
        assert!(Value::Int(1).as_encrypted().is_err());
    }

    #[test]
    fn value_serde_roundtrip() {
        let vals = vec![
            Value::Null,
            Value::Int(-7),
            Value::Decimal {
                units: 12345,
                scale: 2,
            },
            Value::Str("hello".into()),
            Value::Date(19000),
            Value::Bool(true),
            Value::Encrypted(BigUint::from(123456789u64)),
            Value::Tag(0xdeadbeef),
        ];
        let json = serde_json::to_string(&vals).unwrap();
        let back: Vec<Value> = serde_json::from_str(&json).unwrap();
        assert_eq!(vals, back);
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
