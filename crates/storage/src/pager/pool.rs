//! The fixed-capacity buffer pool of page frames and its spill files.
//!
//! Two layers live here:
//!
//! * [`BufferPool`] — the shared, bounded pool of page frames. One pool can
//!   back many concurrent queries; its capacity is a *global* budget.
//! * [`Pager`] — a per-query **lease** on a pool. Every page is owned by the
//!   lease that appended it; spill files, spill/eviction statistics and
//!   cleanup are all per-lease, so dropping a `Pager` (normally, on error,
//!   or on cancellation) releases every frame, disk slot and spill file the
//!   query created, no matter what the rest of the pool is doing.
//!
//! `Pager::new` creates a private pool with a single lease, which behaves
//! exactly like the historical single-query pager. `Pager::shared` joins an
//! existing pool, which is how the serving layer multiplexes sessions over
//! one global memory budget.
//!
//! ## Admission under concurrency
//!
//! Unpinned pages are evictable, so appends never block: the clock sweep
//! keeps residency at the budget. Pins are the hard case — a pinned frame
//! cannot be evicted, so concurrent pinners could jointly overshoot the
//! global limit without coordination. The pool therefore tracks pinned
//! bytes per lease and applies an *oldest-lease-proceeds* rule: a pin that
//! would push total pinned bytes past capacity waits (polling its
//! [`CancelToken`]) unless the pinning lease is the oldest active lease or
//! no other lease currently holds pins. The oldest lease never waits, so
//! there is no deadlock and every waiter eventually becomes oldest; a pool
//! with a single lease never waits at all, preserving the historical
//! soft-bound behaviour for standalone queries.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use super::{codec, MemoryBudget};
use crate::{CancelToken, RecordBatch, Result, StorageError};

/// How long a blocked pinner sleeps between admission re-checks. Short
/// enough that admission latency is dominated by the holder's work, long
/// enough not to spin.
const ADMISSION_POLL: Duration = Duration::from_micros(200);

/// A pager activity event, delivered to the registered observer as it
/// happens (the engine's tracing layer attaches these to operator spans).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagerEvent {
    /// A dirty page was encoded and appended to a spill file.
    SpillWrite {
        /// Encoded bytes written.
        bytes: usize,
    },
    /// An evicted page was read back and decoded from a spill file.
    SpillRead {
        /// Encoded bytes read.
        bytes: usize,
    },
    /// A page was dropped from the pool (spilled-dirty or already clean).
    Evict,
}

/// Observer callback receiving [`PagerEvent`]s; must be cheap and must not
/// call back into the pager (it runs under the pool lock). Events are
/// delivered to the lease *performing* the operation that caused them.
pub type PagerObserver = Arc<dyn Fn(PagerEvent) + Send + Sync>;

/// Shorthand for the borrowed observer threaded through pool internals.
type Notify<'a> = Option<&'a (dyn Fn(PagerEvent) + Send + Sync)>;

/// Opaque handle to a page owned by a [`Pager`] lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageId(u64);

/// Counters describing a lease's spill and eviction activity, surfaced
/// through the engine's execution statistics. Attribution follows page
/// *ownership*: if global pressure from another query evicts this lease's
/// dirty page, the spill is charged here, because this lease pays the
/// fault-in later.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerStats {
    /// Dirty pages encoded and written to the lease's spill file.
    pub pages_spilled: usize,
    /// Encoded bytes written to the lease's spill file.
    pub spill_bytes_written: usize,
    /// Encoded bytes read back from the lease's spill file.
    pub spill_bytes_read: usize,
    /// Pages dropped from the pool (spilled-dirty or already-clean).
    pub pages_evicted: usize,
    /// Most pages of this lease resident in the pool at any one time.
    pub peak_resident_pages: usize,
}

/// A resident page frame.
struct Frame {
    batch: Arc<RecordBatch>,
    /// Approximate resident size, fixed at admission.
    bytes: usize,
    /// Lease that owns (created) this page.
    owner: u64,
    /// Not yet written to the spill file.
    dirty: bool,
    /// Pin count; pinned frames are never evicted.
    pins: usize,
    /// Clock reference bit: set on access, cleared by a passing hand.
    referenced: bool,
}

/// Location of an encoded page in its owner's spill file.
#[derive(Clone, Copy)]
struct DiskSlot {
    owner: u64,
    offset: u64,
    len: usize,
}

/// Per-lease pool state: statistics, spill file, residency accounting.
#[derive(Default)]
struct LeaseState {
    stats: PagerStats,
    spill: Option<SpillFile>,
    /// Frames owned by this lease currently resident.
    resident_pages: usize,
    /// Bytes of this lease's frames currently resident.
    resident_bytes: usize,
    /// Bytes of this lease's frames currently pinned (counted once per
    /// frame while `pins > 0`).
    pinned_bytes: usize,
    /// Per-lease resident-byte bound (the query's budget *share*): when
    /// exceeded, this lease's own unpinned pages are evicted even if the
    /// pool as a whole has room. `None` = bounded only by pool capacity.
    quota: Option<usize>,
    /// Whether this lease is currently parked in pin admission. Feeds the
    /// deadlock backstop in `may_pin`: when every *other* pin-holding lease
    /// is itself waiting, nobody can release pins, so the oldest waiter is
    /// granted rather than wedging the pool.
    waiting_for_pin: bool,
}

impl LeaseState {
    /// Whether this lease currently holds more resident bytes than its
    /// quota allows.
    fn over_quota(&self) -> bool {
        self.quota.is_some_and(|q| self.resident_bytes > q)
    }
}

/// The pool state behind the mutex.
struct PoolInner {
    frames: HashMap<u64, Frame>,
    disk: HashMap<u64, DiskSlot>,
    /// Resident page ids in clock order, swept by `hand`.
    clock: Vec<u64>,
    hand: usize,
    resident_bytes: usize,
    /// High-water mark of `resident_bytes`, sampled after each operation's
    /// eviction pass settles (so a transient admit-then-evict within one
    /// locked operation does not register).
    peak_resident_bytes: usize,
    /// Total bytes pinned across all leases.
    pinned_bytes: usize,
    next_page: u64,
    next_lease: u64,
    leases: HashMap<u64, LeaseState>,
}

/// A bounded, shareable buffer pool of [`RecordBatch`] pages with clock
/// eviction, per-lease spill-to-disk and reservation-aware pin admission.
/// See the [module docs](super) for the design.
///
/// Queries do not use a `BufferPool` directly — they hold a [`Pager`] lease
/// created with [`Pager::new`] (private pool) or [`Pager::shared`] (joining
/// a global pool).
pub struct BufferPool {
    capacity: Option<usize>,
    spill_dir: PathBuf,
    inner: Mutex<PoolInner>,
}

impl BufferPool {
    /// Creates an empty pool bounded by `budget`. No spill file is created
    /// until the first eviction of a dirty page.
    pub fn new(budget: &MemoryBudget) -> Self {
        BufferPool {
            capacity: budget.limit(),
            spill_dir: budget.spill_dir(),
            inner: Mutex::new(PoolInner {
                frames: HashMap::new(),
                disk: HashMap::new(),
                clock: Vec::new(),
                hand: 0,
                resident_bytes: 0,
                peak_resident_bytes: 0,
                pinned_bytes: 0,
                next_page: 0,
                next_lease: 0,
                leases: HashMap::new(),
            }),
        }
    }

    /// The pool's byte capacity (`None` = unlimited).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Bytes of decoded pages currently resident across all leases.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().resident_bytes
    }

    /// Pages currently resident across all leases.
    pub fn resident_pages(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// High-water mark of resident bytes, sampled after each operation's
    /// eviction pass. Under a limited budget this never exceeds capacity
    /// plus one page unless pinned bytes alone force it higher.
    pub fn peak_resident_bytes(&self) -> usize {
        self.inner.lock().peak_resident_bytes
    }

    /// Bytes currently pinned across all leases.
    pub fn pinned_bytes(&self) -> usize {
        self.inner.lock().pinned_bytes
    }

    /// Number of active leases (live [`Pager`] handles on this pool).
    pub fn lease_count(&self) -> usize {
        self.inner.lock().leases.len()
    }

    /// Number of spill files currently on disk (at most one per lease;
    /// deleted when their lease drops).
    pub fn spill_file_count(&self) -> usize {
        self.inner
            .lock()
            .leases
            .values()
            .filter(|l| l.spill.is_some())
            .count()
    }

    /// Paths of all live spill files (tests assert these disappear when the
    /// owning lease drops).
    pub fn spill_paths(&self) -> Vec<PathBuf> {
        self.inner
            .lock()
            .leases
            .values()
            .filter_map(|l| l.spill.as_ref().map(|s| s.path.clone()))
            .collect()
    }

    fn register_lease(&self) -> u64 {
        let mut inner = self.inner.lock();
        let id = inner.next_lease;
        inner.next_lease += 1;
        inner.leases.insert(id, LeaseState::default());
        id
    }

    /// Releases everything a lease owns: resident frames, disk slots and
    /// the spill file (deleted on drop of its handle).
    fn drop_lease(&self, lease: u64) {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let owned: Vec<u64> = inner
            .frames
            .iter()
            .filter(|(_, f)| f.owner == lease)
            .map(|(&id, _)| id)
            .collect();
        for id in owned {
            let frame = inner.frames.remove(&id).expect("listed above");
            inner.resident_bytes -= frame.bytes;
            if frame.pins > 0 {
                // Unreachable in safe use (pins hold the lease alive), but
                // keep the global account consistent regardless.
                inner.pinned_bytes = inner.pinned_bytes.saturating_sub(frame.bytes);
            }
        }
        inner.disk.retain(|_, slot| slot.owner != lease);
        let frames = &inner.frames;
        inner.clock.retain(|id| frames.contains_key(id));
        inner.hand = 0;
        inner.leases.remove(&lease);
    }

    fn append_page(&self, lease: u64, batch: RecordBatch, notify: Notify<'_>) -> Result<PageId> {
        let mut inner = self.inner.lock();
        let id = inner.next_page;
        inner.next_page += 1;
        let bytes = batch.approx_size_bytes().max(1);
        inner.frames.insert(
            id,
            Frame {
                batch: Arc::new(batch),
                bytes,
                owner: lease,
                dirty: true,
                pins: 0,
                referenced: true,
            },
        );
        inner.clock.push(id);
        inner.resident_bytes += bytes;
        let state = self.lease_mut(&mut inner, lease);
        state.resident_pages += 1;
        state.resident_bytes += bytes;
        self.evict_to_capacity(&mut inner, notify)?;
        self.settle(&mut inner);
        Ok(PageId(id))
    }

    /// Pins a page for `lease`, waiting for pin admission when the pool's
    /// pinned bytes are at capacity (see the module docs for the
    /// oldest-lease-proceeds rule). `cancel` is polled while waiting.
    fn pin_blocking(
        &self,
        lease: u64,
        id: PageId,
        cancel: &CancelToken,
        notify: Notify<'_>,
    ) -> Result<Arc<RecordBatch>> {
        loop {
            {
                let mut inner = self.inner.lock();
                // Bytes this pin would add to the pinned total: nothing if
                // the frame is already pinned, its resident size if loaded,
                // its encoded size as the best estimate if spilled.
                let incoming = if let Some(frame) = inner.frames.get(&id.0) {
                    if frame.pins > 0 {
                        0
                    } else {
                        frame.bytes
                    }
                } else if let Some(slot) = inner.disk.get(&id.0) {
                    slot.len.max(1)
                } else {
                    return Err(StorageError::Invalid {
                        detail: format!("unknown page {id:?}"),
                    });
                };
                if self.may_pin(&inner, lease, incoming) {
                    self.lease_mut(&mut inner, lease).waiting_for_pin = false;
                    self.fault_in(&mut inner, id, notify)?;
                    let frame = inner.frames.get_mut(&id.0).expect("faulted in above");
                    if frame.pins == 0 {
                        let bytes = frame.bytes;
                        let owner = frame.owner;
                        inner.pinned_bytes += bytes;
                        self.lease_mut(&mut inner, owner).pinned_bytes += bytes;
                    }
                    let frame = inner.frames.get_mut(&id.0).expect("faulted in above");
                    frame.pins += 1;
                    frame.referenced = true;
                    let batch = Arc::clone(&frame.batch);
                    // Evict only after taking the pin, so a fault under
                    // pressure can never throw its own page back out.
                    self.evict_to_capacity(&mut inner, notify)?;
                    self.settle(&mut inner);
                    return Ok(batch);
                }
                self.lease_mut(&mut inner, lease).waiting_for_pin = true;
            }
            cancel.check()?;
            std::thread::sleep(ADMISSION_POLL);
        }
    }

    /// Whether `lease` may take a pin adding `incoming` pinned bytes now.
    fn may_pin(&self, inner: &PoolInner, lease: u64, incoming: usize) -> bool {
        let Some(capacity) = self.capacity else {
            return true;
        };
        if inner.pinned_bytes + incoming <= capacity {
            return true;
        }
        // Over the pinned-byte budget. Waiting is pointless if nobody else
        // holds pins (soft bound — preserves the single-query behaviour
        // where one query's k-way merge may pin past capacity).
        if !inner
            .leases
            .iter()
            .any(|(&id, l)| id != lease && l.pinned_bytes > 0)
        {
            return true;
        }
        // The oldest active lease may overshoot, but only while the pinned
        // total is still within capacity — one grant at a time, so
        // concurrent pinners can never jointly exceed budget + one page.
        let oldest = inner.leases.keys().min().copied();
        if oldest != Some(lease) {
            return false;
        }
        if inner.pinned_bytes <= capacity {
            return true;
        }
        // Deadlock backstop: every other pin-holding lease is itself parked
        // in pin admission, so no release is coming — the oldest proceeds
        // rather than wedging the pool.
        inner
            .leases
            .iter()
            .all(|(&id, l)| id == lease || l.pinned_bytes == 0 || l.waiting_for_pin)
    }

    fn read_page(&self, id: PageId, notify: Notify<'_>) -> Result<Arc<RecordBatch>> {
        let mut inner = self.inner.lock();
        self.fault_in(&mut inner, id, notify)?;
        let frame = inner.frames.get_mut(&id.0).expect("faulted in above");
        frame.referenced = true;
        let batch = Arc::clone(&frame.batch);
        self.evict_to_capacity(&mut inner, notify)?;
        self.settle(&mut inner);
        Ok(batch)
    }

    fn free_page(&self, id: PageId) -> Result<()> {
        let mut inner = self.inner.lock();
        if let Some(frame) = inner.frames.get(&id.0) {
            if frame.pins > 0 {
                return Err(StorageError::Invalid {
                    detail: format!("cannot free pinned page {:?}", id),
                });
            }
            let bytes = frame.bytes;
            let owner = frame.owner;
            inner.frames.remove(&id.0);
            inner.resident_bytes -= bytes;
            let state = self.lease_mut(&mut inner, owner);
            state.resident_pages -= 1;
            state.resident_bytes -= bytes;
            if let Some(pos) = inner.clock.iter().position(|&p| p == id.0) {
                inner.clock.remove(pos);
                if inner.hand > pos {
                    inner.hand -= 1;
                }
            }
        }
        inner.disk.remove(&id.0);
        Ok(())
    }

    fn unpin(&self, id: PageId, notify: Notify<'_>) {
        let mut inner = self.inner.lock();
        if let Some(frame) = inner.frames.get_mut(&id.0) {
            frame.pins = frame.pins.saturating_sub(1);
            if frame.pins == 0 {
                let bytes = frame.bytes;
                let owner = frame.owner;
                inner.pinned_bytes = inner.pinned_bytes.saturating_sub(bytes);
                let lease = self.lease_mut(&mut inner, owner);
                lease.pinned_bytes = lease.pinned_bytes.saturating_sub(bytes);
            }
        }
        // Unpinning may finally allow an overdue eviction; a failure here
        // only delays it until the next append/pin. Blocked pinners notice
        // the freed headroom on their next admission poll.
        let _ = self.evict_to_capacity(&mut inner, notify);
    }

    fn lease_stats(&self, lease: u64) -> PagerStats {
        self.inner
            .lock()
            .leases
            .get(&lease)
            .map(|l| l.stats)
            .unwrap_or_default()
    }

    fn lease_spill_path(&self, lease: u64) -> Option<PathBuf> {
        self.inner
            .lock()
            .leases
            .get(&lease)
            .and_then(|l| l.spill.as_ref().map(|s| s.path.clone()))
    }

    fn lease_resident_pages(&self, lease: u64) -> usize {
        self.inner
            .lock()
            .leases
            .get(&lease)
            .map(|l| l.resident_pages)
            .unwrap_or(0)
    }

    fn lease_mut<'a>(&self, inner: &'a mut PoolInner, lease: u64) -> &'a mut LeaseState {
        inner.leases.entry(lease).or_default()
    }

    /// Ensures `id` is resident, reading and decoding it from its owner's
    /// spill file if necessary (and possibly evicting something else to
    /// make room).
    fn fault_in(&self, inner: &mut PoolInner, id: PageId, notify: Notify<'_>) -> Result<()> {
        if inner.frames.contains_key(&id.0) {
            return Ok(());
        }
        let slot = *inner.disk.get(&id.0).ok_or_else(|| StorageError::Invalid {
            detail: format!("unknown page {id:?}"),
        })?;
        let lease = self.lease_mut(inner, slot.owner);
        let spill = lease.spill.as_mut().ok_or_else(|| StorageError::Invalid {
            detail: "page is on disk but no spill file exists".into(),
        })?;
        let bytes = spill.read(slot)?;
        lease.stats.spill_bytes_read += slot.len;
        if let Some(observer) = notify {
            observer(PagerEvent::SpillRead { bytes: slot.len });
        }
        let batch = codec::decode_batch(&bytes)?;
        let size = batch.approx_size_bytes().max(1);
        inner.frames.insert(
            id.0,
            Frame {
                batch: Arc::new(batch),
                bytes: size,
                owner: slot.owner,
                // Already safely on disk; evicting it again costs no write.
                dirty: false,
                pins: 0,
                referenced: true,
            },
        );
        inner.clock.push(id.0);
        inner.resident_bytes += size;
        let state = self.lease_mut(inner, slot.owner);
        state.resident_pages += 1;
        state.resident_bytes += size;
        Ok(())
    }

    /// Clock sweep: while the pool is over capacity or any lease is over
    /// its quota, evict the first eligible unpinned page whose reference
    /// bit is clear, clearing set bits along the way. When only a quota is
    /// exceeded (the pool itself has room), eligibility is restricted to
    /// the over-quota leases' own pages, so one query's small budget share
    /// never evicts a neighbour's working set. Dirty victims are encoded
    /// and appended to their owner's spill file first. Gives up (leaving
    /// the bound soft) when every resident page is pinned.
    fn evict_to_capacity(&self, inner: &mut PoolInner, notify: Notify<'_>) -> Result<()> {
        if self.capacity.is_none() && inner.leases.values().all(|l| l.quota.is_none()) {
            return Ok(());
        }
        let mut scanned_since_evict = 0;
        loop {
            let global_over = self
                .capacity
                .is_some_and(|capacity| inner.resident_bytes > capacity);
            let quota_over = inner.leases.values().any(LeaseState::over_quota);
            if (!global_over && !quota_over) || inner.clock.is_empty() {
                return Ok(());
            }
            if scanned_since_evict > 2 * inner.clock.len() {
                // Every page is pinned (or freshly referenced by a pinner):
                // nothing can go. The budget is a soft bound.
                return Ok(());
            }
            if inner.hand >= inner.clock.len() {
                inner.hand = 0;
            }
            let id = inner.clock[inner.hand];
            let frame = inner.frames.get_mut(&id).expect("clock tracks frames");
            if frame.pins > 0 {
                inner.hand += 1;
                scanned_since_evict += 1;
                continue;
            }
            if !global_over
                && !inner
                    .leases
                    .get(&frame.owner)
                    .is_some_and(LeaseState::over_quota)
            {
                // Quota-only pressure, and this page's owner is within its
                // share: not a candidate. Skip without touching its
                // reference bit, so capacity eviction order is unaffected.
                inner.hand += 1;
                scanned_since_evict += 1;
                continue;
            }
            let frame = inner.frames.get_mut(&id).expect("clock tracks frames");
            if frame.referenced {
                frame.referenced = false;
                inner.hand += 1;
                scanned_since_evict += 1;
                continue;
            }
            // Victim found.
            if frame.dirty {
                let encoded = codec::encode_batch(&frame.batch);
                let owner = frame.owner;
                let lease = self.lease_mut(inner, owner);
                if lease.spill.is_none() {
                    lease.spill = Some(SpillFile::create(&self.spill_dir)?);
                }
                let spill = lease.spill.as_mut().expect("created above");
                let slot_raw = spill.append(&encoded)?;
                let slot = DiskSlot {
                    owner,
                    offset: slot_raw.0,
                    len: slot_raw.1,
                };
                lease.stats.pages_spilled += 1;
                lease.stats.spill_bytes_written += slot.len;
                inner.disk.insert(id, slot);
                if let Some(observer) = notify {
                    observer(PagerEvent::SpillWrite { bytes: slot.len });
                }
            }
            let frame = inner.frames.remove(&id).expect("still resident");
            inner.resident_bytes -= frame.bytes;
            inner.clock.remove(inner.hand);
            let lease = self.lease_mut(inner, frame.owner);
            lease.resident_pages -= 1;
            lease.resident_bytes -= frame.bytes;
            lease.stats.pages_evicted += 1;
            if let Some(observer) = notify {
                observer(PagerEvent::Evict);
            }
            scanned_since_evict = 0;
        }
    }

    /// Samples high-water marks once an operation's eviction pass has
    /// settled.
    fn settle(&self, inner: &mut PoolInner) {
        inner.peak_resident_bytes = inner.peak_resident_bytes.max(inner.resident_bytes);
        for lease in inner.leases.values_mut() {
            lease.stats.peak_resident_pages =
                lease.stats.peak_resident_pages.max(lease.resident_pages);
        }
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("resident_pages", &inner.frames.len())
            .field("resident_bytes", &inner.resident_bytes)
            .field("pinned_bytes", &inner.pinned_bytes)
            .field("leases", &inner.leases.len())
            .field("spilled_pages", &inner.disk.len())
            .finish()
    }
}

/// A query's lease on a [`BufferPool`]: the interface operators use to
/// append, pin, read and free intermediate pages.
///
/// All methods take `&self`; the pager is shared across a query's worker
/// threads behind an `Arc`. Dropping the last handle releases every page
/// and spill file the lease owns — cancellation and error paths clean up
/// for free.
pub struct Pager {
    pool: Arc<BufferPool>,
    lease: u64,
    /// Polled in blocking admission waits and at append/pin entry, so a
    /// cancelled query stops spilling and pinning promptly.
    cancel: RwLock<CancelToken>,
    /// Event hooks (kept outside the pool lock so installing one never
    /// contends with pool operations). Every installed observer receives
    /// every event caused by *this* lease's operations, in installation
    /// order — tracing and metrics hooks compose instead of replacing each
    /// other.
    observer: RwLock<Vec<PagerObserver>>,
}

impl Pager {
    /// Creates a pager with its own private pool bounded by `budget` — the
    /// standalone single-query configuration. No file is created until the
    /// first eviction of a dirty page.
    pub fn new(budget: &MemoryBudget) -> Self {
        Pager::shared(&Arc::new(BufferPool::new(budget)))
    }

    /// Creates a new lease on an existing (typically global, shared) pool.
    pub fn shared(pool: &Arc<BufferPool>) -> Self {
        let lease = pool.register_lease();
        Pager {
            pool: Arc::clone(pool),
            lease,
            cancel: RwLock::new(CancelToken::new()),
            observer: RwLock::new(Vec::new()),
        }
    }

    /// The pool this lease draws from.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Installs the cancellation token polled by this lease's blocking and
    /// spill-adjacent operations. Replaces the default (never-cancelled)
    /// token.
    pub fn set_cancel_token(&self, token: CancelToken) {
        *self.cancel.write() = token;
    }

    /// Replaces the whole observer set with `observer` (or clears it, with
    /// `None`). Each callback fires synchronously at every spill write,
    /// spill read and eviction caused by this lease's operations; it runs
    /// under the pool lock, so it must be cheap and must not re-enter the
    /// pager. Use [`Pager::add_observer`] to compose with observers already
    /// installed instead of replacing them.
    pub fn set_observer(&self, observer: Option<PagerObserver>) {
        let mut observers = self.observer.write();
        observers.clear();
        if let Some(observer) = observer {
            observers.push(observer);
        }
    }

    /// Appends an observer to the set without disturbing the ones already
    /// installed — the composition point that lets the engine's tracing
    /// hook and the serving layer's metrics hook watch the same lease.
    /// Observers fire in installation order.
    pub fn add_observer(&self, observer: PagerObserver) {
        self.observer.write().push(observer);
    }

    /// Snapshots the observer set and hands the borrowed fan-out callback
    /// the pool internals expect to `f`. Zero observers pass `None` (no
    /// per-event cost), one passes it directly, several fan out in
    /// installation order.
    fn with_observers<R>(&self, f: impl FnOnce(Notify<'_>) -> R) -> R {
        let observers = self.observer.read().clone();
        match observers.as_slice() {
            [] => f(None),
            [only] => f(Some(only.as_ref())),
            many => {
                let fan = |event: PagerEvent| {
                    for observer in many {
                        observer(event);
                    }
                };
                f(Some(&fan))
            }
        }
    }

    /// Admits a new page owned by this lease, evicting older unpinned pages
    /// if the pool is over budget. The page starts dirty (it exists nowhere
    /// but the pool).
    pub fn append_page(&self, batch: RecordBatch) -> Result<PageId> {
        self.cancel.read().check()?;
        self.with_observers(|notify| self.pool.append_page(self.lease, batch, notify))
    }

    /// Pins a page, faulting it back in from the spill file if it was
    /// evicted, and returns a guard that unpins on drop. Pinned pages are
    /// never evicted; when the pool's pinned bytes are at capacity the pin
    /// waits for admission (see the [module docs](super)).
    pub fn pin(self: &Arc<Self>, id: PageId) -> Result<PinnedPage> {
        let cancel = self.cancel.read().clone();
        cancel.check()?;
        let batch =
            self.with_observers(|notify| self.pool.pin_blocking(self.lease, id, &cancel, notify))?;
        Ok(PinnedPage {
            pager: Arc::clone(self),
            id,
            batch,
        })
    }

    /// Reads a page without holding a pin: the returned `Arc` keeps the data
    /// alive even if the frame is evicted afterwards, but the pool may
    /// reclaim the frame's budget immediately.
    pub fn read_page(&self, id: PageId) -> Result<Arc<RecordBatch>> {
        self.with_observers(|notify| self.pool.read_page(id, notify))
    }

    /// Drops a page from the pool and forgets its spill slot (the slot's
    /// bytes are reclaimed when the lease's spill file is deleted).
    ///
    /// Freeing a pinned page is an invariant violation and errors.
    pub fn free_page(&self, id: PageId) -> Result<()> {
        self.pool.free_page(id)
    }

    /// Bounds this lease's resident bytes to `quota` (the query's budget
    /// *share* of a larger shared pool): past it, the lease's own unpinned
    /// pages are evicted — and spilled if dirty — even while the pool as a
    /// whole has room. `None` removes the bound. The bound takes effect at
    /// the lease's next pool operation.
    pub fn set_quota(&self, quota: Option<usize>) {
        let mut inner = self.pool.inner.lock();
        self.pool.lease_mut(&mut inner, self.lease).quota = quota;
    }

    /// A snapshot of this lease's spill/eviction counters.
    pub fn stats(&self) -> PagerStats {
        self.pool.lease_stats(self.lease)
    }

    /// Bytes of decoded pages currently resident in the pool (all leases).
    pub fn resident_bytes(&self) -> usize {
        self.pool.resident_bytes()
    }

    /// Pages owned by this lease currently resident in the pool.
    pub fn resident_pages(&self) -> usize {
        self.pool.lease_resident_pages(self.lease)
    }

    /// The lease's spill file path, if one has been created.
    pub fn spill_path(&self) -> Option<PathBuf> {
        self.pool.lease_spill_path(self.lease)
    }

    fn unpin(&self, id: PageId) {
        self.with_observers(|notify| self.pool.unpin(id, notify));
    }
}

impl Drop for Pager {
    fn drop(&mut self) {
        self.pool.drop_lease(self.lease);
    }
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("lease", &self.lease)
            .field("resident_pages", &self.resident_pages())
            .field("pool", &self.pool)
            .finish()
    }
}

/// A pinned page: dereferences to the batch; unpins on drop.
pub struct PinnedPage {
    pager: Arc<Pager>,
    id: PageId,
    batch: Arc<RecordBatch>,
}

impl PinnedPage {
    /// The pinned page's id.
    pub fn id(&self) -> PageId {
        self.id
    }
}

impl std::ops::Deref for PinnedPage {
    type Target = RecordBatch;

    fn deref(&self) -> &RecordBatch {
        &self.batch
    }
}

impl Drop for PinnedPage {
    fn drop(&mut self) {
        self.pager.unpin(self.id);
    }
}

/// Serialises spill-file naming across the process.
static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// An append-only spill file, deleted from disk when dropped (drop also runs
/// while unwinding, so error and cancellation paths clean up too).
struct SpillFile {
    file: File,
    path: PathBuf,
    len: u64,
}

impl SpillFile {
    fn create(dir: &std::path::Path) -> Result<Self> {
        let name = format!(
            "sdb-spill-{}-{}.pages",
            std::process::id(),
            SPILL_COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let path = dir.join(name);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| StorageError::Persistence {
                detail: format!("cannot create spill file {}: {e}", path.display()),
            })?;
        Ok(SpillFile { file, path, len: 0 })
    }

    /// Appends `bytes`, returning `(offset, len)`.
    fn append(&mut self, bytes: &[u8]) -> Result<(u64, usize)> {
        let offset = self.len;
        self.file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| self.file.write_all(bytes))
            .map_err(|e| StorageError::Persistence {
                detail: format!("spill write failed: {e}"),
            })?;
        self.len += bytes.len() as u64;
        Ok((offset, bytes.len()))
    }

    fn read(&mut self, slot: DiskSlot) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; slot.len];
        self.file
            .seek(SeekFrom::Start(slot.offset))
            .and_then(|_| self.file.read_exact(&mut buf))
            .map_err(|e| StorageError::Persistence {
                detail: format!("spill read failed: {e}"),
            })?;
        Ok(buf)
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnDef, DataType, Schema, Value};

    fn batch(tag: i64, rows: usize) -> RecordBatch {
        let schema = Schema::new(vec![
            ColumnDef::public("id", DataType::Int),
            ColumnDef::public("s", DataType::Varchar),
        ]);
        RecordBatch::from_rows(
            schema,
            (0..rows)
                .map(|i| {
                    vec![
                        Value::Int(tag * 1000 + i as i64),
                        Value::Str(format!("row-{tag}-{i}")),
                    ]
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn unlimited_pager_never_spills() {
        let pager = Arc::new(Pager::new(&MemoryBudget::unlimited()));
        let ids: Vec<_> = (0..20)
            .map(|i| pager.append_page(batch(i, 50)).unwrap())
            .collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(pager.read_page(*id).unwrap().as_ref(), &batch(i as i64, 50));
        }
        assert_eq!(pager.stats().pages_spilled, 0);
        assert!(pager.spill_path().is_none());
    }

    #[test]
    fn tiny_budget_spills_and_pages_fault_back_identical() {
        let one_page = batch(0, 50).approx_size_bytes();
        let pager = Arc::new(Pager::new(&MemoryBudget::bytes(one_page * 2)));
        let ids: Vec<_> = (0..10)
            .map(|i| pager.append_page(batch(i, 50)).unwrap())
            .collect();
        let stats = pager.stats();
        assert!(stats.pages_spilled > 0, "must have spilled: {stats:?}");
        assert!(stats.spill_bytes_written > 0);
        assert!(pager.resident_bytes() <= one_page * 2 + one_page);
        assert!(pager.spill_path().unwrap().exists());

        // Every page reads back byte-identical, in any order.
        for (i, id) in ids.iter().enumerate().rev() {
            assert_eq!(pager.read_page(*id).unwrap().as_ref(), &batch(i as i64, 50));
        }
        assert!(pager.stats().spill_bytes_read > 0);
        assert!(pager.stats().peak_resident_pages >= 2);
    }

    #[test]
    fn lease_quota_bounds_residency_inside_a_roomy_pool() {
        let one_page = batch(0, 50).approx_size_bytes();
        // The pool itself has room for everything; only the quota binds.
        let pool = Arc::new(BufferPool::new(&MemoryBudget::bytes(one_page * 100)));
        let bounded = Arc::new(Pager::shared(&pool));
        bounded.set_quota(Some(one_page * 2));
        let free = Arc::new(Pager::shared(&pool));

        let free_ids: Vec<_> = (0..6)
            .map(|i| free.append_page(batch(100 + i, 50)).unwrap())
            .collect();
        let bounded_ids: Vec<_> = (0..6)
            .map(|i| bounded.append_page(batch(i, 50)).unwrap())
            .collect();

        // The bounded lease spilled its overflow even though the pool has
        // room; the unbounded neighbour's pages were left alone.
        let stats = bounded.stats();
        assert!(
            stats.pages_spilled > 0,
            "quota must force spilling: {stats:?}"
        );
        assert!(bounded.resident_pages() <= 3);
        assert_eq!(free.resident_pages(), 6);
        assert_eq!(free.stats().pages_evicted, 0);

        // Everything still reads back byte-identical.
        for (i, id) in bounded_ids.iter().enumerate() {
            assert_eq!(
                bounded.read_page(*id).unwrap().as_ref(),
                &batch(i as i64, 50)
            );
        }
        for (i, id) in free_ids.iter().enumerate() {
            assert_eq!(
                free.read_page(*id).unwrap().as_ref(),
                &batch(100 + i as i64, 50)
            );
        }
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let one_page = batch(0, 50).approx_size_bytes();
        let pager = Arc::new(Pager::new(&MemoryBudget::bytes(one_page)));
        let first = pager.append_page(batch(0, 50)).unwrap();
        let pinned = pager.pin(first).unwrap();
        // Push the pool far over budget; the pinned page must stay put.
        for i in 1..6 {
            pager.append_page(batch(i, 50)).unwrap();
        }
        assert_eq!(&*pinned, &batch(0, 50));
        assert_eq!(pinned.id(), first);
        drop(pinned);
        // Now it can be evicted; freeing it while pinned would have errored.
        for i in 6..10 {
            pager.append_page(batch(i, 50)).unwrap();
        }
        assert_eq!(pager.read_page(first).unwrap().as_ref(), &batch(0, 50));
    }

    #[test]
    fn free_rejects_pinned_and_forgets_pages() {
        let pager = Arc::new(Pager::new(&MemoryBudget::bytes(64)));
        let id = pager.append_page(batch(0, 10)).unwrap();
        let pin = pager.pin(id).unwrap();
        assert!(pager.free_page(id).is_err(), "pinned pages cannot be freed");
        drop(pin);
        pager.free_page(id).unwrap();
        assert!(pager.read_page(id).is_err(), "freed pages are gone");
        // Freeing twice is a no-op.
        pager.free_page(id).unwrap();
    }

    #[test]
    fn spill_file_removed_on_drop() {
        let dir = std::env::temp_dir();
        let path = {
            let pager = Arc::new(Pager::new(&MemoryBudget::bytes(32).with_spill_dir(&dir)));
            for i in 0..8 {
                pager.append_page(batch(i, 20)).unwrap();
            }
            let path = pager.spill_path().expect("tiny budget must spill");
            assert!(path.exists());
            path
        };
        assert!(!path.exists(), "drop must delete the spill file");
    }

    #[test]
    fn observer_sees_spill_writes_reads_and_evictions() {
        let one_page = batch(0, 50).approx_size_bytes();
        let pager = Arc::new(Pager::new(&MemoryBudget::bytes(one_page * 2)));
        let events = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        pager.set_observer(Some(Arc::new(move |e| sink.lock().push(e))));

        let ids: Vec<_> = (0..6)
            .map(|i| pager.append_page(batch(i, 50)).unwrap())
            .collect();
        pager.read_page(ids[0]).unwrap();

        let seen = events.lock().clone();
        let stats = pager.stats();
        let writes = seen
            .iter()
            .filter(|e| matches!(e, PagerEvent::SpillWrite { .. }))
            .count();
        let reads = seen
            .iter()
            .filter(|e| matches!(e, PagerEvent::SpillRead { .. }))
            .count();
        let evicts = seen
            .iter()
            .filter(|e| matches!(e, PagerEvent::Evict))
            .count();
        assert_eq!(writes, stats.pages_spilled, "one event per spill write");
        assert!(reads > 0, "faulting page 0 back must emit a read");
        assert_eq!(evicts, stats.pages_evicted);
        assert!(seen.iter().all(|e| match e {
            PagerEvent::SpillWrite { bytes } | PagerEvent::SpillRead { bytes } => *bytes > 0,
            PagerEvent::Evict => true,
        }));

        // Clearing the observer stops delivery.
        pager.set_observer(None);
        let before = events.lock().len();
        for i in 6..9 {
            pager.append_page(batch(i, 50)).unwrap();
        }
        assert_eq!(events.lock().len(), before);
    }

    #[test]
    fn added_observers_compose_instead_of_replacing() {
        let one_page = batch(0, 50).approx_size_bytes();
        let pager = Arc::new(Pager::new(&MemoryBudget::bytes(one_page * 2)));
        let first = Arc::new(Mutex::new(Vec::new()));
        let second = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&first);
        pager.set_observer(Some(Arc::new(move |e| sink.lock().push(e))));
        let sink = Arc::clone(&second);
        pager.add_observer(Arc::new(move |e| sink.lock().push(e)));

        for i in 0..6 {
            pager.append_page(batch(i, 50)).unwrap();
        }
        let seen_first = first.lock().clone();
        let seen_second = second.lock().clone();
        assert!(!seen_first.is_empty(), "tiny budget must emit events");
        assert_eq!(
            seen_first, seen_second,
            "every observer receives every event in the same order"
        );

        // `set_observer` still replaces the whole set: the first two stop
        // receiving, the replacement starts.
        let third = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&third);
        pager.set_observer(Some(Arc::new(move |e| sink.lock().push(e))));
        let (before_first, before_second) = (first.lock().len(), second.lock().len());
        for i in 6..9 {
            pager.append_page(batch(i, 50)).unwrap();
        }
        assert_eq!(first.lock().len(), before_first);
        assert_eq!(second.lock().len(), before_second);
        assert!(!third.lock().is_empty());
    }

    #[test]
    fn eviction_prefers_unreferenced_pages() {
        let one_page = batch(0, 50).approx_size_bytes();
        let pager = Arc::new(Pager::new(&MemoryBudget::bytes(one_page * 3)));
        let hot = pager.append_page(batch(0, 50)).unwrap();
        let cold = pager.append_page(batch(1, 50)).unwrap();
        // Keep touching the hot page while admitting new ones.
        for i in 2..8 {
            pager.read_page(hot).unwrap();
            pager.append_page(batch(i, 50)).unwrap();
        }
        // Both still readable regardless of which frame was chosen.
        assert_eq!(pager.read_page(hot).unwrap().as_ref(), &batch(0, 50));
        assert_eq!(pager.read_page(cold).unwrap().as_ref(), &batch(1, 50));
        assert!(pager.stats().pages_evicted > 0);
    }

    #[test]
    fn shared_leases_have_separate_spill_files_and_stats() {
        let one_page = batch(0, 50).approx_size_bytes();
        let dir = std::env::temp_dir();
        let pool = Arc::new(BufferPool::new(
            &MemoryBudget::bytes(one_page * 2).with_spill_dir(&dir),
        ));
        let a = Arc::new(Pager::shared(&pool));
        let b = Arc::new(Pager::shared(&pool));

        let a_ids: Vec<_> = (0..6)
            .map(|i| a.append_page(batch(i, 50)).unwrap())
            .collect();
        let b_ids: Vec<_> = (0..6)
            .map(|i| b.append_page(batch(100 + i, 50)).unwrap())
            .collect();

        assert!(a.stats().pages_spilled > 0);
        assert!(b.stats().pages_spilled > 0);
        let a_path = a.spill_path().unwrap();
        let b_path = b.spill_path().unwrap();
        assert_ne!(a_path, b_path, "one spill file per lease");
        assert_eq!(pool.spill_file_count(), 2);

        // Both leases read all their pages back byte-identical.
        for (i, id) in a_ids.iter().enumerate() {
            assert_eq!(a.read_page(*id).unwrap().as_ref(), &batch(i as i64, 50));
        }
        for (i, id) in b_ids.iter().enumerate() {
            assert_eq!(
                b.read_page(*id).unwrap().as_ref(),
                &batch(100 + i as i64, 50)
            );
        }

        // Dropping lease A releases its frames and deletes only its file.
        drop(a);
        assert!(!a_path.exists(), "lease drop must delete its spill file");
        assert!(b_path.exists(), "other lease's file must survive");
        assert_eq!(pool.lease_count(), 1);
        // B's pages are untouched.
        assert_eq!(b.read_page(b_ids[0]).unwrap().as_ref(), &batch(100, 50));
        drop(b);
        assert!(!b_path.exists());
        assert_eq!(pool.resident_pages(), 0);
        assert_eq!(pool.resident_bytes(), 0);
    }

    #[test]
    fn concurrent_pinners_cannot_jointly_exceed_budget_plus_one_page() {
        // Seeds are offset so every page renders the same value widths:
        // `one_page` is then exactly the size of ANY page, and the
        // budget-plus-one-page bound is tight.
        let one_page = batch(100, 50).approx_size_bytes();
        assert_eq!(one_page, batch(205, 50).approx_size_bytes());
        let capacity = one_page * 4;
        let pool = Arc::new(BufferPool::new(&MemoryBudget::bytes(capacity)));

        let mut handles = Vec::new();
        for t in 0..2i64 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let pager = Arc::new(Pager::shared(&pool));
                let ids: Vec<_> = (0..6)
                    .map(|i| pager.append_page(batch(100 + t * 100 + i, 50)).unwrap())
                    .collect();
                for _ in 0..10 {
                    // Hold three pins at once — two threads naively would
                    // pin 6 pages into a 4-page budget.
                    let pins: Vec<_> = ids[..3].iter().map(|id| pager.pin(*id).unwrap()).collect();
                    for (i, pin) in pins.iter().enumerate() {
                        assert_eq!(&**pin, &batch(100 + t * 100 + i as i64, 50));
                    }
                    drop(pins);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            pool.peak_resident_bytes() <= capacity + one_page,
            "peak {} must stay within budget {} + one page {}",
            pool.peak_resident_bytes(),
            capacity,
            one_page
        );
        assert_eq!(pool.resident_pages(), 0, "all leases dropped");
    }

    #[test]
    fn cancelled_token_stops_append_and_pin() {
        let pager = Arc::new(Pager::new(&MemoryBudget::bytes(1024)));
        let id = pager.append_page(batch(0, 10)).unwrap();
        let token = CancelToken::new();
        pager.set_cancel_token(token.clone());
        token.cancel();
        assert_eq!(
            pager.append_page(batch(1, 10)),
            Err(StorageError::Cancelled)
        );
        assert!(matches!(pager.pin(id), Err(StorageError::Cancelled)));
        // Reads still work: cancellation stops new work, not cleanup paths
        // that may need to inspect state.
        assert!(pager.read_page(id).is_ok());
    }

    #[test]
    fn single_lease_never_blocks_on_admission() {
        // A lone query may pin past capacity (soft bound) — this must not
        // deadlock or wait.
        let one_page = batch(0, 50).approx_size_bytes();
        let pager = Arc::new(Pager::new(&MemoryBudget::bytes(one_page)));
        let ids: Vec<_> = (0..4)
            .map(|i| pager.append_page(batch(i, 50)).unwrap())
            .collect();
        let pins: Vec<_> = ids.iter().map(|id| pager.pin(*id).unwrap()).collect();
        assert_eq!(pins.len(), 4);
    }
}
