//! The fixed-capacity buffer pool of page frames and its spill file.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use super::{codec, MemoryBudget};
use crate::{RecordBatch, Result, StorageError};

/// A pager activity event, delivered to the registered observer as it
/// happens (the engine's tracing layer attaches these to operator spans).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagerEvent {
    /// A dirty page was encoded and appended to the spill file.
    SpillWrite {
        /// Encoded bytes written.
        bytes: usize,
    },
    /// An evicted page was read back and decoded from the spill file.
    SpillRead {
        /// Encoded bytes read.
        bytes: usize,
    },
    /// A page was dropped from the pool (spilled-dirty or already clean).
    Evict,
}

/// Observer callback receiving [`PagerEvent`]s; must be cheap and must not
/// call back into the pager (it runs under the pool lock).
pub type PagerObserver = Arc<dyn Fn(PagerEvent) + Send + Sync>;

/// Opaque handle to a page owned by a [`Pager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageId(u64);

/// Counters describing the pager's spill and eviction activity, surfaced
/// through the engine's execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerStats {
    /// Dirty pages encoded and written to the spill file.
    pub pages_spilled: usize,
    /// Encoded bytes written to the spill file.
    pub spill_bytes_written: usize,
    /// Encoded bytes read back from the spill file.
    pub spill_bytes_read: usize,
    /// Pages dropped from the pool (spilled-dirty or already-clean).
    pub pages_evicted: usize,
    /// Most pages resident in the pool at any one time.
    pub peak_resident_pages: usize,
}

/// A resident page frame.
struct Frame {
    batch: Arc<RecordBatch>,
    /// Approximate resident size, fixed at admission.
    bytes: usize,
    /// Not yet written to the spill file.
    dirty: bool,
    /// Pin count; pinned frames are never evicted.
    pins: usize,
    /// Clock reference bit: set on access, cleared by a passing hand.
    referenced: bool,
}

/// Location of an encoded page in the spill file.
#[derive(Clone, Copy)]
struct DiskSlot {
    offset: u64,
    len: usize,
}

/// The pool state behind the pager's mutex.
struct Inner {
    frames: HashMap<u64, Frame>,
    disk: HashMap<u64, DiskSlot>,
    /// Resident page ids in clock order, swept by `hand`.
    clock: Vec<u64>,
    hand: usize,
    resident_bytes: usize,
    next_page: u64,
    spill: Option<SpillFile>,
    stats: PagerStats,
}

/// A bounded buffer pool of [`RecordBatch`] pages with clock eviction and
/// spill-to-disk. See the [module docs](super) for the design.
///
/// All methods take `&self`; the pager is shared across a query's worker
/// threads behind an `Arc`.
pub struct Pager {
    capacity: Option<usize>,
    spill_dir: PathBuf,
    inner: Mutex<Inner>,
    /// Optional event hook (kept outside `inner` so installing one never
    /// contends with pool operations).
    observer: RwLock<Option<PagerObserver>>,
}

impl Pager {
    /// Creates a pager bounded by `budget`. No file is created until the
    /// first eviction of a dirty page.
    pub fn new(budget: &MemoryBudget) -> Self {
        Pager {
            capacity: budget.limit(),
            spill_dir: budget.spill_dir(),
            inner: Mutex::new(Inner {
                frames: HashMap::new(),
                disk: HashMap::new(),
                clock: Vec::new(),
                hand: 0,
                resident_bytes: 0,
                next_page: 0,
                spill: None,
                stats: PagerStats::default(),
            }),
            observer: RwLock::new(None),
        }
    }

    /// Installs (or clears, with `None`) the event observer. The callback
    /// fires synchronously at each spill write, spill read and eviction; it
    /// runs under the pool lock, so it must be cheap and must not re-enter
    /// the pager.
    pub fn set_observer(&self, observer: Option<PagerObserver>) {
        *self.observer.write() = observer;
    }

    fn notify(&self, event: PagerEvent) {
        if let Some(observer) = self.observer.read().as_ref() {
            observer(event);
        }
    }

    /// Admits a new page, evicting older unpinned pages if the pool is over
    /// budget. The page starts dirty (it exists nowhere but the pool).
    pub fn append_page(&self, batch: RecordBatch) -> Result<PageId> {
        let mut inner = self.inner.lock();
        let id = inner.next_page;
        inner.next_page += 1;
        let bytes = batch.approx_size_bytes().max(1);
        inner.frames.insert(
            id,
            Frame {
                batch: Arc::new(batch),
                bytes,
                dirty: true,
                pins: 0,
                referenced: true,
            },
        );
        inner.clock.push(id);
        inner.resident_bytes += bytes;
        inner.stats.peak_resident_pages = inner.stats.peak_resident_pages.max(inner.frames.len());
        self.evict_to_capacity(&mut inner)?;
        Ok(PageId(id))
    }

    /// Pins a page, faulting it back in from the spill file if it was
    /// evicted, and returns a guard that unpins on drop. Pinned pages are
    /// never evicted.
    pub fn pin(self: &Arc<Self>, id: PageId) -> Result<PinnedPage> {
        let batch = {
            let mut inner = self.inner.lock();
            self.fault_in(&mut inner, id)?;
            let frame = inner.frames.get_mut(&id.0).expect("faulted in above");
            frame.pins += 1;
            frame.referenced = true;
            let batch = Arc::clone(&frame.batch);
            // Evict only after taking the pin, so a fault under pressure can
            // never throw its own page back out.
            self.evict_to_capacity(&mut inner)?;
            batch
        };
        Ok(PinnedPage {
            pager: Arc::clone(self),
            id,
            batch,
        })
    }

    /// Reads a page without holding a pin: the returned `Arc` keeps the data
    /// alive even if the frame is evicted afterwards, but the pool may
    /// reclaim the frame's budget immediately.
    pub fn read_page(&self, id: PageId) -> Result<Arc<RecordBatch>> {
        let mut inner = self.inner.lock();
        self.fault_in(&mut inner, id)?;
        let frame = inner.frames.get_mut(&id.0).expect("faulted in above");
        frame.referenced = true;
        let batch = Arc::clone(&frame.batch);
        self.evict_to_capacity(&mut inner)?;
        Ok(batch)
    }

    /// Drops a page from the pool and forgets its spill slot (the slot's
    /// bytes are reclaimed when the spill file is deleted on drop).
    ///
    /// Freeing a pinned page is an invariant violation and errors.
    pub fn free_page(&self, id: PageId) -> Result<()> {
        let mut inner = self.inner.lock();
        if let Some(frame) = inner.frames.get(&id.0) {
            if frame.pins > 0 {
                return Err(StorageError::Invalid {
                    detail: format!("cannot free pinned page {:?}", id),
                });
            }
            let bytes = frame.bytes;
            inner.frames.remove(&id.0);
            inner.resident_bytes -= bytes;
            if let Some(pos) = inner.clock.iter().position(|&p| p == id.0) {
                inner.clock.remove(pos);
                if inner.hand > pos {
                    inner.hand -= 1;
                }
            }
        }
        inner.disk.remove(&id.0);
        Ok(())
    }

    /// A snapshot of the spill/eviction counters.
    pub fn stats(&self) -> PagerStats {
        self.inner.lock().stats
    }

    /// Bytes of decoded pages currently resident in the pool.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().resident_bytes
    }

    /// The spill file's path, if one has been created.
    pub fn spill_path(&self) -> Option<PathBuf> {
        self.inner.lock().spill.as_ref().map(|s| s.path.clone())
    }

    fn unpin(&self, id: PageId) {
        let mut inner = self.inner.lock();
        if let Some(frame) = inner.frames.get_mut(&id.0) {
            frame.pins = frame.pins.saturating_sub(1);
        }
        // Unpinning may finally allow an overdue eviction; a failure here
        // only delays it until the next append/pin.
        let _ = self.evict_to_capacity(&mut inner);
    }

    /// Ensures `id` is resident, reading and decoding it from the spill file
    /// if necessary (and possibly evicting something else to make room).
    fn fault_in(&self, inner: &mut Inner, id: PageId) -> Result<()> {
        if inner.frames.contains_key(&id.0) {
            return Ok(());
        }
        let slot = *inner.disk.get(&id.0).ok_or_else(|| StorageError::Invalid {
            detail: format!("unknown page {id:?}"),
        })?;
        let spill = inner.spill.as_mut().ok_or_else(|| StorageError::Invalid {
            detail: "page is on disk but no spill file exists".into(),
        })?;
        let bytes = spill.read(slot)?;
        inner.stats.spill_bytes_read += slot.len;
        self.notify(PagerEvent::SpillRead { bytes: slot.len });
        let batch = codec::decode_batch(&bytes)?;
        let size = batch.approx_size_bytes().max(1);
        inner.frames.insert(
            id.0,
            Frame {
                batch: Arc::new(batch),
                bytes: size,
                // Already safely on disk; evicting it again costs no write.
                dirty: false,
                pins: 0,
                referenced: true,
            },
        );
        inner.clock.push(id.0);
        inner.resident_bytes += size;
        inner.stats.peak_resident_pages = inner.stats.peak_resident_pages.max(inner.frames.len());
        Ok(())
    }

    /// Clock sweep: while over budget, evict the first unpinned page whose
    /// reference bit is clear, clearing set bits along the way. Dirty
    /// victims are encoded and appended to the spill file first. Gives up
    /// (leaving the pool over budget) when every resident page is pinned.
    fn evict_to_capacity(&self, inner: &mut Inner) -> Result<()> {
        let Some(capacity) = self.capacity else {
            return Ok(());
        };
        let mut scanned_since_evict = 0;
        while inner.resident_bytes > capacity && !inner.clock.is_empty() {
            if scanned_since_evict > 2 * inner.clock.len() {
                // Every page is pinned (or freshly referenced by a pinner):
                // nothing can go. The budget is a soft bound.
                return Ok(());
            }
            if inner.hand >= inner.clock.len() {
                inner.hand = 0;
            }
            let id = inner.clock[inner.hand];
            let frame = inner.frames.get_mut(&id).expect("clock tracks frames");
            if frame.pins > 0 {
                inner.hand += 1;
                scanned_since_evict += 1;
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                inner.hand += 1;
                scanned_since_evict += 1;
                continue;
            }
            // Victim found.
            if frame.dirty {
                let encoded = codec::encode_batch(&frame.batch);
                if inner.spill.is_none() {
                    inner.spill = Some(SpillFile::create(&self.spill_dir)?);
                }
                let spill = inner.spill.as_mut().expect("created above");
                let slot = spill.append(&encoded)?;
                inner.stats.pages_spilled += 1;
                inner.stats.spill_bytes_written += slot.len;
                inner.disk.insert(id, slot);
                self.notify(PagerEvent::SpillWrite { bytes: slot.len });
            }
            let frame = inner.frames.remove(&id).expect("still resident");
            inner.resident_bytes -= frame.bytes;
            inner.clock.remove(inner.hand);
            inner.stats.pages_evicted += 1;
            self.notify(PagerEvent::Evict);
            scanned_since_evict = 0;
        }
        Ok(())
    }
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Pager")
            .field("capacity", &self.capacity)
            .field("resident_pages", &inner.frames.len())
            .field("resident_bytes", &inner.resident_bytes)
            .field("spilled_pages", &inner.disk.len())
            .finish()
    }
}

/// A pinned page: dereferences to the batch; unpins on drop.
pub struct PinnedPage {
    pager: Arc<Pager>,
    id: PageId,
    batch: Arc<RecordBatch>,
}

impl PinnedPage {
    /// The pinned page's id.
    pub fn id(&self) -> PageId {
        self.id
    }
}

impl std::ops::Deref for PinnedPage {
    type Target = RecordBatch;

    fn deref(&self) -> &RecordBatch {
        &self.batch
    }
}

impl Drop for PinnedPage {
    fn drop(&mut self) {
        self.pager.unpin(self.id);
    }
}

/// Serialises spill-file naming across the process.
static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// An append-only spill file, deleted from disk when dropped (drop also runs
/// while unwinding, so error paths clean up too).
struct SpillFile {
    file: File,
    path: PathBuf,
    len: u64,
}

impl SpillFile {
    fn create(dir: &std::path::Path) -> Result<Self> {
        let name = format!(
            "sdb-spill-{}-{}.pages",
            std::process::id(),
            SPILL_COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let path = dir.join(name);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| StorageError::Persistence {
                detail: format!("cannot create spill file {}: {e}", path.display()),
            })?;
        Ok(SpillFile { file, path, len: 0 })
    }

    fn append(&mut self, bytes: &[u8]) -> Result<DiskSlot> {
        let offset = self.len;
        self.file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| self.file.write_all(bytes))
            .map_err(|e| StorageError::Persistence {
                detail: format!("spill write failed: {e}"),
            })?;
        self.len += bytes.len() as u64;
        Ok(DiskSlot {
            offset,
            len: bytes.len(),
        })
    }

    fn read(&mut self, slot: DiskSlot) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; slot.len];
        self.file
            .seek(SeekFrom::Start(slot.offset))
            .and_then(|_| self.file.read_exact(&mut buf))
            .map_err(|e| StorageError::Persistence {
                detail: format!("spill read failed: {e}"),
            })?;
        Ok(buf)
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnDef, DataType, Schema, Value};

    fn batch(tag: i64, rows: usize) -> RecordBatch {
        let schema = Schema::new(vec![
            ColumnDef::public("id", DataType::Int),
            ColumnDef::public("s", DataType::Varchar),
        ]);
        RecordBatch::from_rows(
            schema,
            (0..rows)
                .map(|i| {
                    vec![
                        Value::Int(tag * 1000 + i as i64),
                        Value::Str(format!("row-{tag}-{i}")),
                    ]
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn unlimited_pager_never_spills() {
        let pager = Arc::new(Pager::new(&MemoryBudget::unlimited()));
        let ids: Vec<_> = (0..20)
            .map(|i| pager.append_page(batch(i, 50)).unwrap())
            .collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(pager.read_page(*id).unwrap().as_ref(), &batch(i as i64, 50));
        }
        assert_eq!(pager.stats().pages_spilled, 0);
        assert!(pager.spill_path().is_none());
    }

    #[test]
    fn tiny_budget_spills_and_pages_fault_back_identical() {
        let one_page = batch(0, 50).approx_size_bytes();
        let pager = Arc::new(Pager::new(&MemoryBudget::bytes(one_page * 2)));
        let ids: Vec<_> = (0..10)
            .map(|i| pager.append_page(batch(i, 50)).unwrap())
            .collect();
        let stats = pager.stats();
        assert!(stats.pages_spilled > 0, "must have spilled: {stats:?}");
        assert!(stats.spill_bytes_written > 0);
        assert!(pager.resident_bytes() <= one_page * 2 + one_page);
        assert!(pager.spill_path().unwrap().exists());

        // Every page reads back byte-identical, in any order.
        for (i, id) in ids.iter().enumerate().rev() {
            assert_eq!(pager.read_page(*id).unwrap().as_ref(), &batch(i as i64, 50));
        }
        assert!(pager.stats().spill_bytes_read > 0);
        assert!(pager.stats().peak_resident_pages >= 2);
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let one_page = batch(0, 50).approx_size_bytes();
        let pager = Arc::new(Pager::new(&MemoryBudget::bytes(one_page)));
        let first = pager.append_page(batch(0, 50)).unwrap();
        let pinned = pager.pin(first).unwrap();
        // Push the pool far over budget; the pinned page must stay put.
        for i in 1..6 {
            pager.append_page(batch(i, 50)).unwrap();
        }
        assert_eq!(&*pinned, &batch(0, 50));
        assert_eq!(pinned.id(), first);
        drop(pinned);
        // Now it can be evicted; freeing it while pinned would have errored.
        for i in 6..10 {
            pager.append_page(batch(i, 50)).unwrap();
        }
        assert_eq!(pager.read_page(first).unwrap().as_ref(), &batch(0, 50));
    }

    #[test]
    fn free_rejects_pinned_and_forgets_pages() {
        let pager = Arc::new(Pager::new(&MemoryBudget::bytes(64)));
        let id = pager.append_page(batch(0, 10)).unwrap();
        let pin = pager.pin(id).unwrap();
        assert!(pager.free_page(id).is_err(), "pinned pages cannot be freed");
        drop(pin);
        pager.free_page(id).unwrap();
        assert!(pager.read_page(id).is_err(), "freed pages are gone");
        // Freeing twice is a no-op.
        pager.free_page(id).unwrap();
    }

    #[test]
    fn spill_file_removed_on_drop() {
        let dir = std::env::temp_dir();
        let path = {
            let pager = Arc::new(Pager::new(&MemoryBudget::bytes(32).with_spill_dir(&dir)));
            for i in 0..8 {
                pager.append_page(batch(i, 20)).unwrap();
            }
            let path = pager.spill_path().expect("tiny budget must spill");
            assert!(path.exists());
            path
        };
        assert!(!path.exists(), "drop must delete the spill file");
    }

    #[test]
    fn observer_sees_spill_writes_reads_and_evictions() {
        let one_page = batch(0, 50).approx_size_bytes();
        let pager = Arc::new(Pager::new(&MemoryBudget::bytes(one_page * 2)));
        let events = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        pager.set_observer(Some(Arc::new(move |e| sink.lock().push(e))));

        let ids: Vec<_> = (0..6)
            .map(|i| pager.append_page(batch(i, 50)).unwrap())
            .collect();
        pager.read_page(ids[0]).unwrap();

        let seen = events.lock().clone();
        let stats = pager.stats();
        let writes = seen
            .iter()
            .filter(|e| matches!(e, PagerEvent::SpillWrite { .. }))
            .count();
        let reads = seen
            .iter()
            .filter(|e| matches!(e, PagerEvent::SpillRead { .. }))
            .count();
        let evicts = seen
            .iter()
            .filter(|e| matches!(e, PagerEvent::Evict))
            .count();
        assert_eq!(writes, stats.pages_spilled, "one event per spill write");
        assert!(reads > 0, "faulting page 0 back must emit a read");
        assert_eq!(evicts, stats.pages_evicted);
        assert!(seen.iter().all(|e| match e {
            PagerEvent::SpillWrite { bytes } | PagerEvent::SpillRead { bytes } => *bytes > 0,
            PagerEvent::Evict => true,
        }));

        // Clearing the observer stops delivery.
        pager.set_observer(None);
        let before = events.lock().len();
        for i in 6..9 {
            pager.append_page(batch(i, 50)).unwrap();
        }
        assert_eq!(events.lock().len(), before);
    }

    #[test]
    fn eviction_prefers_unreferenced_pages() {
        let one_page = batch(0, 50).approx_size_bytes();
        let pager = Arc::new(Pager::new(&MemoryBudget::bytes(one_page * 3)));
        let hot = pager.append_page(batch(0, 50)).unwrap();
        let cold = pager.append_page(batch(1, 50)).unwrap();
        // Keep touching the hot page while admitting new ones.
        for i in 2..8 {
            pager.read_page(hot).unwrap();
            pager.append_page(batch(i, 50)).unwrap();
        }
        // Both still readable regardless of which frame was chosen.
        assert_eq!(pager.read_page(hot).unwrap().as_ref(), &batch(0, 50));
        assert_eq!(pager.read_page(cold).unwrap().as_ref(), &batch(1, 50));
        assert!(pager.stats().pages_evicted > 0);
    }
}
