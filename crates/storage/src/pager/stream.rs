//! Ordered page streams over the pager: the building block spilling
//! operators use for partition files.
//!
//! A [`PageStreamWriter`] buffers rows for one logical stream (an external
//! hash join partition, a sorted run, …) and flushes them to pager pages when
//! the buffer reaches a byte or row threshold, so a fan-out of writers cannot
//! hoard the memory budget. [`PageStreamWriter::finish`] seals the stream
//! into a [`PageStream`] — the ordered page list plus row/byte accounting the
//! consumer needs for its recursion decisions — and a [`PageStreamReader`]
//! walks the pages in write order, freeing each page as soon as it has been
//! handed out (streams are consume-once: a spilled partition is never read
//! twice).
//!
//! Rows come back exactly in the order they were pushed: pages are appended
//! and read in order, and each page preserves its row order through the
//! page-codec round trip ([`encode_batch`](super::encode_batch) /
//! [`decode_batch`](super::decode_batch)).

use std::sync::Arc;

use super::pool::{PageId, Pager};
use crate::{Column, RecordBatch, Result, Schema, StorageError, Value};

/// Buffers rows for one page stream and flushes them to pager pages.
///
/// Flushing happens when the buffered rows exceed `flush_bytes` (approximate,
/// via [`Value::approx_size`]) or `max_rows`, whichever comes first.
///
/// Pages are built without per-value type validation: the page codec tags
/// every value individually, so the schema's declared column types are
/// advisory (spilling operators use placeholder types for bookkeeping
/// columns holding mixed values). Row *arity* is still checked.
pub struct PageStreamWriter {
    schema: Schema,
    buffer: Vec<Vec<Value>>,
    buffer_bytes: usize,
    flush_bytes: usize,
    max_rows: usize,
    pages: Vec<PageId>,
    rows: usize,
    bytes: usize,
}

impl PageStreamWriter {
    /// Creates a writer producing pages of `schema`-shaped batches.
    ///
    /// Panics if `max_rows` is zero (a page must be able to hold a row).
    pub fn new(schema: Schema, flush_bytes: usize, max_rows: usize) -> Self {
        assert!(max_rows > 0, "a page must hold at least one row");
        PageStreamWriter {
            schema,
            buffer: Vec::new(),
            buffer_bytes: 0,
            flush_bytes: flush_bytes.max(1),
            max_rows,
            pages: Vec::new(),
            rows: 0,
            bytes: 0,
        }
    }

    /// Appends one row, flushing the buffer to a page when it is full.
    pub fn push_row(&mut self, pager: &Pager, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.len(),
                found: row.len(),
            });
        }
        let size = row.iter().map(Value::approx_size).sum::<usize>();
        self.buffer_bytes += size;
        self.bytes += size;
        self.rows += 1;
        self.buffer.push(row);
        if self.buffer_bytes >= self.flush_bytes || self.buffer.len() >= self.max_rows {
            self.flush(pager)?;
        }
        Ok(())
    }

    /// Rows pushed so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    fn flush(&mut self, pager: &Pager) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let mut columns: Vec<Column> = self
            .schema
            .columns()
            .iter()
            .map(|c| Column::new(c.data_type))
            .collect();
        for row in self.buffer.drain(..) {
            for (column, value) in columns.iter_mut().zip(row) {
                column.push_unchecked(value);
            }
        }
        let batch = RecordBatch::new(self.schema.clone(), columns)?;
        self.buffer_bytes = 0;
        self.pages.push(pager.append_page(batch)?);
        Ok(())
    }

    /// Flushes any buffered rows and seals the stream.
    pub fn finish(mut self, pager: &Pager) -> Result<PageStream> {
        self.flush(pager)?;
        Ok(PageStream {
            schema: self.schema,
            pages: self.pages,
            rows: self.rows,
            bytes: self.bytes,
        })
    }
}

/// A sealed, ordered sequence of pager pages plus its size accounting.
pub struct PageStream {
    schema: Schema,
    pages: Vec<PageId>,
    rows: usize,
    bytes: usize,
}

impl PageStream {
    /// The schema every page of this stream was written with.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total rows across all pages.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Approximate decoded bytes across all pages (the accounting the
    /// consumer's spill/recursion decisions run on).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of pages in the stream.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// True when no rows were ever pushed.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Starts consuming the stream in write order.
    pub fn reader(self) -> PageStreamReader {
        PageStreamReader {
            pages: self.pages,
            next: 0,
        }
    }

    /// Starts a non-consuming pass over the stream in write order. Unlike
    /// [`PageStream::reader`], pages stay in the pool (or spill file) after
    /// being read, so the stream can be scanned any number of times — the
    /// multi-pass access pattern of a block-nested-loop join. Free the
    /// stream explicitly with [`PageStream::free`] when done.
    pub fn scan(&self) -> PageStreamScan<'_> {
        PageStreamScan {
            stream: self,
            next: 0,
        }
    }

    /// Frees every page without reading it (abandoning the stream).
    pub fn free(self, pager: &Pager) -> Result<()> {
        for id in self.pages {
            pager.free_page(id)?;
        }
        Ok(())
    }
}

/// Re-runnable, non-consuming cursor over a [`PageStream`]'s pages (see
/// [`PageStream::scan`]). Reading faults pages back in through the pool; the
/// pool's normal eviction keeps the resident set within budget, so a full
/// pass costs IO, not memory.
pub struct PageStreamScan<'s> {
    stream: &'s PageStream,
    next: usize,
}

impl PageStreamScan<'_> {
    /// Reads the next non-empty page without freeing it, or `None` at the
    /// end of the stream.
    pub fn next_batch(&mut self, pager: &Pager) -> Result<Option<Arc<RecordBatch>>> {
        while self.next < self.stream.pages.len() {
            let id = self.stream.pages[self.next];
            self.next += 1;
            let batch = pager.read_page(id)?;
            if batch.num_rows() > 0 {
                return Ok(Some(batch));
            }
        }
        Ok(None)
    }
}

/// Consume-once cursor over a [`PageStream`]'s pages.
///
/// Each [`PageStreamReader::next_batch`] call reads the next page and
/// immediately frees it in the pool — the returned `Arc` keeps the decoded
/// batch alive for the caller while the pool reclaims the frame's budget, so
/// a reader holds at most one page outside the pool at a time.
pub struct PageStreamReader {
    pages: Vec<PageId>,
    next: usize,
}

impl PageStreamReader {
    /// Reads (and frees) the next page, or `None` when the stream is done.
    pub fn next_batch(&mut self, pager: &Pager) -> Result<Option<Arc<RecordBatch>>> {
        while self.next < self.pages.len() {
            let id = self.pages[self.next];
            self.next += 1;
            let batch = pager.read_page(id)?;
            pager.free_page(id)?;
            if batch.num_rows() > 0 {
                return Ok(Some(batch));
            }
        }
        Ok(None)
    }

    /// Frees every unread page (early close / error paths).
    ///
    /// A reader dropped mid-stream without `release` leaks its remaining
    /// pages into the pool until the pager itself drops (which also deletes
    /// the spill file) — acceptable on error paths, where operators unwind
    /// without running `close`.
    pub fn release(&mut self, pager: &Pager) {
        for &id in &self.pages[self.next..] {
            let _ = pager.free_page(id);
        }
        self.next = self.pages.len();
    }
}

#[cfg(test)]
mod tests {
    use super::super::MemoryBudget;
    use super::*;
    use crate::{ColumnDef, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::public("a", DataType::Int),
            ColumnDef::public("b", DataType::Varchar),
        ])
    }

    fn row(i: i64) -> Vec<Value> {
        vec![Value::Int(i), Value::Str(format!("r{i}"))]
    }

    #[test]
    fn rows_come_back_in_push_order() {
        let pager = Arc::new(Pager::new(&MemoryBudget::unlimited()));
        let mut writer = PageStreamWriter::new(schema(), 64, 7);
        for i in 0..100 {
            writer.push_row(&pager, row(i)).unwrap();
        }
        let stream = writer.finish(&pager).unwrap();
        assert_eq!(stream.rows(), 100);
        assert!(stream.bytes() > 0);
        assert!(stream.num_pages() > 1, "tiny thresholds force many pages");

        let mut reader = stream.reader();
        let mut seen = Vec::new();
        while let Some(batch) = reader.next_batch(&pager).unwrap() {
            for r in 0..batch.num_rows() {
                seen.push(batch.column(0).get(r).as_i64().unwrap());
            }
        }
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn reading_frees_pages_as_it_goes() {
        let pager = Arc::new(Pager::new(&MemoryBudget::unlimited()));
        let mut writer = PageStreamWriter::new(schema(), 1, 1); // one row per page
        for i in 0..5 {
            writer.push_row(&pager, row(i)).unwrap();
        }
        let stream = writer.finish(&pager).unwrap();
        assert_eq!(stream.num_pages(), 5);
        let mut reader = stream.reader();
        let mut read = 0;
        while reader.next_batch(&pager).unwrap().is_some() {
            read += 1;
        }
        assert_eq!(read, 5);
        assert_eq!(
            pager.resident_bytes(),
            0,
            "every page is freed once consumed"
        );
    }

    #[test]
    fn empty_stream_reads_nothing() {
        let pager = Arc::new(Pager::new(&MemoryBudget::unlimited()));
        let writer = PageStreamWriter::new(schema(), 1024, 8);
        let stream = writer.finish(&pager).unwrap();
        assert!(stream.is_empty());
        assert_eq!(stream.num_pages(), 0);
        assert!(stream.reader().next_batch(&pager).unwrap().is_none());
    }

    #[test]
    fn free_and_release_drop_all_pages() {
        let pager = Arc::new(Pager::new(&MemoryBudget::unlimited()));
        let mut writer = PageStreamWriter::new(schema(), 1, 1);
        for i in 0..4 {
            writer.push_row(&pager, row(i)).unwrap();
        }
        writer.finish(&pager).unwrap().free(&pager).unwrap();
        assert_eq!(pager.resident_bytes(), 0);

        let mut writer = PageStreamWriter::new(schema(), 1, 1);
        for i in 0..4 {
            writer.push_row(&pager, row(i)).unwrap();
        }
        let mut reader = writer.finish(&pager).unwrap().reader();
        reader.next_batch(&pager).unwrap();
        reader.release(&pager);
        assert_eq!(pager.resident_bytes(), 0);
        assert!(reader.next_batch(&pager).unwrap().is_none());
    }

    #[test]
    fn scan_is_repeatable_and_keeps_pages() {
        let pager = Arc::new(Pager::new(&MemoryBudget::bytes(64)));
        let mut writer = PageStreamWriter::new(schema(), 32, 4);
        for i in 0..30 {
            writer.push_row(&pager, row(i)).unwrap();
        }
        let stream = writer.finish(&pager).unwrap();
        for _ in 0..3 {
            let mut scan = stream.scan();
            let mut seen = Vec::new();
            while let Some(batch) = scan.next_batch(&pager).unwrap() {
                for r in 0..batch.num_rows() {
                    seen.push(batch.column(0).get(r).as_i64().unwrap());
                }
            }
            assert_eq!(seen, (0..30).collect::<Vec<_>>(), "every pass is full");
        }
        // Pages survived the scans and are reclaimed by an explicit free.
        stream.free(&pager).unwrap();
        assert_eq!(pager.resident_bytes(), 0);
    }

    #[test]
    fn streams_spill_under_a_tiny_budget_and_round_trip() {
        let pager = Arc::new(Pager::new(&MemoryBudget::bytes(64)));
        let mut writer = PageStreamWriter::new(schema(), 32, 4);
        for i in 0..50 {
            writer.push_row(&pager, row(i)).unwrap();
        }
        let stream = writer.finish(&pager).unwrap();
        assert!(pager.stats().pages_spilled > 0, "64B budget must spill");
        let mut reader = stream.reader();
        let mut seen = Vec::new();
        while let Some(batch) = reader.next_batch(&pager).unwrap() {
            for r in 0..batch.num_rows() {
                seen.push(batch.column(0).get(r).as_i64().unwrap());
            }
        }
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }
}
