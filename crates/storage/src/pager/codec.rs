//! Compact binary codec for spilled [`RecordBatch`] pages.
//!
//! The JSON serde path (used for catalog persistence) is far too verbose for
//! spill traffic, so pages use a dense little-endian layout instead:
//!
//! ```text
//! magic "SDBP" · version u16 · ncols u32 · nrows u64
//! per column: name (u16 len + utf8) · type tag u8 [· decimal scale u8] · sensitivity u8
//! per column: nrows values, each 1 tag byte + payload
//! ```
//!
//! Every value carries its own tag, so columns may hold heterogeneous values
//! (sort-key columns mix NULLs, INTs and DECIMALs freely) — the declared
//! column type is metadata, exactly as in the in-memory representation.
//! Decoding validates the header and every length field and fails with
//! [`StorageError::Persistence`] rather than panicking on truncated or
//! corrupt input.

use num_bigint::BigUint;
use sdb_crypto::sies::SiesCiphertext;
use sdb_crypto::EncryptedRowId;

use crate::{
    Column, ColumnDef, DataType, RecordBatch, Result, Schema, Sensitivity, StorageError, Value,
};

const MAGIC: &[u8; 4] = b"SDBP";
const VERSION: u16 = 1;

fn corrupt(detail: impl Into<String>) -> StorageError {
    StorageError::Persistence {
        detail: format!("page codec: {}", detail.into()),
    }
}

/// Encodes a batch into the spill-page wire format.
pub fn encode_batch(batch: &RecordBatch) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + batch.approx_size_bytes());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(batch.num_columns() as u32).to_le_bytes());
    out.extend_from_slice(&(batch.num_rows() as u64).to_le_bytes());
    for def in batch.schema().columns() {
        encode_column_def(&mut out, def);
    }
    for column in batch.columns() {
        for value in column.values() {
            encode_value(&mut out, value);
        }
    }
    out
}

/// Decodes a batch previously produced by [`encode_batch`].
pub fn decode_batch(bytes: &[u8]) -> Result<RecordBatch> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(corrupt(format!("unsupported version {version}")));
    }
    let ncols = r.u32()? as usize;
    let nrows = r.u64()? as usize;
    // A page never holds more values than it has bytes, and every column
    // definition occupies at least 4 bytes; reject absurd headers before
    // allocating (the ncols bound also covers the nrows == 0 case, where
    // the product check alone would pass).
    if ncols.saturating_mul(4) > bytes.len() || ncols.saturating_mul(nrows) > bytes.len() {
        return Err(corrupt("header claims more values than the page holds"));
    }
    let mut defs = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        defs.push(decode_column_def(&mut r)?);
    }
    let mut columns = Vec::with_capacity(ncols);
    for def in &defs {
        let mut column = Column::new(def.data_type);
        for _ in 0..nrows {
            column.push_unchecked(decode_value(&mut r)?);
        }
        columns.push(column);
    }
    if !r.is_empty() {
        return Err(corrupt("trailing bytes after the last value"));
    }
    RecordBatch::new(Schema::new(defs), columns)
}

fn encode_column_def(out: &mut Vec<u8>, def: &ColumnDef) {
    out.extend_from_slice(&(def.name.len() as u16).to_le_bytes());
    out.extend_from_slice(def.name.as_bytes());
    match def.data_type {
        DataType::Int => out.push(0),
        DataType::Decimal { scale } => {
            out.push(1);
            out.push(scale);
        }
        DataType::Varchar => out.push(2),
        DataType::Date => out.push(3),
        DataType::Bool => out.push(4),
        DataType::Encrypted => out.push(5),
        DataType::EncryptedRowId => out.push(6),
        DataType::Tag => out.push(7),
    }
    out.push(match def.sensitivity {
        Sensitivity::Public => 0,
        Sensitivity::Sensitive => 1,
    });
}

fn decode_column_def(r: &mut Reader<'_>) -> Result<ColumnDef> {
    let name_len = r.u16()? as usize;
    let name = String::from_utf8(r.take(name_len)?.to_vec())
        .map_err(|_| corrupt("column name is not UTF-8"))?;
    let data_type = match r.u8()? {
        0 => DataType::Int,
        1 => DataType::Decimal { scale: r.u8()? },
        2 => DataType::Varchar,
        3 => DataType::Date,
        4 => DataType::Bool,
        5 => DataType::Encrypted,
        6 => DataType::EncryptedRowId,
        7 => DataType::Tag,
        t => return Err(corrupt(format!("unknown type tag {t}"))),
    };
    let sensitivity = match r.u8()? {
        0 => Sensitivity::Public,
        1 => Sensitivity::Sensitive,
        s => return Err(corrupt(format!("unknown sensitivity tag {s}"))),
    };
    Ok(ColumnDef {
        name,
        data_type,
        sensitivity,
    })
}

fn encode_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => out.push(0),
        Value::Int(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Decimal { units, scale } => {
            out.push(2);
            out.push(*scale);
            out.extend_from_slice(&units.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(3);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Date(d) => {
            out.push(4);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Value::Bool(false) => out.push(5),
        Value::Bool(true) => out.push(6),
        Value::Encrypted(e) => {
            out.push(7);
            let bytes = e.to_bytes_le();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        Value::EncryptedRowId(rid) => {
            out.push(8);
            out.extend_from_slice(&rid.0.nonce.to_le_bytes());
            out.extend_from_slice(&(rid.0.body.len() as u32).to_le_bytes());
            out.extend_from_slice(&rid.0.body);
            out.extend_from_slice(&rid.0.tag.to_le_bytes());
        }
        Value::Tag(t) => {
            out.push(9);
            out.extend_from_slice(&t.to_le_bytes());
        }
    }
}

fn decode_value(r: &mut Reader<'_>) -> Result<Value> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Int(r.i64()?),
        2 => Value::Decimal {
            scale: r.u8()?,
            units: r.i64()?,
        },
        3 => {
            let len = r.u32()? as usize;
            Value::Str(
                String::from_utf8(r.take(len)?.to_vec())
                    .map_err(|_| corrupt("string value is not UTF-8"))?,
            )
        }
        4 => Value::Date(r.i32()?),
        5 => Value::Bool(false),
        6 => Value::Bool(true),
        7 => {
            let len = r.u32()? as usize;
            Value::Encrypted(BigUint::from_bytes_le(r.take(len)?))
        }
        8 => {
            let nonce = r.u64()?;
            let len = r.u32()? as usize;
            let body = r.take(len)?.to_vec();
            let tag = r.u64()?;
            Value::EncryptedRowId(EncryptedRowId(SiesCiphertext { nonce, body, tag }))
        }
        9 => Value::Tag(r.u64()?),
        t => return Err(corrupt(format!("unknown value tag {t}"))),
    })
}

/// Bounds-checked little-endian cursor over the encoded page.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| corrupt("truncated page"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> Result<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_type_batch() -> RecordBatch {
        let schema = Schema::new(vec![
            ColumnDef::public("i", DataType::Int),
            ColumnDef::public("d", DataType::Decimal { scale: 2 }),
            ColumnDef::public("s", DataType::Varchar),
            ColumnDef::public("dt", DataType::Date),
            ColumnDef::public("b", DataType::Bool),
            ColumnDef::sensitive("e", DataType::Encrypted),
            ColumnDef::public("r", DataType::EncryptedRowId),
            ColumnDef::public("t", DataType::Tag),
        ]);
        let rid = EncryptedRowId(SiesCiphertext {
            nonce: 7,
            body: vec![1, 2, 3, 4],
            tag: 0xfeed,
        });
        RecordBatch::from_rows(
            schema,
            vec![
                vec![
                    Value::Int(-42),
                    Value::Decimal {
                        units: 1299,
                        scale: 2,
                    },
                    Value::Str("héllo \u{1f}".into()),
                    Value::Date(19_000),
                    Value::Bool(true),
                    Value::Encrypted(BigUint::from(1u8) << 200u32),
                    Value::EncryptedRowId(rid),
                    Value::Tag(u64::MAX),
                ],
                vec![
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_every_value_type() {
        let batch = every_type_batch();
        let bytes = encode_batch(&batch);
        let back = decode_batch(&bytes).unwrap();
        assert_eq!(batch, back);
    }

    #[test]
    fn roundtrip_empty_batch_keeps_schema() {
        let batch = RecordBatch::empty(Schema::new(vec![ColumnDef::sensitive(
            "x",
            DataType::Encrypted,
        )]));
        let back = decode_batch(&encode_batch(&batch)).unwrap();
        assert_eq!(batch, back);
        assert!(back.schema().column_at(0).sensitivity.is_sensitive());
    }

    #[test]
    fn heterogeneous_column_values_survive() {
        // Sort-key columns mix value types under one declared column type.
        let mut column = Column::new(DataType::Int);
        column.push_unchecked(Value::Int(1));
        column.push_unchecked(Value::Str("two".into()));
        column.push_unchecked(Value::Null);
        let batch = RecordBatch::new(
            Schema::new(vec![ColumnDef::public("k", DataType::Int)]),
            vec![column],
        )
        .unwrap();
        let back = decode_batch(&encode_batch(&batch)).unwrap();
        assert_eq!(batch, back);
    }

    #[test]
    fn corrupt_pages_error_instead_of_panicking() {
        let bytes = encode_batch(&every_type_batch());
        assert!(decode_batch(&[]).is_err());
        assert!(decode_batch(b"NOPE").is_err());
        assert!(
            decode_batch(&bytes[..bytes.len() - 3]).is_err(),
            "truncated"
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_batch(&trailing).is_err(), "trailing bytes");
        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert!(decode_batch(&bad_version).is_err());
        // Absurd row count must not cause a huge allocation or a panic.
        let mut bad_rows = bytes.clone();
        bad_rows[10..18].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_batch(&bad_rows).is_err());
        // Nor an absurd column count — even with nrows = 0, where the
        // values-fit product check alone would be vacuously satisfied.
        let mut bad_cols = bytes;
        bad_cols[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        bad_cols[10..18].copy_from_slice(&0u64.to_le_bytes());
        assert!(decode_batch(&bad_cols).is_err());
    }

    #[test]
    fn encoding_is_compact_relative_to_json() {
        let batch = every_type_batch();
        let binary = encode_batch(&batch).len();
        let json = serde_json::to_string(&batch).unwrap().len();
        assert!(
            binary * 2 < json,
            "binary ({binary}) should be far smaller than JSON ({json})"
        );
    }
}
