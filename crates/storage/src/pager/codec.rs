//! Compact binary codec for spilled [`RecordBatch`] pages.
//!
//! The JSON serde path (used for catalog persistence) is far too verbose for
//! spill traffic, so pages use a dense little-endian layout instead:
//!
//! ```text
//! magic "SDBP" · version u16 · ncols u32 · nrows u64
//! per column: name (u16 len + utf8) · type tag u8 [· decimal scale u8] · sensitivity u8
//! per column: layout u8 · payload
//! ```
//!
//! Version 2 encodes each column under one of two layouts, chosen per page:
//!
//! * **layout 1 (columnar)** — used when the column's runtime values all match
//!   its declared type (the overwhelmingly common case): a validity bitmap
//!   (`u64` words, bit set = present) followed by the typed vector — packed
//!   `i64`s for INT, `units`/`scales`/int-marker bitmap for DECIMAL,
//!   offsets + concatenated bytes for VARCHAR, packed `i32`s for DATE, a bit
//!   vector for BOOL, packed `u64`s for TAG. No per-value tag bytes at all.
//! * **layout 0 (tagged)** — the version-1 fallback of one tag byte per
//!   value. Used for heterogeneous columns (sort-key columns mix NULLs, INTs
//!   and DECIMALs freely) and for the variable-length ENCRYPTED /
//!   ENC_ROW_ID payloads, where tag bytes are noise next to the bigints.
//!
//! Both layouts round-trip byte-identically through [`crate::ColumnarColumn`].
//! Decoding validates the header and every length field and fails with
//! [`StorageError::Persistence`] rather than panicking on truncated or
//! corrupt input. Spill pages never outlive the process, so version 1 pages
//! are not decodable — there are none to decode.

use num_bigint::BigUint;
use sdb_crypto::sies::SiesCiphertext;
use sdb_crypto::EncryptedRowId;

use crate::{
    Bitmap, Column, ColumnDef, ColumnVector, ColumnarColumn, DataType, RecordBatch, Result, Schema,
    Sensitivity, StorageError, Value,
};

const MAGIC: &[u8; 4] = b"SDBP";
const VERSION: u16 = 2;

/// Per-value tag bytes (the version-1 format).
const LAYOUT_TAGGED: u8 = 0;
/// Validity bitmap + typed vector.
const LAYOUT_COLUMNAR: u8 = 1;

fn corrupt(detail: impl Into<String>) -> StorageError {
    StorageError::Persistence {
        detail: format!("page codec: {}", detail.into()),
    }
}

/// Encodes a batch into the spill-page wire format.
pub fn encode_batch(batch: &RecordBatch) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + batch.approx_size_bytes());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(batch.num_columns() as u32).to_le_bytes());
    out.extend_from_slice(&(batch.num_rows() as u64).to_le_bytes());
    for def in batch.schema().columns() {
        encode_column_def(&mut out, def);
    }
    for column in batch.columns() {
        encode_column_values(&mut out, column);
    }
    out
}

fn encode_column_values(out: &mut Vec<u8>, column: &Column) {
    let pivoted = ColumnarColumn::from_column(column);
    match pivoted.vector() {
        // Mixed-type columns and the variable-length crypto payloads keep
        // the tagged layout: the former have no typed vector, the latter
        // gain nothing from dropping one tag byte per bigint.
        ColumnVector::Values(_) | ColumnVector::Encrypted(_) | ColumnVector::EncryptedRowId(_) => {
            out.push(LAYOUT_TAGGED);
            for value in column.values() {
                encode_value(out, value);
            }
        }
        vector => {
            out.push(LAYOUT_COLUMNAR);
            encode_words(out, pivoted.validity().words());
            match vector {
                ColumnVector::Int(v) => {
                    for x in v {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                }
                ColumnVector::Decimal {
                    units,
                    scales,
                    ints,
                } => {
                    for u in units {
                        out.extend_from_slice(&u.to_le_bytes());
                    }
                    out.extend_from_slice(scales);
                    encode_words(out, ints.words());
                }
                ColumnVector::Str { offsets, bytes } => {
                    for o in offsets {
                        out.extend_from_slice(&o.to_le_bytes());
                    }
                    out.extend_from_slice(bytes);
                }
                ColumnVector::Date(v) => {
                    for d in v {
                        out.extend_from_slice(&d.to_le_bytes());
                    }
                }
                ColumnVector::Bool(bits) => encode_words(out, bits.words()),
                ColumnVector::Tag(v) => {
                    for t in v {
                        out.extend_from_slice(&t.to_le_bytes());
                    }
                }
                ColumnVector::Values(_)
                | ColumnVector::Encrypted(_)
                | ColumnVector::EncryptedRowId(_) => unreachable!("handled by the tagged arm"),
            }
        }
    }
}

fn encode_words(out: &mut Vec<u8>, words: &[u64]) {
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Decodes a batch previously produced by [`encode_batch`].
pub fn decode_batch(bytes: &[u8]) -> Result<RecordBatch> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(corrupt(format!("unsupported version {version}")));
    }
    let ncols = r.u32()? as usize;
    let nrows = r.u64()? as usize;
    // A page never holds more values than it has *bits* (every value costs at
    // least one validity bit under the columnar layout), and every column
    // definition occupies at least 4 bytes; reject absurd headers before
    // allocating (the ncols bound also covers the nrows == 0 case, where
    // the product check alone would pass).
    if ncols.saturating_mul(4) > bytes.len()
        || ncols.saturating_mul(nrows) > bytes.len().saturating_mul(64)
    {
        return Err(corrupt("header claims more values than the page holds"));
    }
    let mut defs = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        defs.push(decode_column_def(&mut r)?);
    }
    let mut columns = Vec::with_capacity(ncols);
    for def in &defs {
        columns.push(decode_column_values(&mut r, def.data_type, nrows)?);
    }
    if !r.is_empty() {
        return Err(corrupt("trailing bytes after the last value"));
    }
    RecordBatch::new(Schema::new(defs), columns)
}

fn encode_column_def(out: &mut Vec<u8>, def: &ColumnDef) {
    out.extend_from_slice(&(def.name.len() as u16).to_le_bytes());
    out.extend_from_slice(def.name.as_bytes());
    match def.data_type {
        DataType::Int => out.push(0),
        DataType::Decimal { scale } => {
            out.push(1);
            out.push(scale);
        }
        DataType::Varchar => out.push(2),
        DataType::Date => out.push(3),
        DataType::Bool => out.push(4),
        DataType::Encrypted => out.push(5),
        DataType::EncryptedRowId => out.push(6),
        DataType::Tag => out.push(7),
    }
    out.push(match def.sensitivity {
        Sensitivity::Public => 0,
        Sensitivity::Sensitive => 1,
    });
}

fn decode_column_def(r: &mut Reader<'_>) -> Result<ColumnDef> {
    let name_len = r.u16()? as usize;
    let name = String::from_utf8(r.take(name_len)?.to_vec())
        .map_err(|_| corrupt("column name is not UTF-8"))?;
    let data_type = match r.u8()? {
        0 => DataType::Int,
        1 => DataType::Decimal { scale: r.u8()? },
        2 => DataType::Varchar,
        3 => DataType::Date,
        4 => DataType::Bool,
        5 => DataType::Encrypted,
        6 => DataType::EncryptedRowId,
        7 => DataType::Tag,
        t => return Err(corrupt(format!("unknown type tag {t}"))),
    };
    let sensitivity = match r.u8()? {
        0 => Sensitivity::Public,
        1 => Sensitivity::Sensitive,
        s => return Err(corrupt(format!("unknown sensitivity tag {s}"))),
    };
    Ok(ColumnDef {
        name,
        data_type,
        sensitivity,
    })
}

fn decode_column_values(r: &mut Reader<'_>, data_type: DataType, nrows: usize) -> Result<Column> {
    let mut column = Column::new(data_type);
    match r.u8()? {
        LAYOUT_TAGGED => {
            for _ in 0..nrows {
                column.push_unchecked(decode_value(r)?);
            }
        }
        LAYOUT_COLUMNAR => {
            let validity = decode_bitmap(r, nrows)?;
            match data_type {
                DataType::Int => {
                    let v = r.i64_array(nrows)?;
                    for (i, x) in v.into_iter().enumerate() {
                        column.push_unchecked(if validity.get(i) {
                            Value::Int(x)
                        } else {
                            Value::Null
                        });
                    }
                }
                DataType::Decimal { .. } => {
                    let units = r.i64_array(nrows)?;
                    let scales = r.take(nrows)?.to_vec();
                    let ints = decode_bitmap(r, nrows)?;
                    for (i, u) in units.into_iter().enumerate() {
                        column.push_unchecked(if !validity.get(i) {
                            Value::Null
                        } else if ints.get(i) {
                            Value::Int(u)
                        } else {
                            Value::Decimal {
                                units: u,
                                scale: scales[i],
                            }
                        });
                    }
                }
                DataType::Varchar => {
                    let offsets = r.u32_array(nrows + 1)?;
                    let total = *offsets.last().expect("nrows + 1 >= 1") as usize;
                    let bytes = r.take(total)?;
                    for i in 0..nrows {
                        if !validity.get(i) {
                            column.push_unchecked(Value::Null);
                            continue;
                        }
                        let (start, end) = (offsets[i] as usize, offsets[i + 1] as usize);
                        if start > end || end > total {
                            return Err(corrupt("string offsets out of order"));
                        }
                        let s = String::from_utf8(bytes[start..end].to_vec())
                            .map_err(|_| corrupt("string value is not UTF-8"))?;
                        column.push_unchecked(Value::Str(s));
                    }
                }
                DataType::Date => {
                    let v = r.i32_array(nrows)?;
                    for (i, d) in v.into_iter().enumerate() {
                        column.push_unchecked(if validity.get(i) {
                            Value::Date(d)
                        } else {
                            Value::Null
                        });
                    }
                }
                DataType::Bool => {
                    let bits = decode_bitmap(r, nrows)?;
                    for i in 0..nrows {
                        column.push_unchecked(if validity.get(i) {
                            Value::Bool(bits.get(i))
                        } else {
                            Value::Null
                        });
                    }
                }
                DataType::Tag => {
                    let v = r.u64_array(nrows)?;
                    for (i, t) in v.into_iter().enumerate() {
                        column.push_unchecked(if validity.get(i) {
                            Value::Tag(t)
                        } else {
                            Value::Null
                        });
                    }
                }
                DataType::Encrypted | DataType::EncryptedRowId => {
                    return Err(corrupt("crypto columns always use the tagged layout"));
                }
            }
        }
        l => return Err(corrupt(format!("unknown column layout {l}"))),
    }
    Ok(column)
}

fn decode_bitmap(r: &mut Reader<'_>, len: usize) -> Result<Bitmap> {
    let words = r.u64_array(len.div_ceil(64))?;
    Bitmap::from_words(words, len).ok_or_else(|| corrupt("bitmap word count mismatch"))
}

fn encode_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => out.push(0),
        Value::Int(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Decimal { units, scale } => {
            out.push(2);
            out.push(*scale);
            out.extend_from_slice(&units.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(3);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Date(d) => {
            out.push(4);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Value::Bool(false) => out.push(5),
        Value::Bool(true) => out.push(6),
        Value::Encrypted(e) => {
            out.push(7);
            let bytes = e.to_bytes_le();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        Value::EncryptedRowId(rid) => {
            out.push(8);
            out.extend_from_slice(&rid.0.nonce.to_le_bytes());
            out.extend_from_slice(&(rid.0.body.len() as u32).to_le_bytes());
            out.extend_from_slice(&rid.0.body);
            out.extend_from_slice(&rid.0.tag.to_le_bytes());
        }
        Value::Tag(t) => {
            out.push(9);
            out.extend_from_slice(&t.to_le_bytes());
        }
    }
}

fn decode_value(r: &mut Reader<'_>) -> Result<Value> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Int(r.i64()?),
        2 => Value::Decimal {
            scale: r.u8()?,
            units: r.i64()?,
        },
        3 => {
            let len = r.u32()? as usize;
            Value::Str(
                String::from_utf8(r.take(len)?.to_vec())
                    .map_err(|_| corrupt("string value is not UTF-8"))?,
            )
        }
        4 => Value::Date(r.i32()?),
        5 => Value::Bool(false),
        6 => Value::Bool(true),
        7 => {
            let len = r.u32()? as usize;
            Value::Encrypted(BigUint::from_bytes_le(r.take(len)?))
        }
        8 => {
            let nonce = r.u64()?;
            let len = r.u32()? as usize;
            let body = r.take(len)?.to_vec();
            let tag = r.u64()?;
            Value::EncryptedRowId(EncryptedRowId(SiesCiphertext { nonce, body, tag }))
        }
        9 => Value::Tag(r.u64()?),
        t => return Err(corrupt(format!("unknown value tag {t}"))),
    })
}

/// Bounds-checked little-endian cursor over the encoded page.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| corrupt("truncated page"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> Result<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    // The array readers bounds-check the whole span via `take` *before*
    // allocating, so a corrupt length cannot trigger a huge allocation.

    fn u32_array(&mut self, n: usize) -> Result<Vec<u32>> {
        let total = n.checked_mul(4).ok_or_else(|| corrupt("length overflow"))?;
        Ok(self
            .take(total)?
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn i32_array(&mut self, n: usize) -> Result<Vec<i32>> {
        let total = n.checked_mul(4).ok_or_else(|| corrupt("length overflow"))?;
        Ok(self
            .take(total)?
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn u64_array(&mut self, n: usize) -> Result<Vec<u64>> {
        let total = n.checked_mul(8).ok_or_else(|| corrupt("length overflow"))?;
        Ok(self
            .take(total)?
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn i64_array(&mut self, n: usize) -> Result<Vec<i64>> {
        let total = n.checked_mul(8).ok_or_else(|| corrupt("length overflow"))?;
        Ok(self
            .take(total)?
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_type_batch() -> RecordBatch {
        let schema = Schema::new(vec![
            ColumnDef::public("i", DataType::Int),
            ColumnDef::public("d", DataType::Decimal { scale: 2 }),
            ColumnDef::public("s", DataType::Varchar),
            ColumnDef::public("dt", DataType::Date),
            ColumnDef::public("b", DataType::Bool),
            ColumnDef::sensitive("e", DataType::Encrypted),
            ColumnDef::public("r", DataType::EncryptedRowId),
            ColumnDef::public("t", DataType::Tag),
        ]);
        let rid = EncryptedRowId(SiesCiphertext {
            nonce: 7,
            body: vec![1, 2, 3, 4],
            tag: 0xfeed,
        });
        RecordBatch::from_rows(
            schema,
            vec![
                vec![
                    Value::Int(-42),
                    Value::Decimal {
                        units: 1299,
                        scale: 2,
                    },
                    Value::Str("héllo \u{1f}".into()),
                    Value::Date(19_000),
                    Value::Bool(true),
                    Value::Encrypted(BigUint::from(1u8) << 200u32),
                    Value::EncryptedRowId(rid),
                    Value::Tag(u64::MAX),
                ],
                vec![
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_every_value_type() {
        let batch = every_type_batch();
        let bytes = encode_batch(&batch);
        let back = decode_batch(&bytes).unwrap();
        assert_eq!(batch, back);
    }

    #[test]
    fn roundtrip_empty_batch_keeps_schema() {
        let batch = RecordBatch::empty(Schema::new(vec![ColumnDef::sensitive(
            "x",
            DataType::Encrypted,
        )]));
        let back = decode_batch(&encode_batch(&batch)).unwrap();
        assert_eq!(batch, back);
        assert!(back.schema().column_at(0).sensitivity.is_sensitive());
    }

    #[test]
    fn heterogeneous_column_values_survive() {
        // Sort-key columns mix value types under one declared column type.
        let mut column = Column::new(DataType::Int);
        column.push_unchecked(Value::Int(1));
        column.push_unchecked(Value::Str("two".into()));
        column.push_unchecked(Value::Null);
        let batch = RecordBatch::new(
            Schema::new(vec![ColumnDef::public("k", DataType::Int)]),
            vec![column],
        )
        .unwrap();
        let back = decode_batch(&encode_batch(&batch)).unwrap();
        assert_eq!(batch, back);
    }

    #[test]
    fn corrupt_pages_error_instead_of_panicking() {
        let bytes = encode_batch(&every_type_batch());
        assert!(decode_batch(&[]).is_err());
        assert!(decode_batch(b"NOPE").is_err());
        assert!(
            decode_batch(&bytes[..bytes.len() - 3]).is_err(),
            "truncated"
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_batch(&trailing).is_err(), "trailing bytes");
        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert!(decode_batch(&bad_version).is_err());
        // Absurd row count must not cause a huge allocation or a panic.
        let mut bad_rows = bytes.clone();
        bad_rows[10..18].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_batch(&bad_rows).is_err());
        // Nor an absurd column count — even with nrows = 0, where the
        // values-fit product check alone would be vacuously satisfied.
        let mut bad_cols = bytes;
        bad_cols[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        bad_cols[10..18].copy_from_slice(&0u64.to_le_bytes());
        assert!(decode_batch(&bad_cols).is_err());
    }

    #[test]
    fn columnar_layout_roundtrips_null_heavy_columns_at_word_boundaries() {
        for nrows in [1usize, 63, 64, 65, 128, 200] {
            let schema = Schema::new(vec![
                ColumnDef::public("i", DataType::Int),
                ColumnDef::public("d", DataType::Decimal { scale: 2 }),
                ColumnDef::public("s", DataType::Varchar),
                ColumnDef::public("b", DataType::Bool),
            ]);
            let rows: Vec<Vec<Value>> = (0..nrows)
                .map(|i| {
                    if i % 3 == 0 {
                        vec![Value::Null, Value::Null, Value::Null, Value::Null]
                    } else {
                        vec![
                            Value::Int(i as i64),
                            // Exercise the Int-in-Decimal marker bitmap too.
                            if i % 2 == 0 {
                                Value::Int(i as i64)
                            } else {
                                Value::Decimal {
                                    units: i as i64,
                                    scale: 2,
                                }
                            },
                            Value::Str(format!("row-{i}")),
                            Value::Bool(i % 5 == 0),
                        ]
                    }
                })
                .collect();
            let batch = RecordBatch::from_rows(schema, rows).unwrap();
            let back = decode_batch(&encode_batch(&batch)).unwrap();
            assert_eq!(batch, back, "nrows={nrows}");
        }
    }

    #[test]
    fn columnar_layout_is_denser_than_tagged_for_typed_columns() {
        let schema = Schema::new(vec![ColumnDef::public("i", DataType::Int)]);
        let rows: Vec<Vec<Value>> = (0..1000).map(|i| vec![Value::Int(i)]).collect();
        let batch = RecordBatch::from_rows(schema, rows).unwrap();
        let encoded = encode_batch(&batch).len();
        // Tagged layout costs 9 bytes per INT value; columnar costs
        // 8 bytes + 1 validity bit. The saving must actually show up.
        assert!(
            encoded < 1000 * 9,
            "columnar page ({encoded} bytes) should beat the tagged layout"
        );
    }

    #[test]
    fn encoding_is_compact_relative_to_json() {
        let batch = every_type_batch();
        let binary = encode_batch(&batch).len();
        let json = serde_json::to_string(&batch).unwrap().len();
        assert!(
            binary * 2 < json,
            "binary ({binary}) should be far smaller than JSON ({json})"
        );
    }
}
