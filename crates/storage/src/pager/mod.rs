//! The pager: bounded-memory page management for larger-than-RAM execution.
//!
//! Blocking operators (external sort runs, spilled aggregation partitions)
//! park intermediate [`crate::RecordBatch`]es here as *pages*. A shared
//! [`BufferPool`] keeps decoded pages resident in a fixed-capacity pool of
//! frames (pin/unpin, dirty tracking, clock eviction); when the pool exceeds
//! the configured [`MemoryBudget`] it evicts unpinned pages, encoding dirty
//! ones through the compact binary page codec ([`encode_batch`]) into
//! per-query append-only spill files in a temp directory.
//!
//! Queries hold a [`Pager`] — a *lease* on a pool. `Pager::new` gives a
//! private single-query pool; `Pager::shared` joins an existing global pool
//! (the serving layer's configuration). Spill files are created lazily on
//! the first eviction of one of the lease's dirty pages and deleted when
//! the lease is dropped — including on error and cancellation paths, since
//! drop runs during unwinding too.
//!
//! The budget is a *soft* bound on resident page bytes: pinned pages can
//! never be evicted, so a caller that pins more than the budget (e.g. a
//! k-way merge holding one page per run) temporarily exceeds it. Eviction
//! resumes as soon as pins are released. Under a shared pool, concurrent
//! pinners are additionally subject to reservation-aware admission: the
//! oldest active lease always proceeds, younger ones wait for pinned-byte
//! headroom.

mod codec;
mod pool;
mod stream;

pub use codec::{decode_batch, encode_batch};
pub use pool::{BufferPool, PageId, Pager, PagerEvent, PagerObserver, PagerStats, PinnedPage};
pub use stream::{PageStream, PageStreamReader, PageStreamScan, PageStreamWriter};

use std::path::{Path, PathBuf};

/// How much memory a query's blocking operators may keep resident before
/// they spill, and where spill files go.
///
/// The default is [`MemoryBudget::unlimited`]: nothing spills and no files
/// are created. A limited budget bounds both the pager's resident page bytes
/// and the operators' in-memory accumulation (sort runs, pending aggregation
/// rows); each side is bounded independently, so worst-case residency is a
/// small constant multiple of the budget, not the budget itself.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryBudget {
    bytes: Option<usize>,
    spill_dir: Option<PathBuf>,
}

impl MemoryBudget {
    /// No bound: operators materialise freely and the pager never evicts.
    pub fn unlimited() -> Self {
        MemoryBudget::default()
    }

    /// A bound of `limit` bytes (approximate, via
    /// [`crate::RecordBatch::approx_size_bytes`] accounting).
    ///
    /// Panics if `limit` is zero — use [`MemoryBudget::unlimited`] for "no
    /// budget".
    pub fn bytes(limit: usize) -> Self {
        assert!(limit > 0, "a memory budget must be positive");
        MemoryBudget {
            bytes: Some(limit),
            spill_dir: None,
        }
    }

    /// Reads the `SDB_TEST_MEM_BUDGET` environment variable (bytes) as the
    /// default budget, falling back to unlimited. This is the CI hook that
    /// re-runs entire test suites through the spill paths.
    pub fn from_env() -> Self {
        match std::env::var("SDB_TEST_MEM_BUDGET")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            Some(limit) if limit > 0 => MemoryBudget::bytes(limit),
            _ => MemoryBudget::unlimited(),
        }
    }

    /// Overrides the directory spill files are created in (default: the
    /// system temp dir). The directory must already exist.
    pub fn with_spill_dir(mut self, dir: impl AsRef<Path>) -> Self {
        self.spill_dir = Some(dir.as_ref().to_path_buf());
        self
    }

    /// The byte limit, or `None` when unlimited.
    pub fn limit(&self) -> Option<usize> {
        self.bytes
    }

    /// True when a byte limit is set (the planner's cue to select the
    /// spilling operator variants).
    pub fn is_limited(&self) -> bool {
        self.bytes.is_some()
    }

    /// The directory spill files are created in.
    pub fn spill_dir(&self) -> PathBuf {
        self.spill_dir.clone().unwrap_or_else(std::env::temp_dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_by_default() {
        let b = MemoryBudget::default();
        assert!(!b.is_limited());
        assert_eq!(b.limit(), None);
        assert_eq!(b.spill_dir(), std::env::temp_dir());
    }

    #[test]
    fn limited_budget_with_custom_dir() {
        let b = MemoryBudget::bytes(4096).with_spill_dir("/some/dir");
        assert!(b.is_limited());
        assert_eq!(b.limit(), Some(4096));
        assert_eq!(b.spill_dir(), PathBuf::from("/some/dir"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_rejected() {
        let _ = MemoryBudget::bytes(0);
    }
}
